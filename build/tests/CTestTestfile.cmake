# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/flowchart_test[1]_include.cmake")
include("/root/repo/build/tests/flowlang_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/mechanism_test[1]_include.cmake")
include("/root/repo/build/tests/surveillance_test[1]_include.cmake")
include("/root/repo/build/tests/staticflow_test[1]_include.cmake")
include("/root/repo/build/tests/transforms_test[1]_include.cmake")
include("/root/repo/build/tests/lattice_test[1]_include.cmake")
include("/root/repo/build/tests/minsky_test[1]_include.cmake")
include("/root/repo/build/tests/tape_test[1]_include.cmake")
include("/root/repo/build/tests/monitor_test[1]_include.cmake")
include("/root/repo/build/tests/channels_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/simplify_test[1]_include.cmake")
include("/root/repo/build/tests/bytecode_test[1]_include.cmake")
include("/root/repo/build/tests/integrity_test[1]_include.cmake")
include("/root/repo/build/tests/policy_algebra_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/optimize_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/capability_test[1]_include.cmake")
include("/root/repo/build/tests/structure_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
