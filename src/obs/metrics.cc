#include "src/obs/metrics.h"

#include <algorithm>

namespace secpol {

namespace {

// Bit width of `v`: 0 for 0, otherwise 1 + floor(log2 v). Kept hand-rolled
// so the header does not need <bit> (and the value is needed at runtime
// only, on the sampling path).
std::size_t BitWidth(std::uint64_t v) {
  std::size_t width = 0;
  while (v != 0) {
    v >>= 1;
    ++width;
  }
  return width;
}

}  // namespace

std::size_t Counter::LaneIndex() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t lane =
      next.fetch_add(1, std::memory_order_relaxed) % kLanes;
  return lane;
}

void Histogram::Record(std::uint64_t value) {
  buckets_[BitWidth(value)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::Count() const {
  std::uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

Json Histogram::ToJson() const {
  const std::uint64_t count = Count();
  Json out = Json::MakeObject();
  out.Set("count", Json::MakeInt(static_cast<std::int64_t>(count)));
  out.Set("sum", Json::MakeInt(static_cast<std::int64_t>(Sum())));
  if (count > 0) {
    out.Set("min", Json::MakeInt(static_cast<std::int64_t>(Min())));
    out.Set("max", Json::MakeInt(static_cast<std::int64_t>(Max())));
    out.Set("mean", Json::MakeDouble(static_cast<double>(Sum()) / static_cast<double>(count)));
  }
  Json buckets = Json::MakeArray();
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t in_bucket = BucketCount(i);
    if (in_bucket == 0) {
      continue;
    }
    // Inclusive upper bound of bucket i (values of bit width i), clamped to
    // int64 so the JSON integer stays exact.
    const std::uint64_t le = i >= 64 ? UINT64_MAX : (std::uint64_t{1} << i) - 1;
    Json bucket = Json::MakeObject();
    bucket.Set("le", Json::MakeInt(static_cast<std::int64_t>(
                         std::min<std::uint64_t>(le, INT64_MAX))));
    bucket.Set("count", Json::MakeInt(static_cast<std::int64_t>(in_bucket)));
    buckets.Append(std::move(bucket));
  }
  out.Set("buckets", std::move(buckets));
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = counters_.try_emplace(name);
  if (inserted) {
    it->second = std::make_unique<Counter>();
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = gauges_.try_emplace(name);
  if (inserted) {
    it->second = std::make_unique<Gauge>();
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = histograms_.try_emplace(name);
  if (inserted) {
    it->second = std::make_unique<Histogram>();
  }
  return it->second.get();
}

bool MetricsRegistry::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

Json MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json counters = Json::MakeObject();
  for (const auto& [name, counter] : counters_) {
    counters.Set(name, Json::MakeInt(static_cast<std::int64_t>(counter->Value())));
  }
  Json gauges = Json::MakeObject();
  for (const auto& [name, gauge] : gauges_) {
    gauges.Set(name, Json::MakeInt(gauge->Value()));
  }
  Json histograms = Json::MakeObject();
  for (const auto& [name, histogram] : histograms_) {
    histograms.Set(name, histogram->ToJson());
  }
  Json out = Json::MakeObject();
  out.Set("counters", std::move(counters));
  out.Set("gauges", std::move(gauges));
  out.Set("histograms", std::move(histograms));
  return out;
}

}  // namespace secpol
