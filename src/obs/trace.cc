#include "src/obs/trace.h"

namespace secpol {

int TraceRecorder::TidLocked() {
  const auto [it, inserted] = tids_.try_emplace(std::this_thread::get_id(),
                                                static_cast<int>(tids_.size()));
  (void)inserted;
  return it->second;
}

void TraceRecorder::AddComplete(std::string name, std::string category, std::int64_t ts_us,
                                std::int64_t dur_us, Json args) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{std::move(name), std::move(category), 'X', ts_us, dur_us,
                          TidLocked(), std::move(args)});
}

void TraceRecorder::AddInstant(std::string name, std::string category, Json args) {
  const std::int64_t now_us = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(
      Event{std::move(name), std::move(category), 'i', now_us, 0, TidLocked(), std::move(args)});
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

Json TraceRecorder::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json events = Json::MakeArray();
  for (const Event& event : events_) {
    Json entry = Json::MakeObject();
    entry.Set("name", Json::MakeString(event.name));
    entry.Set("cat", Json::MakeString(event.category));
    entry.Set("ph", Json::MakeString(std::string(1, event.phase)));
    entry.Set("ts", Json::MakeInt(event.ts_us));
    if (event.phase == 'X') {
      entry.Set("dur", Json::MakeInt(event.dur_us));
    } else {
      entry.Set("s", Json::MakeString("t"));  // thread-scoped instant
    }
    entry.Set("pid", Json::MakeInt(1));
    entry.Set("tid", Json::MakeInt(event.tid));
    if (event.args.is_object()) {
      entry.Set("args", event.args);
    }
    events.Append(std::move(entry));
  }
  Json out = Json::MakeObject();
  out.Set("displayTimeUnit", Json::MakeString("ms"));
  out.Set("traceEvents", std::move(events));
  return out;
}

}  // namespace secpol
