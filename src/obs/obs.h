// The observability context threaded through the checking runtime.
//
// An ObsContext is two nullable pointers — a MetricsRegistry and a
// TraceRecorder — carried by CheckOptions (sweeps, checkers) and
// ServiceConfig (scheduler, cache). Both default to null, which *is* the
// disabled mode: no allocation, no atomics, no clock reads; instrumented
// code pays one predictable branch per coarse-grained site. Attaching either
// pointer turns the corresponding instrument on independently.
//
// CheckScope is the shared per-checker instrumentation: it wraps one checker
// run in a trace span and, on destruction, records run/point counters and a
// points-per-second histogram under "check.<name>.*".

#ifndef SECPOL_SRC_OBS_OBS_H_
#define SECPOL_SRC_OBS_OBS_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace secpol {

struct ObsContext {
  MetricsRegistry* metrics = nullptr;
  TraceRecorder* trace = nullptr;

  bool enabled() const { return metrics != nullptr || trace != nullptr; }
};

// RAII trace span: opens at construction, emits one complete event at
// destruction. A null recorder makes every member a no-op.
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* recorder, std::string name, std::string category)
      : recorder_(recorder),
        name_(std::move(name)),
        category_(std::move(category)),
        start_us_(recorder != nullptr ? recorder->NowMicros() : 0) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Attributes attached to the span's "args" object (last call wins).
  void SetArgs(Json args) { args_ = std::move(args); }

  ~ScopedSpan() {
    if (recorder_ != nullptr) {
      recorder_->AddComplete(std::move(name_), std::move(category_), start_us_,
                             recorder_->NowMicros() - start_us_, std::move(args_));
    }
  }

 private:
  TraceRecorder* recorder_;
  std::string name_;
  std::string category_;
  std::int64_t start_us_;
  Json args_;
};

// One checker run: a "check"-category trace span plus, when metrics are
// attached, counters check.<name>.runs / check.<name>.points and a
// check.<name>.points_per_sec histogram. The caller reports the evaluated
// point count via SetPoints before scope exit.
class CheckScope {
 public:
  CheckScope(const ObsContext& obs, const char* name);
  CheckScope(const CheckScope&) = delete;
  CheckScope& operator=(const CheckScope&) = delete;
  ~CheckScope();

  void SetPoints(std::uint64_t points) { points_ = points; }

 private:
  ObsContext obs_;
  const char* name_;
  std::uint64_t points_ = 0;
  std::int64_t start_us_ = 0;                         // trace timebase
  std::chrono::steady_clock::time_point start_{};     // metrics timebase
};

}  // namespace secpol

#endif  // SECPOL_SRC_OBS_OBS_H_
