// Trace spans for the checking runtime, emitted as Chrome trace-event JSON.
//
// A TraceRecorder collects timestamped events — complete spans ("ph":"X")
// and instants ("ph":"i") — on a steady_clock timebase anchored at the
// recorder's construction, and serializes them in the Chrome trace-event
// format (load the file in chrome://tracing or Perfetto). Thread ids are
// remapped to small sequential integers in first-seen order so traces from
// identical serial runs are byte-stable.
//
// Like the metrics layer, recording is pointer-gated: instrumented code
// holds a TraceRecorder* that defaults to null, and a null recorder costs
// the hot paths at most one predictable branch.

#ifndef SECPOL_SRC_OBS_TRACE_H_
#define SECPOL_SRC_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/util/json.h"

namespace secpol {

class TraceRecorder {
 public:
  TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Microseconds since this recorder's construction (the trace timebase).
  std::int64_t NowMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  // A complete span: [ts_us, ts_us + dur_us], attributed to the calling
  // thread. `args` may be a JSON object of span attributes (or null).
  void AddComplete(std::string name, std::string category, std::int64_t ts_us,
                   std::int64_t dur_us, Json args = Json());

  // A zero-duration marker at now, attributed to the calling thread.
  void AddInstant(std::string name, std::string category, Json args = Json());

  std::size_t size() const;

  // {"displayTimeUnit":"ms","traceEvents":[...]} — the Chrome trace format.
  Json ToJson() const;

 private:
  struct Event {
    std::string name;
    std::string category;
    char phase;  // 'X' complete, 'i' instant
    std::int64_t ts_us;
    std::int64_t dur_us;
    int tid;
    Json args;
  };

  // Small sequential id for the calling thread; callers hold mu_.
  int TidLocked();

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::map<std::thread::id, int> tids_;
};

}  // namespace secpol

#endif  // SECPOL_SRC_OBS_TRACE_H_
