#include "src/obs/obs.h"

namespace secpol {

CheckScope::CheckScope(const ObsContext& obs, const char* name) : obs_(obs), name_(name) {
  if (obs_.enabled()) {
    start_ = std::chrono::steady_clock::now();
    if (obs_.trace != nullptr) {
      start_us_ = obs_.trace->NowMicros();
    }
  }
}

CheckScope::~CheckScope() {
  if (!obs_.enabled()) {
    return;
  }
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
                          .count();
  if (obs_.trace != nullptr) {
    Json args = Json::MakeObject();
    args.Set("points", Json::MakeInt(static_cast<std::int64_t>(points_)));
    obs_.trace->AddComplete(name_, "check", start_us_,
                            static_cast<std::int64_t>(secs * 1e6), std::move(args));
  }
  if (obs_.metrics != nullptr) {
    const std::string prefix = std::string("check.") + name_;
    obs_.metrics->GetCounter(prefix + ".runs")->Add(1);
    obs_.metrics->GetCounter(prefix + ".points")->Add(points_);
    if (secs > 0 && points_ > 0) {
      obs_.metrics->GetHistogram(prefix + ".points_per_sec")
          ->Record(static_cast<std::uint64_t>(static_cast<double>(points_) / secs));
    }
  }
}

}  // namespace secpol
