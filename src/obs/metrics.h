// A self-contained metrics layer for the checking runtime.
//
// The paper's Observability Postulate makes the point that *everything an
// observer can see* — values, running time — is part of the output. Our own
// runtime should hold itself to the same standard: a production checking
// service under load is only debuggable if its hot layers (sweep kernel,
// checkers, scheduler, cache) account for what they did. A MetricsRegistry
// is a named bag of three instrument kinds:
//
//   Counter    — monotonic u64, sharded across cache-line-padded atomic
//                lanes so concurrent shards never contend on one line.
//   Gauge      — a single settable i64 (last-write-wins).
//   Histogram  — u64 samples bucketed by power of two, plus exact
//                count / sum / min / max, all lock-free.
//
// Everything is opt-in and pointer-gated: code paths hold a MetricsRegistry*
// that is null by default, so a disabled build does no atomic work at all —
// the byte-identity contracts of the report pipeline are untouched and the
// hot loops pay at most a predictable branch (bench/bench_obs, E20).
//
// Snapshot() renders the whole registry as one JSON object with name-sorted
// keys, so snapshots are deterministic given deterministic instrument
// values.

#ifndef SECPOL_SRC_OBS_METRICS_H_
#define SECPOL_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/util/json.h"

namespace secpol {

// A monotonic counter. Add() touches one of kLanes cache-line-padded atomic
// lanes (assigned to threads round-robin), Value() folds them.
class Counter {
 public:
  static constexpr std::size_t kLanes = 8;

  void Add(std::uint64_t delta = 1) {
    lanes_[LaneIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const Lane& lane : lanes_) {
      total += lane.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Lane {
    std::atomic<std::uint64_t> value{0};
  };

  // Each thread keeps one lane for its whole lifetime; the assignment is
  // process-wide round-robin so any kLanes concurrent threads spread out.
  static std::size_t LaneIndex();

  Lane lanes_[kLanes];
};

// A last-write-wins signed value (queue depths, cache entry counts).
class Gauge {
 public:
  void Set(std::int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(std::int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// A lock-free histogram of u64 samples: power-of-two buckets (bucket i holds
// values of bit width i, i.e. [2^(i-1), 2^i - 1]) plus exact count, sum, min
// and max. Merging across recording threads is just the commutativity of
// relaxed fetch_add / CAS-min / CAS-max, which tests/obs_test.cc locks under
// TSan.
class Histogram {
 public:
  // 0 has bit width 0; 64 is the widest width — 65 buckets total.
  static constexpr std::size_t kBuckets = 65;

  void Record(std::uint64_t value);

  std::uint64_t Count() const;
  std::uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  // Min()/Max() are meaningful only when Count() > 0.
  std::uint64_t Min() const { return min_.load(std::memory_order_relaxed); }
  std::uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t BucketCount(std::size_t bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }

  // {"count":..,"sum":..,"min":..,"max":..,"mean":..,"buckets":[{"le":..,
  // "count":..}, ...]} with empty buckets omitted.
  Json ToJson() const;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

// The named instrument registry. Get*() registers on first use and returns a
// stable pointer — hot paths resolve the pointer once and keep it; the mutex
// guards only the name maps, never a recording.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // True iff no instrument has ever been registered (the disabled-mode
  // "emits nothing" assertion).
  bool empty() const;

  // {"counters":{...},"gauges":{...},"histograms":{...}}, keys name-sorted.
  Json Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace secpol

#endif  // SECPOL_SRC_OBS_METRICS_H_
