#include "src/tape/tape.h"

#include <cassert>

namespace secpol {

std::string SeekStrategyName(SeekStrategy strategy) {
  switch (strategy) {
    case SeekStrategy::kWalk:
      return "walk";
    case SeekStrategy::kTabLinear:
      return "tab-linear";
    case SeekStrategy::kTabConstant:
      return "tab-constant";
  }
  return "?";
}

TapeMachine::TapeMachine(const std::vector<std::pair<Value, Value>>& blocks) {
  for (const auto& [length, symbol] : blocks) {
    block_start_.push_back(cells_.size());
    for (Value i = 0; i < length; ++i) {
      cells_.push_back(symbol);
    }
  }
}

Value TapeMachine::Read() {
  ++steps_;
  return head_ < cells_.size() ? cells_[head_] : 0;
}

void TapeMachine::Advance() {
  ++steps_;
  ++head_;
}

void TapeMachine::Tab(int index, SeekStrategy strategy) {
  assert(index >= 0 && static_cast<size_t>(index) < block_start_.size());
  const std::size_t target = block_start_[static_cast<size_t>(index)];
  switch (strategy) {
    case SeekStrategy::kWalk:
      // Not a tab at all: the caller walks cell by cell.
      while (head_ < target) {
        Advance();
      }
      ++steps_;  // the final positioning check
      break;
    case SeekStrategy::kTabLinear:
      // One operation whose implementation still walks internally: its cost
      // depends on the lengths of the skipped blocks.
      steps_ += (target > head_ ? target - head_ : 0) + 1;
      head_ = target;
      break;
    case SeekStrategy::kTabConstant:
      ++steps_;
      head_ = target;
      break;
  }
}

std::shared_ptr<ProtectionMechanism> MakeBlockReader(int num_blocks, int target,
                                                     SeekStrategy strategy) {
  assert(target >= 0 && target < num_blocks);
  const std::string name =
      "block-reader[" + SeekStrategyName(strategy) + ", z" + std::to_string(target) + "]";
  return std::make_shared<FunctionMechanism>(
      name, 2 * num_blocks, [num_blocks, target, strategy](InputView input) {
        std::vector<std::pair<Value, Value>> blocks;
        for (int b = 0; b < num_blocks; ++b) {
          const Value length = input[2 * b] < 0 ? 0 : input[2 * b];
          blocks.emplace_back(length, input[2 * b + 1]);
        }
        TapeMachine tape(blocks);
        tape.Tab(target, strategy);
        // An empty target block reads as 0; the read is still charged so the
        // step count does not depend on the (allowed) target length.
        Value symbol = tape.Read();
        if (blocks[static_cast<size_t>(target)].first == 0) {
          symbol = 0;
        }
        return Outcome::Val(symbol, tape.steps());
      });
}

VarSet BlockCoordinates(int block) { return VarSet{2 * block, 2 * block + 1}; }

}  // namespace secpol
