// The one-way read-only tape machine of Section 2.
//
// "Let programs have inputs that are placed on a linear one-way read-only
// tape with the head initially at the leftmost character ... Consider a
// security policy allow(2), i.e. allow information only about the second
// block. Then we claim that no program Q can read z2 and also be sound,
// provided running time is observable [because] it must move across z1 ...
// it will encode the length of z1 into the computation. ... One answer is to
// add a new operation, say tab(i). ... Perhaps tab(i) takes time dependent
// on the length of z1,...,zi-1? ... one solution is to program tab(i) so
// that it runs in constant time."
//
// The machine: the tape holds k blocks; block j is input as a (length,
// symbol) pair — length_j copies of symbol_j. A reader program positions the
// head at a target block and reads its first symbol. Three seek strategies
// realize the paper's three cases:
//
//   kWalk        — advance cell by cell across the preceding blocks
//                  (cost = cells crossed): unsound under observable time.
//   kTabLinear   — tab(i) whose implementation still walks internally
//                  (same cost, one "operation"): equally unsound.
//   kTabConstant — tab(i) in one step: sound.
//
// All three are sound when time is unobservable; experiment E15 runs the
// checker over all strategy x observability combinations.

#ifndef SECPOL_SRC_TAPE_TAPE_H_
#define SECPOL_SRC_TAPE_TAPE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/mechanism/mechanism.h"
#include "src/util/value.h"
#include "src/util/var_set.h"

namespace secpol {

enum class SeekStrategy {
  kWalk,
  kTabLinear,
  kTabConstant,
};

std::string SeekStrategyName(SeekStrategy strategy);

// A concrete tape machine: cells are materialized from (length, symbol)
// block descriptors, and every head operation is charged to a step counter.
class TapeMachine {
 public:
  // blocks[j] = {length, symbol}; negative lengths are clamped to 0.
  explicit TapeMachine(const std::vector<std::pair<Value, Value>>& blocks);

  // Reads the cell under the head without moving (1 step). Reading past the
  // end of the tape yields 0.
  Value Read();
  // Moves the head one cell right (1 step).
  void Advance();
  // Positions the head at the first cell of block `index`.
  // kTabConstant: 1 step. kTabLinear: steps equal to the distance walked.
  void Tab(int index, SeekStrategy strategy);

  StepCount steps() const { return steps_; }
  std::size_t head() const { return head_; }

 private:
  std::vector<Value> cells_;
  std::vector<std::size_t> block_start_;
  std::size_t head_ = 0;
  StepCount steps_ = 0;
};

// The "read the first symbol of block `target`" program, as a protection
// mechanism over inputs (len_0, sym_0, len_1, sym_1, ..., len_{k-1},
// sym_{k-1}). An empty target block reads as 0.
std::shared_ptr<ProtectionMechanism> MakeBlockReader(int num_blocks, int target,
                                                     SeekStrategy strategy);

// The input coordinates describing block `b` — the set the paper's allow(2)
// grants (for us, allow of block b = {2b, 2b+1}).
VarSet BlockCoordinates(int block);

}  // namespace secpol

#endif  // SECPOL_SRC_TAPE_TAPE_H_
