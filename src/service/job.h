// One batch-check job: a self-contained recipe for running any of the six
// exhaustive checkers, plus its deterministic cache identity.
//
// A CheckJobSpec carries everything a checker invocation depends on — the
// flowlang source, the policy parameters, the mechanism recipe, the grid,
// observability, fault injection — as *data*, so a job can be shipped in a
// JSON manifest, fingerprinted, scheduled, and re-run bit-identically.
//
// The differential contract this module is tested against: for any spec,
// ExecuteJob's report text is byte-identical to calling the underlying
// checker directly with the same ingredients, at any thread count, whether
// the result came from a fresh run or (via CheckService) from the cache.

#ifndef SECPOL_SRC_SERVICE_JOB_H_
#define SECPOL_SRC_SERVICE_JOB_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/flowchart/program.h"
#include "src/mechanism/domain.h"
#include "src/mechanism/maximal.h"
#include "src/mechanism/mechanism.h"
#include "src/obs/obs.h"
#include "src/util/fingerprint.h"
#include "src/util/result.h"
#include "src/util/value.h"
#include "src/util/var_set.h"

namespace secpol {

class ClassMemo;  // src/mechanism/classes.h

// Which exhaustive checker the job runs.
enum class CheckerKind {
  kSoundness,      // CheckSoundness(mechanism, allow-policy)
  kIntegrity,      // CheckInformationPreservation(mechanism, allow-policy)
  kCompleteness,   // CompareCompleteness(mechanism, mechanism2)
  kMaximal,        // SynthesizeMaximalMechanism(bare program, allow-policy)
  kPolicyCompare,  // ComparePolicyDisclosure(allow-policy, allow2-policy)
  kLeak,           // MeasureLeak(mechanism, allow-policy)
  kAudit,          // CheckAll: all six checks over one shared outcome table
};

std::string CheckerKindName(CheckerKind kind);
std::optional<CheckerKind> ParseCheckerKind(const std::string& name);

// A fully specified check job. Defaults mirror `secpol check`.
struct CheckJobSpec {
  std::string id;  // caller-chosen label, echoed in the batch report

  CheckerKind checker = CheckerKind::kSoundness;
  std::string program_text;  // flowlang source (content, not a path)

  // Primary policy: allow(`allow`) over the program's inputs.
  VarSet allow;
  // Checked mechanism kind: surveillance | mprime | highwater | bare |
  // static | residual | table (same vocabulary as `secpol check
  // --mechanism`). "table" tabulates the surveillance mechanism over the
  // canonical grid {-1..2}^k, so a job whose grid reaches outside that range
  // exercises the out-of-domain fail-closed path.
  std::string mechanism = "surveillance";
  // kCompleteness / kAudit: the second mechanism of the comparison.
  std::string mechanism2 = "bare";
  // kPolicyCompare / kAudit: the second policy allow(`allow2`).
  VarSet allow2;

  // Grid: every input coordinate ranges over {grid_lo, ..., grid_hi}.
  Value grid_lo = -1;
  Value grid_hi = 2;
  bool observe_time = false;  // kValueAndTime instead of kValueOnly

  // How the checker sweeps the grid: "point" (the default — every rank
  // evaluated directly, exactly as before this field existed) or "class"
  // (equivalence-class sweep, DESIGN.md §14: partition the grid by the
  // policy image, run one tracked representative per class, copy certified
  // classes instead of re-running the mechanism). The contract: a COMPLETED
  // class-mode report is byte-identical to the point-mode report. "class"
  // contributes a cache sub-key; "point" leaves the cache key byte-for-byte
  // what it was before sweep modes existed.
  std::string sweep_mode = "point";

  // How each grid point is evaluated: "interpreted" (the default — the
  // reference AST-walking interpreter, exactly as before this field existed)
  // or "compiled" (surveillance-family mechanisms run as instrumented
  // bytecode, DESIGN.md §15; kinds with no surveillance shadow — bare,
  // static, residual — have nothing to compile and run their usual objects).
  // The contract: reports are byte-identical across exec modes. "compiled"
  // contributes a cache sub-key; "interpreted" leaves cache keys
  // byte-for-byte what they were before exec modes existed.
  std::string exec_mode = "interpreted";

  // Evaluation knobs (not part of the cache key; see JobCacheKey).
  int num_threads = 1;
  std::int64_t deadline_ms = 0;  // 0 = unbounded
  int priority = 0;              // higher-priority jobs are scheduled first

  // Deterministic fault injection (ParseFaultSpecs grammar) and bounded
  // transient retry, as in `secpol check --fault-spec/--retries`.
  std::string fault_spec;
  int retries = -1;  // -1 = no retry wrapper
};

// How one job ended. Extends CheckStatus with the two service-level ways a
// job can fail without its checker ever running.
enum class JobStatus {
  kCompleted,         // checker covered the whole grid (or cache hit)
  kDeadlineExceeded,  // checker stopped at the per-job deadline
  kAborted,           // cancelled or a fault escaped the retry budget
  kRejected,          // admission control refused the job (backpressure)
  kInvalid,           // the spec itself is malformed
};

std::string JobStatusName(JobStatus status);

// Structured outcome of one job.
struct JobResult {
  std::string id;
  JobStatus status = JobStatus::kInvalid;
  bool from_cache = false;
  // The checker's rendered report — byte-identical to the standalone
  // checker's ToString() (empty for kRejected / kInvalid).
  std::string report;
  // Standalone-consistent exit code: 0 ok, 2 verdict failure (or a genuine
  // witness on a partial run), 3 deadline without witness, 4 aborted,
  // 1 invalid spec, 5 rejected by admission control.
  int exit_code = 1;
  std::uint64_t evaluated = 0;  // grid points actually evaluated
  std::uint64_t total = 0;      // grid size
  double wall_ms = 0.0;
  std::string error;      // kInvalid / kRejected reason
  std::string cache_key;  // hex fingerprint ("" when the spec never parsed)
};

// The spec parsed and validated: the lowered program, the grid, and the
// job's cache identity.
struct PreparedJob {
  Program program;
  InputDomain domain;
  Fingerprint key;
};

// Parses program_text, validates every spec field against it, and computes
// the cache key. Fails with a message naming the offending field.
Result<PreparedJob> PrepareJob(const CheckJobSpec& spec);

// The deterministic cache key of a job: a fingerprint over everything that
// can influence the rendered report of a *completed* run — checker kind,
// canonical program structure, policy parameters, mechanism recipe, the
// exact grid, observability, fault specs, retry bound — and nothing that
// can't (num_threads and deadline are excluded: the engine's determinism
// contract makes completed reports independent of both, and only completed
// runs are cached). See DESIGN.md §9 for the soundness argument.
Fingerprint JobCacheKey(const CheckJobSpec& spec, const Program& program,
                        const InputDomain& domain);

// The memo context of one mechanism column of a class-mode job: everything
// that determines a representative's outcome EXCEPT the program's box
// contents (those are revalidated per lookup — see ClassMemo). Covers the
// mechanism kind, the policy bits feeding it (omitted for "bare", which
// ignores them), the exact grid (fault injection fires by grid rank), the
// fault/retry recipe, and the program's skeleton digest. Exposed so tests
// and benchmarks can address the same memo lines the service does.
Fingerprint ClassMemoContextKey(const CheckJobSpec& spec, const Program& program,
                                const InputDomain& domain, const std::string& mechanism_kind);

// Runs the checker for an already-prepared job (no cache, no scheduler).
// The result's wall_ms covers the checker run only. `obs` (disabled by
// default) is forwarded to the checker's CheckOptions; it never changes the
// report bytes. `class_memo` (optional) is the cross-job representative
// memo consulted by "class" sweep-mode jobs; point-mode jobs ignore it.
JobResult RunPreparedJob(const CheckJobSpec& spec, const PreparedJob& prepared,
                         const ObsContext& obs = ObsContext(),
                         ClassMemo* class_memo = nullptr);

// PrepareJob + RunPreparedJob; invalid specs yield a kInvalid result.
JobResult ExecuteJob(const CheckJobSpec& spec, const ObsContext& obs = ObsContext(),
                     ClassMemo* class_memo = nullptr);

// The six standalone jobs an audit job bundles, in section order (soundness,
// integrity, completeness, maximal, policy-compare, leak). Each spec keeps
// every ingredient of `audit` and takes its checker's name as id. The audit
// differential contract — locked by tests/audit_test.cc and re-asserted per
// generated scenario by src/scenario — is that the audit job's report is the
// byte-concatenation of these six jobs' reports.
std::vector<CheckJobSpec> AuditSectionSpecs(const CheckJobSpec& audit);

// Builds one of the named mechanism kinds over `program` (the vocabulary of
// `secpol check --mechanism` and CheckJobSpec::mechanism). Returns nullptr
// and sets *error for an unknown kind. `exec_mode` selects the evaluation
// backend (CheckJobSpec::exec_mode vocabulary): under "compiled" the
// surveillance-family kinds (surveillance/mprime/highwater, and the live
// mechanism behind "table") are built on the bytecode fast path; kinds with
// no surveillance shadow are unchanged, preserving report bytes trivially.
std::unique_ptr<ProtectionMechanism> MakeMechanismKind(const std::string& kind,
                                                       const Program& program, VarSet allowed,
                                                       const std::string& exec_mode,
                                                       std::string* error);
inline std::unique_ptr<ProtectionMechanism> MakeMechanismKind(const std::string& kind,
                                                              const Program& program,
                                                              VarSet allowed,
                                                              std::string* error) {
  return MakeMechanismKind(kind, program, allowed, "interpreted", error);
}

// Report rendering for the maximal synthesizer (the one checker whose result
// struct has no ToString of its own). Exposed so differential tests can
// render a directly-synthesized result and compare bytes.
std::string RenderMaximalReport(const MaximalSynthesis& synthesis);

}  // namespace secpol

#endif  // SECPOL_SRC_SERVICE_JOB_H_
