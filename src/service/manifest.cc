#include "src/service/manifest.h"

#include <fstream>
#include <optional>
#include <sstream>
#include <utility>

namespace secpol {

namespace {

// Field-level helpers: every accessor takes a `where` prefix ("jobs[3]")
// so errors name the offending spot.

Result<std::int64_t> IntField(const Json& object, const std::string& key,
                              const std::string& where, std::int64_t fallback) {
  const Json* field = object.Find(key);
  if (field == nullptr) {
    return fallback;
  }
  if (!field->is_int()) {
    return Error{where + "." + key + ": expected an integer"};
  }
  return field->AsInt();
}

Result<bool> BoolField(const Json& object, const std::string& key, const std::string& where,
                       bool fallback) {
  const Json* field = object.Find(key);
  if (field == nullptr) {
    return fallback;
  }
  if (!field->is_bool()) {
    return Error{where + "." + key + ": expected a boolean"};
  }
  return field->AsBool();
}

Result<std::string> StringField(const Json& object, const std::string& key,
                                const std::string& where, std::string fallback) {
  const Json* field = object.Find(key);
  if (field == nullptr) {
    return fallback;
  }
  if (!field->is_string()) {
    return Error{where + "." + key + ": expected a string"};
  }
  return field->AsString();
}

Result<VarSet> VarSetField(const Json& object, const std::string& key,
                           const std::string& where, VarSet fallback) {
  const Json* field = object.Find(key);
  if (field == nullptr) {
    return fallback;
  }
  if (!field->is_array()) {
    return Error{where + "." + key + ": expected an array of input indices"};
  }
  VarSet out;
  for (const Json& item : field->Items()) {
    if (!item.is_int() || item.AsInt() < 0 || item.AsInt() > VarSet::kMaxIndex) {
      return Error{where + "." + key + ": indices must be integers in [0, " +
                   std::to_string(VarSet::kMaxIndex) + "]"};
    }
    out.Insert(static_cast<int>(item.AsInt()));
  }
  return out;
}

}  // namespace

// Applies one job object's fields over `spec` (used for "defaults", each
// entry of "jobs", and serve-daemon submit frames).
Result<bool> ApplyManifestJobFields(const Json& object, const std::string& where,
                                    CheckJobSpec* spec, JobFieldSource source) {
  static const char* const kKnownKeys[] = {
      "id",        "checker",    "program",  "program_file", "allow",
      "allow2",    "mechanism",  "mechanism2", "grid",       "observe_time",
      "threads",   "deadline_ms", "priority", "fault_spec",  "retries",
      "sweep_mode", "exec_mode",
  };
  for (const auto& [key, value] : object.Members()) {
    bool known = false;
    for (const char* candidate : kKnownKeys) {
      if (key == candidate) {
        known = true;
        break;
      }
    }
    if (!known) {
      return Error{where + ": unknown key '" + key + "'"};
    }
  }

  Result<std::string> id = StringField(object, "id", where, spec->id);
  if (!id.ok()) return id.error();
  spec->id = std::move(id).value();

  Result<std::string> checker = StringField(object, "checker", where,
                                            CheckerKindName(spec->checker));
  if (!checker.ok()) return checker.error();
  const std::optional<CheckerKind> kind = ParseCheckerKind(checker.value());
  if (!kind.has_value()) {
    return Error{where + ".checker: unknown checker '" + checker.value() + "'"};
  }
  spec->checker = *kind;

  Result<std::string> program = StringField(object, "program", where, spec->program_text);
  if (!program.ok()) return program.error();
  spec->program_text = std::move(program).value();

  // "program_file" opens a path with this process's privileges. For a local
  // manifest that is the operator reading their own files; for a socket
  // submission it would let any client read (or probe for) files on the
  // daemon host, so the key is refused before its value is even looked at.
  if (source == JobFieldSource::kUntrustedSubmission &&
      object.Find("program_file") != nullptr) {
    return Error{where +
                 ".program_file: server-side file loading is not available for "
                 "socket submissions; inline the source via 'program'"};
  }

  Result<std::string> program_file = StringField(object, "program_file", where, "");
  if (!program_file.ok()) return program_file.error();
  if (!program_file.value().empty()) {
    std::ifstream stream(program_file.value());
    if (!stream) {
      return Error{where + ".program_file: cannot open '" + program_file.value() + "'"};
    }
    std::stringstream buffer;
    buffer << stream.rdbuf();
    spec->program_text = buffer.str();
  }

  Result<VarSet> allow = VarSetField(object, "allow", where, spec->allow);
  if (!allow.ok()) return allow.error();
  spec->allow = allow.value();

  Result<VarSet> allow2 = VarSetField(object, "allow2", where, spec->allow2);
  if (!allow2.ok()) return allow2.error();
  spec->allow2 = allow2.value();

  Result<std::string> mechanism = StringField(object, "mechanism", where, spec->mechanism);
  if (!mechanism.ok()) return mechanism.error();
  spec->mechanism = std::move(mechanism).value();

  Result<std::string> mechanism2 = StringField(object, "mechanism2", where, spec->mechanism2);
  if (!mechanism2.ok()) return mechanism2.error();
  spec->mechanism2 = std::move(mechanism2).value();

  if (const Json* grid = object.Find("grid"); grid != nullptr) {
    if (!grid->is_object()) {
      return Error{where + ".grid: expected an object {\"lo\": ..., \"hi\": ...}"};
    }
    Result<std::int64_t> lo = IntField(*grid, "lo", where + ".grid", spec->grid_lo);
    if (!lo.ok()) return lo.error();
    Result<std::int64_t> hi = IntField(*grid, "hi", where + ".grid", spec->grid_hi);
    if (!hi.ok()) return hi.error();
    spec->grid_lo = lo.value();
    spec->grid_hi = hi.value();
  }

  Result<bool> observe_time = BoolField(object, "observe_time", where, spec->observe_time);
  if (!observe_time.ok()) return observe_time.error();
  spec->observe_time = observe_time.value();

  Result<std::int64_t> threads = IntField(object, "threads", where, spec->num_threads);
  if (!threads.ok()) return threads.error();
  spec->num_threads = static_cast<int>(threads.value());

  Result<std::int64_t> deadline = IntField(object, "deadline_ms", where, spec->deadline_ms);
  if (!deadline.ok()) return deadline.error();
  spec->deadline_ms = deadline.value();

  Result<std::int64_t> priority = IntField(object, "priority", where, spec->priority);
  if (!priority.ok()) return priority.error();
  spec->priority = static_cast<int>(priority.value());

  Result<std::string> fault_spec = StringField(object, "fault_spec", where, spec->fault_spec);
  if (!fault_spec.ok()) return fault_spec.error();
  spec->fault_spec = std::move(fault_spec).value();

  Result<std::int64_t> retries = IntField(object, "retries", where, spec->retries);
  if (!retries.ok()) return retries.error();
  spec->retries = static_cast<int>(retries.value());

  // Vocabulary errors surface here with the manifest-grade message; PrepareJob
  // re-validates for specs built programmatically.
  Result<std::string> sweep_mode = StringField(object, "sweep_mode", where, spec->sweep_mode);
  if (!sweep_mode.ok()) return sweep_mode.error();
  if (sweep_mode.value() != "point" && sweep_mode.value() != "class") {
    return Error{where + ".sweep_mode: expected 'point' or 'class'; got '" +
                 sweep_mode.value() + "'"};
  }
  spec->sweep_mode = std::move(sweep_mode).value();

  Result<std::string> exec_mode = StringField(object, "exec_mode", where, spec->exec_mode);
  if (!exec_mode.ok()) return exec_mode.error();
  if (exec_mode.value() != "interpreted" && exec_mode.value() != "compiled") {
    return Error{where + ".exec_mode: expected 'interpreted' or 'compiled'; got '" +
                 exec_mode.value() + "'"};
  }
  spec->exec_mode = std::move(exec_mode).value();

  return true;
}

Result<BatchManifest> ParseBatchManifest(const std::string& text) {
  Result<Json> doc = Json::Parse(text);
  if (!doc.ok()) {
    return Error{"manifest: " + doc.error().ToString()};
  }
  if (!doc.value().is_object()) {
    return Error{"manifest: top level must be an object"};
  }
  BatchManifest manifest;

  if (const Json* service = doc.value().Find("service"); service != nullptr) {
    if (!service->is_object()) {
      return Error{"manifest.service: expected an object"};
    }
    for (const auto& [key, value] : service->Members()) {
      if (key != "concurrency" && key != "max_pending" && key != "cache_capacity" &&
          key != "cache_shards" && key != "cache_file" && key != "metrics") {
        return Error{"manifest.service: unknown key '" + key + "'"};
      }
    }
    Result<std::int64_t> concurrency =
        IntField(*service, "concurrency", "manifest.service", manifest.service.concurrency);
    if (!concurrency.ok()) return concurrency.error();
    if (concurrency.value() < 0) {
      return Error{"manifest.service.concurrency: must be >= 0 (0 = hardware threads)"};
    }
    manifest.service.concurrency = static_cast<int>(concurrency.value());

    Result<std::int64_t> max_pending =
        IntField(*service, "max_pending", "manifest.service", manifest.service.max_pending);
    if (!max_pending.ok()) return max_pending.error();
    if (max_pending.value() < 0) {
      return Error{"manifest.service.max_pending: must be >= 0"};
    }
    manifest.service.max_pending = static_cast<int>(max_pending.value());

    Result<std::int64_t> capacity =
        IntField(*service, "cache_capacity", "manifest.service",
                 static_cast<std::int64_t>(manifest.service.cache_capacity));
    if (!capacity.ok()) return capacity.error();
    if (capacity.value() < 1) {
      return Error{"manifest.service.cache_capacity: must be >= 1"};
    }
    manifest.service.cache_capacity = static_cast<std::size_t>(capacity.value());

    Result<std::int64_t> shards = IntField(*service, "cache_shards", "manifest.service",
                                           manifest.service.cache_shards);
    if (!shards.ok()) return shards.error();
    if (shards.value() < 1) {
      return Error{"manifest.service.cache_shards: must be >= 1"};
    }
    manifest.service.cache_shards = static_cast<int>(shards.value());

    Result<std::string> cache_file = StringField(*service, "cache_file", "manifest.service",
                                                 manifest.service.cache_file);
    if (!cache_file.ok()) return cache_file.error();
    manifest.service.cache_file = std::move(cache_file).value();

    // Opt-in metrics block in the batch report. Default off: the report's
    // JSON shape (and byte content with a pinned cache) predates this flag.
    Result<bool> metrics = BoolField(*service, "metrics", "manifest.service",
                                     manifest.service.report_metrics);
    if (!metrics.ok()) return metrics.error();
    manifest.service.report_metrics = metrics.value();
  }

  CheckJobSpec defaults;
  if (const Json* default_fields = doc.value().Find("defaults"); default_fields != nullptr) {
    if (!default_fields->is_object()) {
      return Error{"manifest.defaults: expected an object"};
    }
    Result<bool> applied = ApplyManifestJobFields(*default_fields, "manifest.defaults", &defaults,
                                                  JobFieldSource::kLocalManifest);
    if (!applied.ok()) return applied.error();
  }

  const Json* jobs = doc.value().Find("jobs");
  if (jobs == nullptr || !jobs->is_array()) {
    return Error{"manifest.jobs: expected an array of job objects"};
  }
  for (std::size_t i = 0; i < jobs->Items().size(); ++i) {
    const Json& entry = jobs->Items()[i];
    const std::string where = "manifest.jobs[" + std::to_string(i) + "]";
    if (!entry.is_object()) {
      return Error{where + ": expected an object"};
    }
    CheckJobSpec spec = defaults;
    Result<bool> applied =
        ApplyManifestJobFields(entry, where, &spec, JobFieldSource::kLocalManifest);
    if (!applied.ok()) return applied.error();
    if (spec.id.empty()) {
      spec.id = "job-" + std::to_string(i);
    }
    manifest.jobs.push_back(std::move(spec));
  }
  return manifest;
}

Json JobResultToJson(const JobResult& job) {
  Json entry = Json::MakeObject();
  entry.Set("id", Json::MakeString(job.id));
  entry.Set("status", Json::MakeString(JobStatusName(job.status)));
  entry.Set("exit_code", Json::MakeInt(job.exit_code));
  entry.Set("from_cache", Json::MakeBool(job.from_cache));
  entry.Set("cache_key", Json::MakeString(job.cache_key));
  entry.Set("evaluated", Json::MakeInt(static_cast<std::int64_t>(job.evaluated)));
  entry.Set("total", Json::MakeInt(static_cast<std::int64_t>(job.total)));
  entry.Set("wall_ms", Json::MakeDouble(job.wall_ms));
  if (!job.error.empty()) {
    entry.Set("error", Json::MakeString(job.error));
  }
  entry.Set("report", Json::MakeString(job.report));
  return entry;
}

Json CheckJobSpecToJson(const CheckJobSpec& spec) {
  Json object = Json::MakeObject();
  if (!spec.id.empty()) {
    object.Set("id", Json::MakeString(spec.id));
  }
  object.Set("checker", Json::MakeString(CheckerKindName(spec.checker)));
  object.Set("program", Json::MakeString(spec.program_text));
  const auto var_set_array = [](const VarSet& set) {
    Json array = Json::MakeArray();
    set.ForEachIndex([&array](int index) { array.Append(Json::MakeInt(index)); });
    return array;
  };
  object.Set("allow", var_set_array(spec.allow));
  object.Set("allow2", var_set_array(spec.allow2));
  object.Set("mechanism", Json::MakeString(spec.mechanism));
  object.Set("mechanism2", Json::MakeString(spec.mechanism2));
  Json grid = Json::MakeObject();
  grid.Set("lo", Json::MakeInt(spec.grid_lo));
  grid.Set("hi", Json::MakeInt(spec.grid_hi));
  object.Set("grid", std::move(grid));
  object.Set("observe_time", Json::MakeBool(spec.observe_time));
  object.Set("threads", Json::MakeInt(spec.num_threads));
  object.Set("deadline_ms", Json::MakeInt(spec.deadline_ms));
  object.Set("priority", Json::MakeInt(spec.priority));
  object.Set("fault_spec", Json::MakeString(spec.fault_spec));
  object.Set("retries", Json::MakeInt(spec.retries));
  // Emitted only when non-default, so point-mode spec renderings (and every
  // golden fixture that predates sweep modes) keep their exact bytes. The
  // round-trip still holds: an absent key leaves the default "point".
  if (spec.sweep_mode != "point") {
    object.Set("sweep_mode", Json::MakeString(spec.sweep_mode));
  }
  if (spec.exec_mode != "interpreted") {
    object.Set("exec_mode", Json::MakeString(spec.exec_mode));
  }
  return object;
}

Json BatchReportToJson(const BatchReport& report) {
  Json jobs = Json::MakeArray();
  for (const JobResult& job : report.jobs) {
    jobs.Append(JobResultToJson(job));
  }

  const BatchStats& stats = report.stats;
  Json scheduler = Json::MakeObject();
  scheduler.Set("submitted", Json::MakeInt(stats.submitted));
  scheduler.Set("admitted", Json::MakeInt(stats.admitted));
  scheduler.Set("rejected", Json::MakeInt(stats.rejected));
  scheduler.Set("invalid", Json::MakeInt(stats.invalid));
  scheduler.Set("executed", Json::MakeInt(stats.executed));
  scheduler.Set("cache_hits", Json::MakeInt(stats.cache_hits));
  scheduler.Set("completed", Json::MakeInt(stats.completed));
  scheduler.Set("deadline_exceeded", Json::MakeInt(stats.deadline_exceeded));
  scheduler.Set("aborted", Json::MakeInt(stats.aborted));
  scheduler.Set("wall_ms", Json::MakeDouble(stats.wall_ms));

  Json cache = Json::MakeObject();
  cache.Set("hits", Json::MakeInt(static_cast<std::int64_t>(stats.cache.hits)));
  cache.Set("misses", Json::MakeInt(static_cast<std::int64_t>(stats.cache.misses)));
  cache.Set("insertions", Json::MakeInt(static_cast<std::int64_t>(stats.cache.insertions)));
  cache.Set("evictions", Json::MakeInt(static_cast<std::int64_t>(stats.cache.evictions)));
  cache.Set("entries", Json::MakeInt(static_cast<std::int64_t>(stats.cache.entries)));
  cache.Set("preloaded", Json::MakeInt(stats.cache_preloaded));
  if (!stats.cache_load_error.empty()) {
    cache.Set("load_error", Json::MakeString(stats.cache_load_error));
  }

  Json doc = Json::MakeObject();
  doc.Set("jobs", std::move(jobs));
  doc.Set("scheduler", std::move(scheduler));
  doc.Set("cache", std::move(cache));
  if (report.metrics.is_object()) {
    doc.Set("metrics", report.metrics);
  }
  doc.Set("exit_code", Json::MakeInt(report.ExitCode()));
  return doc;
}

}  // namespace secpol
