#include "src/service/service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <numeric>
#include <utility>

#include "src/util/thread_pool.h"

namespace secpol {

int BatchReport::ExitCode() const {
  int worst = 0;
  for (const JobResult& job : jobs) {
    worst = std::max(worst, job.exit_code);
  }
  return worst;
}

CheckService::CheckService(ServiceConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_capacity, config_.cache_shards),
      class_memo_(config_.class_memo_capacity) {
  obs_ = config_.obs;
  if (config_.report_metrics && obs_.metrics == nullptr) {
    own_metrics_ = std::make_unique<MetricsRegistry>();
    obs_.metrics = own_metrics_.get();
  }
  cache_.AttachObs(obs_);
  if (!config_.cache_file.empty()) {
    Result<int> loaded = cache_.LoadFromFile(config_.cache_file);
    if (loaded.ok()) {
      cache_preloaded_ = loaded.value();
    } else {
      // A corrupt or truncated persistence file degrades to a cold start;
      // the reason is surfaced in every batch report's stats.
      cache_load_error_ = loaded.error().message;
    }
  }
}

CheckService::~CheckService() {
  if (!config_.cache_file.empty()) {
    // Best effort on shutdown — but a failure is never silent: it shows up
    // on stderr and in the cache.persist_failures counter (bumped inside
    // SaveToFile), so a cache that quietly stays cold is diagnosable.
    Result<int> saved = cache_.SaveToFile(config_.cache_file);
    if (!saved.ok()) {
      std::fprintf(stderr, "secpol: failed to persist result cache to '%s': %s\n",
                   config_.cache_file.c_str(), saved.error().message.c_str());
    }
  }
}

Result<int> CheckService::PersistCache() const {
  if (config_.cache_file.empty()) {
    return 0;
  }
  return cache_.SaveToFile(config_.cache_file);
}

BatchReport CheckService::RunBatch(const std::vector<CheckJobSpec>& specs) {
  const auto batch_start = std::chrono::steady_clock::now();
  ScopedSpan batch_span(obs_.trace, "batch", "service");
  // Resolve the per-job histograms once; run_one must never take the
  // registry lock from inside the worker pool.
  Histogram* const queue_wait_us =
      obs_.metrics != nullptr ? obs_.metrics->GetHistogram("service.queue_wait_us") : nullptr;
  Histogram* const job_wall_us =
      obs_.metrics != nullptr ? obs_.metrics->GetHistogram("service.job_wall_us") : nullptr;
  BatchReport report;
  report.stats.submitted = static_cast<int>(specs.size());
  report.stats.cache_preloaded = cache_preloaded_;
  report.stats.cache_load_error = cache_load_error_;
  report.jobs.resize(specs.size());

  // Admission control. The queue bound is a per-batch backpressure limit:
  // everything past it is answered immediately with a distinct rejected
  // status instead of being queued without bound. Earlier submissions win —
  // rejection is by arrival order, not priority, so a flood of high-priority
  // work cannot starve jobs that were already accepted.
  const std::size_t bound =
      config_.max_pending <= 0 ? 0 : static_cast<std::size_t>(config_.max_pending);
  std::vector<std::size_t> admitted;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (i < bound) {
      admitted.push_back(i);
      continue;
    }
    JobResult& rejected = report.jobs[i];
    rejected.id = specs[i].id;
    rejected.status = JobStatus::kRejected;
    rejected.exit_code = 5;
    rejected.error = "rejected: batch queue bound " + std::to_string(bound) +
                     " exceeded (job " + std::to_string(i + 1) + " of " +
                     std::to_string(specs.size()) + ")";
    ++report.stats.rejected;
  }
  report.stats.admitted = static_cast<int>(admitted.size());

  // Validate every admitted spec up front; only valid jobs are scheduled.
  std::vector<std::optional<PreparedJob>> prepared(specs.size());
  std::vector<std::size_t> runnable;
  for (std::size_t i : admitted) {
    Result<PreparedJob> job = PrepareJob(specs[i]);
    if (!job.ok()) {
      JobResult& invalid = report.jobs[i];
      invalid.id = specs[i].id;
      invalid.status = JobStatus::kInvalid;
      invalid.exit_code = 1;
      invalid.error = job.error().message;
      ++report.stats.invalid;
      continue;
    }
    prepared[i] = std::move(job).value();
    runnable.push_back(i);
  }

  // Schedule by (priority desc, submission index asc). With one worker this
  // is the exact execution order; with several it is the dispatch order.
  std::stable_sort(runnable.begin(), runnable.end(), [&](std::size_t a, std::size_t b) {
    return specs[a].priority > specs[b].priority;
  });

  auto run_one = [&](std::size_t i) {
    const CheckJobSpec& spec = specs[i];
    const PreparedJob& job = *prepared[i];
    JobResult& slot = report.jobs[i];
    // Queue wait: dispatch-to-start, i.e. how long the job sat behind the
    // batch's other work before a worker picked it up.
    const auto job_start = std::chrono::steady_clock::now();
    if (queue_wait_us != nullptr) {
      queue_wait_us->Record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(job_start - batch_start)
              .count()));
    }
    const std::int64_t trace_start_us = obs_.trace != nullptr ? obs_.trace->NowMicros() : 0;
    if (std::optional<CachedResult> hit = cache_.Lookup(job.key); hit.has_value()) {
      slot.id = spec.id;
      slot.status = JobStatus::kCompleted;
      slot.from_cache = true;
      slot.report = std::move(hit->report);
      slot.exit_code = hit->exit_code;
      slot.evaluated = hit->evaluated;
      slot.total = hit->total;
      slot.cache_key = job.key.ToHex();
    } else {
      slot = RunPreparedJob(spec, job, obs_, &class_memo_);
      if (slot.status == JobStatus::kCompleted) {
        CachedResult value;
        value.report = slot.report;
        value.exit_code = slot.exit_code;
        value.evaluated = slot.evaluated;
        value.total = slot.total;
        cache_.Insert(job.key, std::move(value));
      }
    }
    if (job_wall_us != nullptr) {
      job_wall_us->Record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - job_start)
              .count()));
    }
    if (obs_.trace != nullptr) {
      Json args = Json::MakeObject();
      args.Set("id", Json::MakeString(slot.id));
      args.Set("status", Json::MakeString(JobStatusName(slot.status)));
      args.Set("from_cache", Json::MakeBool(slot.from_cache));
      obs_.trace->AddComplete("job " + slot.id, "service", trace_start_us,
                              obs_.trace->NowMicros() - trace_start_us, std::move(args));
    }
  };

  const int workers = config_.concurrency == 0 ? ThreadPool::HardwareThreads()
                                               : std::max(config_.concurrency, 1);
  if (workers <= 1 || runnable.size() <= 1) {
    for (std::size_t i : runnable) {
      run_one(i);
    }
  } else {
    ThreadPool pool(std::min<int>(workers, static_cast<int>(runnable.size())));
    for (std::size_t i : runnable) {
      pool.Submit([&run_one, i] { run_one(i); });
    }
    pool.Wait();
  }

  for (std::size_t i : runnable) {
    const JobResult& job = report.jobs[i];
    if (job.from_cache) {
      ++report.stats.cache_hits;
    } else {
      ++report.stats.executed;
    }
    switch (job.status) {
      case JobStatus::kCompleted:
        ++report.stats.completed;
        break;
      case JobStatus::kDeadlineExceeded:
        ++report.stats.deadline_exceeded;
        break;
      case JobStatus::kAborted:
        ++report.stats.aborted;
        break;
      case JobStatus::kRejected:
      case JobStatus::kInvalid:
        break;  // counted at admission/validation time
    }
  }
  report.stats.cache = cache_.Stats();
  report.stats.wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - batch_start)
                             .count();
  if (obs_.metrics != nullptr) {
    MetricsRegistry& m = *obs_.metrics;
    const auto add = [&m](const char* name, int count) {
      if (count > 0) {
        m.GetCounter(name)->Add(static_cast<std::uint64_t>(count));
      }
    };
    m.GetCounter("service.batches")->Add(1);
    add("service.submitted", report.stats.submitted);
    add("service.admitted", report.stats.admitted);
    add("service.rejected", report.stats.rejected);
    add("service.invalid", report.stats.invalid);
    add("service.executed", report.stats.executed);
    add("service.cache_hits", report.stats.cache_hits);
    add("service.completed", report.stats.completed);
    add("service.deadline_exceeded", report.stats.deadline_exceeded);
    add("service.aborted", report.stats.aborted);
    if (config_.report_metrics) {
      report.metrics = m.Snapshot();
    }
  }
  return report;
}

}  // namespace secpol
