#include "src/service/result_cache.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/util/json.h"

namespace secpol {

namespace {

constexpr int kPersistVersion = 1;

void Bump(Counter* counter, std::uint64_t delta = 1) {
  if (counter != nullptr && delta != 0) {
    counter->Add(delta);
  }
}

}  // namespace

ResultCache::ResultCache(std::size_t capacity, int num_shards) : capacity_(std::max<std::size_t>(capacity, 1)) {
  const std::size_t shards = std::clamp<std::size_t>(
      static_cast<std::size_t>(std::max(num_shards, 1)), 1, capacity_);
  // Floor division keeps the sum of shard budgets within the global
  // capacity (shards is clamped to capacity, so the quotient is >= 1).
  per_shard_capacity_ = capacity_ / shards;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void ResultCache::AttachObs(const ObsContext& obs) {
  if (obs.metrics == nullptr) {
    return;
  }
  MetricsRegistry& m = *obs.metrics;
  obs_hits_ = m.GetCounter("cache.hits");
  obs_misses_ = m.GetCounter("cache.misses");
  obs_insertions_ = m.GetCounter("cache.insertions");
  obs_evictions_ = m.GetCounter("cache.evictions");
  obs_persist_attempts_ = m.GetCounter("cache.persist_attempts");
  obs_persist_failures_ = m.GetCounter("cache.persist_failures");
  obs_persisted_entries_ = m.GetCounter("cache.persisted_entries");
  obs_loaded_entries_ = m.GetCounter("cache.loaded_entries");
}

ResultCache::Shard& ResultCache::ShardFor(const Fingerprint& key) {
  // hi is already a murmur-mixed lane; any byte of it spreads uniformly.
  return *shards_[key.hi % shards_.size()];
}

std::optional<CachedResult> ResultCache::Lookup(const Fingerprint& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.stats.misses;
    Bump(obs_misses_);
    return std::nullopt;
  }
  ++shard.stats.hits;
  Bump(obs_hits_);
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void ResultCache::InsertLocked(Shard& shard, const Fingerprint& key, CachedResult value) {
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, std::move(value));
  shard.index.emplace(key, shard.lru.begin());
  ++shard.stats.insertions;
  Bump(obs_insertions_);
  while (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.stats.evictions;
    Bump(obs_evictions_);
  }
}

void ResultCache::Insert(const Fingerprint& key, CachedResult value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  InsertLocked(shard, key, std::move(value));
}

std::size_t ResultCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

CacheStats ResultCache::Stats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->stats;
    total.entries += shard->lru.size();
  }
  return total;
}

Result<int> ResultCache::LoadFromFile(const std::string& path) {
  std::ifstream stream(path, std::ios::binary);
  if (!stream) {
    return 0;  // no persisted cache yet: a cold start, not an error
  }
  std::stringstream buffer;
  buffer << stream.rdbuf();
  Result<Json> doc = Json::Parse(buffer.str());
  if (!doc.ok()) {
    return Error{"cache file '" + path + "' is corrupt: " + doc.error().ToString()};
  }
  const Json* version = doc.value().Find("version");
  if (version == nullptr || !version->is_int() || version->AsInt() != kPersistVersion) {
    return Error{"cache file '" + path + "' has unsupported version"};
  }
  const Json* entries = doc.value().Find("entries");
  if (entries == nullptr || !entries->is_array()) {
    return Error{"cache file '" + path + "' has no entries array"};
  }
  int loaded = 0;
  for (const Json& entry : entries->Items()) {
    const Json* key = entry.Find("key");
    const Json* report = entry.Find("report");
    const Json* exit_code = entry.Find("exit_code");
    const Json* evaluated = entry.Find("evaluated");
    const Json* total = entry.Find("total");
    if (key == nullptr || !key->is_string() || report == nullptr || !report->is_string() ||
        exit_code == nullptr || !exit_code->is_int() || evaluated == nullptr ||
        !evaluated->is_int() || total == nullptr || !total->is_int()) {
      return Error{"cache file '" + path + "' entry " + std::to_string(loaded) +
                   " is malformed"};
    }
    const std::optional<Fingerprint> fp = Fingerprint::FromHex(key->AsString());
    if (!fp.has_value()) {
      return Error{"cache file '" + path + "' entry " + std::to_string(loaded) +
                   " has a bad key"};
    }
    CachedResult value;
    value.report = report->AsString();
    value.exit_code = static_cast<int>(exit_code->AsInt());
    value.evaluated = static_cast<std::uint64_t>(evaluated->AsInt());
    value.total = static_cast<std::uint64_t>(total->AsInt());
    Insert(*fp, std::move(value));
    ++loaded;
  }
  Bump(obs_loaded_entries_, static_cast<std::uint64_t>(loaded));
  return loaded;
}

Result<int> ResultCache::SaveToFile(const std::string& path) const {
  Json entries = Json::MakeArray();
  int count = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [key, value] : shard->lru) {
      Json entry = Json::MakeObject();
      entry.Set("key", Json::MakeString(key.ToHex()));
      entry.Set("report", Json::MakeString(value.report));
      entry.Set("exit_code", Json::MakeInt(value.exit_code));
      entry.Set("evaluated", Json::MakeInt(static_cast<std::int64_t>(value.evaluated)));
      entry.Set("total", Json::MakeInt(static_cast<std::int64_t>(value.total)));
      entries.Append(std::move(entry));
      ++count;
    }
  }
  Json doc = Json::MakeObject();
  doc.Set("version", Json::MakeInt(kPersistVersion));
  doc.Set("entries", std::move(entries));

  Bump(obs_persist_attempts_);
  // The temp name must be unique per writer: two caches saving to the same
  // path concurrently (or two processes) would otherwise interleave writes
  // into one ".tmp" file and rename a torn mixture into place. pid + a
  // process-wide sequence number keeps every writer on its own file; the
  // rename then atomically publishes whichever finished last, intact.
  static std::atomic<std::uint64_t> tmp_seq{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(tmp_seq.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      Bump(obs_persist_failures_);
      return Error{"cannot write cache file '" + tmp + "'"};
    }
    out << doc.Serialize() << "\n";
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      Bump(obs_persist_failures_);
      return Error{"write to cache file '" + tmp + "' failed"};
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    Bump(obs_persist_failures_);
    return Error{"cannot rename cache file into place at '" + path + "'"};
  }
  Bump(obs_persisted_entries_, static_cast<std::uint64_t>(count));
  return count;
}

}  // namespace secpol
