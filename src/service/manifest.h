// JSON boundary of the batch service: manifest in, batch report out.
//
// A manifest is one JSON object:
//
//   {
//     "service": {                      // optional; ServiceConfig knobs
//       "concurrency": 2, "max_pending": 64,
//       "cache_capacity": 1024, "cache_shards": 8,
//       "cache_file": "secpol_cache.json",
//       "metrics": true                 // opt-in "metrics" report block
//     },
//     "defaults": { ... },              // optional; any per-job field
//     "jobs": [
//       {
//         "id": "logon-soundness",      // optional label
//         "checker": "soundness",       // soundness|integrity|completeness|
//                                       //   maximal|policy-compare|leak
//         "program": "program p(a,b) { y = a; }",   // flowlang source, or
//         "program_file": "path/to/p.fl",           // read at parse time
//         "allow": [0],                 // released input coordinates
//         "allow2": [0, 1],             // policy-compare only
//         "mechanism": "surveillance",  // surveillance|mprime|highwater|
//                                       //   bare|static|residual
//         "mechanism2": "bare",         // completeness only
//         "grid": {"lo": -1, "hi": 2},
//         "observe_time": false,
//         "threads": 1, "deadline_ms": 0, "priority": 0,
//         "fault_spec": "", "retries": -1,
//         "sweep_mode": "point"         // point|class (DESIGN.md §14)
//       }
//     ]
//   }
//
// Parsing is strict: unknown keys, wrong types, and out-of-range values are
// errors naming the offending job and field, so a typo cannot silently
// select a default.

#ifndef SECPOL_SRC_SERVICE_MANIFEST_H_
#define SECPOL_SRC_SERVICE_MANIFEST_H_

#include <string>
#include <vector>

#include "src/service/service.h"
#include "src/util/json.h"
#include "src/util/result.h"

namespace secpol {

struct BatchManifest {
  ServiceConfig service;
  std::vector<CheckJobSpec> jobs;
};

// Parses a manifest document. `text` is the raw JSON.
Result<BatchManifest> ParseBatchManifest(const std::string& text);

// Who authored the job object. Local manifests are written by whoever runs
// the process and may reference files ("program_file" loads server-side at
// parse time); socket submissions are adversary input crossing a trust
// boundary and must never be able to read the daemon's filesystem, so the
// key itself is rejected there.
enum class JobFieldSource { kLocalManifest, kUntrustedSubmission };

// Applies one job object's fields over `spec` with manifest-grade strictness
// (unknown keys, wrong types and out-of-range values are errors naming
// `where`). This is the single job-vocabulary entry point: manifest
// "defaults", manifest "jobs[i]" entries, and serve-daemon submit frames all
// validate through it, so a job means the same thing on every path — except
// "program_file", which only a kLocalManifest source may use.
Result<bool> ApplyManifestJobFields(const Json& object, const std::string& where,
                                    CheckJobSpec* spec, JobFieldSource source);

// Renders one job result exactly as it appears in a batch report's "jobs"
// array. The serve daemon's result frames reuse this renderer, which is what
// makes the serve ≡ batch byte-identity contract hold by construction.
Json JobResultToJson(const JobResult& job);

// Renders a spec as a manifest-vocabulary job object (the inverse of
// ApplyManifestJobFields up to defaults). Round-trips: applying the rendered
// object onto a default spec reproduces the original. Used by the scenario
// runner and fuzzer to ship generated jobs over the serve socket.
Json CheckJobSpecToJson(const CheckJobSpec& spec);

// Renders a batch report as a JSON document (per-job results in submission
// order plus scheduler and cache stats).
Json BatchReportToJson(const BatchReport& report);

}  // namespace secpol

#endif  // SECPOL_SRC_SERVICE_MANIFEST_H_
