#include "src/service/job.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/channels/timing.h"
#include "src/flowlang/lower.h"
#include "src/flowlang/parser.h"
#include "src/mechanism/check_options.h"
#include "src/mechanism/classes.h"
#include "src/mechanism/completeness.h"
#include "src/mechanism/fault.h"
#include "src/mechanism/integrity.h"
#include "src/mechanism/outcome.h"
#include "src/mechanism/outcome_table.h"
#include "src/mechanism/policy_compare.h"
#include "src/mechanism/soundness.h"
#include "src/service/audit.h"
#include "src/staticflow/static_mechanisms.h"
#include "src/surveillance/compiled.h"
#include "src/surveillance/surveillance.h"

namespace secpol {

namespace {

// Exit-code vocabulary shared with `secpol check` (PR 2): 0 clean verdict,
// 2 failed verdict / genuine witness, 3 deadline without witness, 4 aborted.
int ExitForProgress(const CheckProgress& progress, bool clean_verdict, bool witness) {
  switch (progress.status) {
    case CheckStatus::kCompleted:
      return clean_verdict ? 0 : 2;
    case CheckStatus::kDeadlineExceeded:
      return witness ? 2 : 3;
    case CheckStatus::kAborted:
      return 4;
  }
  return 4;
}

JobStatus StatusForProgress(const CheckProgress& progress) {
  switch (progress.status) {
    case CheckStatus::kCompleted:
      return JobStatus::kCompleted;
    case CheckStatus::kDeadlineExceeded:
      return JobStatus::kDeadlineExceeded;
    case CheckStatus::kAborted:
      return JobStatus::kAborted;
  }
  return JobStatus::kAborted;
}

// The audit job's status and exit code are the worst of its six sections',
// each section judged exactly as its standalone job would be.
JobStatus WorstAuditStatus(const AuditReport& audit) {
  JobStatus worst = JobStatus::kCompleted;
  const auto fold = [&worst](const CheckProgress& progress) {
    const JobStatus status = StatusForProgress(progress);
    if (static_cast<int>(status) > static_cast<int>(worst)) {
      worst = status;
    }
  };
  fold(audit.soundness.progress);
  fold(audit.integrity.progress);
  fold(audit.completeness.progress);
  fold(audit.maximal.progress);
  fold(audit.policy_compare.progress);
  fold(audit.leak.progress);
  return worst;
}

int WorstAuditExit(const AuditReport& audit) {
  const bool leaky = audit.leak.leaky_classes > 0;
  int worst = 0;
  for (const int code :
       {ExitForProgress(audit.soundness.progress, audit.soundness.sound,
                        audit.soundness.counterexample.has_value()),
        ExitForProgress(audit.integrity.progress, audit.integrity.preserved,
                        audit.integrity.counterexample.has_value()),
        ExitForProgress(audit.completeness.progress, /*clean_verdict=*/true,
                        /*witness=*/false),
        ExitForProgress(audit.maximal.progress, /*clean_verdict=*/true, /*witness=*/false),
        ExitForProgress(audit.policy_compare.progress, audit.policy_compare.reveals_at_most,
                        audit.policy_compare.violation_found),
        ExitForProgress(audit.leak.progress, !leaky, leaky)}) {
    worst = std::max(worst, code);
  }
  return worst;
}

std::string Header(const std::string& subject, const std::string& relation,
                   const std::string& object, const InputDomain& domain,
                   std::optional<Observability> obs) {
  std::string out = subject + " " + relation + " " + object + " over " + domain.ToString();
  if (obs.has_value()) {
    out += " [" + std::string(ObservabilityName(*obs)) + "]";
  }
  out += ":\n";
  return out;
}

}  // namespace

std::string CheckerKindName(CheckerKind kind) {
  switch (kind) {
    case CheckerKind::kSoundness:
      return "soundness";
    case CheckerKind::kIntegrity:
      return "integrity";
    case CheckerKind::kCompleteness:
      return "completeness";
    case CheckerKind::kMaximal:
      return "maximal";
    case CheckerKind::kPolicyCompare:
      return "policy-compare";
    case CheckerKind::kLeak:
      return "leak";
    case CheckerKind::kAudit:
      return "audit";
  }
  return "unknown";
}

std::optional<CheckerKind> ParseCheckerKind(const std::string& name) {
  for (CheckerKind kind :
       {CheckerKind::kSoundness, CheckerKind::kIntegrity, CheckerKind::kCompleteness,
        CheckerKind::kMaximal, CheckerKind::kPolicyCompare, CheckerKind::kLeak,
        CheckerKind::kAudit}) {
    if (CheckerKindName(kind) == name) {
      return kind;
    }
  }
  return std::nullopt;
}

std::string JobStatusName(JobStatus status) {
  switch (status) {
    case JobStatus::kCompleted:
      return "completed";
    case JobStatus::kDeadlineExceeded:
      return "deadline exceeded";
    case JobStatus::kAborted:
      return "aborted";
    case JobStatus::kRejected:
      return "rejected";
    case JobStatus::kInvalid:
      return "invalid";
  }
  return "unknown";
}

std::unique_ptr<ProtectionMechanism> MakeMechanismKind(const std::string& kind,
                                                       const Program& program, VarSet allowed,
                                                       const std::string& exec_mode,
                                                       std::string* error) {
  // Under "compiled", the surveillance family swaps in the bytecode fast
  // path (a SurveillanceMechanism subclass: same name, same outcome
  // vocabulary, bit-identical behaviour by the differential suite). Kinds
  // without surveillance shadows have nothing to compile and keep their
  // usual objects, so their reports are identical across exec modes by
  // construction.
  const bool compiled = exec_mode == "compiled";
  const auto make_surveillance =
      [&](TimingMode timing,
          LabelDiscipline discipline) -> std::unique_ptr<SurveillanceMechanism> {
    if (compiled) {
      return std::make_unique<CompiledSurveillanceMechanism>(Program(program), allowed, timing,
                                                             discipline);
    }
    return std::make_unique<SurveillanceMechanism>(Program(program), allowed, timing,
                                                   discipline);
  };
  if (kind == "surveillance" || kind.empty()) {
    return make_surveillance(TimingMode::kTimeUnobservable, LabelDiscipline::kSurveillance);
  }
  if (kind == "mprime") {
    return make_surveillance(TimingMode::kTimeObservable, LabelDiscipline::kSurveillance);
  }
  if (kind == "highwater") {
    return make_surveillance(TimingMode::kTimeUnobservable, LabelDiscipline::kHighWater);
  }
  if (kind == "bare") {
    return std::make_unique<ProgramAsMechanism>(Program(program));
  }
  if (kind == "static") {
    return std::make_unique<StaticCertifiedMechanism>(Program(program), allowed);
  }
  if (kind == "residual") {
    return std::make_unique<ResidualGuardMechanism>(Program(program), allowed);
  }
  if (kind == "table") {
    // The surveillance mechanism tabulated over the canonical {-1..2}^k
    // grid. Checking it on a wider grid runs it outside the table and must
    // fail closed (OutOfDomainError -> kAborted), not kill the process.
    const InputDomain canonical = InputDomain::Range(program.num_inputs(), -1, 2);
    const std::optional<std::uint64_t> points = canonical.CheckedSize();
    constexpr std::uint64_t kMaxTablePoints = std::uint64_t{1} << 16;
    if (!points.has_value() || *points > kMaxTablePoints) {
      if (error != nullptr) {
        *error += "table mechanism: canonical grid too large to tabulate";
      }
      return nullptr;
    }
    const std::unique_ptr<SurveillanceMechanism> live =
        make_surveillance(TimingMode::kTimeUnobservable, LabelDiscipline::kSurveillance);
    auto table = std::make_unique<TableMechanism>("table(" + program.name() + ")",
                                                  program.num_inputs());
    canonical.ForEach([&](InputView input) {
      table->Set(Input(input.begin(), input.end()), live->Run(input));
    });
    return table;
  }
  if (error != nullptr) {
    *error += "unknown mechanism kind '" + kind + "'";
  }
  return nullptr;
}

Fingerprint JobCacheKey(const CheckJobSpec& spec, const Program& program,
                        const InputDomain& domain) {
  Fingerprinter fp;
  fp.Tag("check-job");
  fp.I32(1);  // cache-key format version; bump on any encoding change
  fp.I32(static_cast<int>(spec.checker));
  // The canonical *structure* of the lowered program, not the source text:
  // formatting-only edits to the flowlang source hit the same cache line.
  program.AppendFingerprint(&fp);
  fp.Tag("policy-allow");
  fp.U64(spec.allow.bits());
  fp.Tag("mechanism");
  fp.Str(spec.mechanism);
  fp.Tag("mechanism2");
  fp.Str(spec.mechanism2);
  fp.Tag("policy-allow2");
  fp.U64(spec.allow2.bits());
  // The exact grid, coordinate by coordinate (not just lo:hi — PerInput
  // domains must not collide with Range domains of the same corners).
  fp.Tag("grid");
  fp.I32(domain.num_inputs());
  for (int i = 0; i < domain.num_inputs(); ++i) {
    fp.I64List(domain.values_for(i));
  }
  fp.Bool(spec.observe_time);
  // Fault injection and the retry bound change what the checker observes,
  // so they are part of the job's identity. num_threads / deadline_ms /
  // priority are deliberately absent: the engine's determinism contract
  // makes a *completed* report independent of all three, and only completed
  // runs are cached (see DESIGN.md §9).
  fp.Tag("faults");
  fp.Str(spec.fault_spec);
  fp.I32(spec.retries);
  // Sweep-mode sub-key. "point" contributes NOTHING — every cache key minted
  // before sweep modes existed stays byte-identical (golden-pinned). "class"
  // gets its own cache line even though a completed class report is
  // byte-identical to the point report: the identity is a tested theorem,
  // not an assumption the cache is allowed to bank on, and keeping the lines
  // separate means a regression in the class path can never serve bytes to a
  // point-mode caller.
  if (spec.sweep_mode != "point") {
    fp.Tag("sweep-mode");
    fp.Str(spec.sweep_mode);
  }
  // Exec-mode sub-key, same philosophy: "interpreted" contributes NOTHING
  // (pre-existing cache keys stay byte-identical), and "compiled" gets its
  // own cache line so that a regression in the compiled path can never
  // serve bytes to an interpreted caller even though completed reports are
  // identical by the differential theorem.
  if (spec.exec_mode != "interpreted") {
    fp.Tag("exec-mode");
    fp.Str(spec.exec_mode);
  }
  return fp.Digest();
}

Fingerprint ClassMemoContextKey(const CheckJobSpec& spec, const Program& program,
                                const InputDomain& domain, const std::string& mechanism_kind) {
  Fingerprinter fp;
  fp.Tag("class-memo-context");
  fp.I32(1);  // memo-context format version
  fp.Str(mechanism_kind);
  // The allow set parameterizes every mechanism kind except "bare" (which
  // never consults a policy). Excluding it for bare lets entries survive a
  // policy edit, which is exactly when incremental recheck pays off.
  if (mechanism_kind != "bare" && !mechanism_kind.empty()) {
    fp.Tag("allow");
    fp.U64(spec.allow.bits());
  }
  // The exact grid: FaultInjectingMechanism fires by the input's grid RANK,
  // so the same representative tuple can fault differently on a different
  // grid. Same coordinate-by-coordinate encoding as JobCacheKey.
  fp.Tag("grid");
  fp.I32(domain.num_inputs());
  for (int i = 0; i < domain.num_inputs(); ++i) {
    fp.I64List(domain.values_for(i));
  }
  fp.Tag("faults");
  fp.Str(spec.fault_spec);
  fp.I32(spec.retries);
  // The program's SKELETON only — box contents are deliberately absent.
  // They are revalidated per lookup via TouchedBoxDigest, which is what lets
  // a program edit outside the executed boxes reuse the entry.
  fp.Nested(program.DigestTree().skeleton);
  // Exec-mode sub-key (mirrors JobCacheKey): compiled representatives get
  // their own memo lines, so a compiled-path regression can never feed a
  // memoized outcome to an interpreted job.
  if (spec.exec_mode != "interpreted") {
    fp.Tag("exec-mode");
    fp.Str(spec.exec_mode);
  }
  return fp.Digest();
}

Result<PreparedJob> PrepareJob(const CheckJobSpec& spec) {
  Result<SourceProgram> parsed = ParseProgram(spec.program_text);
  if (!parsed.ok()) {
    return Error{"program: " + parsed.error().ToString()};
  }
  Program program = Lower(parsed.value());
  const int num_inputs = program.num_inputs();
  const VarSet inputs = VarSet::FirstN(num_inputs);
  if (!spec.allow.SubsetOf(inputs)) {
    return Error{"allow: index out of range for " + std::to_string(num_inputs) + " inputs"};
  }
  if ((spec.checker == CheckerKind::kPolicyCompare || spec.checker == CheckerKind::kAudit) &&
      !spec.allow2.SubsetOf(inputs)) {
    return Error{"allow2: index out of range for " + std::to_string(num_inputs) + " inputs"};
  }
  if (spec.grid_lo > spec.grid_hi) {
    return Error{"grid: lo " + std::to_string(spec.grid_lo) + " exceeds hi " +
                 std::to_string(spec.grid_hi)};
  }
  const Result<int> threads = ValidateThreads(spec.num_threads);
  if (!threads.ok()) {
    return Error{"threads: " + threads.error().message};
  }
  if (spec.deadline_ms < 0) {
    return Error{"deadline_ms: must be >= 0 (0 = unbounded); got " +
                 std::to_string(spec.deadline_ms)};
  }
  if (spec.retries >= 0) {
    const Result<int> retries = ValidateRetries(spec.retries);
    if (!retries.ok()) {
      return Error{"retries: " + retries.error().message};
    }
  }
  if (spec.sweep_mode != "point" && spec.sweep_mode != "class") {
    return Error{"sweep_mode: must be 'point' or 'class'; got '" + spec.sweep_mode + "'"};
  }
  if (spec.exec_mode != "interpreted" && spec.exec_mode != "compiled") {
    return Error{"exec_mode: must be 'interpreted' or 'compiled'; got '" + spec.exec_mode +
                 "'"};
  }
  std::string mech_error;
  if (MakeMechanismKind(spec.mechanism, program, spec.allow, spec.exec_mode, &mech_error) ==
      nullptr) {
    return Error{"mechanism: " + mech_error};
  }
  if (spec.checker == CheckerKind::kCompleteness || spec.checker == CheckerKind::kAudit) {
    mech_error.clear();
    if (MakeMechanismKind(spec.mechanism2, program, spec.allow, spec.exec_mode, &mech_error) ==
        nullptr) {
      return Error{"mechanism2: " + mech_error};
    }
  }
  if (!spec.fault_spec.empty()) {
    Result<std::vector<FaultSpec>> faults = ParseFaultSpecs(spec.fault_spec);
    if (!faults.ok()) {
      return Error{"fault_spec: " + faults.error().ToString()};
    }
  }
  InputDomain domain = InputDomain::Range(num_inputs, spec.grid_lo, spec.grid_hi);
  const Fingerprint key = JobCacheKey(spec, program, domain);
  return PreparedJob{std::move(program), std::move(domain), key};
}

std::string RenderMaximalReport(const MaximalSynthesis& synthesis) {
  std::string out;
  out += "inputs tabulated: " + std::to_string(synthesis.inputs) + "\n";
  out += "policy classes: " + std::to_string(synthesis.policy_classes) + ", released " +
         std::to_string(synthesis.released_classes) + "\n";
  if (synthesis.mechanism != nullptr) {
    out += "mechanism: " + synthesis.mechanism->name() + " (" +
           std::to_string(synthesis.mechanism->table_size()) + " table entries)\n";
  } else {
    out += "mechanism: none (fail-closed: tabulation incomplete)\n";
  }
  out += "progress: " + synthesis.progress.ToString();
  return out;
}

JobResult RunPreparedJob(const CheckJobSpec& spec, const PreparedJob& prepared,
                         const ObsContext& obs_ctx, ClassMemo* class_memo) {
  JobResult result;
  result.id = spec.id;
  result.cache_key = prepared.key.ToHex();
  result.total = prepared.domain.size();

  CheckOptions options;
  options.num_threads = spec.num_threads;
  options.obs = obs_ctx;
  if (spec.deadline_ms > 0) {
    options.deadline = Deadline::AfterMillis(spec.deadline_ms);
  }
  const Observability obs =
      spec.observe_time ? Observability::kValueAndTime : Observability::kValueOnly;

  // Build the checked mechanism and wrap it in the fault-injection /
  // bounded-retry layers exactly the way `secpol check` does, so the batch
  // service and the standalone CLI check the very same object.
  std::string error;
  auto wrap = [&](std::shared_ptr<const ProtectionMechanism> m)
      -> std::shared_ptr<const ProtectionMechanism> {
    if (!spec.fault_spec.empty()) {
      auto faults = ParseFaultSpecs(spec.fault_spec);
      m = std::make_shared<FaultInjectingMechanism>(std::move(m), prepared.domain,
                                                    std::move(faults).value());
    }
    if (spec.retries >= 0) {
      m = std::make_shared<RetryingMechanism>(std::move(m), spec.retries);
    }
    return m;
  };
  std::shared_ptr<const ProtectionMechanism> mechanism =
      MakeMechanismKind(spec.mechanism, prepared.program, spec.allow, spec.exec_mode, &error);
  if (mechanism == nullptr) {
    result.status = JobStatus::kInvalid;
    result.error = error;
    result.exit_code = 1;
    return result;
  }
  mechanism = wrap(std::move(mechanism));

  const AllowPolicy policy(prepared.program.num_inputs(), spec.allow);

  // Class sweep mode (DESIGN.md §14): partition the grid by the allow-policy
  // image once per job, and route every table-feedable checker through the
  // class-backed build. The partition is sound for EVERY checker — class
  // certification only relies on the representative's read set being
  // class-constant, never on what the partition means to the checker — so
  // one allow(J) partition serves soundness and completeness alike. When the
  // grid exceeds the table cap the job silently degrades to the point path
  // (same fallback the audit uses).
  ClassPartition partition;
  ProgramDigestTree digest_tree;
  ClassBuildStats class_stats;
  ClassSweepContext class_ctx;
  bool use_classes = false;
  if (spec.sweep_mode == "class") {
    const std::optional<std::uint64_t> grid_points = prepared.domain.CheckedSize();
    if (grid_points.has_value() && *grid_points <= OutcomeTable::kMaxPoints) {
      partition = BuildClassPartition(prepared.domain, policy);
    }
    if (!partition.empty()) {
      digest_tree = prepared.program.DigestTree();
      class_ctx.partition = &partition;
      class_ctx.program_tree = &digest_tree;
      class_ctx.stats = &class_stats;
      if (class_memo != nullptr) {
        class_ctx.memo = class_memo;
        class_ctx.memo_context =
            ClassMemoContextKey(spec, prepared.program, prepared.domain, spec.mechanism);
        class_ctx.memo_context2 =
            ClassMemoContextKey(spec, prepared.program, prepared.domain, spec.mechanism2);
      }
      use_classes = true;
    }
  }
  // One class-backed table per single-checker job. An incomplete build is
  // never consumed: the caller fails closed on the build's progress, exactly
  // as the audit does for its shared table.
  const auto class_table = [&](const ProtectionMechanism* second_mechanism,
                               const SecurityPolicy* table_policy) {
    OutcomeTableSources sources;
    sources.mechanism = mechanism.get();
    sources.mechanism2 = second_mechanism;
    sources.policy = table_policy;
    return BuildOutcomeTableWithClasses(sources, prepared.domain, class_ctx, options);
  };

  const auto start = std::chrono::steady_clock::now();
  switch (spec.checker) {
    case CheckerKind::kSoundness: {
      SoundnessReport report;
      if (use_classes) {
        const OutcomeTable table = class_table(nullptr, &policy);
        if (table.complete()) {
          report = CheckSoundness(table, obs, options);
        } else {
          report.sound = false;
          report.inputs_checked = table.build().evaluated;
          report.progress = table.build();
        }
      } else {
        report = CheckSoundness(*mechanism, policy, prepared.domain, obs, options);
      }
      result.report = Header(mechanism->name(), "for", policy.name(), prepared.domain, obs) +
                      report.ToString() + "\n";
      result.status = StatusForProgress(report.progress);
      result.exit_code =
          ExitForProgress(report.progress, report.sound, report.counterexample.has_value());
      result.evaluated = report.progress.evaluated;
      break;
    }
    case CheckerKind::kIntegrity: {
      IntegrityReport report;
      if (use_classes) {
        const OutcomeTable table = class_table(nullptr, &policy);
        if (table.complete()) {
          report = CheckInformationPreservation(table, obs, options);
        } else {
          report.preserved = false;
          report.inputs_checked = table.build().evaluated;
          report.progress = table.build();
        }
      } else {
        report = CheckInformationPreservation(*mechanism, policy, prepared.domain, obs, options);
      }
      result.report =
          Header(mechanism->name(), "preserving", policy.name(), prepared.domain, obs) +
          report.ToString() + "\n";
      result.status = StatusForProgress(report.progress);
      result.exit_code =
          ExitForProgress(report.progress, report.preserved, report.counterexample.has_value());
      result.evaluated = report.progress.evaluated;
      break;
    }
    case CheckerKind::kCompleteness: {
      std::shared_ptr<const ProtectionMechanism> second = MakeMechanismKind(
          spec.mechanism2, prepared.program, spec.allow, spec.exec_mode, &error);
      if (second == nullptr) {
        result.status = JobStatus::kInvalid;
        result.error = error;
        result.exit_code = 1;
        return result;
      }
      second = wrap(std::move(second));
      CompletenessStats stats;
      if (use_classes) {
        const OutcomeTable table = class_table(second.get(), nullptr);
        if (table.complete()) {
          stats = CompareCompleteness(table, options);
        } else {
          stats.progress = table.build();
        }
      } else {
        stats = CompareCompleteness(*mechanism, *second, prepared.domain, options);
      }
      result.report =
          Header(mechanism->name(), "vs", second->name(), prepared.domain, std::nullopt) +
          stats.ToString() + "\n";
      result.status = StatusForProgress(stats.progress);
      // A completeness comparison has no failing verdict; any completed
      // relation is a clean exit.
      result.exit_code = ExitForProgress(stats.progress, /*clean_verdict=*/true,
                                         /*witness=*/false);
      result.evaluated = stats.progress.evaluated;
      break;
    }
    case CheckerKind::kMaximal: {
      MaximalSynthesis synthesis;
      if (use_classes) {
        const OutcomeTable table = class_table(nullptr, &policy);
        if (table.complete()) {
          synthesis = SynthesizeMaximalMechanism(table, obs, options);
        } else {
          synthesis.inputs = table.build().evaluated;
          synthesis.progress = table.build();
        }
      } else {
        synthesis = SynthesizeMaximalMechanism(*mechanism, policy, prepared.domain, obs, options);
      }
      result.report = Header("maximal", "for", policy.name(), prepared.domain, obs) +
                      RenderMaximalReport(synthesis) + "\n";
      result.status = StatusForProgress(synthesis.progress);
      result.exit_code = ExitForProgress(synthesis.progress, /*clean_verdict=*/true,
                                         /*witness=*/false);
      result.evaluated = synthesis.progress.evaluated;
      break;
    }
    case CheckerKind::kPolicyCompare: {
      // Policy comparison never evaluates a mechanism, so the class sweep
      // has nothing to save it; it runs the live path in both sweep modes
      // (the reports are identical either way).
      const AllowPolicy second(prepared.program.num_inputs(), spec.allow2);
      const PolicyCompareReport report =
          ComparePolicyDisclosure(policy, second, prepared.domain, options);
      result.report = Header(policy.name(), "reveals-at-most", second.name(), prepared.domain,
                             std::nullopt) +
                      report.ToString() + "\n";
      result.status = StatusForProgress(report.progress);
      result.exit_code =
          ExitForProgress(report.progress, report.reveals_at_most, report.violation_found);
      result.evaluated = report.progress.evaluated;
      break;
    }
    case CheckerKind::kLeak: {
      LeakReport report;
      if (use_classes) {
        const OutcomeTable table = class_table(nullptr, &policy);
        if (table.complete()) {
          report = MeasureLeak(table, obs, options);
        } else {
          report.progress = table.build();
        }
      } else {
        report = MeasureLeak(*mechanism, policy, prepared.domain, obs, options);
      }
      result.report = Header(mechanism->name(), "for", policy.name(), prepared.domain, obs) +
                      report.ToString() + "\n";
      result.status = StatusForProgress(report.progress);
      // An incomplete run that already saw two outcomes in one class is a
      // genuine leak witness (capacity is a lower bound).
      const bool leaky = report.leaky_classes > 0;
      result.exit_code = ExitForProgress(report.progress, !leaky, leaky);
      result.evaluated = report.progress.evaluated;
      break;
    }
    case CheckerKind::kAudit: {
      std::shared_ptr<const ProtectionMechanism> second = MakeMechanismKind(
          spec.mechanism2, prepared.program, spec.allow, spec.exec_mode, &error);
      if (second == nullptr) {
        result.status = JobStatus::kInvalid;
        result.error = error;
        result.exit_code = 1;
        return result;
      }
      second = wrap(std::move(second));
      const AllowPolicy policy2(prepared.program.num_inputs(), spec.allow2);
      const AuditReport audit =
          CheckAll(*mechanism, *second, policy, policy2, prepared.domain, obs, options,
                   use_classes ? &class_ctx : nullptr);
      // Six sections, each rendered exactly as its standalone job would be —
      // the differential contract is "audit report == the concatenation of
      // the six standalone job reports".
      result.report =
          Header(mechanism->name(), "for", policy.name(), prepared.domain, obs) +
          audit.soundness.ToString() + "\n" +
          Header(mechanism->name(), "preserving", policy.name(), prepared.domain, obs) +
          audit.integrity.ToString() + "\n" +
          Header(mechanism->name(), "vs", second->name(), prepared.domain, std::nullopt) +
          audit.completeness.ToString() + "\n" +
          Header("maximal", "for", policy.name(), prepared.domain, obs) +
          RenderMaximalReport(audit.maximal) + "\n" +
          Header(policy.name(), "reveals-at-most", policy2.name(), prepared.domain,
                 std::nullopt) +
          audit.policy_compare.ToString() + "\n" +
          Header(mechanism->name(), "for", policy.name(), prepared.domain, obs) +
          audit.leak.ToString() + "\n";
      result.status = WorstAuditStatus(audit);
      result.exit_code = WorstAuditExit(audit);
      result.evaluated = audit.EvaluatedPoints();
      break;
    }
  }
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

JobResult ExecuteJob(const CheckJobSpec& spec, const ObsContext& obs, ClassMemo* class_memo) {
  Result<PreparedJob> prepared = PrepareJob(spec);
  if (!prepared.ok()) {
    JobResult result;
    result.id = spec.id;
    result.status = JobStatus::kInvalid;
    result.error = prepared.error().message;
    result.exit_code = 1;
    return result;
  }
  return RunPreparedJob(spec, prepared.value(), obs, class_memo);
}

std::vector<CheckJobSpec> AuditSectionSpecs(const CheckJobSpec& audit) {
  std::vector<CheckJobSpec> specs;
  for (CheckerKind kind :
       {CheckerKind::kSoundness, CheckerKind::kIntegrity, CheckerKind::kCompleteness,
        CheckerKind::kMaximal, CheckerKind::kPolicyCompare, CheckerKind::kLeak}) {
    CheckJobSpec spec = audit;
    spec.id = CheckerKindName(kind);
    spec.checker = kind;
    specs.push_back(spec);
  }
  return specs;
}

}  // namespace secpol
