// CheckService: the batch checking scheduler.
//
// A batch is a list of CheckJobSpecs. The service admits jobs up to a queue
// bound (the rest are rejected with a distinct backpressure status — they
// are never silently dropped), orders the admitted queue by (priority desc,
// submission index asc), and executes it on a bounded pool of job workers.
// Each job consults the content-addressed result cache first; a miss runs
// the checker (which may itself fan out over grid shards with its own
// thread budget) and, if the run completed, populates the cache.
//
// Determinism: the batch report lists results in submission order, and for
// completed jobs every byte of the per-job report is independent of the
// scheduling — that is the engine's serial ≡ parallel contract plus the
// cache's replay-exact-bytes contract, and it is what the differential
// suite in tests/service_test.cc locks.

#ifndef SECPOL_SRC_SERVICE_SERVICE_H_
#define SECPOL_SRC_SERVICE_SERVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/mechanism/classes.h"
#include "src/obs/obs.h"
#include "src/service/job.h"
#include "src/service/result_cache.h"
#include "src/util/json.h"

namespace secpol {

struct ServiceConfig {
  // Concurrent job executions (not grid threads — each job additionally
  // brings its own CheckOptions thread budget). 0 = one per hardware thread.
  int concurrency = 1;
  // Admission control: at most this many jobs are admitted per batch; the
  // rest are rejected with JobStatus::kRejected (backpressure).
  int max_pending = 256;

  std::size_t cache_capacity = 1024;
  int cache_shards = 8;
  // Capacity of the class-sweep representative memo (entries, not bytes) —
  // the cross-job layer that makes re-submitted "class" jobs incremental.
  std::size_t class_memo_capacity = ClassMemo::kDefaultCapacity;
  // Optional persistence: loaded on construction, atomically written on
  // destruction (and on demand via PersistCache).
  std::string cache_file;

  // Observability sinks, forwarded to every job's checker and mirrored by
  // the cache. Disabled (null) by default; never affects report bytes.
  ObsContext obs;
  // Opt-in: attach a metrics snapshot to the batch report (and to its JSON
  // rendering). Off by default so batch report bytes — and the golden JSON
  // fixtures locked by earlier PRs — are untouched unless asked for. When on
  // with no registry in `obs`, the service owns a private registry.
  bool report_metrics = false;
};

struct BatchStats {
  int submitted = 0;
  int admitted = 0;
  int rejected = 0;   // admission-control rejections
  int invalid = 0;    // specs that failed validation
  int executed = 0;   // checker actually ran (cache miss)
  int cache_hits = 0;
  int completed = 0;
  int deadline_exceeded = 0;
  int aborted = 0;
  double wall_ms = 0.0;  // whole-batch wall time

  // Cache-lifetime counters (includes entries preloaded from disk and
  // previous batches on the same service).
  CacheStats cache;
  int cache_preloaded = 0;        // entries restored from cache_file
  std::string cache_load_error;   // non-empty when the file was corrupt
};

struct BatchReport {
  std::vector<JobResult> jobs;  // submission order, one per submitted spec
  BatchStats stats;

  // MetricsRegistry::Snapshot() taken at the end of the batch when
  // ServiceConfig::report_metrics is set; JSON null otherwise (and then
  // absent from the report's JSON rendering).
  Json metrics;

  // Exit code for the whole batch: the most severe per-job code (codes are
  // ordered so that higher = worse: 0 ok < 1 invalid < 2 verdict < 3
  // deadline < 4 aborted < 5 rejected).
  int ExitCode() const;
};

class CheckService {
 public:
  explicit CheckService(ServiceConfig config);
  // Persists the cache when cache_file is configured (best effort).
  ~CheckService();

  CheckService(const CheckService&) = delete;
  CheckService& operator=(const CheckService&) = delete;

  // Runs one batch to completion. Thread-compatible: call from one thread
  // at a time; the cache warms across successive batches.
  BatchReport RunBatch(const std::vector<CheckJobSpec>& specs);

  // Writes the cache to config().cache_file now. No-op without a file.
  Result<int> PersistCache() const;

  const ServiceConfig& config() const { return config_; }
  ResultCache& cache() { return cache_; }
  // The service-owned representative memo, shared by every "class"-mode job
  // the service runs (and, via the daemon, across connections). Point-mode
  // jobs never touch it.
  ClassMemo& class_memo() { return class_memo_; }

 private:
  ServiceConfig config_;
  // Allocated only for report_metrics with no caller-supplied registry.
  std::unique_ptr<MetricsRegistry> own_metrics_;
  ObsContext obs_;
  ResultCache cache_;
  ClassMemo class_memo_;
  int cache_preloaded_ = 0;
  std::string cache_load_error_;
};

}  // namespace secpol

#endif  // SECPOL_SRC_SERVICE_SERVICE_H_
