#include "src/service/audit.h"

#include <optional>

#include "src/mechanism/outcome_table.h"

namespace secpol {

std::uint64_t AuditReport::EvaluatedPoints() const {
  if (shared) {
    return tabulation.evaluated;
  }
  return soundness.progress.evaluated + integrity.progress.evaluated +
         completeness.progress.evaluated + maximal.progress.evaluated +
         policy_compare.progress.evaluated + leak.progress.evaluated;
}

AuditReport CheckAll(const ProtectionMechanism& mechanism,
                     const ProtectionMechanism& mechanism2, const SecurityPolicy& policy,
                     const SecurityPolicy& policy2, const InputDomain& domain,
                     Observability obs, const CheckOptions& options,
                     const ClassSweepContext* classes) {
  // The audit span brackets all six checks (plus the tabulation when the
  // grid fits); each nested CheckScope contributes its own "check" span.
  ScopedSpan span(options.obs.trace, "audit", "audit");
  AuditReport report;

  const std::optional<std::uint64_t> grid = domain.CheckedSize();
  if (!grid.has_value() || *grid > OutcomeTable::kMaxPoints) {
    // The table would not fit; run the six live sweeps back-to-back. Each
    // sub-report is exactly the standalone checker's, so the audit loses the
    // evaluate-once property but nothing else.
    report.shared = false;
    report.tabulation.total = domain.size();
    report.soundness = CheckSoundness(mechanism, policy, domain, obs, options);
    report.integrity = CheckInformationPreservation(mechanism, policy, domain, obs, options);
    report.completeness = CompareCompleteness(mechanism, mechanism2, domain, options);
    report.maximal = SynthesizeMaximalMechanism(mechanism, policy, domain, obs, options);
    report.policy_compare = ComparePolicyDisclosure(policy, policy2, domain, options);
    report.leak = MeasureLeak(mechanism, policy, domain, obs, options);
    return report;
  }

  OutcomeTableSources sources;
  sources.mechanism = &mechanism;
  sources.mechanism2 = &mechanism2;
  sources.policy = &policy;
  sources.policy2 = &policy2;
  const bool use_classes =
      classes != nullptr && classes->partition != nullptr && !classes->partition->empty();
  const OutcomeTable table = use_classes
                                 ? BuildOutcomeTableWithClasses(sources, domain, *classes, options)
                                 : BuildOutcomeTable(sources, domain, options);
  report.shared = true;
  report.tabulation = table.build();

  if (!table.complete()) {
    // Fail closed everywhere: a partial table may not be consumed, so every
    // sub-report carries the build's progress and the weakest verdict.
    report.soundness.sound = false;
    report.soundness.inputs_checked = report.tabulation.evaluated;
    report.soundness.progress = report.tabulation;
    report.integrity.preserved = false;
    report.integrity.inputs_checked = report.tabulation.evaluated;
    report.integrity.progress = report.tabulation;
    report.completeness.progress = report.tabulation;
    report.maximal.inputs = report.tabulation.evaluated;
    report.maximal.progress = report.tabulation;
    report.policy_compare.progress = report.tabulation;
    report.leak.progress = report.tabulation;
    return report;
  }

  report.soundness = CheckSoundness(table, obs, options);
  report.integrity = CheckInformationPreservation(table, obs, options);
  report.completeness = CompareCompleteness(table, options);
  report.maximal = SynthesizeMaximalMechanism(table, obs, options);
  report.policy_compare = ComparePolicyDisclosure(table, options);
  report.leak = MeasureLeak(table, obs, options);
  return report;
}

}  // namespace secpol
