// A thread-safe, sharded, content-addressed cache of completed check
// results.
//
// The batch service keys every job by its canonical fingerprint (JobCacheKey)
// and memoizes the *rendered* report plus its exit metadata, so a warm hit
// returns bytes identical to the run that populated it. Only completed runs
// are ever inserted: partial (deadline / aborted) reports depend on wall
// time, so caching them would break the byte-for-byte replay contract.
//
// Concurrency: the key space is split across independent LRU shards, each
// behind its own mutex, so unrelated lookups never contend. Counters are
// per-shard and aggregated on read.
//
// Persistence: the whole cache serializes to a JSON file (version-stamped),
// written atomically (temp file + rename) so a crash mid-write leaves the
// previous file intact. Loading is defensive — a missing, corrupt, or
// truncated file degrades to a cold cache, never a crash.

#ifndef SECPOL_SRC_SERVICE_RESULT_CACHE_H_
#define SECPOL_SRC_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/obs/obs.h"
#include "src/util/fingerprint.h"
#include "src/util/result.h"

namespace secpol {

// What a warm hit replays: everything about a completed job's outcome that
// is a pure function of its cache key.
struct CachedResult {
  std::string report;           // rendered checker report, byte-exact
  int exit_code = 0;
  std::uint64_t evaluated = 0;  // == total for a completed run
  std::uint64_t total = 0;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;

  CacheStats& operator+=(const CacheStats& other) {
    hits += other.hits;
    misses += other.misses;
    insertions += other.insertions;
    evictions += other.evictions;
    entries += other.entries;
    return *this;
  }
};

class ResultCache {
 public:
  // `capacity` bounds the total entry count across all shards. The shard
  // count is clamped so every shard holds at least one entry — a capacity-1
  // cache is a single true LRU, not eight competing ones.
  explicit ResultCache(std::size_t capacity, int num_shards = 8);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // Mirrors cache traffic into "cache.*" counters of the attached registry
  // (no-op for a disabled context). Resolve-once: the counter pointers are
  // cached here so the hot paths never take the registry lock.
  void AttachObs(const ObsContext& obs);

  // Returns the cached result and freshens its LRU position, or nullopt
  // (counted as a miss).
  std::optional<CachedResult> Lookup(const Fingerprint& key);

  // Inserts (or refreshes) `value` under `key`, evicting the shard's least
  // recently used entry when over budget.
  void Insert(const Fingerprint& key, CachedResult value);

  std::size_t capacity() const { return capacity_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  std::size_t size() const;
  CacheStats Stats() const;

  // Loads entries persisted by SaveToFile. Returns the number of entries
  // restored; a nonexistent file restores 0. A file that fails to parse, has
  // the wrong version, or contains malformed entries yields an Error (the
  // cache is left cold / partially loaded — still safe to use).
  Result<int> LoadFromFile(const std::string& path);

  // Atomically persists every entry (LRU order is not preserved across a
  // save/load cycle; a reloaded cache is uniformly "old"). Returns the
  // number of entries written.
  Result<int> SaveToFile(const std::string& path) const;

 private:
  struct Shard {
    mutable std::mutex mu;
    // Front = most recently used.
    std::list<std::pair<Fingerprint, CachedResult>> lru;
    std::unordered_map<Fingerprint, std::list<std::pair<Fingerprint, CachedResult>>::iterator,
                       FingerprintHash>
        index;
    CacheStats stats;
  };

  Shard& ShardFor(const Fingerprint& key);
  void InsertLocked(Shard& shard, const Fingerprint& key, CachedResult value);

  std::size_t capacity_;
  std::size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Null when no registry is attached.
  Counter* obs_hits_ = nullptr;
  Counter* obs_misses_ = nullptr;
  Counter* obs_insertions_ = nullptr;
  Counter* obs_evictions_ = nullptr;
  Counter* obs_persist_attempts_ = nullptr;
  Counter* obs_persist_failures_ = nullptr;
  Counter* obs_persisted_entries_ = nullptr;
  Counter* obs_loaded_entries_ = nullptr;
};

}  // namespace secpol

#endif  // SECPOL_SRC_SERVICE_RESULT_CACHE_H_
