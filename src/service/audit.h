// The multi-check audit: all six extensional checks over one shared
// outcome table.
//
// Run standalone, the six checkers re-evaluate the mechanism (and policy
// images) per grid point up to six times. CheckAll builds one OutcomeTable —
// a single kernel sweep evaluating M(d), M2(d), I(d), I2(d) exactly once per
// point — and feeds the six table-backed reducers from it. Because the table
// is rank-indexed in the grid's canonical order and only complete tables are
// consumed, every sub-report is byte-identical to its standalone checker's
// (the differential contract tests/audit_test.cc locks).

#ifndef SECPOL_SRC_SERVICE_AUDIT_H_
#define SECPOL_SRC_SERVICE_AUDIT_H_

#include <cstdint>

#include "src/channels/timing.h"
#include "src/mechanism/check_options.h"
#include "src/mechanism/completeness.h"
#include "src/mechanism/domain.h"
#include "src/mechanism/integrity.h"
#include "src/mechanism/maximal.h"
#include "src/mechanism/mechanism.h"
#include "src/mechanism/outcome.h"
#include "src/mechanism/policy_compare.h"
#include "src/mechanism/soundness.h"
#include "src/policy/policy.h"

namespace secpol {

struct ClassSweepContext;  // src/mechanism/outcome_table.h

struct AuditReport {
  SoundnessReport soundness;         // mechanism sound for policy
  IntegrityReport integrity;         // mechanism preserves policy
  CompletenessStats completeness;    // mechanism vs mechanism2
  MaximalSynthesis maximal;          // maximal mechanism for (mechanism, policy)
  PolicyCompareReport policy_compare;  // policy reveals at most policy2
  LeakReport leak;                   // channel capacity of mechanism

  // How the shared tabulation ended. When it is incomplete every sub-report
  // fails closed carrying this progress; when `shared` is false the audit
  // fell back to live sweeps (grid beyond OutcomeTable::kMaxPoints) and this
  // only records the grid size.
  CheckProgress tabulation;
  bool shared = false;

  // Grid points actually evaluated: the tabulation's count when shared, the
  // sum of the six live sweeps' counts otherwise.
  std::uint64_t EvaluatedPoints() const;
};

// Runs all six checks for (mechanism, policy) over `domain`, with
// `mechanism2` the completeness comparand and `policy2` the disclosure
// reference. One shared table evaluates each source exactly once per grid
// point; completed sub-reports are byte-identical to the standalone
// checkers'. Honours options.deadline / options.cancel across the build and
// every reduction (they share the absolute deadline).
//
// When `classes` is non-null (and the grid fits a table), the tabulation
// runs through BuildOutcomeTableWithClasses instead of BuildOutcomeTable:
// certified equivalence classes are filled from one representative run, so
// the audit spends fewer mechanism evaluations while every COMPLETED
// sub-report stays byte-identical (the class build's identity contract,
// src/mechanism/outcome_table.h). A null `classes` is the point-mode audit,
// unchanged.
AuditReport CheckAll(const ProtectionMechanism& mechanism,
                     const ProtectionMechanism& mechanism2, const SecurityPolicy& policy,
                     const SecurityPolicy& policy2, const InputDomain& domain,
                     Observability obs, const CheckOptions& options = CheckOptions(),
                     const ClassSweepContext* classes = nullptr);

}  // namespace secpol

#endif  // SECPOL_SRC_SERVICE_AUDIT_H_
