// Static information-flow analysis (Section 5).
//
// "Static information flow analysis techniques can be used to determine the
// flow of information that will occur at the time a program is executed"
// (Moore; Denning & Denning). This module computes, at compile time, a
// conservative label for every variable at every program point, including
// the flow through the program counter needed "to avoid difficulties such as
// transmitting disallowed information via negative inference".
//
// Two pc disciplines are provided:
//
//  * kMonotonePc — the static analogue of the Section 3 surveillance
//    mechanism: the pc label only grows along a path and merges by union.
//    Most conservative.
//  * kScopedPc — the Denning-style analysis: an assignment is tainted by
//    exactly the predicates of the decisions it is control-dependent on.
//    Strictly more precise on programs with branches that rejoin, and still
//    sound for *static* use because every path is analyzed. (The dynamic
//    analogue of this discipline is unsound; experiment E16 demonstrates.)

#ifndef SECPOL_SRC_STATICFLOW_ANALYSIS_H_
#define SECPOL_SRC_STATICFLOW_ANALYSIS_H_

#include <string>
#include <vector>

#include "src/flowchart/program.h"
#include "src/util/var_set.h"

namespace secpol {

enum class PcDiscipline {
  kMonotonePc,
  kScopedPc,
};

std::string PcDisciplineName(PcDiscipline discipline);

struct StaticFlowResult {
  // labels_in[box][var]: label of `var` at entry to `box` (union over all
  // paths). Meaningful for reachable boxes only.
  std::vector<std::vector<VarSet>> labels_in;
  // pc_in[box]: the monotone pc label at entry (kMonotonePc), or the
  // control-dependence-derived pc (kScopedPc).
  std::vector<VarSet> pc_in;
  // For each box id: release_label[box] is meaningful when the box is a
  // reachable halt; it is label(y) u pc at that halt — the information the
  // released output may encode.
  std::vector<VarSet> release_label;
  // Union of release labels over all reachable halts: the program-wide
  // certificate label. The program is certifiable for allow(J) iff this is
  // a subset of J.
  VarSet program_release_label;
  // Reachable halt box ids.
  std::vector<int> halts;
  // Fixpoint sweeps executed.
  int rounds = 0;
};

// Runs the analysis. The input program must be valid.
StaticFlowResult AnalyzeInformationFlow(const Program& program, PcDiscipline discipline);

}  // namespace secpol

#endif  // SECPOL_SRC_STATICFLOW_ANALYSIS_H_
