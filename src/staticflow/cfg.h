// Control-flow-graph view of a flowchart program.
//
// The flowchart IR already is a CFG at box granularity; this wrapper
// materializes successor/predecessor lists, reachability, and a virtual exit
// node that all halt boxes feed, which the postdominator computation needs
// when a program has several halt boxes.

#ifndef SECPOL_SRC_STATICFLOW_CFG_H_
#define SECPOL_SRC_STATICFLOW_CFG_H_

#include <vector>

#include "src/flowchart/program.h"

namespace secpol {

class Cfg {
 public:
  explicit Cfg(const Program& program);

  const Program& program() const { return *program_; }

  // Number of real nodes (boxes). The virtual exit has id num_nodes().
  int num_nodes() const { return num_nodes_; }
  int virtual_exit() const { return num_nodes_; }
  int entry() const { return program_->start_box(); }

  const std::vector<int>& Successors(int node) const { return successors_[node]; }
  const std::vector<int>& Predecessors(int node) const { return predecessors_[node]; }

  bool Reachable(int node) const { return reachable_[node]; }
  // Reachable halt boxes, in id order.
  const std::vector<int>& ReachableHalts() const { return reachable_halts_; }

 private:
  const Program* program_;
  int num_nodes_;
  // Indexed by node id; the virtual exit occupies the last slot.
  std::vector<std::vector<int>> successors_;
  std::vector<std::vector<int>> predecessors_;
  std::vector<bool> reachable_;
  std::vector<int> reachable_halts_;
};

}  // namespace secpol

#endif  // SECPOL_SRC_STATICFLOW_CFG_H_
