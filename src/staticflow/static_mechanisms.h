// Compile-time protection mechanisms (Section 5).
//
// "Using static techniques to produce programs would result in efficient
// security enforcement. Of course, this requires that the security policy be
// known at compile time."
//
// Two static mechanisms are provided:
//
//  * StaticCertifiedMechanism — batch certification (Denning & Denning): if
//    every reachable halt's release label is allowed, the program runs with
//    no run-time checks at all; otherwise the mechanism is the plug. All
//    analysis cost is paid once, at construction.
//
//  * ResidualGuardMechanism — Example 9's shape: the release decision is
//    made statically *per halt box*, so paths whose flows are allowed run to
//    completion and release, while paths that would leak end in a violation
//    notice. This is the compile-time specialization "if x1 != 0 then
//    violation else ..." of Example 9.
//
// Both are value-only mechanisms: they make no attempt to normalize running
// time, so soundness is claimed (and tested) under kValueOnly observability.

#ifndef SECPOL_SRC_STATICFLOW_STATIC_MECHANISMS_H_
#define SECPOL_SRC_STATICFLOW_STATIC_MECHANISMS_H_

#include <vector>

#include "src/flowchart/interpreter.h"
#include "src/flowchart/program.h"
#include "src/mechanism/mechanism.h"
#include "src/staticflow/analysis.h"
#include "src/util/var_set.h"

namespace secpol {

class StaticCertifiedMechanism : public ProtectionMechanism {
 public:
  StaticCertifiedMechanism(Program program, VarSet allowed_inputs,
                           PcDiscipline discipline = PcDiscipline::kScopedPc,
                           StepCount fuel = kDefaultFuel);

  // Whether the program passed certification (decided at construction).
  bool certified() const { return certified_; }

  int num_inputs() const override { return program_.num_inputs(); }
  Outcome Run(InputView input) const override;
  // Uncertified: the outcome is the same constant on every input (reads
  // nothing, executes nothing). Certified: the plain interpreter's footprint.
  TrackedOutcome RunTracked(InputView input) const override;
  std::string name() const override;

 private:
  Program program_;
  VarSet allowed_;
  PcDiscipline discipline_;
  StepCount fuel_;
  bool certified_;
};

class ResidualGuardMechanism : public ProtectionMechanism {
 public:
  ResidualGuardMechanism(Program program, VarSet allowed_inputs,
                         PcDiscipline discipline = PcDiscipline::kScopedPc,
                         StepCount fuel = kDefaultFuel);

  // release_at(halt_box): the statically computed decision for that halt.
  bool ReleasesAt(int halt_box) const { return release_at_[halt_box]; }

  int num_inputs() const override { return program_.num_inputs(); }
  Outcome Run(InputView input) const override;
  // The release decision is a pure function of the halt box, which the
  // tracked interpreter already pins down, so the plain footprint is exact.
  TrackedOutcome RunTracked(InputView input) const override;
  std::string name() const override;

 private:
  Program program_;
  VarSet allowed_;
  PcDiscipline discipline_;
  StepCount fuel_;
  std::vector<bool> release_at_;
};

}  // namespace secpol

#endif  // SECPOL_SRC_STATICFLOW_STATIC_MECHANISMS_H_
