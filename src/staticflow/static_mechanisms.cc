#include "src/staticflow/static_mechanisms.h"

namespace secpol {

StaticCertifiedMechanism::StaticCertifiedMechanism(Program program, VarSet allowed_inputs,
                                                   PcDiscipline discipline, StepCount fuel)
    : program_(std::move(program)),
      allowed_(allowed_inputs),
      discipline_(discipline),
      fuel_(fuel),
      certified_(false) {
  const StaticFlowResult flow = AnalyzeInformationFlow(program_, discipline_);
  certified_ = flow.program_release_label.SubsetOf(allowed_);
}

Outcome StaticCertifiedMechanism::Run(InputView input) const {
  if (!certified_) {
    return Outcome::Violation(0, "program failed flow certification");
  }
  const ExecResult result = RunProgram(program_, input, fuel_);
  if (!result.halted) {
    return Outcome::Violation(result.steps, "fuel exhausted");
  }
  return Outcome::Val(result.output, result.steps);
}

TrackedOutcome StaticCertifiedMechanism::RunTracked(InputView input) const {
  if (!certified_) {
    (void)input;
    return TrackedOutcome{Outcome::Violation(0, "program failed flow certification"), VarSet(),
                          true, {}, true};
  }
  ExecFootprint footprint;
  const ExecResult result = RunProgramTracked(program_, input, &footprint, fuel_);
  Outcome outcome = result.halted ? Outcome::Val(result.output, result.steps)
                                  : Outcome::Violation(result.steps, "fuel exhausted");
  return TrackedOutcome{std::move(outcome), footprint.reads, true, footprint.BoxIds(), true};
}

std::string StaticCertifiedMechanism::name() const {
  return "static-certify[" + PcDisciplineName(discipline_) + "](" + program_.name() + ")";
}

ResidualGuardMechanism::ResidualGuardMechanism(Program program, VarSet allowed_inputs,
                                               PcDiscipline discipline, StepCount fuel)
    : program_(std::move(program)),
      allowed_(allowed_inputs),
      discipline_(discipline),
      fuel_(fuel),
      release_at_(static_cast<size_t>(program_.num_boxes()), false) {
  const StaticFlowResult flow = AnalyzeInformationFlow(program_, discipline_);
  for (int h : flow.halts) {
    release_at_[h] = flow.release_label[h].SubsetOf(allowed_);
  }
}

Outcome ResidualGuardMechanism::Run(InputView input) const {
  const ExecResult result = RunProgram(program_, input, fuel_);
  if (!result.halted) {
    return Outcome::Violation(result.steps, "fuel exhausted");
  }
  if (!release_at_[result.halt_box]) {
    return Outcome::Violation(result.steps, "halt on uncertified path");
  }
  return Outcome::Val(result.output, result.steps);
}

TrackedOutcome ResidualGuardMechanism::RunTracked(InputView input) const {
  ExecFootprint footprint;
  const ExecResult result = RunProgramTracked(program_, input, &footprint, fuel_);
  Outcome outcome;
  if (!result.halted) {
    outcome = Outcome::Violation(result.steps, "fuel exhausted");
  } else if (!release_at_[result.halt_box]) {
    outcome = Outcome::Violation(result.steps, "halt on uncertified path");
  } else {
    outcome = Outcome::Val(result.output, result.steps);
  }
  return TrackedOutcome{std::move(outcome), footprint.reads, true, footprint.BoxIds(), true};
}

std::string ResidualGuardMechanism::name() const {
  return "residual-guard[" + PcDisciplineName(discipline_) + "](" + program_.name() + ")";
}

}  // namespace secpol
