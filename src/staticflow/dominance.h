// Postdominators and control dependence.
//
// Moore's "static information flow analysis" and Denning & Denning's
// certification both need to know which statements are governed by which
// tests — i.e. control dependence, computed from postdominators in the
// classic Ferrante–Ottenstein–Warren way. The dynamic scoped-pc label
// discipline (the deliberately unsound one demonstrated in experiment E16)
// also uses immediate postdominators as its pc-restore points.

#ifndef SECPOL_SRC_STATICFLOW_DOMINANCE_H_
#define SECPOL_SRC_STATICFLOW_DOMINANCE_H_

#include <vector>

#include "src/staticflow/cfg.h"
#include "src/util/bitvec.h"

namespace secpol {

class PostDominators {
 public:
  explicit PostDominators(const Cfg& cfg);

  // True iff `a` postdominates `b` (every path from b to exit passes a).
  // Reflexive. Nodes that cannot reach the exit postdominate nothing
  // meaningfully; our programs are total so this does not arise in practice.
  bool PostDominates(int a, int b) const;

  // Immediate postdominator of `node`, or the virtual exit for halt boxes;
  // -1 for unreachable nodes.
  int ImmediatePostDominator(int node) const { return ipdom_[node]; }

  // Decision boxes that `node` is control-dependent on (FOW): node depends
  // on decision b iff node postdominates some successor of b but does not
  // postdominate b itself.
  const std::vector<int>& ControlDependences(int node) const { return control_deps_[node]; }

 private:
  const Cfg* cfg_;
  std::vector<BitVec> postdom_;       // postdom_[n] = set of postdominators of n
  std::vector<int> ipdom_;
  std::vector<std::vector<int>> control_deps_;
};

}  // namespace secpol

#endif  // SECPOL_SRC_STATICFLOW_DOMINANCE_H_
