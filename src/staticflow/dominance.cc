#include "src/staticflow/dominance.h"

namespace secpol {

PostDominators::PostDominators(const Cfg& cfg) : cfg_(&cfg) {
  const int total = cfg.num_nodes() + 1;
  const int exit = cfg.virtual_exit();

  // Iterative dataflow on the reverse CFG:
  //   postdom(exit) = {exit}
  //   postdom(n)    = {n} u  INTERSECT over successors s of postdom(s)
  // Initialized to "all nodes" and shrunk to the greatest fixpoint.
  postdom_.assign(static_cast<size_t>(total), BitVec(total, true));
  BitVec exit_only(total, false);
  exit_only.Set(exit);
  postdom_[exit] = exit_only;

  bool changed = true;
  while (changed) {
    changed = false;
    // Sweep real nodes; order does not affect the fixpoint.
    for (int n = 0; n < cfg.num_nodes(); ++n) {
      if (!cfg.Reachable(n)) {
        continue;
      }
      BitVec next(total, true);
      const auto& succs = cfg.Successors(n);
      if (succs.empty()) {
        next = BitVec(total, false);
      } else {
        for (int s : succs) {
          next.IntersectWith(postdom_[s]);
        }
      }
      next.Set(n);
      if (next != postdom_[n]) {
        postdom_[n] = std::move(next);
        changed = true;
      }
    }
  }

  // Immediate postdominator: among the strict postdominators of n, the one
  // closest to n — i.e. the one whose own postdominator set is largest.
  ipdom_.assign(static_cast<size_t>(total), -1);
  for (int n = 0; n < total; ++n) {
    if (n != exit && !cfg.Reachable(n)) {
      continue;
    }
    int best = -1;
    int best_size = -1;
    for (int p = 0; p < total; ++p) {
      if (p == n || !postdom_[n].Test(p)) {
        continue;
      }
      const int p_size = postdom_[p].Count();
      if (p_size > best_size) {
        best = p;
        best_size = p_size;
      }
    }
    ipdom_[n] = best;
  }

  // Control dependence (FOW criterion).
  control_deps_.assign(static_cast<size_t>(total), {});
  for (int b = 0; b < cfg.num_nodes(); ++b) {
    if (!cfg.Reachable(b) || cfg.program().box(b).kind != Box::Kind::kDecision) {
      continue;
    }
    for (int n = 0; n < cfg.num_nodes(); ++n) {
      if (!cfg.Reachable(n)) {
        continue;
      }
      if (PostDominates(n, b) && n != b) {
        continue;  // n strictly postdominates b: not control-dependent
      }
      bool depends = false;
      for (int s : cfg.Successors(b)) {
        if (PostDominates(n, s)) {
          depends = true;
          break;
        }
      }
      if (depends) {
        control_deps_[n].push_back(b);
      }
    }
  }
}

bool PostDominators::PostDominates(int a, int b) const { return postdom_[b].Test(a); }

}  // namespace secpol
