#include "src/staticflow/analysis.h"

#include <cassert>

#include "src/staticflow/cfg.h"
#include "src/staticflow/dominance.h"

namespace secpol {

std::string PcDisciplineName(PcDiscipline discipline) {
  switch (discipline) {
    case PcDiscipline::kMonotonePc:
      return "monotone-pc";
    case PcDiscipline::kScopedPc:
      return "scoped-pc";
  }
  return "?";
}

namespace {

// Joins the labels of every variable occurring in `expr`.
VarSet ExprLabel(const Expr& expr, const std::vector<VarSet>& labels) {
  VarSet out;
  expr.FreeVars().ForEachIndex([&](int v) { out = out.Union(labels[v]); });
  return out;
}

}  // namespace

StaticFlowResult AnalyzeInformationFlow(const Program& program, PcDiscipline discipline) {
  assert(program.Validate().ok());
  const Cfg cfg(program);
  const PostDominators pdom(cfg);

  const int num_boxes = program.num_boxes();
  const int num_vars = program.num_vars();

  StaticFlowResult result;
  result.labels_in.assign(static_cast<size_t>(num_boxes),
                          std::vector<VarSet>(static_cast<size_t>(num_vars)));
  result.pc_in.assign(static_cast<size_t>(num_boxes), VarSet::Empty());
  result.release_label.assign(static_cast<size_t>(num_boxes), VarSet::Empty());

  // Entry state: input variable i carries label {i}; locals and y are 0
  // constants and carry the empty label.
  const int entry = cfg.entry();
  for (int i = 0; i < program.num_inputs(); ++i) {
    result.labels_in[entry][i] = VarSet::Singleton(i);
  }

  // Derived pc for the scoped discipline: join of the predicate labels of
  // every decision the box is control-dependent on, under the *current*
  // label assignment.
  auto scoped_pc = [&](int box) {
    VarSet pc;
    for (int d : pdom.ControlDependences(box)) {
      pc = pc.Union(ExprLabel(program.box(d).predicate, result.labels_in[d]));
    }
    return pc;
  };

  // Round-robin sweeps to the least fixpoint. The label lattice is finite
  // (subsets of inputs per variable) and all transfers are monotone, so this
  // terminates; programs are small enough that sweep order is irrelevant.
  bool changed = true;
  while (changed) {
    changed = false;
    ++result.rounds;
    for (int b = 0; b < num_boxes; ++b) {
      if (!cfg.Reachable(b)) {
        continue;
      }
      const Box& box = program.box(b);
      // Compute the out-state from the in-state.
      std::vector<VarSet> out = result.labels_in[b];
      VarSet out_pc = result.pc_in[b];
      switch (box.kind) {
        case Box::Kind::kStart:
          break;
        case Box::Kind::kAssign: {
          VarSet pc_effective = discipline == PcDiscipline::kMonotonePc ? out_pc : scoped_pc(b);
          out[box.var] = ExprLabel(box.expr, result.labels_in[b]).Union(pc_effective);
          break;
        }
        case Box::Kind::kDecision:
          if (discipline == PcDiscipline::kMonotonePc) {
            out_pc = out_pc.Union(ExprLabel(box.predicate, result.labels_in[b]));
          }
          break;
        case Box::Kind::kHalt:
          break;
      }
      // Merge into successors.
      for (int s : cfg.Successors(b)) {
        if (s >= num_boxes) {
          continue;  // virtual exit
        }
        for (int v = 0; v < num_vars; ++v) {
          const VarSet merged = result.labels_in[s][v].Union(out[v]);
          if (merged != result.labels_in[s][v]) {
            result.labels_in[s][v] = merged;
            changed = true;
          }
        }
        const VarSet merged_pc = result.pc_in[s].Union(out_pc);
        if (merged_pc != result.pc_in[s]) {
          result.pc_in[s] = merged_pc;
          changed = true;
        }
      }
    }
  }

  // Release labels at halts.
  const int y = program.output_var();
  for (int h : cfg.ReachableHalts()) {
    VarSet pc_at_halt =
        discipline == PcDiscipline::kMonotonePc ? result.pc_in[h] : scoped_pc(h);
    if (discipline == PcDiscipline::kScopedPc) {
      result.pc_in[h] = pc_at_halt;  // surface the derived pc for inspection
    }
    result.release_label[h] = result.labels_in[h][y].Union(pc_at_halt);
    result.program_release_label = result.program_release_label.Union(result.release_label[h]);
    result.halts.push_back(h);
  }
  return result;
}

}  // namespace secpol
