#include "src/staticflow/cfg.h"

#include <deque>

namespace secpol {

Cfg::Cfg(const Program& program) : program_(&program), num_nodes_(program.num_boxes()) {
  const int total = num_nodes_ + 1;  // + virtual exit
  successors_.resize(total);
  predecessors_.resize(total);
  reachable_.assign(total, false);

  auto add_edge = [this](int from, int to) {
    successors_[from].push_back(to);
    predecessors_[to].push_back(from);
  };

  for (int i = 0; i < num_nodes_; ++i) {
    const Box& box = program.box(i);
    switch (box.kind) {
      case Box::Kind::kStart:
      case Box::Kind::kAssign:
        add_edge(i, box.next);
        break;
      case Box::Kind::kDecision:
        add_edge(i, box.true_next);
        if (box.false_next != box.true_next) {
          add_edge(i, box.false_next);
        }
        break;
      case Box::Kind::kHalt:
        add_edge(i, virtual_exit());
        break;
    }
  }

  // Forward reachability from the entry.
  std::deque<int> queue = {entry()};
  reachable_[entry()] = true;
  while (!queue.empty()) {
    const int node = queue.front();
    queue.pop_front();
    for (int succ : successors_[node]) {
      if (!reachable_[succ]) {
        reachable_[succ] = true;
        queue.push_back(succ);
      }
    }
  }
  for (int i = 0; i < num_nodes_; ++i) {
    if (reachable_[i] && program.box(i).kind == Box::Kind::kHalt) {
      reachable_halts_.push_back(i);
    }
  }
}

}  // namespace secpol
