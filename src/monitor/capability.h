// A capability-system protection mechanism.
//
// The paper's conclusion: "Our model ... can be used to model capability
// systems as well as surveillance." In a capability system a computation can
// only name what it holds capabilities for; there is no notion of tainted
// data because untouchable data is never touched.
//
// Rendered in the flowchart world: the caller holds read capabilities for
// the allowed inputs. Execution proceeds normally until any expression or
// predicate *references* an input the caller has no capability for; at that
// instant the run aborts with a violation notice (the missing-capability
// fault). No labels are tracked — possession is checked, not flow.
//
// Properties (all property-tested):
//  * Sound even under observable time: the path, and therefore the fault
//    point, is a function of capability-readable data only.
//  * Strictly below the timing-safe surveillance M' in the completeness
//    order: M' tolerates *assignments* from disallowed data (the labels
//    catch them at halt if they matter); the capability fault tolerates no
//    reference at all. cap <= M' <= ... in the mechanism ladder.

#ifndef SECPOL_SRC_MONITOR_CAPABILITY_H_
#define SECPOL_SRC_MONITOR_CAPABILITY_H_

#include "src/flowchart/interpreter.h"
#include "src/flowchart/program.h"
#include "src/mechanism/mechanism.h"
#include "src/util/var_set.h"

namespace secpol {

class CapabilityMechanism : public ProtectionMechanism {
 public:
  // `capabilities` are input indices the caller may reference.
  CapabilityMechanism(Program program, VarSet capabilities, StepCount fuel = kDefaultFuel);

  int num_inputs() const override { return program_.num_inputs(); }
  Outcome Run(InputView input) const override;
  std::string name() const override;

 private:
  Program program_;
  VarSet capabilities_;
  StepCount fuel_;
  // Precomputed per box: the disallowed inputs its expression/predicate
  // references (empty = box can never fault).
  std::vector<VarSet> faults_;
};

}  // namespace secpol

#endif  // SECPOL_SRC_MONITOR_CAPABILITY_H_
