#include "src/monitor/mls.h"

#include <cassert>

namespace secpol {

std::string MlsMonitorKindName(MlsMonitorKind kind) {
  switch (kind) {
    case MlsMonitorKind::kNoReadUp:
      return "no-read-up";
    case MlsMonitorKind::kTaintAndCheck:
      return "taint-and-check";
  }
  return "?";
}

std::string WriteDisciplineName(WriteDiscipline discipline) {
  switch (discipline) {
    case WriteDiscipline::kUnrestrictedWrite:
      return "unrestricted-write";
    case WriteDiscipline::kStarProperty:
      return "star-property";
  }
  return "?";
}

MlsSession::MlsSession(const SecurityLattice& lattice, std::vector<ClassId> file_classes,
                       std::vector<Value> contents, ClassId clearance, MlsMonitorKind kind,
                       WriteDiscipline writes)
    : lattice_(lattice),
      file_classes_(std::move(file_classes)),
      contents_(std::move(contents)),
      clearance_(clearance),
      kind_(kind),
      writes_(writes),
      process_label_(lattice.Bottom()) {
  assert(file_classes_.size() == contents_.size());
}

bool MlsSession::WriteFile(int i, Value value) {
  ++syscalls_;
  if (i < 0 || i >= num_files()) {
    return false;
  }
  if (writes_ == WriteDiscipline::kStarProperty) {
    // The writer's effective label: everything the write could carry.
    const ClassId effective =
        kind_ == MlsMonitorKind::kTaintAndCheck ? process_label_ : clearance_;
    if (!lattice_.Leq(effective, file_classes_[i])) {
      return false;  // no write down
    }
  }
  contents_[i] = value;
  return true;
}

Value MlsSession::ReadFile(int i) {
  ++syscalls_;
  if (i < 0 || i >= num_files()) {
    return 0;
  }
  switch (kind_) {
    case MlsMonitorKind::kNoReadUp:
      if (!lattice_.Leq(file_classes_[i], clearance_)) {
        return 0;  // refused; the zero is classification-determined
      }
      return contents_[i];
    case MlsMonitorKind::kTaintAndCheck:
      process_label_ = lattice_.Join(process_label_, file_classes_[i]);
      return contents_[i];
  }
  return 0;
}

std::shared_ptr<ProtectionMechanism> MakeMlsMechanism(
    std::string name, std::shared_ptr<const SecurityLattice> lattice,
    std::vector<ClassId> file_classes, ClassId clearance, MlsMonitorKind kind,
    MlsUserProgram program) {
  const int num_files = static_cast<int>(file_classes.size());
  const std::string full_name = name + "/" + MlsMonitorKindName(kind);
  return std::make_shared<FunctionMechanism>(
      full_name, num_files,
      [lattice = std::move(lattice), file_classes = std::move(file_classes), clearance, kind,
       program = std::move(program)](InputView input) {
        MlsSession session(*lattice, file_classes, Input(input.begin(), input.end()), clearance,
                           kind);
        const Value result = program(session);
        if (kind == MlsMonitorKind::kTaintAndCheck &&
            !lattice->Leq(session.process_label(), clearance)) {
          return Outcome::Violation(session.syscalls(),
                                    "process label exceeds clearance at output");
        }
        return Outcome::Val(result, session.syscalls());
      });
}

std::shared_ptr<ProtectionMechanism> MakeMlsObserverMechanism(
    std::string name, std::shared_ptr<const SecurityLattice> lattice,
    std::vector<ClassId> file_classes, ClassId writer_clearance, MlsMonitorKind kind,
    WriteDiscipline writes, MlsUserProgram program, int observed_file) {
  const int num_files = static_cast<int>(file_classes.size());
  const std::string full_name = name + "/" + MlsMonitorKindName(kind) + "/" +
                                WriteDisciplineName(writes) + "/observes-file" +
                                std::to_string(observed_file);
  return std::make_shared<FunctionMechanism>(
      full_name, num_files,
      [lattice = std::move(lattice), file_classes = std::move(file_classes), writer_clearance,
       kind, writes, program = std::move(program), observed_file](InputView input) {
        MlsSession session(*lattice, file_classes, Input(input.begin(), input.end()),
                           writer_clearance, kind, writes);
        (void)program(session);
        // What the passive observer sees afterwards: the file's final state.
        return Outcome::Val(session.FinalContent(observed_file), session.syscalls());
      });
}

AllowPolicy MakeMlsPolicy(const SecurityLattice& lattice,
                          const std::vector<ClassId>& file_classes, ClassId clearance) {
  VarSet allowed;
  for (size_t i = 0; i < file_classes.size(); ++i) {
    if (lattice.Leq(file_classes[i], clearance)) {
      allowed.Insert(static_cast<int>(i));
    }
  }
  return AllowPolicy(static_cast<int>(file_classes.size()), allowed);
}

}  // namespace secpol
