// A miniature multiprogramming kernel: processes, a round-robin scheduler,
// and shared resources with accounting — the substrate for the paper's
// remark that in "a general-purpose operating system ... information can be
// passed via resource usage patterns."
//
// Processes are cooperative coroutne-like step functions: on each quantum a
// process receives the kernel interface and performs at most one syscall.
// The kernel exposes two *accounting modes* for its shared resource (a pool
// of buffers):
//
//   kGlobalAccounting  — any process can read the pool-wide free count.
//     A sender modulates its allocations; a receiver polls the free count:
//     a classic storage/resource channel, measurable at several bits per
//     scheduling round.
//
//   kPartitionedAccounting — each process sees only its own usage; the
//     receiver's observable is constant and the channel capacity collapses
//     to zero.
//
// Experiment E17 (bench_kernel) measures both. The mitigation mirrors the
// paper's diagnosis: the pool-wide count was a forgotten observable; either
// declare it an output (and find the mechanism unsound) or remove it from
// the observable surface (partitioning).

#ifndef SECPOL_SRC_MONITOR_KERNEL_H_
#define SECPOL_SRC_MONITOR_KERNEL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/util/value.h"

namespace secpol {

enum class ResourceAccounting {
  kGlobalAccounting,
  kPartitionedAccounting,
};

std::string ResourceAccountingName(ResourceAccounting accounting);

class MiniKernel;

// What a process may do during one quantum.
class ProcessContext {
 public:
  ProcessContext(MiniKernel& kernel, int pid) : kernel_(kernel), pid_(pid) {}

  int pid() const { return pid_; }

  // Allocates one buffer from the shared pool; returns false if exhausted.
  bool AllocBuffer();
  // Releases one of the caller's buffers; returns false if it holds none.
  bool FreeBuffer();
  // The resource observable. Under kGlobalAccounting: pool-wide free count.
  // Under kPartitionedAccounting: the caller's own quota remainder.
  Value ReadFreeCount() const;
  // Scheduler round counter (a clock every process can see).
  Value Round() const;

 private:
  MiniKernel& kernel_;
  int pid_;
};

// A process body: called once per quantum until it returns false (done).
using ProcessBody = std::function<bool(ProcessContext&)>;

class MiniKernel {
 public:
  // pool_size buffers shared among all processes; under partitioned
  // accounting each process gets an equal static quota.
  MiniKernel(Value pool_size, ResourceAccounting accounting);

  int Spawn(std::string name, ProcessBody body);

  // Runs round-robin quanta until every process is done or `max_rounds`
  // elapses. Returns the number of rounds executed.
  Value RunUntilIdle(Value max_rounds = 10000);

  ResourceAccounting accounting() const { return accounting_; }
  Value pool_size() const { return pool_size_; }
  Value round() const { return round_; }
  Value free_count() const { return pool_size_ - allocated_total_; }
  Value held_by(int pid) const { return held_[static_cast<size_t>(pid)]; }
  Value quota_of(int pid) const;

 private:
  friend class ProcessContext;

  struct Process {
    std::string name;
    ProcessBody body;
    bool done = false;
  };

  Value pool_size_;
  ResourceAccounting accounting_;
  Value allocated_total_ = 0;
  Value round_ = 0;
  std::vector<Process> processes_;
  std::vector<Value> held_;
};

// --- The covert-channel pair (used by tests, the bench, and the example) ---

// The sender leaks `secret` (bits_per_round bits at a time) by holding that
// many buffers during each scheduling round.
ProcessBody MakeResourceSender(Value secret, int num_rounds, int bits_per_round);

// The receiver samples the observable each round; the recovered values are
// appended to *samples.
ProcessBody MakeResourceReceiver(int num_rounds, std::vector<Value>* samples);

// Runs a sender/receiver pair and attempts to reconstruct the secret.
// Returns the recovered value (garbage under partitioned accounting — which
// is the point).
Value RunCovertChannel(Value secret, int secret_bits, ResourceAccounting accounting,
                       int bits_per_round = 2);

}  // namespace secpol

#endif  // SECPOL_SRC_MONITOR_KERNEL_H_
