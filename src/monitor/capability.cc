#include "src/monitor/capability.h"

#include <cassert>

namespace secpol {

CapabilityMechanism::CapabilityMechanism(Program program, VarSet capabilities, StepCount fuel)
    : program_(std::move(program)), capabilities_(capabilities), fuel_(fuel) {
  assert(capabilities_.SubsetOf(VarSet::FirstN(program_.num_inputs())));
  const VarSet uncapable = VarSet::FirstN(program_.num_inputs()).Minus(capabilities_);
  faults_.resize(static_cast<size_t>(program_.num_boxes()));
  for (int b = 0; b < program_.num_boxes(); ++b) {
    const Box& box = program_.box(b);
    switch (box.kind) {
      case Box::Kind::kAssign:
        faults_[static_cast<size_t>(b)] = box.expr.FreeVars().Intersect(uncapable);
        break;
      case Box::Kind::kDecision:
        faults_[static_cast<size_t>(b)] = box.predicate.FreeVars().Intersect(uncapable);
        break;
      case Box::Kind::kStart:
      case Box::Kind::kHalt:
        break;
    }
  }
}

std::string CapabilityMechanism::name() const {
  return "capability" + capabilities_.ToString() + "(" + program_.name() + ")";
}

Outcome CapabilityMechanism::Run(InputView input) const {
  assert(static_cast<int>(input.size()) == program_.num_inputs());
  std::vector<Value> env(program_.num_vars(), 0);
  for (int i = 0; i < program_.num_inputs(); ++i) {
    env[i] = input[i];
  }

  StepCount steps = 0;
  int pc = program_.start_box();
  while (steps < fuel_) {
    ++steps;
    const Box& box = program_.box(pc);
    if (!faults_[static_cast<size_t>(pc)].empty()) {
      // Missing-capability fault, before the reference happens.
      return Outcome::Violation(
          steps, "no capability for input(s) " +
                     faults_[static_cast<size_t>(pc)].ToString());
    }
    switch (box.kind) {
      case Box::Kind::kStart:
        pc = box.next;
        break;
      case Box::Kind::kAssign:
        env[box.var] = box.expr.Eval(env);
        pc = box.next;
        break;
      case Box::Kind::kDecision:
        pc = box.predicate.Eval(env) != 0 ? box.true_next : box.false_next;
        break;
      case Box::Kind::kHalt:
        return Outcome::Val(env[program_.output_var()], steps);
    }
  }
  return Outcome::Violation(steps, "fuel exhausted");
}

}  // namespace secpol
