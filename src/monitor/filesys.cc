#include "src/monitor/filesys.h"

#include <cassert>

namespace secpol {

FileSystem::FileSystem(std::vector<Value> dirs, std::vector<Value> files, Value grant_value)
    : dirs_(std::move(dirs)), files_(std::move(files)), grant_value_(grant_value) {
  assert(dirs_.size() == files_.size());
}

std::string DenialModeName(DenialMode mode) {
  switch (mode) {
    case DenialMode::kFailStop:
      return "fail-stop";
    case DenialMode::kZeroFill:
      return "zero-fill";
    case DenialMode::kLeakyLenient:
      return "leaky-lenient";
  }
  return "?";
}

MonitorSession::MonitorSession(const FileSystem& fs, DenialMode mode) : fs_(fs), mode_(mode) {}

Value MonitorSession::ReadDirectory(int i) {
  ++syscalls_;
  if (aborted_ || i < 0 || i >= fs_.num_files()) {
    return 0;
  }
  return fs_.DirEntry(i);
}

Value MonitorSession::ReadFile(int i) {
  ++syscalls_;
  if (aborted_ || i < 0 || i >= fs_.num_files()) {
    return 0;
  }
  if (fs_.Granted(i)) {
    return fs_.RawContent(i);
  }
  switch (mode_) {
    case DenialMode::kFailStop:
      aborted_ = true;
      abort_notice_ = "Illegal access attempted, run aborted";
      return 0;
    case DenialMode::kZeroFill:
      return 0;
    case DenialMode::kLeakyLenient:
      // UNSOUND by design: whether the run aborts depends on the *protected*
      // content (Example 4's leak-through-the-notice).
      if (fs_.RawContent(i) != 0) {
        aborted_ = true;
        abort_notice_ = "Illegal access to nonzero file, run aborted";
      }
      return 0;
  }
  return 0;
}

std::shared_ptr<ProtectionMechanism> MakeMonitoredMechanism(std::string name, int num_files,
                                                            Value grant_value, DenialMode mode,
                                                            UserProgram program) {
  const std::string full_name = name + "/" + DenialModeName(mode);
  return std::make_shared<FunctionMechanism>(
      full_name, 2 * num_files,
      [num_files, grant_value, mode, program = std::move(program)](InputView input) {
        std::vector<Value> dirs(input.begin(), input.begin() + num_files);
        std::vector<Value> files(input.begin() + num_files, input.end());
        const FileSystem fs(std::move(dirs), std::move(files), grant_value);
        MonitorSession session(fs, mode);
        const Value result = program(session);
        if (session.aborted()) {
          return Outcome::Violation(session.syscalls(), session.abort_notice());
        }
        return Outcome::Val(result, session.syscalls());
      });
}

UserProgram MakeCompliantSummer() {
  return [](MonitorSession& session) {
    Value sum = 0;
    // The session does not expose the file count directly; probe directories
    // until an out-of-range read (monitors return 0 for those, and real
    // programs know k). We pass k through a generous fixed bound.
    for (int i = 0; i < 64; ++i) {
      const Value dir = session.ReadDirectory(i);
      if (dir == 1) {
        sum += session.ReadFile(i);
      }
    }
    return sum;
  };
}

UserProgram MakeGreedySummer() {
  return [](MonitorSession& session) {
    Value sum = 0;
    for (int i = 0; i < 64; ++i) {
      sum += session.ReadFile(i);
      if (session.aborted()) {
        break;
      }
    }
    return sum;
  };
}

UserProgram MakeAdaptiveReader() {
  return [](MonitorSession& session) {
    Value result = 0;
    if (session.ReadDirectory(0) == 1) {
      result = session.ReadFile(0);
      if (result % 2 != 0) {
        result += session.ReadFile(1);
      }
    }
    return result;
  };
}

}  // namespace secpol
