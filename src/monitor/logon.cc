#include "src/monitor/logon.h"

namespace secpol {

Value PasswordOf(Value table, Value uid, Value password_space) {
  if (uid < 0 || table < 0 || password_space <= 0) {
    return -1;
  }
  Value digits = table;
  for (Value u = 0; u < uid; ++u) {
    digits /= password_space;
  }
  return digits % password_space;
}

std::shared_ptr<ProtectionMechanism> MakeLogonProgram(int num_users, Value password_space) {
  return std::make_shared<FunctionMechanism>(
      "logon", 3, [num_users, password_space](InputView input) {
        const Value uid = input[0];
        const Value table = input[1];
        const Value pw = input[2];
        // One step per user slot scanned: data-independent.
        const StepCount steps = static_cast<StepCount>(num_users);
        if (uid < 0 || uid >= num_users) {
          return Outcome::Val(0, steps);
        }
        const Value stored = PasswordOf(table, uid, password_space);
        return Outcome::Val(stored == pw ? 1 : 0, steps);
      });
}

AllowPolicy MakeLogonPolicy() { return AllowPolicy(3, VarSet{0, 2}); }

}  // namespace secpol
