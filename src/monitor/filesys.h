// Example 2's file system, as a user-space reference monitor.
//
// "Here Di is the set of possible values for the ith directory; Fi is the
// set of values for the ith file. ... the ith directory will contain
// information about who can access the ith file. We wish to know whether or
// not Q(d1..dk, f1..fk) contains any information from a file that was to be
// denied to us."
//
// The kernel holds k directories and k files; a user program runs against a
// MonitorSession that mediates every access (the classic reference-monitor
// placement). The monitor's denial behaviour is configurable:
//
//   kFailStop     — the run aborts with "Illegal access attempted, run
//                   aborted" (the paper's Example 2 violation notice).
//   kZeroFill     — denied reads return 0 and the run continues.
//   kLeakyLenient — denied reads of a ZERO file return 0 silently but a
//                   nonzero denied file aborts. This reproduces Example 4's
//                   unsound mechanisms "that leak information via their
//                   violation notices": the notice itself now encodes one
//                   bit of the protected file. The soundness checker
//                   convicts it.
//
// Syscall count is the session's step measure, so timing experiments apply
// to monitors too.

#ifndef SECPOL_SRC_MONITOR_FILESYS_H_
#define SECPOL_SRC_MONITOR_FILESYS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/mechanism/mechanism.h"
#include "src/policy/policy.h"
#include "src/util/value.h"

namespace secpol {

// The kernel-side state: k directory entries gating k file contents.
class FileSystem {
 public:
  // dirs.size() == files.size(); directory i grants access to file i iff
  // dirs[i] == grant_value.
  FileSystem(std::vector<Value> dirs, std::vector<Value> files, Value grant_value);

  int num_files() const { return static_cast<int>(files_.size()); }
  Value grant_value() const { return grant_value_; }
  Value DirEntry(int i) const { return dirs_[i]; }
  bool Granted(int i) const { return dirs_[i] == grant_value_; }
  // Raw content: only the monitor may call this.
  Value RawContent(int i) const { return files_[i]; }

 private:
  std::vector<Value> dirs_;
  std::vector<Value> files_;
  Value grant_value_;
};

enum class DenialMode {
  kFailStop,
  kZeroFill,
  kLeakyLenient,
};

std::string DenialModeName(DenialMode mode);

// The user program's only window onto the file system.
class MonitorSession {
 public:
  MonitorSession(const FileSystem& fs, DenialMode mode);

  // Directory entries are always readable (the policy image contains every
  // directory).
  Value ReadDirectory(int i);

  // Mediated file read. On denial, behaviour follows the DenialMode; in
  // fail-stop modes the session latches `aborted` and subsequent reads
  // return 0 (a well-behaved program checks aborted() or simply finishes).
  Value ReadFile(int i);

  bool aborted() const { return aborted_; }
  const std::string& abort_notice() const { return abort_notice_; }
  StepCount syscalls() const { return syscalls_; }

 private:
  const FileSystem& fs_;
  DenialMode mode_;
  bool aborted_ = false;
  std::string abort_notice_;
  StepCount syscalls_ = 0;
};

// A user program computes a value through a session.
using UserProgram = std::function<Value(MonitorSession&)>;

// Packages (kernel + monitor + user program) as a protection mechanism over
// the input tuple (d1..dk, f1..fk), checkable against DirectoryGatedPolicy.
std::shared_ptr<ProtectionMechanism> MakeMonitoredMechanism(std::string name, int num_files,
                                                            Value grant_value, DenialMode mode,
                                                            UserProgram program);

// --- Stock user programs for tests, examples, and benches ---

// Sums the contents of exactly the files whose directories grant access
// (checks before reading — never triggers a denial).
UserProgram MakeCompliantSummer();
// Sums every file unconditionally (triggers denials whenever any directory
// refuses).
UserProgram MakeGreedySummer();
// Reads file 0 if granted, then — if its content is odd — also reads file 1.
// Its *access pattern* depends on data, which is exactly the situation where
// monitor denial behaviour must be scrutinized.
UserProgram MakeAdaptiveReader();

}  // namespace secpol

#endif  // SECPOL_SRC_MONITOR_FILESYS_H_
