#include "src/monitor/kernel.h"

#include <cassert>

namespace secpol {

std::string ResourceAccountingName(ResourceAccounting accounting) {
  switch (accounting) {
    case ResourceAccounting::kGlobalAccounting:
      return "global";
    case ResourceAccounting::kPartitionedAccounting:
      return "partitioned";
  }
  return "?";
}

bool ProcessContext::AllocBuffer() {
  MiniKernel& k = kernel_;
  const bool global = k.accounting_ == ResourceAccounting::kGlobalAccounting;
  const Value limit = global ? k.pool_size_ : k.quota_of(pid_);
  const Value in_use = global ? k.allocated_total_ : k.held_[static_cast<size_t>(pid_)];
  if (in_use >= limit) {
    return false;
  }
  ++k.allocated_total_;
  ++k.held_[static_cast<size_t>(pid_)];
  return true;
}

bool ProcessContext::FreeBuffer() {
  MiniKernel& k = kernel_;
  if (k.held_[static_cast<size_t>(pid_)] == 0) {
    return false;
  }
  --k.allocated_total_;
  --k.held_[static_cast<size_t>(pid_)];
  return true;
}

Value ProcessContext::ReadFreeCount() const {
  const MiniKernel& k = kernel_;
  switch (k.accounting_) {
    case ResourceAccounting::kGlobalAccounting:
      return k.free_count();
    case ResourceAccounting::kPartitionedAccounting:
      return k.quota_of(pid_) - k.held_[static_cast<size_t>(pid_)];
  }
  return 0;
}

Value ProcessContext::Round() const { return kernel_.round_; }

MiniKernel::MiniKernel(Value pool_size, ResourceAccounting accounting)
    : pool_size_(pool_size), accounting_(accounting) {
  assert(pool_size > 0);
}

int MiniKernel::Spawn(std::string name, ProcessBody body) {
  const int pid = static_cast<int>(processes_.size());
  processes_.push_back({std::move(name), std::move(body), false});
  held_.push_back(0);
  return pid;
}

Value MiniKernel::quota_of(int pid) const {
  (void)pid;
  const Value n = static_cast<Value>(processes_.empty() ? 1 : processes_.size());
  return pool_size_ / n;
}

Value MiniKernel::RunUntilIdle(Value max_rounds) {
  for (round_ = 0; round_ < max_rounds; ++round_) {
    bool any_live = false;
    for (size_t pid = 0; pid < processes_.size(); ++pid) {
      Process& process = processes_[pid];
      if (process.done) {
        continue;
      }
      ProcessContext context(*this, static_cast<int>(pid));
      if (!process.body(context)) {
        process.done = true;
      } else {
        any_live = true;
      }
    }
    if (!any_live) {
      ++round_;
      break;
    }
  }
  return round_;
}

ProcessBody MakeResourceSender(Value secret, int num_rounds, int bits_per_round) {
  // `held` is tracked in the closure: real processes know what they hold.
  auto held = std::make_shared<Value>(0);
  const Value mask = (Value{1} << bits_per_round) - 1;
  return [secret, num_rounds, bits_per_round, mask, held](ProcessContext& ctx) {
    const Value round = ctx.Round();
    if (round >= num_rounds) {
      while (*held > 0 && ctx.FreeBuffer()) {
        --*held;
      }
      return false;
    }
    const Value chunk = (secret >> (round * bits_per_round)) & mask;
    while (*held < chunk && ctx.AllocBuffer()) {
      ++*held;
    }
    while (*held > chunk && ctx.FreeBuffer()) {
      --*held;
    }
    return true;
  };
}

ProcessBody MakeResourceReceiver(int num_rounds, std::vector<Value>* samples) {
  return [num_rounds, samples](ProcessContext& ctx) {
    if (ctx.Round() >= num_rounds) {
      return false;
    }
    samples->push_back(ctx.ReadFreeCount());
    return true;
  };
}

Value RunCovertChannel(Value secret, int secret_bits, ResourceAccounting accounting,
                       int bits_per_round) {
  assert(secret_bits > 0 && bits_per_round > 0 && bits_per_round <= 16);
  const int rounds = (secret_bits + bits_per_round - 1) / bits_per_round;
  const Value pool = (Value{1} << bits_per_round) - 1 > 0
                         ? (Value{1} << bits_per_round) - 1
                         : 1;

  MiniKernel kernel(pool == 0 ? 1 : pool, accounting);
  kernel.Spawn("sender", MakeResourceSender(secret, rounds, bits_per_round));
  std::vector<Value> samples;
  kernel.Spawn("receiver", MakeResourceReceiver(rounds, &samples));
  kernel.RunUntilIdle();

  // Reconstruct: each sample is (pool free count) = pool - sender_held.
  Value recovered = 0;
  for (size_t r = 0; r < samples.size(); ++r) {
    const Value chunk = kernel.pool_size() - samples[r];
    recovered |= (chunk & ((Value{1} << bits_per_round) - 1))
                 << (static_cast<Value>(r) * bits_per_round);
  }
  // Mask to the claimed width.
  if (secret_bits < 63) {
    recovered &= (Value{1} << secret_bits) - 1;
  }
  return recovered;
}

}  // namespace secpol
