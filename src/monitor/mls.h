// A multi-level-security kernel over a Denning lattice.
//
// The paper closes by noting its model "can be used to model capability
// systems as well as surveillance"; this module models the other classic
// mechanism family: a kernel whose files carry lattice classifications and
// whose processes run at a clearance. Two monitor designs are provided for
// the same policy ("the caller learns nothing about files classified above
// its clearance"):
//
//   kNoReadUp — access control in the Bell–LaPadula style: a read of a file
//     above clearance is refused (zero-filled). Decisions depend only on the
//     fixed classification map, never on contents — sound by construction.
//
//   kTaintAndCheck — surveillance at syscall granularity: all reads succeed,
//     the process label accumulates the labels of everything read, and the
//     *output* is released only if the accumulated label flows to the
//     clearance. More complete than kNoReadUp for programs that read high
//     data but do not let it reach the output... as long as the program's
//     result really drops it; with a single final check the label is
//     conservative, so the comparison mirrors high-water vs surveillance.
//
// The induced policy for the checker: inputs are the k file contents;
// allowed coordinates are the files whose class flows to the clearance.

#ifndef SECPOL_SRC_MONITOR_MLS_H_
#define SECPOL_SRC_MONITOR_MLS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/lattice/lattice.h"
#include "src/mechanism/mechanism.h"
#include "src/policy/policy.h"
#include "src/util/value.h"

namespace secpol {

enum class MlsMonitorKind {
  kNoReadUp,
  kTaintAndCheck,
};

std::string MlsMonitorKindName(MlsMonitorKind kind);

// The write rule. Reads move information into the process; writes move it
// into files, and a write below the writer's effective label is the classic
// downgrade leak the *-property forbids ("no write down").
enum class WriteDiscipline {
  // Writes are unchecked — the deliberately leaky configuration, which the
  // soundness checker convicts (see MlsWriteTest).
  kUnrestrictedWrite,
  // The *-property: a write is permitted only if the writer's effective
  // label flows to the file's class. Under kNoReadUp the effective label is
  // the clearance; under kTaintAndCheck it is the accumulated taint, which
  // is more permissive for processes that have read nothing sensitive.
  kStarProperty,
};

std::string WriteDisciplineName(WriteDiscipline discipline);

class MlsSession {
 public:
  MlsSession(const SecurityLattice& lattice, std::vector<ClassId> file_classes,
             std::vector<Value> contents, ClassId clearance, MlsMonitorKind kind,
             WriteDiscipline writes = WriteDiscipline::kStarProperty);

  int num_files() const { return static_cast<int>(contents_.size()); }

  // Mediated read; behaviour depends on the monitor kind.
  Value ReadFile(int i);

  // Mediated write; returns false (and leaves the file untouched) when the
  // write discipline refuses.
  bool WriteFile(int i, Value value);

  // The class of file i — public metadata, like Example 2's directories.
  ClassId FileClass(int i) const { return file_classes_[i]; }

  // Raw final content — for building observer mechanisms, not for programs.
  Value FinalContent(int i) const { return contents_[i]; }

  ClassId process_label() const { return process_label_; }
  StepCount syscalls() const { return syscalls_; }

 private:
  const SecurityLattice& lattice_;
  std::vector<ClassId> file_classes_;
  std::vector<Value> contents_;
  ClassId clearance_;
  MlsMonitorKind kind_;
  WriteDiscipline writes_;
  ClassId process_label_;
  StepCount syscalls_ = 0;
};

using MlsUserProgram = std::function<Value(MlsSession&)>;

// Builds the mechanism over inputs (f1..fk) for a fixed classification map
// and clearance.
std::shared_ptr<ProtectionMechanism> MakeMlsMechanism(
    std::string name, std::shared_ptr<const SecurityLattice> lattice,
    std::vector<ClassId> file_classes, ClassId clearance, MlsMonitorKind kind,
    MlsUserProgram program);

// The policy the two monitors enforce: allow exactly the files whose class
// flows to `clearance`.
AllowPolicy MakeMlsPolicy(const SecurityLattice& lattice,
                          const std::vector<ClassId>& file_classes, ClassId clearance);

// An *observer* mechanism for the write experiments: a writer program runs
// at `writer_clearance`; what the mechanism outputs is the FINAL CONTENT of
// `observed_file` — i.e. what a passive subject cleared exactly for that
// file sees afterwards. Checked against MakeMlsPolicy at the observer's
// level, this decides whether the write rules stop information from being
// laundered downward through the file system.
std::shared_ptr<ProtectionMechanism> MakeMlsObserverMechanism(
    std::string name, std::shared_ptr<const SecurityLattice> lattice,
    std::vector<ClassId> file_classes, ClassId writer_clearance, MlsMonitorKind kind,
    WriteDiscipline writes, MlsUserProgram program, int observed_file);

}  // namespace secpol

#endif  // SECPOL_SRC_MONITOR_MLS_H_
