// Example 5: the logon program.
//
// "Q : D1 x D2 x D3 -> {true, false} where D1 is the set of userids, D2 the
// set of possible password tables, and D3 the set of passwords. Q(d1,d2,d3)
// is true iff (d1, d3) is in d2. Consider the security policy allow(1,3) —
// do not let the user have any information from the password table. Then Q,
// as its own protection mechanism, is unsound. The reason this program is
// workable in practice is that the amount of information obtained by the
// user is 'small'."
//
// We encode a password table for `num_users` users over an alphabet of
// `password_space` symbols as the base-`password_space` number whose u-th
// digit is user u's password.

#ifndef SECPOL_SRC_MONITOR_LOGON_H_
#define SECPOL_SRC_MONITOR_LOGON_H_

#include <memory>

#include "src/mechanism/mechanism.h"
#include "src/policy/policy.h"
#include "src/util/value.h"

namespace secpol {

// Digit `uid` of `table` in base `password_space` — the stored password.
Value PasswordOf(Value table, Value uid, Value password_space);

// The logon program as its own protection mechanism: inputs (uid, table,
// pw), output 1 iff pw matches. Out-of-range uids never match. Steps: one
// per table digit probed, independent of secret data.
std::shared_ptr<ProtectionMechanism> MakeLogonProgram(int num_users, Value password_space);

// The policy of Example 5: allow(uid, pw) — coordinates 0 and 2 — hiding the
// table (coordinate 1).
AllowPolicy MakeLogonPolicy();

}  // namespace secpol

#endif  // SECPOL_SRC_MONITOR_LOGON_H_
