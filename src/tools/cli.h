// The secpol command-line driver, as a library so tests can drive it.
//
// Commands (the binary is src/tools/secpol_main.cc):
//
//   secpol run <file.fl> --input=1,2,3
//       Run the program under the plain interpreter.
//   secpol monitor <file.fl> --allow=0,2 --input=1,2,3 [--time-safe|--high-water]
//       Run it under a surveillance mechanism.
//   secpol check <file.fl> --allow=0,2 [--grid=lo:hi] [--time] [--mechanism=M]
//                [--threads=N] [--sweep-mode=point|class]
//                [--exec-mode=interpreted|compiled]
//       Exhaustive soundness verdict; M in {surveillance, mprime, highwater,
//       bare, static, residual}. --threads=N evaluates the grid on N worker
//       threads (0 = one per hardware thread, 1 = serial); the verdict and
//       counterexample are identical at every thread count.
//       --sweep-mode=class evaluates one tracked representative per policy
//       equivalence class and covers certified classes by copy (DESIGN.md
//       §14); completed output is byte-identical to the point sweep.
//       --exec-mode=compiled runs surveillance-family mechanisms as
//       instrumented bytecode (DESIGN.md §15); output is byte-identical to
//       the interpreted path.
//   secpol fuzz [--seed=N] [--iterations=N] [--budget-ms=N] [--threads=N]
//               [--out-dir=DIR] [--replay=witness.json]
//       Coverage-guided disagreement fuzzer over the seeded corpus. Exit 0
//       for a clean run, 2 when a true disagreement was found; --out-dir
//       writes self-contained witness JSONs; --replay re-evaluates one
//       witness file instead of fuzzing.
//   secpol analyze <file.fl> --allow=0,2 [--monotone]
//       Static information-flow report (per-halt release labels).
//   secpol instrument <file.fl> --allow=0,2
//       Print the literal Section 3 instrumented flowchart.
//   secpol advise <file.fl> --allow=0,2 [--grid=lo:hi] [--threads=N]
//       Transform-advisor report.
//   secpol optimize <file.fl>
//       Simplify expressions / fold constant tests; print the result.
//   secpol decompile <file.fl>
//       Structure the flowchart back into flowlang (audited round trip).
//   secpol dot <file.fl>
//       Graphviz DOT of the flowchart.
//   secpol bytecode <file.fl>
//       Compiled bytecode listing.

#ifndef SECPOL_SRC_TOOLS_CLI_H_
#define SECPOL_SRC_TOOLS_CLI_H_

#include <string>
#include <vector>

namespace secpol {

// Runs one CLI invocation. `args` excludes the program name. Output and
// diagnostics are appended to *out / *err. Returns the process exit code
// (0 success, 1 user error, 2 verdict-failure for `check`).
int RunCli(const std::vector<std::string>& args, std::string* out, std::string* err);

}  // namespace secpol

#endif  // SECPOL_SRC_TOOLS_CLI_H_
