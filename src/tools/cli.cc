#include "src/tools/cli.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>

#include "src/flowchart/bytecode.h"
#include "src/flowchart/dot.h"
#include "src/flowchart/interpreter.h"
#include "src/flowchart/optimize.h"
#include "src/flowlang/lower.h"
#include "src/flowlang/parser.h"
#include "src/mechanism/fault.h"
#include "src/mechanism/soundness.h"
#include "src/obs/obs.h"
#include "src/policy/policy.h"
#include "src/scenario/fuzzer.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/service/job.h"
#include "src/service/manifest.h"
#include "src/service/service.h"
#include "src/staticflow/analysis.h"
#include "src/staticflow/static_mechanisms.h"
#include "src/surveillance/instrument.h"
#include "src/surveillance/surveillance.h"
#include "src/transforms/advisor.h"
#include "src/transforms/structure.h"
#include "src/util/strings.h"

namespace secpol {

namespace {

struct ParsedArgs {
  std::string command;
  std::string file;
  std::vector<std::pair<std::string, std::string>> flags;  // --name=value / --name
};

std::optional<ParsedArgs> ParseArgs(const std::vector<std::string>& args, std::string* err) {
  if (args.empty()) {
    *err += "usage: secpol <command> <file.fl> [flags]\n";
    return std::nullopt;
  }
  ParsedArgs parsed;
  parsed.command = args[0];
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (StartsWith(arg, "--")) {
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        parsed.flags.emplace_back(arg.substr(2), "");
      } else {
        parsed.flags.emplace_back(arg.substr(2, eq - 2), arg.substr(eq + 1));
      }
    } else if (parsed.file.empty()) {
      parsed.file = arg;
    } else {
      *err += "unexpected positional argument '" + arg + "'\n";
      return std::nullopt;
    }
  }
  return parsed;
}

bool HasFlag(const ParsedArgs& args, const std::string& name) {
  for (const auto& [flag, value] : args.flags) {
    if (flag == name) {
      return true;
    }
  }
  return false;
}

std::optional<std::string> FlagValue(const ParsedArgs& args, const std::string& name) {
  for (const auto& [flag, value] : args.flags) {
    if (flag == name) {
      return value;
    }
  }
  return std::nullopt;
}

// Parses "1,2,3" into integers.
std::optional<std::vector<Value>> ParseValueList(const std::string& text, std::string* err) {
  std::vector<Value> out;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    try {
      out.push_back(std::stoll(item));
    } catch (...) {
      *err += "bad integer '" + item + "'\n";
      return std::nullopt;
    }
  }
  return out;
}

std::optional<VarSet> ParseAllowSet(const ParsedArgs& args, int num_inputs, std::string* err,
                                    const std::string& flag_name = "allow") {
  const std::optional<std::string> value = FlagValue(args, flag_name);
  if (!value.has_value()) {
    *err += "missing --" + flag_name +
            "=<comma-separated input indices> (empty string for allow())\n";
    return std::nullopt;
  }
  VarSet allowed;
  if (value->empty()) {
    return allowed;
  }
  const auto indices = ParseValueList(*value, err);
  if (!indices.has_value()) {
    return std::nullopt;
  }
  for (Value i : *indices) {
    if (i < 0 || i >= num_inputs) {
      *err += "allow index " + std::to_string(i) + " out of range\n";
      return std::nullopt;
    }
    allowed.Insert(static_cast<int>(i));
  }
  return allowed;
}

// THE --grid parse: every grid-taking verb (check, audit, advise) funnels
// through here, so "--grid=lo:hi" means exactly one thing and a malformed
// value produces exactly one message on every verb — a parity locked by
// tests/cli_test.cc. An absent flag keeps the canonical default {-1..2};
// a present-but-malformed one is an error, never a silent default.
bool ParseGridFlag(const ParsedArgs& args, Value* lo, Value* hi, std::string* err) {
  const std::optional<std::string> grid = FlagValue(args, "grid");
  if (!grid.has_value()) {
    return true;
  }
  const size_t colon = grid->find(':');
  if (colon != std::string::npos) {
    try {
      *lo = std::stoll(grid->substr(0, colon));
      *hi = std::stoll(grid->substr(colon + 1));
      return true;
    } catch (...) {
      // fall through to the shared message
    }
  }
  *err += "bad --grid value '" + *grid + "' (expected lo:hi)\n";
  return false;
}

std::optional<InputDomain> ParseGrid(const ParsedArgs& args, int num_inputs,
                                     std::string* err) {
  Value lo = -1;
  Value hi = 2;
  if (!ParseGridFlag(args, &lo, &hi, err)) {
    return std::nullopt;
  }
  return InputDomain::Range(num_inputs, lo, hi);
}

// Parses --threads=N and --deadline-ms=N into grid-evaluation options.
// --threads=0 (the default) means one worker per hardware thread; 1 forces
// the serial reference scan. --deadline-ms bounds the sweep's wall time;
// an exceeded deadline yields a structured kDeadlineExceeded report.
std::optional<CheckOptions> ParseCheckOptions(const ParsedArgs& args, std::string* err) {
  CheckOptions options;
  if (const auto threads = FlagValue(args, "threads"); threads.has_value()) {
    long long value = -1;
    try {
      value = std::stoll(*threads);
    } catch (...) {
      *err += "bad --threads value '" + *threads + "'\n";
      return std::nullopt;
    }
    const Result<int> validated = ValidateThreads(value);
    if (!validated.ok()) {
      *err += "bad --threads value: " + validated.error().message + "\n";
      return std::nullopt;
    }
    options.num_threads = validated.value();
  }
  if (const auto deadline = FlagValue(args, "deadline-ms"); deadline.has_value()) {
    long long millis = 0;
    try {
      millis = std::stoll(*deadline);
    } catch (...) {
      millis = -1;
    }
    const Result<Deadline> validated = ValidateDeadlineMillis(millis);
    if (!validated.ok()) {
      *err += "bad --deadline-ms value '" + *deadline + "': " + validated.error().message +
              "\n";
      return std::nullopt;
    }
    options.deadline = validated.value();
  }
  return options;
}

// Observability sinks for the checking verbs (check | batch | audit):
// --metrics-out=<file> collects a metrics snapshot, --trace-out=<file> a
// Chrome trace (chrome://tracing / Perfetto). Neither flag changes the
// verb's stdout or exit code for a successful write; omitting both keeps
// the instrumentation disabled (null context).
struct ObsSinks {
  std::unique_ptr<MetricsRegistry> metrics;
  std::unique_ptr<TraceRecorder> trace;
  std::string metrics_path;
  std::string trace_path;

  ObsContext Context() const { return ObsContext{metrics.get(), trace.get()}; }

  // Writes whichever sinks are active. Returns false (with *err set) when a
  // file cannot be written.
  bool Write(std::string* err) const {
    if (metrics != nullptr) {
      std::ofstream out(metrics_path, std::ios::binary | std::ios::trunc);
      out << metrics->Snapshot().Pretty() << "\n";
      out.flush();
      if (!out) {
        *err += "cannot write metrics file '" + metrics_path + "'\n";
        return false;
      }
    }
    if (trace != nullptr) {
      std::ofstream out(trace_path, std::ios::binary | std::ios::trunc);
      out << trace->ToJson().Serialize() << "\n";
      out.flush();
      if (!out) {
        *err += "cannot write trace file '" + trace_path + "'\n";
        return false;
      }
    }
    return true;
  }
};

std::optional<ObsSinks> MakeObsSinks(const ParsedArgs& args, std::string* err) {
  ObsSinks sinks;
  if (const auto path = FlagValue(args, "metrics-out"); path.has_value()) {
    if (path->empty()) {
      *err += "missing value for --metrics-out=<file>\n";
      return std::nullopt;
    }
    sinks.metrics_path = *path;
    sinks.metrics = std::make_unique<MetricsRegistry>();
  }
  if (const auto path = FlagValue(args, "trace-out"); path.has_value()) {
    if (path->empty()) {
      *err += "missing value for --trace-out=<file>\n";
      return std::nullopt;
    }
    sinks.trace_path = *path;
    sinks.trace = std::make_unique<TraceRecorder>();
  }
  return sinks;
}

// Folds a failed sink write into a verb's exit code: a clean run becomes
// exit 1, a failing verdict keeps its (more severe) code.
int FoldWrite(int code, const ObsSinks& sinks, std::string* err) {
  if (!sinks.Write(err) && code == 0) {
    return 1;
  }
  return code;
}

std::optional<Program> LoadProgram(const ParsedArgs& args, std::string* err) {
  if (args.file.empty()) {
    *err += "missing program file\n";
    return std::nullopt;
  }
  std::ifstream stream(args.file);
  if (!stream) {
    *err += "cannot open '" + args.file + "'\n";
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << stream.rdbuf();
  Result<SourceProgram> parsed = ParseProgram(buffer.str());
  if (!parsed.ok()) {
    *err += args.file + ":" + parsed.error().ToString() + "\n";
    return std::nullopt;
  }
  return Lower(parsed.value());
}

std::optional<SourceProgram> LoadSource(const ParsedArgs& args, std::string* err) {
  std::ifstream stream(args.file);
  if (!stream) {
    *err += "cannot open '" + args.file + "'\n";
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << stream.rdbuf();
  Result<SourceProgram> parsed = ParseProgram(buffer.str());
  if (!parsed.ok()) {
    *err += args.file + ":" + parsed.error().ToString() + "\n";
    return std::nullopt;
  }
  return std::move(parsed).value();
}

std::optional<Input> ParseInputs(const ParsedArgs& args, int num_inputs, std::string* err) {
  const std::optional<std::string> value = FlagValue(args, "input");
  Input input;
  if (value.has_value() && !value->empty()) {
    const auto parsed = ParseValueList(*value, err);
    if (!parsed.has_value()) {
      return std::nullopt;
    }
    input = *parsed;
  }
  if (static_cast<int>(input.size()) != num_inputs) {
    *err += "expected " + std::to_string(num_inputs) + " inputs, got " +
            std::to_string(input.size()) + "\n";
    return std::nullopt;
  }
  return input;
}

int CmdRun(const ParsedArgs& args, std::string* out, std::string* err) {
  const auto program = LoadProgram(args, err);
  if (!program.has_value()) {
    return 1;
  }
  const auto input = ParseInputs(args, program->num_inputs(), err);
  if (!input.has_value()) {
    return 1;
  }
  const ExecResult result = RunProgram(*program, *input);
  if (!result.halted) {
    *out += "did not halt within fuel\n";
    return 2;
  }
  *out += "y = " + std::to_string(result.output) + " (steps " +
          std::to_string(result.steps) + ")\n";
  return 0;
}

int CmdMonitor(const ParsedArgs& args, std::string* out, std::string* err) {
  const auto program = LoadProgram(args, err);
  if (!program.has_value()) {
    return 1;
  }
  const auto allowed = ParseAllowSet(args, program->num_inputs(), err);
  if (!allowed.has_value()) {
    return 1;
  }
  const auto input = ParseInputs(args, program->num_inputs(), err);
  if (!input.has_value()) {
    return 1;
  }
  const TimingMode timing =
      HasFlag(args, "time-safe") ? TimingMode::kTimeObservable : TimingMode::kTimeUnobservable;
  const LabelDiscipline discipline = HasFlag(args, "high-water")
                                         ? LabelDiscipline::kHighWater
                                         : LabelDiscipline::kSurveillance;
  const SurveillanceMechanism mechanism(std::move(*program), *allowed, timing, discipline);
  *out += mechanism.name() + ": " + mechanism.Run(*input).ToString() + "\n";
  return 0;
}

// Mechanism construction is shared with the batch service (MakeMechanismKind
// in src/service/job.h) so `check --mechanism=X` and a manifest's
// "mechanism": "X" always build the identical object.
std::unique_ptr<ProtectionMechanism> MakeCheckedMechanism(const std::string& kind,
                                                          const Program& program,
                                                          VarSet allowed, std::string* err) {
  std::string error;
  auto mechanism = MakeMechanismKind(kind, program, allowed, &error);
  if (mechanism == nullptr) {
    *err += "bad --mechanism: " + error + "\n";
  }
  return mechanism;
}

std::optional<CheckJobSpec> JobSpecFromFlags(const ParsedArgs& args, CheckerKind checker,
                                             std::string* err);

int CmdCheck(const ParsedArgs& args, std::string* out, std::string* err) {
  // --sweep-mode=class routes the verb through the job layer, whose class
  // sweep covers certified equivalence classes from one representative run
  // (DESIGN.md §14), and --exec-mode=compiled routes it there too so the
  // job layer can build the bytecode fast path (DESIGN.md §15). A completed
  // run's stdout and exit code are byte-identical to the default
  // point/interpreted path — those identities are the modes' core contracts
  // and are locked by tests/cli_test.cc and the scenario matrix.
  const auto cmd_check_exec_mode = FlagValue(args, "exec-mode");
  const bool job_routed_exec =
      cmd_check_exec_mode.has_value() && *cmd_check_exec_mode != "interpreted";
  if (const auto sweep_mode = FlagValue(args, "sweep-mode");
      (sweep_mode.has_value() && *sweep_mode != "point") || job_routed_exec) {
    const std::optional<CheckJobSpec> spec =
        JobSpecFromFlags(args, CheckerKind::kSoundness, err);
    if (!spec.has_value()) {
      return 1;
    }
    const auto sinks = MakeObsSinks(args, err);
    if (!sinks.has_value()) {
      return 1;
    }
    const JobResult result = ExecuteJob(*spec, sinks->Context());
    if (result.status == JobStatus::kInvalid) {
      *err += result.error + "\n";
      return result.exit_code;
    }
    *out += result.report;
    return FoldWrite(result.exit_code, *sinks, err);
  }
  const auto program = LoadProgram(args, err);
  if (!program.has_value()) {
    return 1;
  }
  const auto allowed = ParseAllowSet(args, program->num_inputs(), err);
  if (!allowed.has_value()) {
    return 1;
  }
  const std::string kind = FlagValue(args, "mechanism").value_or("surveillance");
  std::shared_ptr<const ProtectionMechanism> mechanism =
      MakeCheckedMechanism(kind, *program, *allowed, err);
  if (mechanism == nullptr) {
    return 1;
  }
  const auto options = ParseCheckOptions(args, err);
  if (!options.has_value()) {
    return 1;
  }
  const AllowPolicy policy(program->num_inputs(), *allowed);
  const auto parsed_domain = ParseGrid(args, program->num_inputs(), err);
  if (!parsed_domain.has_value()) {
    return 1;
  }
  const InputDomain domain = *parsed_domain;

  // Optional fault injection (for exercising the runtime's degradation
  // paths from the command line) and bounded retry of transient faults.
  if (const auto fault_spec = FlagValue(args, "fault-spec"); fault_spec.has_value()) {
    auto specs = ParseFaultSpecs(*fault_spec);
    if (!specs.ok()) {
      *err += "bad --fault-spec: " + specs.error().ToString() + "\n";
      return 1;
    }
    mechanism = std::make_shared<FaultInjectingMechanism>(std::move(mechanism), domain,
                                                          std::move(specs).value());
  }
  if (const auto retries = FlagValue(args, "retries"); retries.has_value()) {
    long long max_retries = -1;
    try {
      max_retries = std::stoll(*retries);
    } catch (...) {
      max_retries = -1;
    }
    const Result<int> validated = ValidateRetries(max_retries);
    if (!validated.ok()) {
      *err += "bad --retries value '" + *retries + "': " + validated.error().message + "\n";
      return 1;
    }
    mechanism = std::make_shared<RetryingMechanism>(std::move(mechanism), validated.value());
  }

  const auto sinks = MakeObsSinks(args, err);
  if (!sinks.has_value()) {
    return 1;
  }
  CheckOptions check_options = *options;
  check_options.obs = sinks->Context();

  const Observability obs =
      HasFlag(args, "time") ? Observability::kValueAndTime : Observability::kValueOnly;
  const SoundnessReport report =
      CheckSoundness(*mechanism, policy, domain, obs, check_options);
  *out += mechanism->name() + " for " + policy.name() + " over " + domain.ToString() + " [" +
          ObservabilityName(obs) + "]:\n" + report.ToString() + "\n";
  // Exit codes mirror the structured status: a bounded or aborted run is
  // neither "sound" (0) nor "proved unsound" (2) unless a witness was found.
  int code = 4;
  switch (report.progress.status) {
    case CheckStatus::kCompleted:
      code = report.sound ? 0 : 2;
      break;
    case CheckStatus::kDeadlineExceeded:
      code = report.counterexample.has_value() ? 2 : 3;
      break;
    case CheckStatus::kAborted:
      code = 4;
      break;
  }
  return FoldWrite(code, *sinks, err);
}

// `secpol batch <manifest.json>`: run a whole manifest of check jobs
// through the scheduler + result cache and print the JSON batch report.
// Exit code is the most severe per-job code (same vocabulary as `check`,
// plus 5 = rejected by admission control); a manifest that does not parse
// exits 1 before any job runs.
int CmdBatch(const ParsedArgs& args, std::string* out, std::string* err) {
  if (args.file.empty()) {
    *err += "missing manifest file (usage: secpol batch <manifest.json> [--pretty])\n";
    return 1;
  }
  std::ifstream stream(args.file);
  if (!stream) {
    *err += "cannot open '" + args.file + "'\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << stream.rdbuf();
  Result<BatchManifest> manifest = ParseBatchManifest(buffer.str());
  if (!manifest.ok()) {
    *err += args.file + ": " + manifest.error().ToString() + "\n";
    return 1;
  }
  const auto sinks = MakeObsSinks(args, err);
  if (!sinks.has_value()) {
    return 1;
  }
  ServiceConfig config = manifest.value().service;
  config.obs = sinks->Context();
  CheckService service(std::move(config));
  const BatchReport report = service.RunBatch(manifest.value().jobs);
  const Json rendered = BatchReportToJson(report);
  *out += HasFlag(args, "pretty") ? rendered.Pretty() : rendered.Serialize();
  *out += "\n";
  return FoldWrite(report.ExitCode(), *sinks, err);
}

// `secpol audit <file.fl> --allow=... [--allow2=...] [--mechanism=...]
// [--mechanism2=...]`: run all six exhaustive checks in one pass over a
// shared outcome table (see src/service/audit.h). The report is the
// concatenation of the six standalone check reports; the exit code is the
// worst of the six sections'. Routed through ExecuteJob so the CLI, a batch
// manifest, and the cache all render the identical bytes.
// Builds a CheckJobSpec from the checking verbs' shared flag vocabulary
// (--allow / --allow2 / --mechanism / --mechanism2 / --grid / --time /
// --threads / --deadline-ms / --fault-spec / --retries / --sweep-mode /
// --exec-mode), validating every flag with the verbs' own error style
// before the job layer re-validates. Shared by `audit` (always job-routed)
// and `check` (job-routed under --sweep-mode=class or --exec-mode=compiled),
// so both verbs parse each flag — and misparse each flag — identically.
std::optional<CheckJobSpec> JobSpecFromFlags(const ParsedArgs& args, CheckerKind checker,
                                             std::string* err) {
  if (args.file.empty()) {
    *err += "missing program file\n";
    return std::nullopt;
  }
  std::ifstream stream(args.file);
  if (!stream) {
    *err += "cannot open '" + args.file + "'\n";
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << stream.rdbuf();

  CheckJobSpec spec;
  spec.id = CheckerKindName(checker);
  spec.checker = checker;
  spec.program_text = buffer.str();

  // Validate the allow sets against the parsed program up front, so flag
  // errors read like the other verbs' instead of PrepareJob's.
  Result<SourceProgram> parsed = ParseProgram(spec.program_text);
  if (!parsed.ok()) {
    *err += args.file + ":" + parsed.error().ToString() + "\n";
    return std::nullopt;
  }
  const int num_inputs = parsed.value().num_inputs();
  const auto allowed = ParseAllowSet(args, num_inputs, err);
  if (!allowed.has_value()) {
    return std::nullopt;
  }
  spec.allow = *allowed;
  // Default disclosure reference: the policy itself (a trivially true
  // reveals-at-most section) unless --allow2 names a different one.
  spec.allow2 = *allowed;
  if (FlagValue(args, "allow2").has_value()) {
    const auto allowed2 = ParseAllowSet(args, num_inputs, err, "allow2");
    if (!allowed2.has_value()) {
      return std::nullopt;
    }
    spec.allow2 = *allowed2;
  }

  spec.mechanism = FlagValue(args, "mechanism").value_or("surveillance");
  spec.mechanism2 = FlagValue(args, "mechanism2").value_or("bare");
  spec.observe_time = HasFlag(args, "time");
  if (!ParseGridFlag(args, &spec.grid_lo, &spec.grid_hi, err)) {
    return std::nullopt;
  }
  const auto options = ParseCheckOptions(args, err);
  if (!options.has_value()) {
    return std::nullopt;
  }
  spec.num_threads = options->num_threads;
  if (const auto deadline = FlagValue(args, "deadline-ms"); deadline.has_value()) {
    spec.deadline_ms = std::stoll(*deadline);  // validated by ParseCheckOptions above
  }
  if (const auto fault_spec = FlagValue(args, "fault-spec"); fault_spec.has_value()) {
    spec.fault_spec = *fault_spec;
  }
  if (const auto retries = FlagValue(args, "retries"); retries.has_value()) {
    try {
      spec.retries = static_cast<int>(std::stoll(*retries));
    } catch (...) {
      *err += "bad --retries value '" + *retries + "'\n";
      return std::nullopt;
    }
  }
  const std::string sweep_mode = FlagValue(args, "sweep-mode").value_or("point");
  if (sweep_mode != "point" && sweep_mode != "class") {
    *err += "bad --sweep-mode value '" + sweep_mode + "' (expected point or class)\n";
    return std::nullopt;
  }
  spec.sweep_mode = sweep_mode;
  const std::string exec_mode = FlagValue(args, "exec-mode").value_or("interpreted");
  if (exec_mode != "interpreted" && exec_mode != "compiled") {
    *err += "bad --exec-mode value '" + exec_mode + "' (expected interpreted or compiled)\n";
    return std::nullopt;
  }
  spec.exec_mode = exec_mode;
  return spec;
}

int CmdAudit(const ParsedArgs& args, std::string* out, std::string* err) {
  const std::optional<CheckJobSpec> spec_from_flags =
      JobSpecFromFlags(args, CheckerKind::kAudit, err);
  if (!spec_from_flags.has_value()) {
    return 1;
  }
  CheckJobSpec spec = *spec_from_flags;
  spec.id = "audit";

  const auto sinks = MakeObsSinks(args, err);
  if (!sinks.has_value()) {
    return 1;
  }
  const JobResult result = ExecuteJob(spec, sinks->Context());
  if (result.status == JobStatus::kInvalid) {
    *err += result.error + "\n";
    return result.exit_code;
  }
  *out += result.report;
  return FoldWrite(result.exit_code, *sinks, err);
}

// `secpol fuzz [--seed=N] [--iterations=N] [--budget-ms=N] [--threads=N]
// [--out-dir=DIR] [--replay=<witness.json>]`: run the coverage-guided
// disagreement fuzzer over the seeded corpus. Exit 0 for a clean run
// (expected findings are fine), 2 when a true disagreement was found,
// 1 for flag errors. --out-dir writes each finding's self-contained
// witness JSON into DIR (which must exist) as <kind>-<iteration>.json.
//
// With --replay=<witness.json> no fuzzing happens: the witness's oracle
// pair is re-evaluated from scratch. Exit 0 when the phenomenon still
// reproduces, 2 when it does not, 1 for an unreadable witness.
int CmdFuzz(const ParsedArgs& args, std::string* out, std::string* err) {
  if (const auto witness_path = FlagValue(args, "replay"); witness_path.has_value()) {
    std::ifstream stream(*witness_path);
    if (!stream) {
      *err += "cannot open '" + *witness_path + "'\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << stream.rdbuf();
    const Result<Json> witness = Json::Parse(buffer.str());
    if (!witness.ok()) {
      *err += *witness_path + ": " + witness.error().ToString() + "\n";
      return 1;
    }
    const Result<FuzzFinding> finding = FindingFromJson(witness.value());
    if (!finding.ok()) {
      *err += *witness_path + ": " + finding.error().ToString() + "\n";
      return 1;
    }
    const Result<bool> replayed = ReplayFinding(finding.value());
    if (!replayed.ok()) {
      *err += *witness_path + ": " + replayed.error().ToString() + "\n";
      return 1;
    }
    *out += FindingKindName(finding.value().kind) +
            (replayed.value() ? ": reproduces\n" : ": does not reproduce\n");
    return replayed.value() ? 0 : 2;
  }

  FuzzerConfig config;
  const auto int_flag = [&](const std::string& name, long long* value) {
    const std::optional<std::string> text = FlagValue(args, name);
    if (!text.has_value()) {
      return true;
    }
    try {
      *value = std::stoll(*text);
    } catch (...) {
      *err += "bad --" + name + " value '" + *text + "'\n";
      return false;
    }
    if (*value < 0) {
      *err += "--" + name + " must be non-negative\n";
      return false;
    }
    return true;
  };
  long long seed = static_cast<long long>(config.seed);
  long long iterations = static_cast<long long>(config.iterations);
  long long budget_ms = config.budget_ms;
  long long threads = config.threads;
  if (!int_flag("seed", &seed) || !int_flag("iterations", &iterations) ||
      !int_flag("budget-ms", &budget_ms) || !int_flag("threads", &threads)) {
    return 1;
  }
  if (iterations == 0 && budget_ms == 0) {
    *err += "--iterations=0 needs --budget-ms to bound the run\n";
    return 1;
  }
  config.seed = static_cast<std::uint64_t>(seed);
  config.iterations = static_cast<std::uint64_t>(iterations);
  config.budget_ms = budget_ms;
  const Result<int> validated_threads = ValidateThreads(threads);
  if (!validated_threads.ok()) {
    *err += "bad --threads value: " + validated_threads.error().message + "\n";
    return 1;
  }
  // threads=0 means "hardware concurrency" for the check verbs; the fuzzer's
  // parallel-vs-serial oracle wants an explicit worker count, so resolve it.
  config.threads = validated_threads.value() == 0 ? 7 : validated_threads.value();

  DisagreementFuzzer fuzzer(config);
  const FuzzReport report = fuzzer.Run();
  *out += report.ToString() + "\n";

  int code = report.clean() ? 0 : 2;
  if (const auto out_dir = FlagValue(args, "out-dir"); out_dir.has_value()) {
    if (out_dir->empty()) {
      *err += "missing value for --out-dir=<directory>\n";
      return 1;
    }
    for (const FuzzFinding& finding : report.findings) {
      const std::string path = *out_dir + "/" + FindingKindName(finding.kind) + "-" +
                               std::to_string(finding.iteration) + ".json";
      std::ofstream witness_out(path, std::ios::binary | std::ios::trunc);
      witness_out << finding.ToJson().Serialize() << "\n";
      witness_out.flush();
      if (!witness_out) {
        *err += "cannot write witness file '" + path + "'\n";
        if (code == 0) {
          code = 1;
        }
        break;
      }
      *out += "wrote " + path + "\n";
    }
  }
  return code;
}

// Set by SIGTERM/SIGINT; the serve loop polls it and drains.
volatile std::sig_atomic_t g_serve_stop = 0;
void ServeStopHandler(int) { g_serve_stop = 1; }

// Shared by serve/submit: a non-negative integer flag with a parse error
// naming the flag.
bool NonNegativeFlag(const ParsedArgs& args, const std::string& name, long long* value,
                     std::string* err) {
  const std::optional<std::string> text = FlagValue(args, name);
  if (!text.has_value()) {
    return true;
  }
  try {
    *value = std::stoll(*text);
  } catch (...) {
    *err += "bad --" + name + " value '" + *text + "'\n";
    return false;
  }
  if (*value < 0) {
    *err += "--" + name + " must be non-negative\n";
    return false;
  }
  return true;
}

// `secpol serve --socket=<path> [--tcp=<port>] [--concurrency=N]
// [--cache-capacity=N] [--max-inflight=N] [--max-frame-bytes=N]
// [--max-json-depth=N] [--defaults=<defaults.json>]`: run the persistent
// checking daemon until SIGTERM/SIGINT, then drain gracefully (admitted
// jobs complete; new submissions get typed shutting-down rejections).
// --defaults names a JSON file holding a manifest-vocabulary job object
// applied as the initial per-job defaults (reload can replace them later).
int CmdServe(const ParsedArgs& args, std::string* out, std::string* err) {
  ServerConfig config;
  config.unix_path = FlagValue(args, "socket").value_or("");
  long long tcp_port = -1;
  long long concurrency = config.concurrency;
  long long cache_capacity = static_cast<long long>(config.cache_capacity);
  long long max_inflight = config.quotas.max_inflight_per_client;
  long long max_frame_bytes = static_cast<long long>(config.quotas.max_frame_bytes);
  long long max_json_depth = config.quotas.max_json_depth;
  if (FlagValue(args, "tcp").has_value() && !NonNegativeFlag(args, "tcp", &tcp_port, err)) {
    return 1;
  }
  if (!NonNegativeFlag(args, "concurrency", &concurrency, err) ||
      !NonNegativeFlag(args, "cache-capacity", &cache_capacity, err) ||
      !NonNegativeFlag(args, "max-inflight", &max_inflight, err) ||
      !NonNegativeFlag(args, "max-frame-bytes", &max_frame_bytes, err) ||
      !NonNegativeFlag(args, "max-json-depth", &max_json_depth, err)) {
    return 1;
  }
  if (config.unix_path.empty() && tcp_port < 0) {
    *err += "usage: secpol serve --socket=<path> and/or --tcp=<port>\n";
    return 1;
  }
  if (cache_capacity < 1 || max_inflight < 1 || max_frame_bytes < 1) {
    *err += "--cache-capacity, --max-inflight and --max-frame-bytes must be >= 1\n";
    return 1;
  }
  config.tcp_port = static_cast<int>(tcp_port);
  config.concurrency = static_cast<int>(concurrency);
  config.cache_capacity = static_cast<std::size_t>(cache_capacity);
  config.quotas.max_inflight_per_client = static_cast<int>(max_inflight);
  config.quotas.max_frame_bytes = static_cast<std::size_t>(max_frame_bytes);
  config.quotas.max_json_depth = static_cast<int>(max_json_depth);

  if (const auto path = FlagValue(args, "defaults"); path.has_value()) {
    std::ifstream stream(*path);
    if (!stream) {
      *err += "cannot open '" + *path + "'\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << stream.rdbuf();
    const Result<Json> defaults = Json::Parse(buffer.str());
    if (!defaults.ok()) {
      *err += *path + ": " + defaults.error().ToString() + "\n";
      return 1;
    }
    if (!defaults.value().is_object()) {
      *err += *path + ": defaults must be a JSON object\n";
      return 1;
    }
    const Result<bool> applied = ApplyManifestJobFields(defaults.value(), "defaults",
                                                        &config.defaults,
                                                        JobFieldSource::kLocalManifest);
    if (!applied.ok()) {
      *err += *path + ": " + applied.error().message + "\n";
      return 1;
    }
  }

  CheckServer server(std::move(config));
  const Result<bool> started = server.Start();
  if (!started.ok()) {
    *err += started.error().message + "\n";
    return 1;
  }
  // Readiness goes straight to stdout (the buffered *out is only flushed at
  // exit, which for a daemon is too late for whoever is waiting to connect).
  std::string listening = "secpol serve: listening on";
  if (!server.unix_path().empty()) {
    listening += " unix:" + server.unix_path();
  }
  if (server.tcp_port() >= 0) {
    listening += " tcp:" + std::to_string(server.tcp_port());
  }
  std::printf("%s\n", listening.c_str());
  std::fflush(stdout);

  g_serve_stop = 0;
  std::signal(SIGTERM, ServeStopHandler);
  std::signal(SIGINT, ServeStopHandler);
  while (g_serve_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Shutdown();
  *out += "secpol serve: drained and stopped\n";
  return 0;
}

// `secpol submit (--socket=<path> | --tcp=<port>) <mode>` — the serve
// daemon's client. Modes:
//   --job=<inline-json> | --job-file=<file> | <file>   submit one job
//   --ping                                             liveness + epoch
//   --stats                                            live daemon stats
//   --reload-defaults=<json> / --reload-quotas=<json>  hot policy swap
// A submitted job prints its result frame (--print-report: just the report
// body, byte-identical to `secpol batch`'s for the same job) and exits with
// the job's exit code; typed error frames map to the rejected code (5) for
// over-quota/shutting-down and the protocol code (6) otherwise.
int CmdSubmit(const ParsedArgs& args, std::string* out, std::string* err) {
  Result<ServeClient> connected = Error{"unconnected"};
  if (const auto socket = FlagValue(args, "socket"); socket.has_value()) {
    connected = ServeClient::ConnectUnixPath(*socket);
  } else if (const auto tcp = FlagValue(args, "tcp"); tcp.has_value()) {
    long long port = -1;
    if (!NonNegativeFlag(args, "tcp", &port, err)) {
      return 1;
    }
    connected = ServeClient::ConnectTcpPort(static_cast<int>(port));
  } else {
    *err += "usage: secpol submit (--socket=<path> | --tcp=<port>) ...\n";
    return 1;
  }
  if (!connected.ok()) {
    *err += connected.error().message + "\n";
    return kServeProtocolExitCode;
  }
  ServeClient client = std::move(connected).value();

  if (HasFlag(args, "ping")) {
    const Result<Json> pong = client.Ping();
    if (!pong.ok()) {
      *err += pong.error().message + "\n";
      return kServeProtocolExitCode;
    }
    *out += pong.value().Serialize() + "\n";
    return 0;
  }
  if (HasFlag(args, "stats")) {
    const Result<Json> stats = client.Stats();
    if (!stats.ok()) {
      *err += stats.error().message + "\n";
      return kServeProtocolExitCode;
    }
    *out += (HasFlag(args, "pretty") ? stats.value().Pretty() : stats.value().Serialize()) + "\n";
    return 0;
  }
  if (FlagValue(args, "reload-defaults").has_value() ||
      FlagValue(args, "reload-quotas").has_value()) {
    const auto parse_patch = [&](const std::string& name) -> std::optional<Json> {
      const std::optional<std::string> text = FlagValue(args, name);
      if (!text.has_value()) {
        return Json();  // null = no patch
      }
      const Result<Json> patch = Json::Parse(*text);
      if (!patch.ok() || !patch.value().is_object()) {
        *err += "--" + name + ": expected an inline JSON object\n";
        return std::nullopt;
      }
      return patch.value();
    };
    const std::optional<Json> defaults = parse_patch("reload-defaults");
    const std::optional<Json> quotas = parse_patch("reload-quotas");
    if (!defaults.has_value() || !quotas.has_value()) {
      return 1;
    }
    const Result<Json> response = client.Reload(*defaults, *quotas);
    if (!response.ok()) {
      *err += response.error().message + "\n";
      return kServeProtocolExitCode;
    }
    *out += response.value().Serialize() + "\n";
    const Json* type = response.value().Find("type");
    return type != nullptr && type->is_string() && type->AsString() == "reload-ok"
               ? 0
               : ServeClient::ExitCodeFor(response.value());
  }

  std::string job_text;
  if (const auto inline_job = FlagValue(args, "job"); inline_job.has_value()) {
    job_text = *inline_job;
  } else {
    const std::string path = FlagValue(args, "job-file").value_or(args.file);
    if (path.empty()) {
      *err += "missing job: --job=<json>, --job-file=<file>, or a positional file\n";
      return 1;
    }
    std::ifstream stream(path);
    if (!stream) {
      *err += "cannot open '" + path + "'\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << stream.rdbuf();
    job_text = buffer.str();
  }
  const Result<Json> job = Json::Parse(job_text);
  if (!job.ok()) {
    *err += "job: " + job.error().ToString() + "\n";
    return 1;
  }
  if (!job.value().is_object()) {
    *err += "job: expected a JSON object\n";
    return 1;
  }
  // "program_file" is a client-side convenience: the daemon refuses to read
  // files on its own host, so the path is resolved here — against *this*
  // process's filesystem — and shipped inline as "program".
  Json job_object = job.value();
  if (const Json* program_file = job_object.Find("program_file");
      program_file != nullptr && program_file->is_string()) {
    std::ifstream stream(program_file->AsString());
    if (!stream) {
      *err += "job.program_file: cannot open '" + program_file->AsString() + "'\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << stream.rdbuf();
    Json inlined = Json::MakeObject();
    for (const auto& [key, value] : job_object.Members()) {
      if (key != "program_file") {
        inlined.Set(key, value);
      }
    }
    inlined.Set("program", Json::MakeString(buffer.str()));
    job_object = std::move(inlined);
  }

  const Result<Json> terminal = client.SubmitJob(job_object);
  if (!terminal.ok()) {
    *err += terminal.error().message + "\n";
    return kServeProtocolExitCode;
  }
  if (HasFlag(args, "print-report")) {
    const Json* result_job = terminal.value().Find("job");
    const Json* report = result_job != nullptr ? result_job->Find("report") : nullptr;
    if (report != nullptr && report->is_string()) {
      *out += report->AsString();
    } else if (const Json* message = terminal.value().Find("message");
               message != nullptr && message->is_string()) {
      *err += message->AsString() + "\n";
    }
  } else {
    *out +=
        (HasFlag(args, "pretty") ? terminal.value().Pretty() : terminal.value().Serialize()) +
        "\n";
  }
  return ServeClient::ExitCodeFor(terminal.value());
}

int CmdAnalyze(const ParsedArgs& args, std::string* out, std::string* err) {
  const auto program = LoadProgram(args, err);
  if (!program.has_value()) {
    return 1;
  }
  const auto allowed = ParseAllowSet(args, program->num_inputs(), err);
  if (!allowed.has_value()) {
    return 1;
  }
  const PcDiscipline discipline =
      HasFlag(args, "monotone") ? PcDiscipline::kMonotonePc : PcDiscipline::kScopedPc;
  const StaticFlowResult flow = AnalyzeInformationFlow(*program, discipline);
  *out += "analysis: " + PcDisciplineName(discipline) + ", " + std::to_string(flow.rounds) +
          " fixpoint rounds\n";
  for (int h : flow.halts) {
    *out += "  halt box " + std::to_string(h) + ": release label " +
            flow.release_label[h].ToString() +
            (flow.release_label[h].SubsetOf(*allowed) ? " (releases)" : " (violates)") + "\n";
  }
  *out += "program release label: " + flow.program_release_label.ToString() + " -> " +
          (flow.program_release_label.SubsetOf(*allowed) ? "CERTIFIED" : "NOT CERTIFIED") +
          " for allow=" + allowed->ToString() + "\n";
  return 0;
}

int CmdInstrument(const ParsedArgs& args, std::string* out, std::string* err) {
  const auto program = LoadProgram(args, err);
  if (!program.has_value()) {
    return 1;
  }
  const auto allowed = ParseAllowSet(args, program->num_inputs(), err);
  if (!allowed.has_value()) {
    return 1;
  }
  *out += InstrumentSurveillance(*program, *allowed).ToString();
  return 0;
}

int CmdAdvise(const ParsedArgs& args, std::string* out, std::string* err) {
  const auto source = LoadSource(args, err);
  if (!source.has_value()) {
    return 1;
  }
  const int num_inputs = source->num_inputs();
  const auto allowed = ParseAllowSet(args, num_inputs, err);
  if (!allowed.has_value()) {
    return 1;
  }
  const auto check = ParseCheckOptions(args, err);
  if (!check.has_value()) {
    return 1;
  }
  const auto parsed_domain = ParseGrid(args, num_inputs, err);
  if (!parsed_domain.has_value()) {
    return 1;
  }
  const InputDomain domain = *parsed_domain;
  AdvisorOptions advisor_options;
  advisor_options.check = *check;
  const AdvisorReport report = AdviseTransforms(*source, *allowed, domain, advisor_options);
  *out += report.ToString();
  *out += "chosen rewriting:\n" + report.best().program.ToString();
  return 0;
}

int CmdOptimize(const ParsedArgs& args, std::string* out, std::string* err) {
  const auto program = LoadProgram(args, err);
  if (!program.has_value()) {
    return 1;
  }
  OptimizeStats stats;
  const Program optimized = OptimizeProgram(*program, &stats);
  *out += "simplified " + std::to_string(stats.expressions_simplified) +
          " expressions, folded " + std::to_string(stats.predicates_folded) +
          " constant decisions\n";
  *out += optimized.ToString();
  return 0;
}

int CmdDecompile(const ParsedArgs& args, std::string* out, std::string* err) {
  const auto program = LoadProgram(args, err);
  if (!program.has_value()) {
    return 1;
  }
  const auto structured = StructureProgram(*program);
  if (!structured.has_value()) {
    *err += "control flow is not structurable\n";
    return 2;
  }
  // Audit before printing: a decompiler that can be wrong is worse than one
  // that refuses.
  if (!FunctionallyEquivalentOnGrid(*program, Lower(*structured), {-2, -1, 0, 1, 2})) {
    *err += "internal error: structuring audit failed\n";
    return 2;
  }
  *out += structured->ToString();
  return 0;
}

int CmdDot(const ParsedArgs& args, std::string* out, std::string* err) {
  const auto program = LoadProgram(args, err);
  if (!program.has_value()) {
    return 1;
  }
  *out += ProgramToDot(*program);
  return 0;
}

int CmdBytecode(const ParsedArgs& args, std::string* out, std::string* err) {
  const auto program = LoadProgram(args, err);
  if (!program.has_value()) {
    return 1;
  }
  // The compiler fails closed on programs its validity audit rejects; in
  // Release builds that surfaces as a typed BytecodeError, not an assert.
  try {
    *out += CompileToBytecode(*program).ToString();
  } catch (const BytecodeError& error) {
    *err += std::string("bytecode: ") + error.what() + "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::string* out, std::string* err) {
  const auto parsed = ParseArgs(args, err);
  if (!parsed.has_value()) {
    return 1;
  }
  if (parsed->command == "run") {
    return CmdRun(*parsed, out, err);
  }
  if (parsed->command == "monitor") {
    return CmdMonitor(*parsed, out, err);
  }
  if (parsed->command == "check") {
    return CmdCheck(*parsed, out, err);
  }
  // Both spellings: `secpol batch m.json` and `secpol --batch m.json`.
  if (parsed->command == "batch" || parsed->command == "--batch") {
    return CmdBatch(*parsed, out, err);
  }
  if (parsed->command == "audit") {
    return CmdAudit(*parsed, out, err);
  }
  if (parsed->command == "fuzz") {
    return CmdFuzz(*parsed, out, err);
  }
  if (parsed->command == "serve") {
    return CmdServe(*parsed, out, err);
  }
  if (parsed->command == "submit") {
    return CmdSubmit(*parsed, out, err);
  }
  if (parsed->command == "analyze") {
    return CmdAnalyze(*parsed, out, err);
  }
  if (parsed->command == "instrument") {
    return CmdInstrument(*parsed, out, err);
  }
  if (parsed->command == "advise") {
    return CmdAdvise(*parsed, out, err);
  }
  if (parsed->command == "decompile") {
    return CmdDecompile(*parsed, out, err);
  }
  if (parsed->command == "optimize") {
    return CmdOptimize(*parsed, out, err);
  }
  if (parsed->command == "dot") {
    return CmdDot(*parsed, out, err);
  }
  if (parsed->command == "bytecode") {
    return CmdBytecode(*parsed, out, err);
  }
  *err += "unknown command '" + parsed->command +
          "' (expected run|monitor|check|audit|batch|serve|submit|fuzz|analyze|instrument|advise|optimize|decompile|dot|bytecode)\n";
  return 1;
}

}  // namespace secpol
