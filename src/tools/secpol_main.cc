// The secpol command-line tool. See src/tools/cli.h for usage.

#include <cstdio>
#include <string>
#include <vector>

#include "src/tools/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string out;
  std::string err;
  const int code = secpol::RunCli(args, &out, &err);
  std::fputs(out.c_str(), stdout);
  std::fputs(err.c_str(), stderr);
  return code;
}
