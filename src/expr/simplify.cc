#include "src/expr/simplify.h"

namespace secpol {

namespace {

bool IsConst(const Expr& e, Value v) {
  return e.kind() == Expr::Kind::kConst && e.const_value() == v;
}

bool IsAnyConst(const Expr& e) { return e.kind() == Expr::Kind::kConst; }

// Folds a binary op over two constants by evaluating through the regular
// total semantics (empty environment: constants have no variables).
Expr FoldBinary(BinaryOp op, const Expr& a, const Expr& b) {
  return Expr::Const(Expr::Binary(op, a, b).Eval({}));
}

Expr SimplifyBinary(BinaryOp op, Expr a, Expr b) {
  if (IsAnyConst(a) && IsAnyConst(b)) {
    return FoldBinary(op, a, b);
  }
  switch (op) {
    case BinaryOp::kAdd:
      if (IsConst(a, 0)) {
        return b;
      }
      if (IsConst(b, 0)) {
        return a;
      }
      break;
    case BinaryOp::kSub:
      if (IsConst(b, 0)) {
        return a;
      }
      if (a.StructurallyEquals(b)) {
        return Expr::Const(0);  // x - x == 0, and drops x's dependency
      }
      break;
    case BinaryOp::kMul:
      if (IsConst(a, 0) || IsConst(b, 0)) {
        return Expr::Const(0);  // total semantics: no side conditions
      }
      if (IsConst(a, 1)) {
        return b;
      }
      if (IsConst(b, 1)) {
        return a;
      }
      break;
    case BinaryOp::kDiv:
      if (IsConst(b, 1)) {
        return a;
      }
      if (IsConst(b, 0)) {
        return Expr::Const(0);  // division by zero is defined as 0
      }
      break;
    case BinaryOp::kMod:
      if (IsConst(b, 1) || IsConst(b, 0)) {
        return Expr::Const(0);
      }
      break;
    case BinaryOp::kMin:
    case BinaryOp::kMax:
      if (a.StructurallyEquals(b)) {
        return a;
      }
      break;
    case BinaryOp::kBitAnd:
      if (IsConst(a, 0) || IsConst(b, 0)) {
        return Expr::Const(0);
      }
      if (IsConst(a, -1)) {
        return b;
      }
      if (IsConst(b, -1)) {
        return a;
      }
      break;
    case BinaryOp::kBitOr:
      if (IsConst(a, 0)) {
        return b;
      }
      if (IsConst(b, 0)) {
        return a;
      }
      if (IsConst(a, -1) || IsConst(b, -1)) {
        return Expr::Const(-1);
      }
      break;
    case BinaryOp::kBitXor:
      if (IsConst(a, 0)) {
        return b;
      }
      if (IsConst(b, 0)) {
        return a;
      }
      if (a.StructurallyEquals(b)) {
        return Expr::Const(0);
      }
      break;
    case BinaryOp::kEq:
    case BinaryOp::kLe:
    case BinaryOp::kGe:
      if (a.StructurallyEquals(b)) {
        return Expr::Const(1);
      }
      break;
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kGt:
      if (a.StructurallyEquals(b)) {
        return Expr::Const(0);
      }
      break;
    case BinaryOp::kAnd:
      if (IsConst(a, 0) || IsConst(b, 0)) {
        return Expr::Const(0);
      }
      if (IsAnyConst(a) && a.const_value() != 0) {
        // Truth-test the remaining operand.
        return Expr::Binary(BinaryOp::kNe, b, Expr::Const(0));
      }
      if (IsAnyConst(b) && b.const_value() != 0) {
        return Expr::Binary(BinaryOp::kNe, a, Expr::Const(0));
      }
      break;
    case BinaryOp::kOr:
      if ((IsAnyConst(a) && a.const_value() != 0) ||
          (IsAnyConst(b) && b.const_value() != 0)) {
        return Expr::Const(1);
      }
      if (IsConst(a, 0)) {
        return Expr::Binary(BinaryOp::kNe, b, Expr::Const(0));
      }
      if (IsConst(b, 0)) {
        return Expr::Binary(BinaryOp::kNe, a, Expr::Const(0));
      }
      break;
  }
  return Expr::Binary(op, std::move(a), std::move(b));
}

}  // namespace

Expr Simplify(const Expr& expr) {
  switch (expr.kind()) {
    case Expr::Kind::kConst:
    case Expr::Kind::kVar:
      return expr;
    case Expr::Kind::kUnary: {
      Expr operand = Simplify(expr.operand(0));
      if (IsAnyConst(operand)) {
        return Expr::Const(Expr::Unary(expr.unary_op(), operand).Eval({}));
      }
      // Neg(Neg(x)) == x under wrapping arithmetic.
      if (expr.unary_op() == UnaryOp::kNeg && operand.kind() == Expr::Kind::kUnary &&
          operand.unary_op() == UnaryOp::kNeg) {
        return operand.operand(0);
      }
      return Expr::Unary(expr.unary_op(), std::move(operand));
    }
    case Expr::Kind::kBinary:
      return SimplifyBinary(expr.binary_op(), Simplify(expr.operand(0)),
                            Simplify(expr.operand(1)));
    case Expr::Kind::kSelect: {
      Expr cond = Simplify(expr.operand(0));
      Expr then_value = Simplify(expr.operand(1));
      Expr else_value = Simplify(expr.operand(2));
      if (IsAnyConst(cond)) {
        return cond.const_value() != 0 ? then_value : else_value;
      }
      // The Example 7 rule: equal arms drop the condition (and with it the
      // condition's entire dependency set).
      if (then_value.StructurallyEquals(else_value)) {
        return then_value;
      }
      return Expr::Select(std::move(cond), std::move(then_value), std::move(else_value));
    }
  }
  return expr;
}

}  // namespace secpol
