// The total arithmetic semantics shared by the AST evaluator and the
// bytecode interpreter. Wrapping add/sub/mul, division/remainder defined as
// 0 on zero divisors, INT64_MIN / -1 handled explicitly.

#ifndef SECPOL_SRC_EXPR_ARITH_H_
#define SECPOL_SRC_EXPR_ARITH_H_

#include <cstdint>

#include "src/expr/expr.h"
#include "src/util/value.h"

namespace secpol {

inline Value WrapAdd(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint64_t>(a) + static_cast<std::uint64_t>(b));
}
inline Value WrapSub(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint64_t>(a) - static_cast<std::uint64_t>(b));
}
inline Value WrapMul(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b));
}
inline Value TotalDiv(Value a, Value b) {
  if (b == 0) {
    return 0;
  }
  if (a == INT64_MIN && b == -1) {
    return INT64_MIN;
  }
  return a / b;
}
inline Value TotalMod(Value a, Value b) {
  if (b == 0) {
    return 0;
  }
  if (a == INT64_MIN && b == -1) {
    return 0;
  }
  return a % b;
}

inline Value EvalUnaryOp(UnaryOp op, Value a) {
  switch (op) {
    case UnaryOp::kNeg:
      return WrapSub(0, a);
    case UnaryOp::kNot:
      return a == 0 ? 1 : 0;
  }
  return 0;
}

inline Value EvalBinaryOp(BinaryOp op, Value a, Value b) {
  switch (op) {
    case BinaryOp::kAdd:
      return WrapAdd(a, b);
    case BinaryOp::kSub:
      return WrapSub(a, b);
    case BinaryOp::kMul:
      return WrapMul(a, b);
    case BinaryOp::kDiv:
      return TotalDiv(a, b);
    case BinaryOp::kMod:
      return TotalMod(a, b);
    case BinaryOp::kMin:
      return a < b ? a : b;
    case BinaryOp::kMax:
      return a > b ? a : b;
    case BinaryOp::kBitAnd:
      return a & b;
    case BinaryOp::kBitOr:
      return a | b;
    case BinaryOp::kBitXor:
      return a ^ b;
    case BinaryOp::kEq:
      return a == b ? 1 : 0;
    case BinaryOp::kNe:
      return a != b ? 1 : 0;
    case BinaryOp::kLt:
      return a < b ? 1 : 0;
    case BinaryOp::kLe:
      return a <= b ? 1 : 0;
    case BinaryOp::kGt:
      return a > b ? 1 : 0;
    case BinaryOp::kGe:
      return a >= b ? 1 : 0;
    case BinaryOp::kAnd:
      return (a != 0 && b != 0) ? 1 : 0;
    case BinaryOp::kOr:
      return (a != 0 || b != 0) ? 1 : 0;
  }
  return 0;
}

}  // namespace secpol

#endif  // SECPOL_SRC_EXPR_ARITH_H_
