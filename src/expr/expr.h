// The expression language of the flowchart model.
//
// The paper allows arbitrary recursive expressions E(w) and predicates B(w) in
// assignment and decision boxes. We provide a concrete total expression
// language over 64-bit integers: constants, variables, arithmetic, bitwise
// operators, comparisons (yielding 0/1), boolean connectives, and a ternary
// branch-free Select. Predicates are expressions interpreted as "true iff
// nonzero".
//
// Totality: division and remainder by zero evaluate to 0; signed overflow
// wraps (evaluation is done in unsigned arithmetic). Every expression is thus
// a total function of its environment, as the paper requires.
//
// Expressions are immutable values: an Expr is a shared handle to an
// immutable node, so copying is cheap and structural sharing is free.

#ifndef SECPOL_SRC_EXPR_EXPR_H_
#define SECPOL_SRC_EXPR_EXPR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/util/fingerprint.h"
#include "src/util/value.h"
#include "src/util/var_set.h"

namespace secpol {

enum class UnaryOp {
  kNeg,  // -a
  kNot,  // !a (1 if a == 0 else 0)
};

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,  // a / b, 0 when b == 0
  kMod,  // a % b, 0 when b == 0
  kMin,
  kMax,
  kBitAnd,
  kBitOr,
  kBitXor,
  kEq,  // comparisons yield 0 or 1
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,  // logical; operands are truth-tested against 0
  kOr,
};

// Returns the surface syntax for an operator ("+", "==", "min", ...).
std::string BinaryOpName(BinaryOp op);
std::string UnaryOpName(UnaryOp op);

class Expr {
 public:
  enum class Kind { kConst, kVar, kUnary, kBinary, kSelect };

  // Default-constructed Expr is the constant 0.
  Expr();

  // --- Factories ---
  static Expr Const(Value value);
  static Expr Var(int var_id);
  static Expr Unary(UnaryOp op, Expr operand);
  static Expr Binary(BinaryOp op, Expr lhs, Expr rhs);
  // Branch-free conditional: value of `then_value` if cond != 0 else
  // `else_value`. Both arms are always "evaluated" (their variables count as
  // dependencies); this is what the if-then-else transform of Section 4
  // produces.
  static Expr Select(Expr cond, Expr then_value, Expr else_value);

  // --- Structure accessors ---
  Kind kind() const;
  Value const_value() const;           // requires kConst
  int var_id() const;                  // requires kVar
  UnaryOp unary_op() const;            // requires kUnary
  BinaryOp binary_op() const;          // requires kBinary
  const Expr& operand(int i) const;    // child i (0-based)
  int num_operands() const;

  // --- Semantics ---
  // Evaluates under `env`, where env[i] is the value of variable i. All
  // referenced variable ids must be < env.size().
  Value Eval(InputView env) const;

  // The set of variable ids appearing in this expression: the w1..wp of an
  // assignment box, used to build surveillance labels.
  VarSet FreeVars() const;

  // Number of AST nodes; used as a data-independent evaluation cost.
  int NodeCount() const;

  // Structural equality (used by the select-simplification rule that powers
  // Example 7: Select(c, e, e) ==> e).
  bool StructurallyEquals(const Expr& other) const;

  // Returns a copy with every variable id i replaced by remap(i).
  Expr MapVars(const std::function<int(int)>& remap) const;

  // Canonical serialization hook for content addressing: appends a tagged
  // encoding of the AST structure (kinds, operators, constants, variable
  // ids). Structurally equal expressions encode identically; anything that
  // can change Eval() changes the encoding. Pinned by golden hashes in
  // tests/fingerprint_test.cc.
  void AppendFingerprint(Fingerprinter* fp) const;

  // Renders with variable names provided by `var_name`.
  std::string ToString(const std::function<std::string(int)>& var_name) const;
  // Renders with default names v0, v1, ...
  std::string ToString() const;

 private:
  struct Node;
  explicit Expr(std::shared_ptr<const Node> node);
  std::shared_ptr<const Node> node_;
};

// Convenience builders used pervasively in tests and examples.
inline Expr C(Value v) { return Expr::Const(v); }
inline Expr V(int id) { return Expr::Var(id); }
inline Expr Add(Expr a, Expr b) { return Expr::Binary(BinaryOp::kAdd, a, b); }
inline Expr Sub(Expr a, Expr b) { return Expr::Binary(BinaryOp::kSub, a, b); }
inline Expr Mul(Expr a, Expr b) { return Expr::Binary(BinaryOp::kMul, a, b); }
inline Expr Eq(Expr a, Expr b) { return Expr::Binary(BinaryOp::kEq, a, b); }
inline Expr Ne(Expr a, Expr b) { return Expr::Binary(BinaryOp::kNe, a, b); }
inline Expr Lt(Expr a, Expr b) { return Expr::Binary(BinaryOp::kLt, a, b); }

}  // namespace secpol

#endif  // SECPOL_SRC_EXPR_EXPR_H_
