#include "src/expr/expr.h"

#include "src/expr/arith.h"

#include <cassert>
#include <cstdint>

namespace secpol {

struct Expr::Node {
  Kind kind;
  Value const_value = 0;
  int var_id = -1;
  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kAdd;
  std::vector<Expr> children;
};

std::string BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kMin:
      return "min";
    case BinaryOp::kMax:
      return "max";
    case BinaryOp::kBitAnd:
      return "&";
    case BinaryOp::kBitOr:
      return "|";
    case BinaryOp::kBitXor:
      return "^";
    case BinaryOp::kEq:
      return "==";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "&&";
    case BinaryOp::kOr:
      return "||";
  }
  return "?";
}

std::string UnaryOpName(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNeg:
      return "-";
    case UnaryOp::kNot:
      return "!";
  }
  return "?";
}

Expr::Expr() : Expr(Const(0)) {}

Expr::Expr(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

Expr Expr::Const(Value value) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kConst;
  node->const_value = value;
  return Expr(std::move(node));
}

Expr Expr::Var(int var_id) {
  assert(var_id >= 0 && var_id <= VarSet::kMaxIndex);
  auto node = std::make_shared<Node>();
  node->kind = Kind::kVar;
  node->var_id = var_id;
  return Expr(std::move(node));
}

Expr Expr::Unary(UnaryOp op, Expr operand) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kUnary;
  node->unary_op = op;
  node->children = {std::move(operand)};
  return Expr(std::move(node));
}

Expr Expr::Binary(BinaryOp op, Expr lhs, Expr rhs) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kBinary;
  node->binary_op = op;
  node->children = {std::move(lhs), std::move(rhs)};
  return Expr(std::move(node));
}

Expr Expr::Select(Expr cond, Expr then_value, Expr else_value) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kSelect;
  node->children = {std::move(cond), std::move(then_value), std::move(else_value)};
  return Expr(std::move(node));
}

Expr::Kind Expr::kind() const { return node_->kind; }

Value Expr::const_value() const {
  assert(kind() == Kind::kConst);
  return node_->const_value;
}

int Expr::var_id() const {
  assert(kind() == Kind::kVar);
  return node_->var_id;
}

UnaryOp Expr::unary_op() const {
  assert(kind() == Kind::kUnary);
  return node_->unary_op;
}

BinaryOp Expr::binary_op() const {
  assert(kind() == Kind::kBinary);
  return node_->binary_op;
}

const Expr& Expr::operand(int i) const {
  assert(i >= 0 && i < num_operands());
  return node_->children[i];
}

int Expr::num_operands() const { return static_cast<int>(node_->children.size()); }

Value Expr::Eval(InputView env) const {
  switch (kind()) {
    case Kind::kConst:
      return node_->const_value;
    case Kind::kVar:
      assert(static_cast<size_t>(node_->var_id) < env.size());
      return env[node_->var_id];
    case Kind::kUnary:
      return EvalUnaryOp(node_->unary_op, operand(0).Eval(env));
    case Kind::kBinary: {
      const Value a = operand(0).Eval(env);
      const Value b = operand(1).Eval(env);
      return EvalBinaryOp(node_->binary_op, a, b);
    }
    case Kind::kSelect: {
      // Note: all three children are evaluated; Select is branch-free by
      // design so that its cost and its dependency set are path-independent.
      const Value cond = operand(0).Eval(env);
      const Value then_value = operand(1).Eval(env);
      const Value else_value = operand(2).Eval(env);
      return cond != 0 ? then_value : else_value;
    }
  }
  return 0;
}

VarSet Expr::FreeVars() const {
  switch (kind()) {
    case Kind::kConst:
      return VarSet::Empty();
    case Kind::kVar:
      return VarSet::Singleton(node_->var_id);
    default: {
      VarSet out;
      for (const Expr& child : node_->children) {
        out = out.Union(child.FreeVars());
      }
      return out;
    }
  }
}

int Expr::NodeCount() const {
  int count = 1;
  for (const Expr& child : node_->children) {
    count += child.NodeCount();
  }
  return count;
}

bool Expr::StructurallyEquals(const Expr& other) const {
  if (node_ == other.node_) {
    return true;
  }
  if (kind() != other.kind()) {
    return false;
  }
  switch (kind()) {
    case Kind::kConst:
      return node_->const_value == other.node_->const_value;
    case Kind::kVar:
      return node_->var_id == other.node_->var_id;
    case Kind::kUnary:
      if (node_->unary_op != other.node_->unary_op) {
        return false;
      }
      break;
    case Kind::kBinary:
      if (node_->binary_op != other.node_->binary_op) {
        return false;
      }
      break;
    case Kind::kSelect:
      break;
  }
  if (num_operands() != other.num_operands()) {
    return false;
  }
  for (int i = 0; i < num_operands(); ++i) {
    if (!operand(i).StructurallyEquals(other.operand(i))) {
      return false;
    }
  }
  return true;
}

Expr Expr::MapVars(const std::function<int(int)>& remap) const {
  switch (kind()) {
    case Kind::kConst:
      return *this;
    case Kind::kVar:
      return Var(remap(node_->var_id));
    case Kind::kUnary:
      return Unary(node_->unary_op, operand(0).MapVars(remap));
    case Kind::kBinary:
      return Binary(node_->binary_op, operand(0).MapVars(remap), operand(1).MapVars(remap));
    case Kind::kSelect:
      return Select(operand(0).MapVars(remap), operand(1).MapVars(remap),
                    operand(2).MapVars(remap));
  }
  return *this;
}

std::string Expr::ToString(const std::function<std::string(int)>& var_name) const {
  // Built by append throughout: GCC 12's -Wrestrict false-fires on
  // char* + std::string chains when inlined at -O3 (PR 105651).
  std::string out;
  switch (kind()) {
    case Kind::kConst:
      return std::to_string(node_->const_value);
    case Kind::kVar:
      return var_name(node_->var_id);
    case Kind::kUnary:
      out = UnaryOpName(node_->unary_op);
      out += "(";
      out += operand(0).ToString(var_name);
      out += ")";
      return out;
    case Kind::kBinary: {
      const std::string op = BinaryOpName(node_->binary_op);
      if (node_->binary_op == BinaryOp::kMin || node_->binary_op == BinaryOp::kMax) {
        out = op;
        out += "(";
        out += operand(0).ToString(var_name);
        out += ", ";
        out += operand(1).ToString(var_name);
        out += ")";
        return out;
      }
      out = "(";
      out += operand(0).ToString(var_name);
      out += " ";
      out += op;
      out += " ";
      out += operand(1).ToString(var_name);
      out += ")";
      return out;
    }
    case Kind::kSelect:
      out = "select(";
      out += operand(0).ToString(var_name);
      out += ", ";
      out += operand(1).ToString(var_name);
      out += ", ";
      out += operand(2).ToString(var_name);
      out += ")";
      return out;
  }
  return "?";
}

std::string Expr::ToString() const {
  // Built by append: GCC 12's -Wrestrict false-fires on the equivalent
  // char* + std::string chain when inlined at -O3 (PR 105651).
  return ToString([](int id) {
    std::string name = "v";
    name += std::to_string(id);
    return name;
  });
}

void Expr::AppendFingerprint(Fingerprinter* fp) const {
  fp->Tag("expr");
  fp->I32(static_cast<int>(kind()));
  switch (kind()) {
    case Kind::kConst:
      fp->I64(node_->const_value);
      break;
    case Kind::kVar:
      fp->I32(node_->var_id);
      break;
    case Kind::kUnary:
      fp->I32(static_cast<int>(node_->unary_op));
      break;
    case Kind::kBinary:
      fp->I32(static_cast<int>(node_->binary_op));
      break;
    case Kind::kSelect:
      break;
  }
  fp->I32(num_operands());
  for (int i = 0; i < num_operands(); ++i) {
    operand(i).AppendFingerprint(fp);
  }
}

}  // namespace secpol
