// Expression simplification: constant folding and algebraic identities.
//
// Used by the transform pipeline (Section 4/5 rewrites create Select chains
// and dead arithmetic worth folding) and by anything that wants smaller
// instrumented programs. Simplification must preserve semantics *exactly*
// (including the wrapping/total semantics of Eval); the property tests run
// random expressions over random environments to enforce that.
//
// Note what is deliberately NOT done: nothing that changes the dependency
// set unsoundly. Dropping a dependency is only allowed when the value
// provably never depends on it (e.g. x * 0 => 0, Select(c, e, e) => e);
// these are exactly the "forgetting" steps that make transformed programs
// more complete under surveillance.

#ifndef SECPOL_SRC_EXPR_SIMPLIFY_H_
#define SECPOL_SRC_EXPR_SIMPLIFY_H_

#include "src/expr/expr.h"

namespace secpol {

// Returns a semantically identical expression, no larger than the input.
Expr Simplify(const Expr& expr);

}  // namespace secpol

#endif  // SECPOL_SRC_EXPR_SIMPLIFY_H_
