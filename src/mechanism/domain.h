// Finite input domains for exhaustive extensional checks.
//
// The paper's definitions quantify over all inputs. We decide them exactly
// over finite grids: an InputDomain assigns each input coordinate a finite
// list of candidate values and enumerates the cross product.
//
// The grid has a canonical linearization — the lexicographic order, with
// coordinate 0 most significant — and every tuple has a rank in it. The
// sharded iterators below partition the grid by contiguous rank ranges so the
// parallel checkers can evaluate shards concurrently and still merge their
// partial results into the exact report a serial scan would produce.

#ifndef SECPOL_SRC_MECHANISM_DOMAIN_H_
#define SECPOL_SRC_MECHANISM_DOMAIN_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/util/deadline.h"
#include "src/util/value.h"

namespace secpol {

// Fail-closed error for malformed grid descriptions (empty coordinate lists,
// inverted ranges, bad shard indices). Grids arrive from manifests and the
// wire, so these are typed throws rather than debug-only asserts; callers'
// exception barriers turn them into aborted verdicts.
class DomainError : public std::runtime_error {
 public:
  explicit DomainError(const std::string& what) : std::runtime_error(what) {}
};

class InputDomain {
 public:
  // Every coordinate ranges over the same candidate list.
  static InputDomain Uniform(int num_inputs, std::vector<Value> values);
  // Coordinate i ranges over per_input[i].
  static InputDomain PerInput(std::vector<std::vector<Value>> per_input);
  // Every coordinate ranges over {lo, lo+1, ..., hi}.
  static InputDomain Range(int num_inputs, Value lo, Value hi);

  int num_inputs() const { return static_cast<int>(per_input_.size()); }
  const std::vector<Value>& values_for(int i) const { return per_input_[i]; }

  // Number of tuples in the grid (product of coordinate sizes), saturating
  // at UINT64_MAX when the product overflows 64 bits.
  std::uint64_t size() const;

  // Exact tuple count, or nullopt when the product overflows std::uint64_t.
  std::optional<std::uint64_t> CheckedSize() const;

  // Calls fn(input) for every tuple, in lexicographic order.
  void ForEach(const std::function<void(InputView)>& fn) const;

  // Visits the tuples with ranks in [begin, end), in lexicographic order.
  // fn receives the global rank and the tuple; returning false stops the
  // scan early. Ranks past size() are silently clipped.
  using RangeFn = std::function<bool(std::uint64_t, InputView)>;
  void ForEachRange(std::uint64_t begin, std::uint64_t end, const RangeFn& fn) const;

  // Visits shard `shard` of `num_shards`: the grid split into num_shards
  // contiguous rank ranges whose lengths differ by at most one.
  void ForEachShard(std::uint64_t shard, std::uint64_t num_shards, const RangeFn& fn) const;

  // Visits every tuple using `num_threads` workers (0 = one per hardware
  // thread), the grid partitioned into `num_shards` contiguous shards.
  // fn(shard, rank, input) runs concurrently for different shards — it must
  // be thread-safe across shards — and returning false stops its shard.
  // With one resolved thread the shards run inline, in order.
  //
  // Exception barrier: if fn throws in some shard, the first exception is
  // rethrown here after every other shard has finished or drained. When
  // `drain_on_error` is non-null it is cancelled as soon as an exception is
  // captured, so shards polling it wind down early.
  using ShardFn = std::function<bool(std::uint64_t, std::uint64_t, InputView)>;
  void ParallelForEach(std::uint64_t num_shards, const ShardFn& fn, int num_threads = 0,
                       const CancelToken* drain_on_error = nullptr) const;

  // Lexicographic rank of `input` in this grid (inverse of the rank decoding
  // ForEachRange performs), or nullopt when some coordinate value is not in
  // the candidate list. Cost is a linear scan of each coordinate's list.
  std::optional<std::uint64_t> RankOf(InputView input) const;

  // Materializes the grid (use only for small domains). Grids larger than
  // kEnumerateCap tuples — or whose size overflows — are refused with an
  // empty vector (a real grid always has at least one tuple).
  static constexpr std::uint64_t kEnumerateCap = std::uint64_t{1} << 22;
  std::vector<Input> Enumerate() const;

  std::string ToString() const;

 private:
  explicit InputDomain(std::vector<std::vector<Value>> per_input);
  std::vector<std::vector<Value>> per_input_;
};

}  // namespace secpol

#endif  // SECPOL_SRC_MECHANISM_DOMAIN_H_
