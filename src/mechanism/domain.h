// Finite input domains for exhaustive extensional checks.
//
// The paper's definitions quantify over all inputs. We decide them exactly
// over finite grids: an InputDomain assigns each input coordinate a finite
// list of candidate values and enumerates the cross product.

#ifndef SECPOL_SRC_MECHANISM_DOMAIN_H_
#define SECPOL_SRC_MECHANISM_DOMAIN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/util/value.h"

namespace secpol {

class InputDomain {
 public:
  // Every coordinate ranges over the same candidate list.
  static InputDomain Uniform(int num_inputs, std::vector<Value> values);
  // Coordinate i ranges over per_input[i].
  static InputDomain PerInput(std::vector<std::vector<Value>> per_input);
  // Every coordinate ranges over {lo, lo+1, ..., hi}.
  static InputDomain Range(int num_inputs, Value lo, Value hi);

  int num_inputs() const { return static_cast<int>(per_input_.size()); }
  const std::vector<Value>& values_for(int i) const { return per_input_[i]; }

  // Number of tuples in the grid (product of coordinate sizes).
  std::uint64_t size() const;

  // Calls fn(input) for every tuple, in lexicographic order.
  void ForEach(const std::function<void(InputView)>& fn) const;

  // Materializes the grid (use only for small domains).
  std::vector<Input> Enumerate() const;

  std::string ToString() const;

 private:
  explicit InputDomain(std::vector<std::vector<Value>> per_input);
  std::vector<std::vector<Value>> per_input_;
};

}  // namespace secpol

#endif  // SECPOL_SRC_MECHANISM_DOMAIN_H_
