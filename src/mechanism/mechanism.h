// Protection mechanisms (Section 2) and the basic mechanism zoo.
//
// "M : D1 x ... x Dk -> E u F is a protection mechanism for Q provided for
// all d either M(d) = Q(d) or M(d) is in F."
//
// Mechanisms here are extensional objects: anything that maps inputs to
// Outcomes. The trivial mechanisms of Example 3 (the program itself, and
// "pulling the plug"), the join operator of Theorem 1, and a finite table
// mechanism (used by the maximal synthesizer) live in this header.

#ifndef SECPOL_SRC_MECHANISM_MECHANISM_H_
#define SECPOL_SRC_MECHANISM_MECHANISM_H_

#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/flowchart/interpreter.h"
#include "src/flowchart/program.h"
#include "src/mechanism/outcome.h"
#include "src/util/value.h"
#include "src/util/var_set.h"

namespace secpol {

// Thrown when a mechanism is run on an input it has no defined outcome for
// (e.g. a TableMechanism queried outside its tabulated domain). The sweep
// kernel catches it like any worker exception and fails that run closed
// (kAborted) — a bad mechanism must never take down the whole process or
// the sibling jobs of a batch.
class OutOfDomainError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// The result of a dependency-tracked run (the class sweep's constancy
// certificate, DESIGN.md §14). When `exact` is true, `reads` is a sound
// over-approximation of the input coordinates the outcome depended on and
// `boxes` (non-empty only for program-backed mechanisms) lists the program
// boxes the run executed: any input agreeing with the run's input on `reads`
// yields a byte-identical Outcome, and any program edit confined to boxes
// outside `boxes` leaves the run unchanged. When `exact` is false the
// mechanism cannot track its dependencies and the outcome must be treated as
// depending on every coordinate and every box — the fail-closed default.
struct TrackedOutcome {
  Outcome outcome;
  VarSet reads;
  bool exact = false;
  // Sorted executed-box ids of the mechanism's single underlying program;
  // meaningful iff boxes_exact. Kept separate from `exact` because a join of
  // several programs can still track reads precisely while having no single
  // box id space.
  std::vector<int> boxes;
  bool boxes_exact = false;
};

class ProtectionMechanism {
 public:
  virtual ~ProtectionMechanism() = default;

  virtual int num_inputs() const = 0;
  virtual Outcome Run(InputView input) const = 0;
  virtual std::string name() const = 0;

  // Runs the mechanism while tracking which inputs (and program boxes) the
  // outcome depended on. The base implementation cannot track anything and
  // fails closed: it runs normally and reports exact = false. Overrides must
  // keep the outcome byte-identical to Run(input) — the class sweep uses
  // RunTracked for representatives and Run for members, and mixes the two in
  // one table.
  virtual TrackedOutcome RunTracked(InputView input) const {
    return TrackedOutcome{Run(input), VarSet(), false, {}, false};
  }
};

// Example 3, first trivial mechanism: the program Q as its own protection
// mechanism — "no protection at all". Sound only when Q already factors
// through the policy.
class ProgramAsMechanism : public ProtectionMechanism {
 public:
  explicit ProgramAsMechanism(Program program, StepCount fuel = kDefaultFuel);

  int num_inputs() const override { return program_.num_inputs(); }
  Outcome Run(InputView input) const override;
  TrackedOutcome RunTracked(InputView input) const override;
  std::string name() const override { return "identity(" + program_.name() + ")"; }

  const Program& program() const { return program_; }

 private:
  Program program_;
  StepCount fuel_;
};

// Example 3, second trivial mechanism: always output the violation notice.
// "This corresponds to pulling the plug." Sound for every policy, useless.
class PlugMechanism : public ProtectionMechanism {
 public:
  explicit PlugMechanism(int num_inputs);

  int num_inputs() const override { return num_inputs_; }
  Outcome Run(InputView input) const override;
  // The plug reads nothing: its outcome is the same on every input.
  TrackedOutcome RunTracked(InputView input) const override {
    return TrackedOutcome{Run(input), VarSet(), true, {}, true};
  }
  std::string name() const override { return "plug"; }

 private:
  int num_inputs_;
};

// Adapter for mechanisms defined by arbitrary C++ callables: the logon
// program, tape machines, and the OS monitor all surface through this.
class FunctionMechanism : public ProtectionMechanism {
 public:
  using Fn = std::function<Outcome(InputView)>;

  FunctionMechanism(std::string name, int num_inputs, Fn fn);

  int num_inputs() const override { return num_inputs_; }
  Outcome Run(InputView input) const override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  int num_inputs_;
  Fn fn_;
};

// A finite, fully tabulated mechanism over an enumerated input domain.
// Running it on an input outside the table throws OutOfDomainError.
class TableMechanism : public ProtectionMechanism {
 public:
  TableMechanism(std::string name, int num_inputs);

  void Set(Input input, Outcome outcome);

  int num_inputs() const override { return num_inputs_; }
  Outcome Run(InputView input) const override;
  std::string name() const override { return name_; }

  size_t table_size() const { return table_.size(); }

 private:
  std::string name_;
  int num_inputs_;
  std::map<Input, Outcome> table_;
};

// Theorem 1's join: M1 v M2 (generalized to any number of members) returns
// the real output whenever some member does, and a violation notice
// otherwise. If M1..Mn are mechanisms for the same program Q, every value
// outcome equals Q(d), so members that return values agree.
//
// Step accounting: the join evaluates every member, so its running time is
// the sum of member running times. This keeps the join's time a function of
// the members' times (important when the checker observes time).
class JoinMechanism : public ProtectionMechanism {
 public:
  explicit JoinMechanism(std::vector<std::shared_ptr<const ProtectionMechanism>> members);

  int num_inputs() const override;
  Outcome Run(InputView input) const override;
  // Tracked iff every member tracks: the join's outcome is a function of the
  // member outcomes, so its dependency set is the union of theirs.
  TrackedOutcome RunTracked(InputView input) const override;
  std::string name() const override;

 private:
  std::vector<std::shared_ptr<const ProtectionMechanism>> members_;
};

// Convenience: join of two mechanisms.
std::shared_ptr<const ProtectionMechanism> Join(
    std::shared_ptr<const ProtectionMechanism> m1,
    std::shared_ptr<const ProtectionMechanism> m2);

// The meet: M1 ^ M2 releases the real output only where EVERY member does,
// and violates otherwise. Together with JoinMechanism this realizes the
// paper's remark that "if we assume only a single violation notice, it can
// easily be shown that the sound protection mechanisms form a lattice."
// The meet of sound mechanisms is sound and is a lower bound of each member
// in the completeness order (property-tested).
class MeetMechanism : public ProtectionMechanism {
 public:
  explicit MeetMechanism(std::vector<std::shared_ptr<const ProtectionMechanism>> members);

  int num_inputs() const override;
  Outcome Run(InputView input) const override;
  TrackedOutcome RunTracked(InputView input) const override;
  std::string name() const override;

 private:
  std::vector<std::shared_ptr<const ProtectionMechanism>> members_;
};

// Convenience: meet of two mechanisms.
std::shared_ptr<const ProtectionMechanism> Meet(
    std::shared_ptr<const ProtectionMechanism> m1,
    std::shared_ptr<const ProtectionMechanism> m2);

}  // namespace secpol

#endif  // SECPOL_SRC_MECHANISM_MECHANISM_H_
