#include "src/mechanism/domain.h"

#include <algorithm>
#include <string>

#include "src/util/thread_pool.h"

namespace secpol {

InputDomain::InputDomain(std::vector<std::vector<Value>> per_input)
    : per_input_(std::move(per_input)) {
  for (size_t i = 0; i < per_input_.size(); ++i) {
    if (per_input_[i].empty()) {
      throw DomainError("grid coordinate " + std::to_string(i) +
                        " has no candidate values");
    }
  }
}

InputDomain InputDomain::Uniform(int num_inputs, std::vector<Value> values) {
  std::vector<std::vector<Value>> per_input(static_cast<size_t>(num_inputs), values);
  return InputDomain(std::move(per_input));
}

InputDomain InputDomain::PerInput(std::vector<std::vector<Value>> per_input) {
  return InputDomain(std::move(per_input));
}

InputDomain InputDomain::Range(int num_inputs, Value lo, Value hi) {
  if (lo > hi) {
    throw DomainError("grid range [" + std::to_string(lo) + ", " + std::to_string(hi) +
                      "] is inverted");
  }
  std::vector<Value> values;
  for (Value v = lo; v <= hi; ++v) {
    values.push_back(v);
  }
  return Uniform(num_inputs, std::move(values));
}

std::optional<std::uint64_t> InputDomain::CheckedSize() const {
  std::uint64_t total = 1;
  for (const auto& values : per_input_) {
    const std::uint64_t radix = values.size();
    if (total > UINT64_MAX / radix) {
      return std::nullopt;
    }
    total *= radix;
  }
  return total;
}

std::uint64_t InputDomain::size() const {
  return CheckedSize().value_or(UINT64_MAX);
}

void InputDomain::ForEach(const std::function<void(InputView)>& fn) const {
  Input current(per_input_.size(), 0);
  if (per_input_.empty()) {
    fn(current);
    return;
  }
  std::vector<size_t> index(per_input_.size(), 0);
  for (size_t i = 0; i < per_input_.size(); ++i) {
    current[i] = per_input_[i][0];
  }
  while (true) {
    fn(current);
    // Odometer increment.
    size_t pos = per_input_.size();
    while (pos > 0) {
      --pos;
      if (++index[pos] < per_input_[pos].size()) {
        current[pos] = per_input_[pos][index[pos]];
        break;
      }
      index[pos] = 0;
      current[pos] = per_input_[pos][0];
      if (pos == 0) {
        return;
      }
    }
  }
}

void InputDomain::ForEachRange(std::uint64_t begin, std::uint64_t end, const RangeFn& fn) const {
  const std::uint64_t total = size();
  end = std::min(end, total);
  if (begin >= end) {
    return;
  }
  if (per_input_.empty()) {
    Input empty;
    fn(0, empty);
    return;
  }
  // Decode the starting rank in mixed radix, coordinate 0 most significant.
  std::vector<size_t> index(per_input_.size(), 0);
  Input current(per_input_.size(), 0);
  std::uint64_t rem = begin;
  for (size_t i = per_input_.size(); i-- > 0;) {
    const std::uint64_t radix = per_input_[i].size();
    index[i] = static_cast<size_t>(rem % radix);
    rem /= radix;
  }
  for (size_t i = 0; i < per_input_.size(); ++i) {
    current[i] = per_input_[i][index[i]];
  }
  for (std::uint64_t rank = begin; rank < end; ++rank) {
    if (!fn(rank, current)) {
      return;
    }
    // Odometer increment.
    size_t pos = per_input_.size();
    while (pos > 0) {
      --pos;
      if (++index[pos] < per_input_[pos].size()) {
        current[pos] = per_input_[pos][index[pos]];
        break;
      }
      index[pos] = 0;
      current[pos] = per_input_[pos][0];
      if (pos == 0) {
        return;
      }
    }
  }
}

void InputDomain::ForEachShard(std::uint64_t shard, std::uint64_t num_shards,
                               const RangeFn& fn) const {
  if (num_shards == 0 || shard >= num_shards) {
    throw DomainError("shard " + std::to_string(shard) + " out of range for " +
                      std::to_string(num_shards) + " shards");
  }
  const std::uint64_t total = size();
  const std::uint64_t base = total / num_shards;
  const std::uint64_t extra = total % num_shards;
  const std::uint64_t begin = shard * base + std::min(shard, extra);
  const std::uint64_t end = begin + base + (shard < extra ? 1 : 0);
  ForEachRange(begin, end, fn);
}

void InputDomain::ParallelForEach(std::uint64_t num_shards, const ShardFn& fn,
                                  int num_threads, const CancelToken* drain_on_error) const {
  if (num_shards == 0) {
    num_shards = 1;
  }
  const int threads =
      num_threads == 0 ? ThreadPool::HardwareThreads() : std::max(1, num_threads);
  if (threads == 1) {
    // Inline path: an exception stops the remaining shards immediately, which
    // is the strongest possible drain.
    for (std::uint64_t s = 0; s < num_shards; ++s) {
      ForEachShard(s, num_shards,
                   [&](std::uint64_t rank, InputView input) { return fn(s, rank, input); });
    }
    return;
  }
  ThreadPool pool(threads);
  if (drain_on_error != nullptr) {
    pool.SetCancelOnException(*drain_on_error);
  }
  for (std::uint64_t s = 0; s < num_shards; ++s) {
    pool.Submit([this, s, num_shards, &fn] {
      ForEachShard(s, num_shards,
                   [&](std::uint64_t rank, InputView input) { return fn(s, rank, input); });
    });
  }
  pool.Wait();  // rethrows the first shard exception, if any
}

std::optional<std::uint64_t> InputDomain::RankOf(InputView input) const {
  if (input.size() != per_input_.size()) {
    return std::nullopt;
  }
  std::uint64_t rank = 0;
  for (size_t i = 0; i < per_input_.size(); ++i) {
    const std::vector<Value>& values = per_input_[i];
    const auto it = std::find(values.begin(), values.end(), input[i]);
    if (it == values.end()) {
      return std::nullopt;
    }
    rank = rank * values.size() + static_cast<std::uint64_t>(it - values.begin());
  }
  return rank;
}

std::vector<Input> InputDomain::Enumerate() const {
  const std::optional<std::uint64_t> total = CheckedSize();
  if (!total.has_value() || *total > kEnumerateCap) {
    return {};  // refuse to materialize; see header
  }
  std::vector<Input> out;
  out.reserve(*total);
  ForEach([&out](InputView input) { out.emplace_back(input.begin(), input.end()); });
  return out;
}

std::string InputDomain::ToString() const {
  std::string out = "domain[";
  for (size_t i = 0; i < per_input_.size(); ++i) {
    if (i > 0) {
      out += " x ";
    }
    out += std::to_string(per_input_[i].size());
  }
  out += " = " + std::to_string(size()) + " tuples]";
  return out;
}

}  // namespace secpol
