#include "src/mechanism/domain.h"

#include <cassert>

namespace secpol {

InputDomain::InputDomain(std::vector<std::vector<Value>> per_input)
    : per_input_(std::move(per_input)) {
  for (const auto& values : per_input_) {
    (void)values;
    assert(!values.empty() && "every coordinate needs at least one candidate value");
  }
}

InputDomain InputDomain::Uniform(int num_inputs, std::vector<Value> values) {
  std::vector<std::vector<Value>> per_input(static_cast<size_t>(num_inputs), values);
  return InputDomain(std::move(per_input));
}

InputDomain InputDomain::PerInput(std::vector<std::vector<Value>> per_input) {
  return InputDomain(std::move(per_input));
}

InputDomain InputDomain::Range(int num_inputs, Value lo, Value hi) {
  assert(lo <= hi);
  std::vector<Value> values;
  for (Value v = lo; v <= hi; ++v) {
    values.push_back(v);
  }
  return Uniform(num_inputs, std::move(values));
}

std::uint64_t InputDomain::size() const {
  std::uint64_t total = 1;
  for (const auto& values : per_input_) {
    total *= values.size();
  }
  return total;
}

void InputDomain::ForEach(const std::function<void(InputView)>& fn) const {
  Input current(per_input_.size(), 0);
  if (per_input_.empty()) {
    fn(current);
    return;
  }
  std::vector<size_t> index(per_input_.size(), 0);
  for (size_t i = 0; i < per_input_.size(); ++i) {
    current[i] = per_input_[i][0];
  }
  while (true) {
    fn(current);
    // Odometer increment.
    size_t pos = per_input_.size();
    while (pos > 0) {
      --pos;
      if (++index[pos] < per_input_[pos].size()) {
        current[pos] = per_input_[pos][index[pos]];
        break;
      }
      index[pos] = 0;
      current[pos] = per_input_[pos][0];
      if (pos == 0) {
        return;
      }
    }
  }
}

std::vector<Input> InputDomain::Enumerate() const {
  std::vector<Input> out;
  out.reserve(size());
  ForEach([&out](InputView input) { out.emplace_back(input.begin(), input.end()); });
  return out;
}

std::string InputDomain::ToString() const {
  std::string out = "domain[";
  for (size_t i = 0; i < per_input_.size(); ++i) {
    if (i > 0) {
      out += " x ";
    }
    out += std::to_string(per_input_[i].size());
  }
  out += " = " + std::to_string(size()) + " tuples]";
  return out;
}

}  // namespace secpol
