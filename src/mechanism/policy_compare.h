// Comparing policies by how much they reveal.
//
// Policy P *reveals at most* policy Q (over a finite domain) when P's image
// is a function of Q's image: everything P discloses, Q already disclosed,
// so P's indistinguishability classes are unions of Q's. Two consequences,
// both enforced by property tests:
//
//  * allow(J1) reveals at most allow(J2)  iff  J1 is a subset of J2;
//  * soundness is antitone in disclosure — a mechanism sound for the
//    stricter P is automatically sound for any Q with P RevealsAtMost Q,
//    because M = M' o I_P = (M' o f) o I_Q.

#ifndef SECPOL_SRC_MECHANISM_POLICY_COMPARE_H_
#define SECPOL_SRC_MECHANISM_POLICY_COMPARE_H_

#include <string>

#include "src/mechanism/check_options.h"
#include "src/mechanism/domain.h"
#include "src/policy/policy.h"

namespace secpol {

// Structured result of the functional-dependency sweep. `reveals_at_most` is
// authoritative only when progress.complete() — except that `false` with a
// complete()==false progress and a found dependency violation is still
// definitive (a violating pair was really evaluated).
struct PolicyCompareReport {
  bool reveals_at_most = false;
  // Whether a concrete dependency violation (one q-image mapped to two
  // p-images) was found; distinguishes "proved false" from "unknown".
  bool violation_found = false;
  CheckProgress progress;

  std::string ToString() const;
};

// Decides, over `domain`, whether Image_p is a function of Image_q. The
// parallel evaluation is deterministic for completed runs: shard dependency
// maps are merged and re-checked for consistency. Honours options.deadline /
// options.cancel and converts a throwing policy into kAborted.
PolicyCompareReport ComparePolicyDisclosure(const SecurityPolicy& p, const SecurityPolicy& q,
                                            const InputDomain& domain,
                                            const CheckOptions& options = CheckOptions());

class OutcomeTable;

// The same comparison over a pre-built outcome table (complete, with both
// image columns): p is the table's primary policy, q its secondary one.
// Byte-identical to the live overload on the same grid.
PolicyCompareReport ComparePolicyDisclosure(const OutcomeTable& table,
                                            const CheckOptions& options = CheckOptions());

// Bare-bool convenience wrapper over ComparePolicyDisclosure. Fails closed:
// returns true only when a *completed* sweep proved the dependency.
bool RevealsAtMost(const SecurityPolicy& p, const SecurityPolicy& q, const InputDomain& domain,
                   const CheckOptions& options = CheckOptions());

}  // namespace secpol

#endif  // SECPOL_SRC_MECHANISM_POLICY_COMPARE_H_
