// Comparing policies by how much they reveal.
//
// Policy P *reveals at most* policy Q (over a finite domain) when P's image
// is a function of Q's image: everything P discloses, Q already disclosed,
// so P's indistinguishability classes are unions of Q's. Two consequences,
// both enforced by property tests:
//
//  * allow(J1) reveals at most allow(J2)  iff  J1 is a subset of J2;
//  * soundness is antitone in disclosure — a mechanism sound for the
//    stricter P is automatically sound for any Q with P RevealsAtMost Q,
//    because M = M' o I_P = (M' o f) o I_Q.

#ifndef SECPOL_SRC_MECHANISM_POLICY_COMPARE_H_
#define SECPOL_SRC_MECHANISM_POLICY_COMPARE_H_

#include "src/mechanism/check_options.h"
#include "src/mechanism/domain.h"
#include "src/policy/policy.h"

namespace secpol {

// True iff, over `domain`, Image_p is a function of Image_q. The verdict is
// a bare bool, so the parallel evaluation is trivially deterministic: shard
// dependency maps are merged and re-checked for consistency.
bool RevealsAtMost(const SecurityPolicy& p, const SecurityPolicy& q, const InputDomain& domain,
                   const CheckOptions& options = CheckOptions());

}  // namespace secpol

#endif  // SECPOL_SRC_MECHANISM_POLICY_COMPARE_H_
