#include "src/mechanism/integrity.h"

#include <cassert>
#include <cstdint>
#include <map>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "src/mechanism/outcome_table.h"
#include "src/mechanism/sweep.h"
#include "src/util/strings.h"

namespace secpol {

std::string IntegrityCounterexample::ToString() const {
  return "inputs " + FormatInput(input_a) + " and " + FormatInput(input_b) +
         " must stay distinguishable but both observe as [" + outcome.ToString() + "]";
}

std::string IntegrityReport::ToString() const {
  std::string out;
  if (progress.complete()) {
    out = preserved ? "PRESERVED" : "INFORMATION LOST";
  } else if (counterexample.has_value()) {
    out = "INFORMATION LOST [" + progress.ToString() + "]";
  } else {
    out = "UNKNOWN [" + progress.ToString() + "]";
  }
  out += " (" + std::to_string(inputs_checked) + " inputs, " +
         std::to_string(required_classes) + " required classes)";
  if (counterexample.has_value()) {
    out += "\n  counterexample: " + counterexample->ToString();
  }
  return out;
}

namespace {

// Observable signature of one outcome.
using Signature = std::tuple<int, Value, StepCount>;

Signature SignatureOf(const Outcome& outcome, Observability obs) {
  return Signature{outcome.IsValue() ? 1 : 0, outcome.IsValue() ? outcome.value : 0,
                   obs == Observability::kValueAndTime ? outcome.steps : 0};
}

// What the reducer keeps per signature occurrence: the required image (what
// divergence is judged on) and the concrete outcome (the report prints the
// witness's own outcome, which may differ from the representative's in
// unobserved fields such as the notice text).
struct IntegrityMark {
  PolicyImage image;
  Outcome outcome;
};

// The preservation reducer over the sweep kernel, grouping points by
// observable signature and hunting the first occurrence whose required image
// differs from its signature's representative. The image and the outcome are
// evaluated by separate callables because the serial contract records the
// point's required image (for required_classes) before the mechanism runs —
// an aborted run still counts the faulting point's class.
template <typename ImageFn, typename OutcomeFn>
IntegrityReport CheckPreservationImpl(const InputDomain& domain, Observability obs,
                                      const CheckOptions& options, const ImageFn& eval_image,
                                      const OutcomeFn& eval_outcome) {
  IntegrityReport report;
  const std::uint64_t grid = domain.size();
  const SweepPlan plan = SweepPlan::For(options, grid);
  SweepClassShards<Signature, IntegrityMark> partials(plan.num_shards);
  // First rank at which each required image occurs, per shard (for the
  // required_classes count, which in the serial scan includes the witness's
  // own — possibly new — image).
  std::vector<std::map<PolicyImage, std::uint64_t>> image_firsts(plan.num_shards);
  ConflictBound bound;
  const auto diverges = [](const IntegrityMark& a, const IntegrityMark& b) {
    return a.image != b.image;
  };

  report.progress = SweepGrid(
      domain, options, plan,
      [&](std::uint64_t shard, std::uint64_t rank, InputView input) -> bool {
        PolicyImage image = eval_image(rank, input);
        image_firsts[shard].try_emplace(image, rank);
        Outcome outcome = eval_outcome(rank, input);
        const Signature sig = SignatureOf(outcome, obs);
        RecordOccurrence(partials[shard], bound, rank, input, sig,
                        IntegrityMark{std::move(image), std::move(outcome)}, diverges);
        return true;
      },
      [&](std::uint64_t rank) { return bound.Excludes(rank); });

  std::map<Signature, const SweepOccurrence<IntegrityMark>*> global_first;
  const SweepWitness<IntegrityMark> witness =
      MergeFirstWitness(partials, &global_first, diverges);

  if (!witness.found()) {
    std::set<PolicyImage> classes;
    for (const auto& shard : image_firsts) {
      for (const auto& [image, rank] : shard) {
        (void)rank;
        classes.insert(image);
      }
    }
    report.required_classes = classes.size();
    if (report.progress.complete()) {
      report.preserved = true;
      report.inputs_checked = grid;
    } else {
      report.preserved = false;  // fail closed
      report.inputs_checked = report.progress.evaluated;
    }
    return report;
  }

  report.preserved = false;
  report.inputs_checked = witness.rank() + 1;
  std::map<PolicyImage, std::uint64_t> class_firsts;
  for (const auto& shard : image_firsts) {
    for (const auto& [image, rank] : shard) {
      auto [it, inserted] = class_firsts.try_emplace(image, rank);
      if (!inserted && rank < it->second) {
        it->second = rank;
      }
    }
  }
  for (const auto& [image, rank] : class_firsts) {
    (void)image;
    if (rank <= witness.rank()) {
      ++report.required_classes;
    }
  }
  IntegrityCounterexample cx;
  cx.input_a = witness.rep->input;
  cx.input_b = witness.witness->input;
  cx.outcome = witness.witness->payload.outcome;
  report.counterexample = std::move(cx);
  return report;
}

}  // namespace

IntegrityReport CheckInformationPreservation(const ProtectionMechanism& mechanism,
                                             const SecurityPolicy& required,
                                             const InputDomain& domain, Observability obs,
                                             const CheckOptions& options) {
  assert(mechanism.num_inputs() == required.num_inputs());
  assert(mechanism.num_inputs() == domain.num_inputs());
  CheckScope scope(options.obs, "integrity");
  IntegrityReport report = CheckPreservationImpl(
      domain, obs, options,
      [&](std::uint64_t, InputView input) { return required.Image(input); },
      [&](std::uint64_t, InputView input) { return mechanism.Run(input); });
  scope.SetPoints(report.progress.evaluated);
  return report;
}

IntegrityReport CheckInformationPreservation(const OutcomeTable& table, Observability obs,
                                             const CheckOptions& options) {
  assert(table.complete());
  assert(table.has_outcomes() && table.has_images());
  CheckScope scope(options.obs, "integrity");
  IntegrityReport report = CheckPreservationImpl(
      table.domain(), obs, options,
      [&](std::uint64_t rank, InputView) { return table.image(rank); },
      [&](std::uint64_t rank, InputView) { return table.outcome(rank); });
  scope.SetPoints(report.progress.evaluated);
  return report;
}

}  // namespace secpol
