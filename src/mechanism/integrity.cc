#include "src/mechanism/integrity.h"

#include <cassert>
#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "src/util/strings.h"

namespace secpol {

std::string IntegrityCounterexample::ToString() const {
  return "inputs " + FormatInput(input_a) + " and " + FormatInput(input_b) +
         " must stay distinguishable but both observe as [" + outcome.ToString() + "]";
}

std::string IntegrityReport::ToString() const {
  std::string out = preserved ? "PRESERVED" : "INFORMATION LOST";
  out += " (" + std::to_string(inputs_checked) + " inputs, " +
         std::to_string(required_classes) + " required classes)";
  if (counterexample.has_value()) {
    out += "\n  counterexample: " + counterexample->ToString();
  }
  return out;
}

IntegrityReport CheckInformationPreservation(const ProtectionMechanism& mechanism,
                                             const SecurityPolicy& required,
                                             const InputDomain& domain, Observability obs) {
  assert(mechanism.num_inputs() == required.num_inputs());
  assert(mechanism.num_inputs() == domain.num_inputs());

  IntegrityReport report;
  report.preserved = true;

  // Observable signature of one outcome.
  using Signature = std::tuple<int, Value, StepCount>;
  auto signature_of = [obs](const Outcome& outcome) {
    return Signature{outcome.IsValue() ? 1 : 0, outcome.IsValue() ? outcome.value : 0,
                     obs == Observability::kValueAndTime ? outcome.steps : 0};
  };

  // First input observed per outcome signature, with its required image.
  std::map<Signature, std::pair<Input, PolicyImage>> seen;
  std::set<PolicyImage> classes;

  domain.ForEach([&](InputView input) {
    if (!report.preserved) {
      return;
    }
    ++report.inputs_checked;
    PolicyImage image = required.Image(input);
    classes.insert(image);
    const Outcome outcome = mechanism.Run(input);
    const Signature sig = signature_of(outcome);
    auto [it, inserted] =
        seen.try_emplace(sig, Input(input.begin(), input.end()), image);
    if (inserted) {
      return;
    }
    if (it->second.second != image) {
      report.preserved = false;
      IntegrityCounterexample cx;
      cx.input_a = it->second.first;
      cx.input_b = Input(input.begin(), input.end());
      cx.outcome = outcome;
      report.counterexample = std::move(cx);
    }
  });

  report.required_classes = classes.size();
  return report;
}

}  // namespace secpol
