#include "src/mechanism/integrity.h"

#include <atomic>
#include <cassert>
#include <exception>
#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "src/util/strings.h"

namespace secpol {

std::string IntegrityCounterexample::ToString() const {
  return "inputs " + FormatInput(input_a) + " and " + FormatInput(input_b) +
         " must stay distinguishable but both observe as [" + outcome.ToString() + "]";
}

std::string IntegrityReport::ToString() const {
  std::string out;
  if (progress.complete()) {
    out = preserved ? "PRESERVED" : "INFORMATION LOST";
  } else if (counterexample.has_value()) {
    out = "INFORMATION LOST [" + progress.ToString() + "]";
  } else {
    out = "UNKNOWN [" + progress.ToString() + "]";
  }
  out += " (" + std::to_string(inputs_checked) + " inputs, " +
         std::to_string(required_classes) + " required classes)";
  if (counterexample.has_value()) {
    out += "\n  counterexample: " + counterexample->ToString();
  }
  return out;
}

namespace {

// Observable signature of one outcome.
using Signature = std::tuple<int, Value, StepCount>;

Signature SignatureOf(const Outcome& outcome, Observability obs) {
  return Signature{outcome.IsValue() ? 1 : 0, outcome.IsValue() ? outcome.value : 0,
                   obs == Observability::kValueAndTime ? outcome.steps : 0};
}

IntegrityReport CheckPreservationSerial(const ProtectionMechanism& mechanism,
                                        const SecurityPolicy& required,
                                        const InputDomain& domain, Observability obs,
                                        const CheckOptions& options) {
  IntegrityReport report;
  report.preserved = true;
  report.progress.total = domain.size();

  std::vector<ShardMeter> meters(1, ShardMeter(options));
  ShardMeter& meter = meters.front();

  // First input observed per outcome signature, with its required image.
  std::map<Signature, std::pair<Input, PolicyImage>> seen;
  std::set<PolicyImage> classes;

  try {
    domain.ForEachRange(0, report.progress.total, [&](std::uint64_t rank, InputView input) {
      (void)rank;
      if (meter.gate.ShouldStop()) {
        return false;
      }
      ++meter.evaluated;
      ++report.inputs_checked;
      PolicyImage image = required.Image(input);
      classes.insert(image);
      const Outcome outcome = mechanism.Run(input);
      const Signature sig = SignatureOf(outcome, obs);
      auto [it, inserted] =
          seen.try_emplace(sig, Input(input.begin(), input.end()), image);
      if (inserted) {
        return true;
      }
      if (it->second.second != image) {
        report.preserved = false;
        IntegrityCounterexample cx;
        cx.input_a = it->second.first;
        cx.input_b = Input(input.begin(), input.end());
        cx.outcome = outcome;
        report.counterexample = std::move(cx);
        return false;  // the serial scan stops at the first witness
      }
      return true;
    });
    MergeMeters(meters, &report.progress);
  } catch (const std::exception& e) {
    MergeMeters(meters, &report.progress);
    AbortProgress(&report.progress, e.what());
  } catch (...) {
    MergeMeters(meters, &report.progress);
    AbortProgress(&report.progress, "unknown error");
  }

  report.required_classes = classes.size();
  if (!report.progress.complete() && !report.counterexample.has_value()) {
    report.preserved = false;  // fail closed
  }
  return report;
}

// One occurrence of a signature: its global grid rank, the tuple, its
// required image, and the concrete outcome (the report prints the witness's
// own outcome, which may differ from the representative's in unobserved
// fields such as the notice text).
struct Occurrence {
  std::uint64_t rank = 0;
  Input input;
  PolicyImage image;
  Outcome outcome;
};

// Per shard, per signature: the first occurrence, and the first occurrence
// whose required image differs from it. Image equality is an equivalence
// relation, so these two suffice to find the first occurrence differing from
// any reference image.
struct SigPartial {
  Occurrence first;
  std::optional<Occurrence> divergent;
};

IntegrityReport CheckPreservationParallel(const ProtectionMechanism& mechanism,
                                          const SecurityPolicy& required,
                                          const InputDomain& domain, Observability obs,
                                          int threads, const CheckOptions& options) {
  const std::uint64_t grid = domain.size();
  const std::uint64_t num_shards = CheckOptions::ShardsFor(threads, grid);
  std::vector<std::map<Signature, SigPartial>> partials(num_shards);
  // First rank at which each required image occurs, per shard (for the
  // required_classes count, which in the serial scan includes the witness's
  // own — possibly new — image).
  std::vector<std::map<PolicyImage, std::uint64_t>> image_firsts(num_shards);

  IntegrityReport report;
  report.progress.total = grid;

  CancelToken drain;
  std::vector<ShardMeter> meters(num_shards, ShardMeter(options, drain));

  // As in the soundness checker: two different images under one signature at
  // ranks i1 < i2 guarantee a counterexample at rank <= i2.
  std::atomic<std::uint64_t> conflict_bound{UINT64_MAX};

  const auto sweep = [&](std::uint64_t shard, std::uint64_t rank, InputView input) -> bool {
        ShardMeter& meter = meters[shard];
        if (meter.gate.ShouldStop()) {
          return false;
        }
        if (rank > conflict_bound.load(std::memory_order_relaxed)) {
          return false;
        }
        ++meter.evaluated;
        PolicyImage image = required.Image(input);
        image_firsts[shard].try_emplace(image, rank);
        const Outcome outcome = mechanism.Run(input);
        const Signature sig = SignatureOf(outcome, obs);
        auto [it, inserted] = partials[shard].try_emplace(sig);
        SigPartial& partial = it->second;
        if (inserted) {
          partial.first =
              Occurrence{rank, Input(input.begin(), input.end()), std::move(image), outcome};
          return true;
        }
        if (!partial.divergent.has_value() && partial.first.image != image) {
          partial.divergent =
              Occurrence{rank, Input(input.begin(), input.end()), std::move(image), outcome};
          std::uint64_t prev = conflict_bound.load(std::memory_order_relaxed);
          while (rank < prev &&
                 !conflict_bound.compare_exchange_weak(prev, rank, std::memory_order_relaxed)) {
          }
        }
        return true;
      };

  try {
    domain.ParallelForEach(num_shards, sweep, threads, &drain);
    MergeMeters(meters, &report.progress);
  } catch (const std::exception& e) {
    MergeMeters(meters, &report.progress);
    AbortProgress(&report.progress, e.what());
  } catch (...) {
    MergeMeters(meters, &report.progress);
    AbortProgress(&report.progress, "unknown error");
  }

  // Global representative per signature: its lowest-rank occurrence.
  std::map<Signature, const Occurrence*> global_first;
  for (const auto& shard : partials) {
    for (const auto& [sig, partial] : shard) {
      auto [it, inserted] = global_first.try_emplace(sig, &partial.first);
      if (!inserted && partial.first.rank < it->second->rank) {
        it->second = &partial.first;
      }
    }
  }

  // The serial counterexample is the minimum-rank occurrence whose image
  // differs from its signature's representative image.
  std::uint64_t best_rank = UINT64_MAX;
  const Occurrence* best_rep = nullptr;
  const Occurrence* best_witness = nullptr;
  for (const auto& [sig, rep] : global_first) {
    for (const auto& shard : partials) {
      const auto it = shard.find(sig);
      if (it == shard.end()) {
        continue;
      }
      const SigPartial& partial = it->second;
      const Occurrence* candidate = nullptr;
      if (partial.first.rank != rep->rank && partial.first.image != rep->image) {
        candidate = &partial.first;
      } else if (partial.divergent.has_value() && partial.divergent->image != rep->image) {
        candidate = &*partial.divergent;
      }
      if (candidate != nullptr && candidate->rank < best_rank) {
        best_rank = candidate->rank;
        best_rep = rep;
        best_witness = candidate;
      }
    }
  }

  if (best_witness == nullptr) {
    std::set<PolicyImage> classes;
    for (const auto& shard : image_firsts) {
      for (const auto& [image, rank] : shard) {
        (void)rank;
        classes.insert(image);
      }
    }
    report.required_classes = classes.size();
    if (report.progress.complete()) {
      report.preserved = true;
      report.inputs_checked = grid;
    } else {
      report.preserved = false;  // fail closed
      report.inputs_checked = report.progress.evaluated;
    }
    return report;
  }
  report.preserved = false;
  report.inputs_checked = best_rank + 1;
  std::map<PolicyImage, std::uint64_t> class_firsts;
  for (const auto& shard : image_firsts) {
    for (const auto& [image, rank] : shard) {
      auto [it, inserted] = class_firsts.try_emplace(image, rank);
      if (!inserted && rank < it->second) {
        it->second = rank;
      }
    }
  }
  for (const auto& [image, rank] : class_firsts) {
    (void)image;
    if (rank <= best_rank) {
      ++report.required_classes;
    }
  }
  IntegrityCounterexample cx;
  cx.input_a = best_rep->input;
  cx.input_b = best_witness->input;
  cx.outcome = best_witness->outcome;
  report.counterexample = std::move(cx);
  return report;
}

}  // namespace

IntegrityReport CheckInformationPreservation(const ProtectionMechanism& mechanism,
                                             const SecurityPolicy& required,
                                             const InputDomain& domain, Observability obs,
                                             const CheckOptions& options) {
  assert(mechanism.num_inputs() == required.num_inputs());
  assert(mechanism.num_inputs() == domain.num_inputs());
  const int threads = options.ResolvedThreads();
  if (threads <= 1) {
    return CheckPreservationSerial(mechanism, required, domain, obs, options);
  }
  return CheckPreservationParallel(mechanism, required, domain, obs, threads, options);
}

}  // namespace secpol
