// Shared, rank-indexed outcome tables — evaluate once, check many times.
//
// Every extensional checker consumes some subset of the same four per-point
// functions: M(d), a second mechanism's M2(d), the policy image I(d), and a
// second policy's image. An OutcomeTable tabulates the requested columns in
// ONE kernel sweep over the grid and serves them back by rank, so an audit
// running all six checks over one (mechanism, policy, grid) pays for each
// mechanism evaluation exactly once instead of up to six times.
//
// Sharing preserves the determinism contracts: the table is keyed by the
// grid's canonical lexicographic rank — the same order every checker's
// serial scan uses — and a checker fed from a *complete* table performs the
// identical reduction over identical per-point values, so its report is
// byte-for-byte the one the live sweep produces. An incomplete build
// (deadline, cancel, fault) is never consumed: consumers fail closed on the
// build's CheckProgress instead, because a partial table cannot distinguish
// "not evaluated" from "not reached".

#ifndef SECPOL_SRC_MECHANISM_OUTCOME_TABLE_H_
#define SECPOL_SRC_MECHANISM_OUTCOME_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/mechanism/check_options.h"
#include "src/mechanism/domain.h"
#include "src/mechanism/mechanism.h"
#include "src/mechanism/outcome.h"
#include "src/policy/policy.h"

namespace secpol {

// Which per-point functions to tabulate. `mechanism` is required; the rest
// are optional columns.
struct OutcomeTableSources {
  const ProtectionMechanism* mechanism = nullptr;
  const ProtectionMechanism* mechanism2 = nullptr;
  const SecurityPolicy* policy = nullptr;
  const SecurityPolicy* policy2 = nullptr;
};

class OutcomeTable {
 public:
  // Largest grid a table will materialize. Beyond this the memory cost of
  // the columns outweighs re-evaluation; builders refuse (status kAborted
  // with an explanatory message) and callers fall back to live sweeps.
  static constexpr std::uint64_t kMaxPoints = std::uint64_t{1} << 21;

  const InputDomain& domain() const { return domain_; }

  // How the building sweep ended. Column accessors may only be used when
  // complete() — a partial table is only good for its progress.
  const CheckProgress& build() const { return build_; }
  bool complete() const { return build_.complete(); }

  bool has_outcomes() const { return !outcomes_.empty(); }
  bool has_outcomes2() const { return !outcomes2_.empty(); }
  bool has_images() const { return !images_.empty(); }
  bool has_images2() const { return !images2_.empty(); }

  const Outcome& outcome(std::uint64_t rank) const { return outcomes_[rank]; }
  const Outcome& outcome2(std::uint64_t rank) const { return outcomes2_[rank]; }
  const PolicyImage& image(std::uint64_t rank) const { return images_[rank]; }
  const PolicyImage& image2(std::uint64_t rank) const { return images2_[rank]; }

  // Source names, captured at build time so table-backed reductions can
  // label their results exactly as the live ones do.
  const std::string& mechanism_name() const { return mechanism_name_; }
  const std::string& mechanism2_name() const { return mechanism2_name_; }
  const std::string& policy_name() const { return policy_name_; }
  const std::string& policy2_name() const { return policy2_name_; }

 private:
  friend OutcomeTable BuildOutcomeTable(const OutcomeTableSources& sources,
                                        const InputDomain& domain,
                                        const CheckOptions& options);

  explicit OutcomeTable(InputDomain domain) : domain_(std::move(domain)) {}

  InputDomain domain_;
  CheckProgress build_;
  std::vector<Outcome> outcomes_;
  std::vector<Outcome> outcomes2_;
  std::vector<PolicyImage> images_;
  std::vector<PolicyImage> images2_;
  std::string mechanism_name_;
  std::string mechanism2_name_;
  std::string policy_name_;
  std::string policy2_name_;
};

// Tabulates the requested columns in one kernel sweep under `options`
// (threads, deadline, cancellation all honoured; a throwing source surfaces
// as build().status == kAborted, exactly like a live checker). Per point the
// evaluation order is fixed: mechanism, mechanism2, policy, policy2.
// Rank-disjoint shards write disjoint column slots, so the parallel build
// needs no synchronization beyond the kernel's own.
OutcomeTable BuildOutcomeTable(const OutcomeTableSources& sources, const InputDomain& domain,
                               const CheckOptions& options = CheckOptions());

}  // namespace secpol

#endif  // SECPOL_SRC_MECHANISM_OUTCOME_TABLE_H_
