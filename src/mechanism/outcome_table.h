// Shared, rank-indexed outcome tables — evaluate once, check many times.
//
// Every extensional checker consumes some subset of the same four per-point
// functions: M(d), a second mechanism's M2(d), the policy image I(d), and a
// second policy's image. An OutcomeTable tabulates the requested columns in
// ONE kernel sweep over the grid and serves them back by rank, so an audit
// running all six checks over one (mechanism, policy, grid) pays for each
// mechanism evaluation exactly once instead of up to six times.
//
// Sharing preserves the determinism contracts: the table is keyed by the
// grid's canonical lexicographic rank — the same order every checker's
// serial scan uses — and a checker fed from a *complete* table performs the
// identical reduction over identical per-point values, so its report is
// byte-for-byte the one the live sweep produces. An incomplete build
// (deadline, cancel, fault) is never consumed: consumers fail closed on the
// build's CheckProgress instead, because a partial table cannot distinguish
// "not evaluated" from "not reached".

#ifndef SECPOL_SRC_MECHANISM_OUTCOME_TABLE_H_
#define SECPOL_SRC_MECHANISM_OUTCOME_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/mechanism/check_options.h"
#include "src/mechanism/classes.h"
#include "src/mechanism/domain.h"
#include "src/mechanism/mechanism.h"
#include "src/mechanism/outcome.h"
#include "src/policy/policy.h"

namespace secpol {

// Which per-point functions to tabulate. `mechanism` is required; the rest
// are optional columns.
struct OutcomeTableSources {
  const ProtectionMechanism* mechanism = nullptr;
  const ProtectionMechanism* mechanism2 = nullptr;
  const SecurityPolicy* policy = nullptr;
  const SecurityPolicy* policy2 = nullptr;
};

// Inputs of the class-backed build (DESIGN.md §14). `partition` is required
// and must cover exactly the grid being tabulated. The memo trio is
// optional: when all three of `memo`, `program_tree`, and a non-zero
// `memo_context` are supplied, representative outcomes are reused across
// jobs (validated per lookup against the current tree). `stats` receives
// the evaluation accounting when non-null.
struct ClassSweepContext {
  const ClassPartition* partition = nullptr;

  ClassMemo* memo = nullptr;
  const ProgramDigestTree* program_tree = nullptr;
  Fingerprint memo_context;   // context key for the mechanism column
  Fingerprint memo_context2;  // context key for the mechanism2 column

  ClassBuildStats* stats = nullptr;
};

class OutcomeTable {
 public:
  // Largest grid a table will materialize. Beyond this the memory cost of
  // the columns outweighs re-evaluation; builders refuse (status kAborted
  // with an explanatory message) and callers fall back to live sweeps.
  static constexpr std::uint64_t kMaxPoints = std::uint64_t{1} << 21;

  const InputDomain& domain() const { return domain_; }

  // How the building sweep ended. Column accessors may only be used when
  // complete() — a partial table is only good for its progress.
  const CheckProgress& build() const { return build_; }
  bool complete() const { return build_.complete(); }

  bool has_outcomes() const { return !outcomes_.empty(); }
  bool has_outcomes2() const { return !outcomes2_.empty(); }
  bool has_images() const { return !images_.empty(); }
  bool has_images2() const { return !images2_.empty(); }

  const Outcome& outcome(std::uint64_t rank) const { return outcomes_[rank]; }
  const Outcome& outcome2(std::uint64_t rank) const { return outcomes2_[rank]; }
  const PolicyImage& image(std::uint64_t rank) const { return images_[rank]; }
  const PolicyImage& image2(std::uint64_t rank) const { return images2_[rank]; }

  // Source names, captured at build time so table-backed reductions can
  // label their results exactly as the live ones do.
  const std::string& mechanism_name() const { return mechanism_name_; }
  const std::string& mechanism2_name() const { return mechanism2_name_; }
  const std::string& policy_name() const { return policy_name_; }
  const std::string& policy2_name() const { return policy2_name_; }

 private:
  friend OutcomeTable BuildOutcomeTable(const OutcomeTableSources& sources,
                                        const InputDomain& domain,
                                        const CheckOptions& options);
  friend OutcomeTable BuildOutcomeTableWithClasses(const OutcomeTableSources& sources,
                                                   const InputDomain& domain,
                                                   const ClassSweepContext& context,
                                                   const CheckOptions& options);

  explicit OutcomeTable(InputDomain domain) : domain_(std::move(domain)) {}

  InputDomain domain_;
  CheckProgress build_;
  std::vector<Outcome> outcomes_;
  std::vector<Outcome> outcomes2_;
  std::vector<PolicyImage> images_;
  std::vector<PolicyImage> images2_;
  std::string mechanism_name_;
  std::string mechanism2_name_;
  std::string policy_name_;
  std::string policy2_name_;
};

// Tabulates the requested columns in one kernel sweep under `options`
// (threads, deadline, cancellation all honoured; a throwing source surfaces
// as build().status == kAborted, exactly like a live checker). Per point the
// evaluation order is fixed: mechanism, mechanism2, policy, policy2.
// Rank-disjoint shards write disjoint column slots, so the parallel build
// needs no synchronization beyond the kernel's own.
OutcomeTable BuildOutcomeTable(const OutcomeTableSources& sources, const InputDomain& domain,
                               const CheckOptions& options = CheckOptions());

// The class-level build: same table, fewer mechanism evaluations.
//
// Phase 1 sweeps the multi-member class REPRESENTATIVES (under
// SweepPlan::ForClasses) through RunTracked, consulting the memo first.
// A representative whose run tracked exactly and read only class-constant
// coordinates certifies its whole class. Phase 2 is the ordinary kernel
// sweep over every grid rank — so a completed build's progress is
// byte-identical to BuildOutcomeTable's — except that certified classes'
// member slots are filled by copying the representative's outcome instead
// of calling Run, and policy image columns are evaluated as usual.
//
// The byte-identity argument: copied slots equal what Run would have
// produced (the dependency theorem, src/flowchart/interpreter.h), every
// rank still counts as evaluated, and the table-backed reducers are the
// UNCHANGED ones — so a completed class-mode report is byte-for-byte the
// point-mode report. Incomplete builds fail closed exactly like
// BuildOutcomeTable (columns released, progress only); their progress
// counters may differ from point mode's, which is why byte-identity is
// promised for completed runs only.
OutcomeTable BuildOutcomeTableWithClasses(const OutcomeTableSources& sources,
                                          const InputDomain& domain,
                                          const ClassSweepContext& context,
                                          const CheckOptions& options = CheckOptions());

}  // namespace secpol

#endif  // SECPOL_SRC_MECHANISM_OUTCOME_TABLE_H_
