// Equivalence-class machinery for the class-level sweep (DESIGN.md §14).
//
// A security policy I partitions the input grid into indistinguishability
// classes: d ~ d' iff I(d) = I(d'). Soundness-style checks only ever compare
// mechanism outcomes *within* a class, and for the paper's central allow(J)
// family the classes are analytically derivable — the class of d is its
// projection onto J — so the partition costs ZERO policy evaluations.
//
// The |D|^k wall breaks in two steps:
//
//   1. ClassPartition — split the grid into classes, pick the lowest-rank
//      member of each class as its representative, and record per class the
//      coordinate set that is CONSTANT across its members (for allow(J):
//      J itself plus every singleton coordinate).
//
//   2. Constancy certificates — run the representative through
//      ProtectionMechanism::RunTracked. If the run tracked exactly and its
//      read set is contained in the class's constant coordinates, every
//      member of the class agrees with the representative on every
//      coordinate the execution can observe, so by the dependency theorem
//      (src/flowchart/interpreter.h) every member's outcome is byte-identical
//      to the representative's: one evaluation covers the whole class.
//
// Certificates are sound-by-default: mechanisms that cannot track (fault
// injectors, retry wrappers, tables, arbitrary callables) inherit the
// fail-closed base RunTracked and simply never certify — the class sweep
// then degenerates to the point sweep plus a few wasted representative runs,
// never to a wrong table.
//
// ClassMemo adds the incremental-recheck layer: representative outcomes are
// memoized under (context fingerprint, representative rank) together with
// the executed-box set and a digest of those boxes' contents. A re-submitted
// job whose program edit avoids the executed boxes revalidates the entry
// against the current ProgramDigestTree and reuses the outcome without
// running the mechanism at all.

#ifndef SECPOL_SRC_MECHANISM_CLASSES_H_
#define SECPOL_SRC_MECHANISM_CLASSES_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/flowchart/program.h"
#include "src/mechanism/domain.h"
#include "src/mechanism/outcome.h"
#include "src/policy/policy.h"
#include "src/util/fingerprint.h"
#include "src/util/var_set.h"

namespace secpol {

// The policy's indistinguishability classes over one grid.
//
// Representatives are the lowest-rank member of each class, which is what
// makes class-mode reports byte-identical to point-mode ones: the serial
// scan's first occurrence of a class IS its representative, so first-witness
// reducers see identical (representative, witness) pairs either way.
struct ClassPartition {
  // Largest grid a partition will materialize, matching
  // OutcomeTable::kMaxPoints — partitions exist to feed tables.
  static constexpr std::uint64_t kMaxPoints = std::uint64_t{1} << 21;

  std::uint64_t num_points = 0;
  std::int64_t num_classes = 0;
  // True when the partition was derived from allow(J) structure alone,
  // with zero policy evaluations.
  bool analytic = false;
  // Policy evaluations spent building (0 when analytic).
  std::uint64_t policy_evals = 0;

  std::vector<std::int32_t> class_of_rank;       // size num_points
  std::vector<std::uint64_t> representative;     // per class: lowest member rank
  std::vector<std::uint64_t> class_size;         // per class: member count
  std::vector<VarSet> constant_coords;           // per class: coords constant
                                                 // across all members

  // A refused build (oversized or overflowing grid) is empty.
  bool empty() const { return num_classes == 0; }

  std::uint64_t MultiMemberClasses() const;
};

// Analytic partition for allow(J): the class of d is its J-projection, the
// representative has every non-J coordinate at its first candidate value,
// and the constant coordinates are J plus every singleton coordinate.
// Costs zero policy evaluations. `allowed` must be a subset of the grid's
// coordinates.
ClassPartition PartitionByAllow(const InputDomain& domain, VarSet allowed);

// Generic fallback: evaluate I(d) for every rank and group equal images.
// Class ids are assigned in first-occurrence rank order; each class's
// constant coordinates are computed exactly (a coordinate is constant iff
// every member agrees with the first member on it). Costs one policy
// evaluation per grid point — but zero MECHANISM evaluations, which is
// where the class sweep's savings live.
ClassPartition PartitionByImages(const InputDomain& domain, const SecurityPolicy& policy);

// Dispatch: analytic for AllowPolicy, evaluated images otherwise.
ClassPartition BuildClassPartition(const InputDomain& domain, const SecurityPolicy& policy);

// Instrumentation out-param of the class-backed table build: where the
// evaluations went and what the certificates saved.
struct ClassBuildStats {
  std::uint64_t classes = 0;
  std::uint64_t multi_member_classes = 0;
  bool analytic_partition = false;
  std::uint64_t partition_policy_evals = 0;

  std::uint64_t certified_classes = 0;    // mechanism column
  std::uint64_t certified_classes2 = 0;   // mechanism2 column
  std::uint64_t rep_evals = 0;            // tracked representative runs
  std::uint64_t mechanism_runs = 0;       // actual M evaluations (both phases)
  std::uint64_t mechanism2_runs = 0;
  std::uint64_t copied_points = 0;        // member slots filled by copy

  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
};

// Digest of the CONTENTS of the listed boxes under `tree`, in list order.
// This is the revalidation token of the incremental recheck: a memo entry
// recorded against one version of a program remains valid exactly when the
// current tree assigns the same digests to every box the run executed.
// Box ids outside the tree hash to a distinct "missing" marker, so a
// shrunken program can never collide with the original.
Fingerprint TouchedBoxDigest(const ProgramDigestTree& tree, const std::vector<int>& boxes);

// A bounded, thread-safe memo of tracked representative outcomes, shared
// across jobs by the service and the daemon.
//
// Key: (context fingerprint, representative rank). The context fingerprint
// must cover everything that determines the representative's outcome except
// the program's box contents: mechanism recipe, policy parameters feeding
// the mechanism, grid coordinate lists, fault spec, and the program's
// SKELETON fingerprint (name, arity, variable names, start box, box count).
// Box contents are deliberately excluded — they are revalidated per lookup
// via TouchedBoxDigest against the caller's current ProgramDigestTree, which
// is exactly what lets an edited program reuse entries whose executed boxes
// the edit did not touch.
class ClassMemo {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  struct Entry {
    Fingerprint touched_digest;  // TouchedBoxDigest at record time
    std::vector<int> boxes;      // executed boxes of the representative run
    VarSet reads;                // input coordinates the run read
    Outcome outcome;             // the representative's outcome
  };

  explicit ClassMemo(std::size_t capacity = kDefaultCapacity);

  // Returns the entry for (context, rep_rank) if present. The caller is
  // responsible for revalidating `touched_digest` against its current
  // program tree before trusting `outcome`.
  std::optional<Entry> Lookup(const Fingerprint& context, std::uint64_t rep_rank);

  // Inserts or refreshes an entry; evicts least-recently-used past capacity.
  void Insert(const Fingerprint& context, std::uint64_t rep_rank, Entry entry);

  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;
  void Clear();

 private:
  struct Key {
    Fingerprint context;
    std::uint64_t rep_rank = 0;

    bool operator==(const Key& other) const {
      return context == other.context && rep_rank == other.rep_rank;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      return FingerprintHash()(key.context) ^
             (key.rep_rank * 0x9e3779b97f4a7c15ULL);
    }
  };
  struct Slot {
    Key key;
    Entry entry;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Slot> lru_;  // front = most recent
  std::unordered_map<Key, std::list<Slot>::iterator, KeyHash> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace secpol

#endif  // SECPOL_SRC_MECHANISM_CLASSES_H_
