// Deterministic fault injection for the checking runtime.
//
// The checkers must degrade gracefully when the thing being checked
// misbehaves: a mechanism that throws, exhausts its fuel, returns a wrong
// value, or is pathologically slow should produce a structured checker
// outcome — never a crash, never a hang, never a silently wrong verdict.
// FaultInjectingMechanism wraps any ProtectionMechanism and injects such
// faults at chosen grid points; because faults fire by *grid rank* (either
// an explicit rank list or a seeded hash of the rank) the faulty mechanism
// is itself a deterministic function of the input, so the serial ≡ parallel
// differential contract stays testable even under injection.
//
// Faults marked transient throw TransientFaultError and stop firing after
// `fires_per_rank` attempts at that rank; RetryingMechanism implements the
// matching bounded retry policy, so transient faults are absorbed and the
// checker's report is identical to the fault-free run.

#ifndef SECPOL_SRC_MECHANISM_FAULT_H_
#define SECPOL_SRC_MECHANISM_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/mechanism/domain.h"
#include "src/mechanism/mechanism.h"
#include "src/policy/policy.h"
#include "src/util/result.h"

namespace secpol {

// Base class of every injected failure.
class FaultInjectedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// A fault that may succeed if the operation is retried.
class TransientFaultError : public FaultInjectedError {
 public:
  using FaultInjectedError::FaultInjectedError;
};

enum class FaultKind {
  kThrow,          // throw FaultInjectedError / TransientFaultError
  kFuelExhaustion, // return Violation("fuel exhausted") instead of running
  kWrongValue,     // perturb the inner outcome's value
  kSlowEval,       // sleep before running (wall time only; steps unchanged)
};

std::string FaultKindName(FaultKind kind);

// Where and how one fault fires. Targeting is by grid rank: explicit `ranks`
// win; otherwise the fault fires at rank r iff
// splitmix64(seed ^ r) % rate_den < rate_num — deterministic per rank and
// independent of evaluation order, so injection commutes with sharding.
struct FaultSpec {
  FaultKind kind = FaultKind::kThrow;
  std::vector<std::uint64_t> ranks;  // explicit target ranks (if non-empty)
  std::uint32_t rate_num = 0;        // else: hash rate num/den
  std::uint32_t rate_den = 1;
  std::uint64_t seed = 0;
  bool transient = false;       // kThrow only: throw TransientFaultError
  int fires_per_rank = 0;       // 0 = every attempt; n > 0 = first n attempts
  std::uint32_t slow_micros = 50;  // kSlowEval sleep per fire

  bool TargetsRank(std::uint64_t rank) const;
  std::string ToString() const;
};

// Parses a comma-separated fault-spec list (the CLI's --fault-spec syntax):
//
//   spec   := clause (',' clause)*
//   clause := kind suffix*
//   kind   := "throw" | "fuel" | "wrong" | "slow"
//   suffix := '@' rank ('+' rank)*   explicit grid ranks
//           | '~' num '/' den        seeded hash rate
//           | ':' seed               seed for the hash rate (default 0)
//           | '!'                    transient (kThrow)
//           | 'x' n                  fires per rank (default: unlimited,
//                                    or 1 when '!' is given)
//           | 'u' micros             kSlowEval sleep in microseconds
//
// Example: "throw@5+9,fuel~1/10:42,slow~1/4u200".
Result<std::vector<FaultSpec>> ParseFaultSpecs(const std::string& text);

// Wraps `inner`, injecting `faults` at grid ranks of `domain`. Run() maps
// the input back to its rank (assert: the input must lie in the domain).
// Thread-safe: concurrent Run() calls from different shards are fine; the
// per-rank attempt counters used by fires_per_rank are mutex-guarded.
class FaultInjectingMechanism : public ProtectionMechanism {
 public:
  FaultInjectingMechanism(std::shared_ptr<const ProtectionMechanism> inner,
                          InputDomain domain, std::vector<FaultSpec> faults);

  int num_inputs() const override { return inner_->num_inputs(); }
  Outcome Run(InputView input) const override;
  std::string name() const override { return "faulty(" + inner_->name() + ")"; }

  // Total faults fired so far (all kinds, all ranks).
  std::uint64_t faults_fired() const { return fired_.load(std::memory_order_relaxed); }

 private:
  // True if spec `index` should fire for this attempt at `rank` (consumes
  // one attempt when fires_per_rank bounds the spec).
  bool ConsumeFire(std::size_t index, std::uint64_t rank) const;

  std::shared_ptr<const ProtectionMechanism> inner_;
  InputDomain domain_;
  std::vector<FaultSpec> faults_;
  mutable std::atomic<std::uint64_t> fired_{0};
  mutable std::mutex mu_;  // guards attempts_
  mutable std::map<std::pair<std::size_t, std::uint64_t>, int> attempts_;
};

// The same injector for policies (policy_compare has no mechanism to wrap).
// kFuelExhaustion is meaningless for a policy and is ignored; kWrongValue
// perturbs the image's first coordinate.
class FaultInjectingPolicy : public SecurityPolicy {
 public:
  FaultInjectingPolicy(std::shared_ptr<const SecurityPolicy> inner, InputDomain domain,
                       std::vector<FaultSpec> faults);

  int num_inputs() const override { return inner_->num_inputs(); }
  PolicyImage Image(InputView input) const override;
  std::string name() const override { return "faulty(" + inner_->name() + ")"; }

 private:
  std::shared_ptr<const SecurityPolicy> inner_;
  InputDomain domain_;
  std::vector<FaultSpec> faults_;
};

// Bounded retry policy: re-runs the inner mechanism on TransientFaultError
// up to `max_retries` extra attempts, then rethrows. Persistent faults
// (plain FaultInjectedError or any other exception) are never retried.
class RetryingMechanism : public ProtectionMechanism {
 public:
  RetryingMechanism(std::shared_ptr<const ProtectionMechanism> inner, int max_retries);

  int num_inputs() const override { return inner_->num_inputs(); }
  Outcome Run(InputView input) const override;
  std::string name() const override {
    return "retry(" + inner_->name() + ", " + std::to_string(max_retries_) + ")";
  }

  // Total retries performed so far (across all inputs and threads).
  std::uint64_t retries_used() const { return retries_.load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<const ProtectionMechanism> inner_;
  int max_retries_;
  mutable std::atomic<std::uint64_t> retries_{0};
};

}  // namespace secpol

#endif  // SECPOL_SRC_MECHANISM_FAULT_H_
