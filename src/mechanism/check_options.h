// Shared knobs for the exhaustive checkers, plus the structured status every
// checker reports.
//
// Every extensional check (soundness, completeness, integrity, maximal
// synthesis, policy comparison, leak measurement) scans the same kind of
// cross-product grid; CheckOptions carries the evaluation knobs they all
// share. The parallel engine is grid-sharded: the domain is split into
// contiguous lexicographic rank ranges, each shard accumulates a partial
// result, and the partials are merged by global rank so the final report is
// bit-for-bit the one a serial scan produces, at any thread count.
//
// Robustness: sweeps are bounded and cancellable. Every checker polls
// `deadline` and `cancel` cheaply per grid point (see util/deadline.h) and
// returns a CheckProgress: kCompleted runs keep the strict serial ≡ parallel
// determinism contract; kDeadlineExceeded / kAborted runs report how much of
// the grid was covered instead of crashing or hanging. A worker exception
// (e.g. a faulty mechanism throwing) surfaces as kAborted with the message —
// never as std::terminate.

#ifndef SECPOL_SRC_MECHANISM_CHECK_OPTIONS_H_
#define SECPOL_SRC_MECHANISM_CHECK_OPTIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/obs.h"
#include "src/util/deadline.h"
#include "src/util/result.h"

namespace secpol {

struct CheckOptions {
  // Worker threads for grid evaluation: 0 = one per hardware thread,
  // 1 = the serial reference scan, n > 1 = parallel with n workers.
  int num_threads = 0;

  // Wall-clock bound for the sweep (unbounded by default). When it expires
  // the checker stops at the next poll and reports kDeadlineExceeded.
  Deadline deadline;

  // Cooperative cancellation: share a copy of this token and call
  // RequestCancel() from any thread; the checker reports kAborted.
  CancelToken cancel;

  // Observability sinks (metrics registry / trace recorder). Both default to
  // null — the disabled mode — and never influence verdicts or report bytes.
  ObsContext obs;

  static CheckOptions Serial() { return Threads(1); }
  static CheckOptions Threads(int n) {
    CheckOptions out;
    out.num_threads = n;
    return out;
  }

  CheckOptions WithDeadline(Deadline d) const {
    CheckOptions out = *this;
    out.deadline = d;
    return out;
  }

  // num_threads with 0 resolved to the hardware thread count.
  int ResolvedThreads() const;

  // Number of contiguous shards to split a grid of `grid_size` tuples into
  // when running on `threads` workers. A small multiple of the thread count
  // so an uneven shard cannot serialize the tail, capped by the grid itself.
  static std::uint64_t ShardsFor(int threads, std::uint64_t grid_size);
};

// Uniform validation of user-supplied evaluation knobs. Every entry point
// that accepts them — CLI flags, batch manifests, service configs — funnels
// through these helpers so the accepted ranges and the error text are
// identical everywhere (the flag/field name is the caller's to prefix).

// Worker thread count: >= 0, where 0 means one per hardware thread.
Result<int> ValidateThreads(std::int64_t threads);

// Deadline: a positive millisecond count, converted to a Deadline anchored
// at the moment of validation.
Result<Deadline> ValidateDeadlineMillis(std::int64_t millis);

// Transient-fault retry bound: >= 0 extra attempts.
Result<int> ValidateRetries(std::int64_t retries);

// How a checker run ended.
enum class CheckStatus {
  kCompleted,         // full grid covered; report is the exact serial report
  kDeadlineExceeded,  // deadline expired mid-sweep; coverage was partial
  kAborted,           // cancelled, or a worker raised an exception
};

std::string CheckStatusName(CheckStatus status);

// Structured outcome + coverage of one checker run. Verdict fields of a
// report are authoritative only when complete() — with one exception: a
// counterexample present on an incomplete run is still a genuine witness
// (it was actually evaluated), it just need not be the rank-minimal one.
struct CheckProgress {
  CheckStatus status = CheckStatus::kCompleted;
  std::uint64_t evaluated = 0;  // grid points actually evaluated
  std::uint64_t total = 0;      // grid size
  std::string message;          // abort cause (exception text / "cancelled")

  bool complete() const { return status == CheckStatus::kCompleted; }

  // e.g. "deadline exceeded after 1234/10000 grid points".
  std::string ToString() const;
};

// Per-shard sweep bookkeeping, cache-line padded so neighbouring shards'
// counters and poll gates never contend. Serial paths use a single meter.
struct alignas(64) ShardMeter {
  std::uint64_t evaluated = 0;
  std::uint64_t pruned = 0;        // 1 if this shard stopped on a prune bound
  std::int64_t first_visit_us = -1;  // trace timebase; -1 = never visited
  std::int64_t last_visit_us = -1;   // (only maintained while tracing)
  PollGate gate;

  explicit ShardMeter(const CheckOptions& options, CancelToken drain = CancelToken())
      : gate(options.deadline, options.cancel, std::move(drain)) {}
};

// Folds shard meters into `progress`: sums coverage and derives the status
// (deadline beats cancel; an exception is reported by the caller instead,
// via AbortProgress). Leaves status untouched if no shard stopped.
void MergeMeters(const std::vector<ShardMeter>& meters, CheckProgress* progress);

// Marks `progress` aborted-by-exception with the given message.
void AbortProgress(CheckProgress* progress, std::string message);

}  // namespace secpol

#endif  // SECPOL_SRC_MECHANISM_CHECK_OPTIONS_H_
