// Shared knobs for the exhaustive checkers.
//
// Every extensional check (soundness, completeness, integrity, maximal
// synthesis, policy comparison, leak measurement) scans the same kind of
// cross-product grid; CheckOptions carries the evaluation knobs they all
// share. The parallel engine is grid-sharded: the domain is split into
// contiguous lexicographic rank ranges, each shard accumulates a partial
// result, and the partials are merged by global rank so the final report is
// bit-for-bit the one a serial scan produces, at any thread count.

#ifndef SECPOL_SRC_MECHANISM_CHECK_OPTIONS_H_
#define SECPOL_SRC_MECHANISM_CHECK_OPTIONS_H_

#include <cstdint>

namespace secpol {

struct CheckOptions {
  // Worker threads for grid evaluation: 0 = one per hardware thread,
  // 1 = the serial reference scan, n > 1 = parallel with n workers.
  int num_threads = 0;

  static CheckOptions Serial() { return CheckOptions{1}; }
  static CheckOptions Threads(int n) { return CheckOptions{n}; }

  // num_threads with 0 resolved to the hardware thread count.
  int ResolvedThreads() const;

  // Number of contiguous shards to split a grid of `grid_size` tuples into
  // when running on `threads` workers. A small multiple of the thread count
  // so an uneven shard cannot serialize the tail, capped by the grid itself.
  static std::uint64_t ShardsFor(int threads, std::uint64_t grid_size);
};

}  // namespace secpol

#endif  // SECPOL_SRC_MECHANISM_CHECK_OPTIONS_H_
