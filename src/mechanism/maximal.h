// Finite-domain synthesis of the maximal sound protection mechanism.
//
// Theorem 2 proves a maximal sound mechanism exists for every (Q, I);
// Theorem 4 proves no effective procedure produces it in general, and Ruzzo
// observed it need not even be recursive. Both obstructions live in the
// infinite quantifier: over a *finite* input domain the maximal mechanism is
// directly computable — release Q(d) exactly on those policy classes where Q
// is observably constant — and its cost is the full tabulation of Q on the
// grid. bench_maximal measures how that cost explodes with arity and domain
// size, which is the computable shadow of Theorem 4.

#ifndef SECPOL_SRC_MECHANISM_MAXIMAL_H_
#define SECPOL_SRC_MECHANISM_MAXIMAL_H_

#include <cstdint>
#include <memory>

#include "src/mechanism/check_options.h"
#include "src/mechanism/domain.h"
#include "src/mechanism/mechanism.h"
#include "src/mechanism/outcome.h"
#include "src/policy/policy.h"

namespace secpol {

struct MaximalSynthesis {
  std::shared_ptr<TableMechanism> mechanism;
  std::uint64_t inputs = 0;           // grid size tabulated
  std::uint64_t policy_classes = 0;   // number of I-equivalence classes
  std::uint64_t released_classes = 0; // classes where Q is constant (released)

  // How the tabulation ended. On an incomplete run `mechanism` is null —
  // a table synthesized from a partial tabulation could silently release a
  // non-constant class, so the synthesizer fails closed instead.
  CheckProgress progress;
};

// Builds the maximal sound mechanism for `q` and `policy` over `domain`.
// Under kValueAndTime a class is released only if Q's (value, steps) pair is
// constant on it; released outcomes replay Q's own steps, and violation
// outcomes use steps = 0 so violations are timing-uniform.
// With options.num_threads != 1 the tabulation runs in parallel shards;
// class member lists are concatenated in shard order (= lexicographic
// order), so the synthesized table and every count are identical to the
// serial tabulation at any thread count. The tabulation honours
// options.deadline / options.cancel (returning a null mechanism with
// progress describing the partial coverage) and converts a throwing Q into
// progress.status = kAborted.
MaximalSynthesis SynthesizeMaximalMechanism(const ProtectionMechanism& q,
                                            const SecurityPolicy& policy,
                                            const InputDomain& domain, Observability obs,
                                            const CheckOptions& options = CheckOptions());

class OutcomeTable;

// The same synthesis over a pre-built outcome table (complete, with outcome
// and image columns): the tabulation reads the table, and released-class
// outcomes replay from it by rank instead of re-running Q. Byte-identical to
// the live overload on the same grid.
MaximalSynthesis SynthesizeMaximalMechanism(const OutcomeTable& table, Observability obs,
                                            const CheckOptions& options = CheckOptions());

}  // namespace secpol

#endif  // SECPOL_SRC_MECHANISM_MAXIMAL_H_
