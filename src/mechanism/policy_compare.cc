#include "src/mechanism/policy_compare.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/mechanism/outcome_table.h"
#include "src/mechanism/sweep.h"

namespace secpol {

std::string PolicyCompareReport::ToString() const {
  if (progress.complete()) {
    return reveals_at_most ? "REVEALS AT MOST" : "REVEALS MORE";
  }
  if (violation_found) {
    return "REVEALS MORE [" + progress.ToString() + "]";
  }
  return "UNKNOWN [" + progress.ToString() + "]";
}

namespace {

struct ComparePoint {
  PolicyImage q_image;
  PolicyImage p_image;
};

// The disclosure-order reducer: a functional-dependency check — each q-image
// must map to a single p-image. An in-shard violation decides the verdict
// immediately (every shard stops at the next poll of `functional`); a
// cross-shard disagreement is caught by the merge.
template <typename EvalFn>
PolicyCompareReport ComparePolicyDisclosureImpl(const InputDomain& domain,
                                                const CheckOptions& options,
                                                const EvalFn& eval) {
  PolicyCompareReport report;
  const std::uint64_t grid = domain.size();
  const SweepPlan plan = SweepPlan::For(options, grid);
  std::vector<std::map<PolicyImage, PolicyImage>> partials(plan.num_shards);
  std::atomic<bool> functional{true};

  report.progress = SweepGrid(
      domain, options, plan,
      [&](std::uint64_t shard, std::uint64_t rank, InputView input) -> bool {
        ComparePoint point = eval(rank, input);
        auto [it, inserted] = partials[shard].try_emplace(std::move(point.q_image),
                                                          std::move(point.p_image));
        // try_emplace leaves its arguments untouched when the key already
        // exists, so point.p_image is still the point's own image here.
        if (!inserted && it->second != point.p_image) {
          functional.store(false, std::memory_order_relaxed);
          return false;  // first violation decides the verdict
        }
        return true;
      },
      [&](std::uint64_t) { return !functional.load(std::memory_order_relaxed); });

  if (!functional.load()) {
    report.violation_found = true;
    report.reveals_at_most = false;
    return report;
  }
  // Cross-shard consistency: the same q-image must map to the same p-image
  // in every shard.
  std::map<PolicyImage, PolicyImage> merged;
  for (auto& shard : partials) {
    for (auto& [q_image, p_image] : shard) {
      auto [it, inserted] = merged.try_emplace(q_image, p_image);
      if (!inserted && it->second != p_image) {
        report.violation_found = true;
        report.reveals_at_most = false;
        return report;
      }
    }
  }
  report.reveals_at_most = report.progress.complete();
  return report;
}

}  // namespace

PolicyCompareReport ComparePolicyDisclosure(const SecurityPolicy& p, const SecurityPolicy& q,
                                            const InputDomain& domain,
                                            const CheckOptions& options) {
  assert(p.num_inputs() == q.num_inputs());
  assert(p.num_inputs() == domain.num_inputs());
  CheckScope scope(options.obs, "policy_compare");
  PolicyCompareReport report =
      ComparePolicyDisclosureImpl(domain, options, [&](std::uint64_t, InputView input) {
        // Braced initialization fixes the historical order: q's image before
        // p's.
        return ComparePoint{q.Image(input), p.Image(input)};
      });
  scope.SetPoints(report.progress.evaluated);
  return report;
}

PolicyCompareReport ComparePolicyDisclosure(const OutcomeTable& table,
                                            const CheckOptions& options) {
  assert(table.complete());
  assert(table.has_images() && table.has_images2());
  CheckScope scope(options.obs, "policy_compare");
  // The table's primary policy column is p, the secondary is q: "p reveals
  // at most q" asks whether the audited policy discloses no more than the
  // reference policy2.
  PolicyCompareReport report =
      ComparePolicyDisclosureImpl(table.domain(), options,
                                  [&](std::uint64_t rank, InputView) {
                                    return ComparePoint{table.image2(rank),
                                                        table.image(rank)};
                                  });
  scope.SetPoints(report.progress.evaluated);
  return report;
}

bool RevealsAtMost(const SecurityPolicy& p, const SecurityPolicy& q,
                   const InputDomain& domain, const CheckOptions& options) {
  return ComparePolicyDisclosure(p, q, domain, options).reveals_at_most;
}

}  // namespace secpol
