#include "src/mechanism/policy_compare.h"

#include <atomic>
#include <cassert>
#include <exception>
#include <map>
#include <vector>

namespace secpol {

std::string PolicyCompareReport::ToString() const {
  if (progress.complete()) {
    return reveals_at_most ? "REVEALS AT MOST" : "REVEALS MORE";
  }
  if (violation_found) {
    return "REVEALS MORE [" + progress.ToString() + "]";
  }
  return "UNKNOWN [" + progress.ToString() + "]";
}

PolicyCompareReport ComparePolicyDisclosure(const SecurityPolicy& p, const SecurityPolicy& q,
                                            const InputDomain& domain,
                                            const CheckOptions& options) {
  assert(p.num_inputs() == q.num_inputs());
  assert(p.num_inputs() == domain.num_inputs());

  PolicyCompareReport report;
  const std::uint64_t grid = domain.size();
  report.progress.total = grid;

  const int threads = options.ResolvedThreads();
  if (threads <= 1) {
    // Functional dependency check: each q-image must map to a single p-image.
    std::map<PolicyImage, PolicyImage> q_to_p;
    bool functional = true;
    std::vector<ShardMeter> meters(1, ShardMeter(options));
    ShardMeter& meter = meters.front();
    try {
      domain.ForEachRange(0, grid, [&](std::uint64_t rank, InputView input) {
        (void)rank;
        if (meter.gate.ShouldStop()) {
          return false;
        }
        ++meter.evaluated;
        PolicyImage q_image = q.Image(input);
        PolicyImage p_image = p.Image(input);
        auto [it, inserted] = q_to_p.try_emplace(std::move(q_image), std::move(p_image));
        if (!inserted && it->second != p.Image(input)) {
          functional = false;
          return false;  // first violation decides the verdict
        }
        return true;
      });
      MergeMeters(meters, &report.progress);
    } catch (const std::exception& e) {
      MergeMeters(meters, &report.progress);
      AbortProgress(&report.progress, e.what());
    } catch (...) {
      MergeMeters(meters, &report.progress);
      AbortProgress(&report.progress, "unknown error");
    }
    report.violation_found = !functional;
    report.reveals_at_most = functional && report.progress.complete();
    return report;
  }

  const std::uint64_t num_shards = CheckOptions::ShardsFor(threads, grid);
  std::vector<std::map<PolicyImage, PolicyImage>> partials(num_shards);
  std::atomic<bool> functional{true};
  CancelToken drain;
  std::vector<ShardMeter> meters(num_shards, ShardMeter(options, drain));
  try {
    domain.ParallelForEach(
        num_shards,
        [&](std::uint64_t shard, std::uint64_t rank, InputView input) -> bool {
          (void)rank;
          ShardMeter& meter = meters[shard];
          if (meter.gate.ShouldStop()) {
            return false;
          }
          if (!functional.load(std::memory_order_relaxed)) {
            return false;
          }
          ++meter.evaluated;
          PolicyImage q_image = q.Image(input);
          PolicyImage p_image = p.Image(input);
          auto [it, inserted] =
              partials[shard].try_emplace(std::move(q_image), std::move(p_image));
          if (!inserted && it->second != p.Image(input)) {
            functional.store(false, std::memory_order_relaxed);
          }
          return true;
        },
        threads, &drain);
    MergeMeters(meters, &report.progress);
  } catch (const std::exception& e) {
    MergeMeters(meters, &report.progress);
    AbortProgress(&report.progress, e.what());
  } catch (...) {
    MergeMeters(meters, &report.progress);
    AbortProgress(&report.progress, "unknown error");
  }

  if (!functional.load()) {
    report.violation_found = true;
    report.reveals_at_most = false;
    return report;
  }
  // Cross-shard consistency: the same q-image must map to the same p-image
  // in every shard.
  std::map<PolicyImage, PolicyImage> merged;
  for (auto& shard : partials) {
    for (auto& [q_image, p_image] : shard) {
      auto [it, inserted] = merged.try_emplace(q_image, p_image);
      if (!inserted && it->second != p_image) {
        report.violation_found = true;
        report.reveals_at_most = false;
        return report;
      }
    }
  }
  report.reveals_at_most = report.progress.complete();
  return report;
}

bool RevealsAtMost(const SecurityPolicy& p, const SecurityPolicy& q,
                   const InputDomain& domain, const CheckOptions& options) {
  return ComparePolicyDisclosure(p, q, domain, options).reveals_at_most;
}

}  // namespace secpol
