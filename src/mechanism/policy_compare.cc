#include "src/mechanism/policy_compare.h"

#include <cassert>
#include <map>

namespace secpol {

bool RevealsAtMost(const SecurityPolicy& p, const SecurityPolicy& q,
                   const InputDomain& domain) {
  assert(p.num_inputs() == q.num_inputs());
  assert(p.num_inputs() == domain.num_inputs());
  // Functional dependency check: each q-image must map to a single p-image.
  std::map<PolicyImage, PolicyImage> q_to_p;
  bool functional = true;
  domain.ForEach([&](InputView input) {
    if (!functional) {
      return;
    }
    PolicyImage q_image = q.Image(input);
    PolicyImage p_image = p.Image(input);
    auto [it, inserted] = q_to_p.try_emplace(std::move(q_image), std::move(p_image));
    if (!inserted && it->second != p.Image(input)) {
      functional = false;
    }
  });
  return functional;
}

}  // namespace secpol
