#include "src/mechanism/policy_compare.h"

#include <atomic>
#include <cassert>
#include <map>
#include <vector>

namespace secpol {

bool RevealsAtMost(const SecurityPolicy& p, const SecurityPolicy& q,
                   const InputDomain& domain, const CheckOptions& options) {
  assert(p.num_inputs() == q.num_inputs());
  assert(p.num_inputs() == domain.num_inputs());

  const int threads = options.ResolvedThreads();
  if (threads <= 1) {
    // Functional dependency check: each q-image must map to a single p-image.
    std::map<PolicyImage, PolicyImage> q_to_p;
    bool functional = true;
    domain.ForEach([&](InputView input) {
      if (!functional) {
        return;
      }
      PolicyImage q_image = q.Image(input);
      PolicyImage p_image = p.Image(input);
      auto [it, inserted] = q_to_p.try_emplace(std::move(q_image), std::move(p_image));
      if (!inserted && it->second != p.Image(input)) {
        functional = false;
      }
    });
    return functional;
  }

  const std::uint64_t num_shards = CheckOptions::ShardsFor(threads, domain.size());
  std::vector<std::map<PolicyImage, PolicyImage>> partials(num_shards);
  std::atomic<bool> functional{true};
  domain.ParallelForEach(
      num_shards,
      [&](std::uint64_t shard, std::uint64_t rank, InputView input) -> bool {
        (void)rank;
        if (!functional.load(std::memory_order_relaxed)) {
          return false;
        }
        PolicyImage q_image = q.Image(input);
        PolicyImage p_image = p.Image(input);
        auto [it, inserted] =
            partials[shard].try_emplace(std::move(q_image), std::move(p_image));
        if (!inserted && it->second != p.Image(input)) {
          functional.store(false, std::memory_order_relaxed);
        }
        return true;
      },
      threads);
  if (!functional.load()) {
    return false;
  }
  // Cross-shard consistency: the same q-image must map to the same p-image
  // in every shard.
  std::map<PolicyImage, PolicyImage> merged;
  for (auto& shard : partials) {
    for (auto& [q_image, p_image] : shard) {
      auto [it, inserted] = merged.try_emplace(q_image, p_image);
      if (!inserted && it->second != p_image) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace secpol
