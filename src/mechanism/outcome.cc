#include "src/mechanism/outcome.h"

namespace secpol {

std::string ObservabilityName(Observability obs) {
  switch (obs) {
    case Observability::kValueOnly:
      return "value-only";
    case Observability::kValueAndTime:
      return "value+time";
  }
  return "?";
}

Outcome Outcome::Val(Value value, StepCount steps) {
  Outcome o;
  o.kind = Kind::kValue;
  o.value = value;
  o.steps = steps;
  return o;
}

Outcome Outcome::Violation(StepCount steps, std::string notice) {
  Outcome o;
  o.kind = Kind::kViolation;
  o.steps = steps;
  o.notice = std::move(notice);
  return o;
}

bool Outcome::ObservablyEquals(const Outcome& other, Observability obs) const {
  if (kind != other.kind) {
    return false;
  }
  if (kind == Kind::kValue && value != other.value) {
    return false;
  }
  if (obs == Observability::kValueAndTime && steps != other.steps) {
    return false;
  }
  return true;
}

std::string Outcome::ToString() const {
  if (IsValue()) {
    return "value " + std::to_string(value) + " (steps " + std::to_string(steps) + ")";
  }
  return "VIOLATION[" + notice + "] (steps " + std::to_string(steps) + ")";
}

}  // namespace secpol
