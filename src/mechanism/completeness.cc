#include "src/mechanism/completeness.h"

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/mechanism/outcome_table.h"
#include "src/mechanism/sweep.h"
#include "src/util/strings.h"

namespace secpol {

std::string CompletenessRelationName(CompletenessRelation relation) {
  switch (relation) {
    case CompletenessRelation::kEquivalent:
      return "M1 == M2";
    case CompletenessRelation::kFirstMore:
      return "M1 > M2";
    case CompletenessRelation::kSecondMore:
      return "M2 > M1";
    case CompletenessRelation::kIncomparable:
      return "incomparable";
  }
  return "?";
}

CompletenessRelation CompletenessStats::Relation() const {
  if (first_only == 0 && second_only == 0) {
    return CompletenessRelation::kEquivalent;
  }
  if (second_only == 0) {
    return CompletenessRelation::kFirstMore;
  }
  if (first_only == 0) {
    return CompletenessRelation::kSecondMore;
  }
  return CompletenessRelation::kIncomparable;
}

double CompletenessStats::FirstUtility() const {
  return total == 0 ? 0.0 : static_cast<double>(both_value + first_only) / total;
}

double CompletenessStats::SecondUtility() const {
  return total == 0 ? 0.0 : static_cast<double>(both_value + second_only) / total;
}

std::string CompletenessStats::ToString() const {
  std::string out = progress.complete() ? CompletenessRelationName(Relation())
                                        : "UNKNOWN [" + progress.ToString() + "]";
  return out + " [both=" + std::to_string(both_value) +
         " first-only=" + std::to_string(first_only) +
         " second-only=" + std::to_string(second_only) + " neither=" + std::to_string(neither) +
         " total=" + std::to_string(total) + "]";
}

namespace {

struct CompletenessPoint {
  bool v1 = false;
  bool v2 = false;
};

// The completeness reducer: pure per-shard counters, merged by summation
// (order-independent, so shard order needs no reconstruction).
template <typename EvalFn>
CompletenessStats CompareCompletenessImpl(const InputDomain& domain,
                                          const CheckOptions& options, const EvalFn& eval) {
  const std::uint64_t grid = domain.size();
  const SweepPlan plan = SweepPlan::For(options, grid);
  std::vector<CompletenessStats> partials(plan.num_shards);

  CompletenessStats stats;
  stats.progress = SweepGrid(
      domain, options, plan, [&](std::uint64_t shard, std::uint64_t rank, InputView input) {
        CompletenessStats& partial = partials[shard];
        ++partial.total;
        const CompletenessPoint point = eval(rank, input);
        if (point.v1 && point.v2) {
          ++partial.both_value;
        } else if (point.v1) {
          ++partial.first_only;
        } else if (point.v2) {
          ++partial.second_only;
        } else {
          ++partial.neither;
        }
        return true;
      });
  stats.progress.total = grid;

  for (const CompletenessStats& partial : partials) {
    stats.total += partial.total;
    stats.both_value += partial.both_value;
    stats.first_only += partial.first_only;
    stats.second_only += partial.second_only;
    stats.neither += partial.neither;
  }
  return stats;
}

}  // namespace

CompletenessStats CompareCompleteness(const ProtectionMechanism& m1,
                                      const ProtectionMechanism& m2,
                                      const InputDomain& domain, const CheckOptions& options) {
  assert(m1.num_inputs() == m2.num_inputs());
  assert(m1.num_inputs() == domain.num_inputs());
  CheckScope scope(options.obs, "completeness");
  CompletenessStats stats =
      CompareCompletenessImpl(domain, options, [&](std::uint64_t, InputView input) {
        // Braced initialization fixes the historical order: M1 before M2.
        return CompletenessPoint{m1.Run(input).IsValue(), m2.Run(input).IsValue()};
      });
  scope.SetPoints(stats.progress.evaluated);
  return stats;
}

CompletenessStats CompareCompleteness(const OutcomeTable& table, const CheckOptions& options) {
  assert(table.complete());
  assert(table.has_outcomes() && table.has_outcomes2());
  CheckScope scope(options.obs, "completeness");
  CompletenessStats stats =
      CompareCompletenessImpl(table.domain(), options, [&](std::uint64_t rank, InputView) {
        return CompletenessPoint{table.outcome(rank).IsValue(),
                                 table.outcome2(rank).IsValue()};
      });
  scope.SetPoints(stats.progress.evaluated);
  return stats;
}

double MeasureUtility(const ProtectionMechanism& m, const InputDomain& domain,
                      const CheckOptions& options) {
  assert(m.num_inputs() == domain.num_inputs());
  const int threads = options.ResolvedThreads();
  std::uint64_t total = 0;
  std::uint64_t values = 0;
  if (threads <= 1) {
    domain.ForEach([&](InputView input) {
      ++total;
      if (m.Run(input).IsValue()) {
        ++values;
      }
    });
  } else {
    const std::uint64_t num_shards = CheckOptions::ShardsFor(threads, domain.size());
    std::vector<std::pair<std::uint64_t, std::uint64_t>> partials(num_shards);
    domain.ParallelForEach(
        num_shards,
        [&](std::uint64_t shard, std::uint64_t rank, InputView input) -> bool {
          (void)rank;
          ++partials[shard].first;
          if (m.Run(input).IsValue()) {
            ++partials[shard].second;
          }
          return true;
        },
        threads);
    for (const auto& [shard_total, shard_values] : partials) {
      total += shard_total;
      values += shard_values;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(values) / total;
}

}  // namespace secpol
