#include "src/mechanism/completeness.h"

#include <cassert>
#include <exception>
#include <utility>
#include <vector>

#include "src/util/strings.h"

namespace secpol {

std::string CompletenessRelationName(CompletenessRelation relation) {
  switch (relation) {
    case CompletenessRelation::kEquivalent:
      return "M1 == M2";
    case CompletenessRelation::kFirstMore:
      return "M1 > M2";
    case CompletenessRelation::kSecondMore:
      return "M2 > M1";
    case CompletenessRelation::kIncomparable:
      return "incomparable";
  }
  return "?";
}

CompletenessRelation CompletenessStats::Relation() const {
  if (first_only == 0 && second_only == 0) {
    return CompletenessRelation::kEquivalent;
  }
  if (second_only == 0) {
    return CompletenessRelation::kFirstMore;
  }
  if (first_only == 0) {
    return CompletenessRelation::kSecondMore;
  }
  return CompletenessRelation::kIncomparable;
}

double CompletenessStats::FirstUtility() const {
  return total == 0 ? 0.0 : static_cast<double>(both_value + first_only) / total;
}

double CompletenessStats::SecondUtility() const {
  return total == 0 ? 0.0 : static_cast<double>(both_value + second_only) / total;
}

std::string CompletenessStats::ToString() const {
  std::string out = progress.complete() ? CompletenessRelationName(Relation())
                                        : "UNKNOWN [" + progress.ToString() + "]";
  return out + " [both=" + std::to_string(both_value) +
         " first-only=" + std::to_string(first_only) +
         " second-only=" + std::to_string(second_only) + " neither=" + std::to_string(neither) +
         " total=" + std::to_string(total) + "]";
}

CompletenessStats CompareCompleteness(const ProtectionMechanism& m1,
                                      const ProtectionMechanism& m2,
                                      const InputDomain& domain, const CheckOptions& options) {
  assert(m1.num_inputs() == m2.num_inputs());
  assert(m1.num_inputs() == domain.num_inputs());

  const int threads = options.ResolvedThreads();
  const std::uint64_t grid = domain.size();

  if (threads <= 1) {
    CompletenessStats stats;
    stats.progress.total = grid;
    std::vector<ShardMeter> meters(1, ShardMeter(options));
    ShardMeter& meter = meters.front();
    try {
      domain.ForEachRange(0, grid, [&](std::uint64_t rank, InputView input) {
        (void)rank;
        if (meter.gate.ShouldStop()) {
          return false;
        }
        ++meter.evaluated;
        ++stats.total;
        const bool v1 = m1.Run(input).IsValue();
        const bool v2 = m2.Run(input).IsValue();
        if (v1 && v2) {
          ++stats.both_value;
        } else if (v1) {
          ++stats.first_only;
        } else if (v2) {
          ++stats.second_only;
        } else {
          ++stats.neither;
        }
        return true;
      });
      MergeMeters(meters, &stats.progress);
    } catch (const std::exception& e) {
      MergeMeters(meters, &stats.progress);
      AbortProgress(&stats.progress, e.what());
    } catch (...) {
      MergeMeters(meters, &stats.progress);
      AbortProgress(&stats.progress, "unknown error");
    }
    return stats;
  }

  const std::uint64_t num_shards = CheckOptions::ShardsFor(threads, grid);
  std::vector<CompletenessStats> partials(num_shards);
  CompletenessStats stats;
  stats.progress.total = grid;
  CancelToken drain;
  std::vector<ShardMeter> meters(num_shards, ShardMeter(options, drain));
  try {
    domain.ParallelForEach(
        num_shards,
        [&](std::uint64_t shard, std::uint64_t rank, InputView input) -> bool {
          (void)rank;
          ShardMeter& meter = meters[shard];
          if (meter.gate.ShouldStop()) {
            return false;
          }
          ++meter.evaluated;
          CompletenessStats& partial = partials[shard];
          ++partial.total;
          const bool v1 = m1.Run(input).IsValue();
          const bool v2 = m2.Run(input).IsValue();
          if (v1 && v2) {
            ++partial.both_value;
          } else if (v1) {
            ++partial.first_only;
          } else if (v2) {
            ++partial.second_only;
          } else {
            ++partial.neither;
          }
          return true;
        },
        threads, &drain);
    MergeMeters(meters, &stats.progress);
  } catch (const std::exception& e) {
    MergeMeters(meters, &stats.progress);
    AbortProgress(&stats.progress, e.what());
  } catch (...) {
    MergeMeters(meters, &stats.progress);
    AbortProgress(&stats.progress, "unknown error");
  }
  for (const CompletenessStats& partial : partials) {
    stats.total += partial.total;
    stats.both_value += partial.both_value;
    stats.first_only += partial.first_only;
    stats.second_only += partial.second_only;
    stats.neither += partial.neither;
  }
  return stats;
}

double MeasureUtility(const ProtectionMechanism& m, const InputDomain& domain,
                      const CheckOptions& options) {
  assert(m.num_inputs() == domain.num_inputs());
  const int threads = options.ResolvedThreads();
  std::uint64_t total = 0;
  std::uint64_t values = 0;
  if (threads <= 1) {
    domain.ForEach([&](InputView input) {
      ++total;
      if (m.Run(input).IsValue()) {
        ++values;
      }
    });
  } else {
    const std::uint64_t num_shards = CheckOptions::ShardsFor(threads, domain.size());
    std::vector<std::pair<std::uint64_t, std::uint64_t>> partials(num_shards);
    domain.ParallelForEach(
        num_shards,
        [&](std::uint64_t shard, std::uint64_t rank, InputView input) -> bool {
          (void)rank;
          ++partials[shard].first;
          if (m.Run(input).IsValue()) {
            ++partials[shard].second;
          }
          return true;
        },
        threads);
    for (const auto& [shard_total, shard_values] : partials) {
      total += shard_total;
      values += shard_values;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(values) / total;
}

}  // namespace secpol
