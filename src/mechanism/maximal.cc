#include "src/mechanism/maximal.h"

#include <cassert>
#include <map>
#include <vector>

namespace secpol {

MaximalSynthesis SynthesizeMaximalMechanism(const ProtectionMechanism& q,
                                            const SecurityPolicy& policy,
                                            const InputDomain& domain, Observability obs) {
  assert(q.num_inputs() == policy.num_inputs());
  assert(q.num_inputs() == domain.num_inputs());

  struct ClassInfo {
    std::vector<Input> members;
    Outcome first_outcome;
    bool constant = true;
  };
  std::map<PolicyImage, ClassInfo> classes;

  MaximalSynthesis result;
  domain.ForEach([&](InputView input) {
    ++result.inputs;
    Outcome outcome = q.Run(input);
    PolicyImage image = policy.Image(input);
    auto [it, inserted] = classes.try_emplace(std::move(image));
    ClassInfo& info = it->second;
    if (inserted) {
      info.first_outcome = outcome;
    } else if (info.constant && !info.first_outcome.ObservablyEquals(outcome, obs)) {
      info.constant = false;
    }
    info.members.emplace_back(input.begin(), input.end());
  });

  auto table = std::make_shared<TableMechanism>("maximal(" + q.name() + ")", q.num_inputs());
  result.policy_classes = classes.size();
  for (auto& [image, info] : classes) {
    (void)image;
    if (info.constant) {
      ++result.released_classes;
    }
    for (Input& member : info.members) {
      // Replaying Q preserves both value and steps for the released class.
      Outcome outcome = info.constant ? q.Run(member) : Outcome::Violation(0);
      table->Set(std::move(member), std::move(outcome));
    }
  }
  result.mechanism = std::move(table);
  return result;
}

}  // namespace secpol
