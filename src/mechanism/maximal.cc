#include "src/mechanism/maximal.h"

#include <cassert>
#include <cstdint>
#include <exception>
#include <iterator>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/mechanism/outcome_table.h"
#include "src/mechanism/sweep.h"

namespace secpol {

namespace {

// A class member with the rank it was tabulated at; the rank lets the
// table-backed synthesis replay outcomes without re-running Q.
struct Member {
  Input input;
  std::uint64_t rank = 0;
};

struct ClassInfo {
  std::vector<Member> members;
  Outcome first_outcome;
  bool constant = true;
};

struct MaximalPoint {
  Outcome outcome;
  PolicyImage image;
};

// The tabulation reducer over the sweep kernel. Shard ranges are contiguous
// and increasing, so concatenating per-shard member lists in shard order
// reproduces the lexicographic member order of the serial tabulation, and a
// class is constant globally iff every shard is internally constant and
// every shard's first outcome observably equals the class's global first.
template <typename EvalFn>
std::map<PolicyImage, ClassInfo> TabulateClasses(const InputDomain& domain, Observability obs,
                                                 const CheckOptions& options,
                                                 const EvalFn& eval, CheckProgress* progress) {
  const std::uint64_t grid = domain.size();
  const SweepPlan plan = SweepPlan::For(options, grid);
  std::vector<std::map<PolicyImage, ClassInfo>> partials(plan.num_shards);

  *progress = SweepGrid(
      domain, options, plan, [&](std::uint64_t shard, std::uint64_t rank, InputView input) {
        MaximalPoint point = eval(rank, input);
        auto [it, inserted] = partials[shard].try_emplace(std::move(point.image));
        ClassInfo& info = it->second;
        if (inserted) {
          info.first_outcome = std::move(point.outcome);
        } else if (info.constant && !info.first_outcome.ObservablyEquals(point.outcome, obs)) {
          info.constant = false;
        }
        info.members.push_back(Member{Input(input.begin(), input.end()), rank});
        return true;
      });

  std::map<PolicyImage, ClassInfo> classes;
  for (auto& shard : partials) {
    for (auto& [image, partial] : shard) {
      auto [it, inserted] = classes.try_emplace(image);
      ClassInfo& info = it->second;
      if (inserted) {
        info.first_outcome = partial.first_outcome;
        info.constant = partial.constant;
      } else {
        if (!partial.constant ||
            !info.first_outcome.ObservablyEquals(partial.first_outcome, obs)) {
          info.constant = false;
        }
      }
      info.members.insert(info.members.end(),
                          std::make_move_iterator(partial.members.begin()),
                          std::make_move_iterator(partial.members.end()));
    }
  }
  return classes;
}

// Shared synthesis tail: builds the table mechanism from a completed
// tabulation, replaying each released member's outcome via `replay`.
template <typename EvalFn, typename ReplayFn>
MaximalSynthesis SynthesizeImpl(const InputDomain& domain, Observability obs,
                                const CheckOptions& options, const std::string& q_name,
                                int num_inputs, const EvalFn& eval, const ReplayFn& replay) {
  MaximalSynthesis result;
  std::map<PolicyImage, ClassInfo> classes =
      TabulateClasses(domain, obs, options, eval, &result.progress);
  result.inputs = result.progress.evaluated;

  result.policy_classes = classes.size();
  if (!result.progress.complete()) {
    // A table built from a partial tabulation could release a class whose
    // unseen members disagree — fail closed with no mechanism at all.
    return result;
  }

  auto table = std::make_shared<TableMechanism>("maximal(" + q_name + ")", num_inputs);
  try {
    for (auto& [image, info] : classes) {
      (void)image;
      if (info.constant) {
        ++result.released_classes;
      }
      for (Member& member : info.members) {
        // Replaying Q preserves both value and steps for the released class.
        Outcome outcome = info.constant ? replay(member) : Outcome::Violation(0);
        table->Set(std::move(member.input), std::move(outcome));
      }
    }
  } catch (const std::exception& e) {
    AbortProgress(&result.progress, e.what());
    result.released_classes = 0;
    return result;
  } catch (...) {
    AbortProgress(&result.progress, "unknown error");
    result.released_classes = 0;
    return result;
  }
  result.mechanism = std::move(table);
  return result;
}

}  // namespace

MaximalSynthesis SynthesizeMaximalMechanism(const ProtectionMechanism& q,
                                            const SecurityPolicy& policy,
                                            const InputDomain& domain, Observability obs,
                                            const CheckOptions& options) {
  assert(q.num_inputs() == policy.num_inputs());
  assert(q.num_inputs() == domain.num_inputs());
  CheckScope scope(options.obs, "maximal");
  MaximalSynthesis result = SynthesizeImpl(
      domain, obs, options, q.name(), q.num_inputs(),
      [&](std::uint64_t, InputView input) {
        // Braced initialization fixes the historical order: Q's run before
        // the policy image.
        return MaximalPoint{q.Run(input), policy.Image(input)};
      },
      [&](const Member& member) { return q.Run(member.input); });
  scope.SetPoints(result.progress.evaluated);
  return result;
}

MaximalSynthesis SynthesizeMaximalMechanism(const OutcomeTable& table, Observability obs,
                                            const CheckOptions& options) {
  assert(table.complete());
  assert(table.has_outcomes() && table.has_images());
  CheckScope scope(options.obs, "maximal");
  MaximalSynthesis result = SynthesizeImpl(
      table.domain(), obs, options, table.mechanism_name(), table.domain().num_inputs(),
      [&](std::uint64_t rank, InputView) {
        return MaximalPoint{table.outcome(rank), table.image(rank)};
      },
      [&](const Member& member) { return table.outcome(member.rank); });
  scope.SetPoints(result.progress.evaluated);
  return result;
}

}  // namespace secpol
