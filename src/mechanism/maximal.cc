#include "src/mechanism/maximal.h"

#include <cassert>
#include <exception>
#include <iterator>
#include <map>
#include <utility>
#include <vector>

namespace secpol {

namespace {

struct ClassInfo {
  std::vector<Input> members;
  Outcome first_outcome;
  bool constant = true;
};

// Tabulates one shard. Shard ranges are contiguous and increasing, so
// concatenating per-shard member lists in shard order reproduces the
// lexicographic member order of the serial tabulation, and a class is
// constant globally iff every shard is internally constant and every
// shard's first outcome observably equals the class's global first.
std::map<PolicyImage, ClassInfo> TabulateClasses(const ProtectionMechanism& q,
                                                 const SecurityPolicy& policy,
                                                 const InputDomain& domain, Observability obs,
                                                 const CheckOptions& options,
                                                 std::uint64_t* inputs,
                                                 CheckProgress* progress) {
  const int threads = options.ResolvedThreads();
  const std::uint64_t grid = domain.size();
  progress->total = grid;

  if (threads <= 1) {
    std::map<PolicyImage, ClassInfo> classes;
    std::vector<ShardMeter> meters(1, ShardMeter(options));
    ShardMeter& meter = meters.front();
    try {
      domain.ForEachRange(0, grid, [&](std::uint64_t rank, InputView input) {
        (void)rank;
        if (meter.gate.ShouldStop()) {
          return false;
        }
        ++meter.evaluated;
        Outcome outcome = q.Run(input);
        PolicyImage image = policy.Image(input);
        auto [it, inserted] = classes.try_emplace(std::move(image));
        ClassInfo& info = it->second;
        if (inserted) {
          info.first_outcome = outcome;
        } else if (info.constant && !info.first_outcome.ObservablyEquals(outcome, obs)) {
          info.constant = false;
        }
        info.members.emplace_back(input.begin(), input.end());
        return true;
      });
      MergeMeters(meters, progress);
    } catch (const std::exception& e) {
      MergeMeters(meters, progress);
      AbortProgress(progress, e.what());
    } catch (...) {
      MergeMeters(meters, progress);
      AbortProgress(progress, "unknown error");
    }
    *inputs += meter.evaluated;
    return classes;
  }

  const std::uint64_t num_shards = CheckOptions::ShardsFor(threads, grid);
  std::vector<std::map<PolicyImage, ClassInfo>> partials(num_shards);
  CancelToken drain;
  std::vector<ShardMeter> meters(num_shards, ShardMeter(options, drain));
  try {
    domain.ParallelForEach(
        num_shards,
        [&](std::uint64_t shard, std::uint64_t rank, InputView input) -> bool {
          (void)rank;
          ShardMeter& meter = meters[shard];
          if (meter.gate.ShouldStop()) {
            return false;
          }
          ++meter.evaluated;
          Outcome outcome = q.Run(input);
          PolicyImage image = policy.Image(input);
          auto [it, inserted] = partials[shard].try_emplace(std::move(image));
          ClassInfo& info = it->second;
          if (inserted) {
            info.first_outcome = outcome;
          } else if (info.constant && !info.first_outcome.ObservablyEquals(outcome, obs)) {
            info.constant = false;
          }
          info.members.emplace_back(input.begin(), input.end());
          return true;
        },
        threads, &drain);
    MergeMeters(meters, progress);
  } catch (const std::exception& e) {
    MergeMeters(meters, progress);
    AbortProgress(progress, e.what());
  } catch (...) {
    MergeMeters(meters, progress);
    AbortProgress(progress, "unknown error");
  }

  std::map<PolicyImage, ClassInfo> classes;
  for (std::uint64_t shard = 0; shard < num_shards; ++shard) {
    *inputs += meters[shard].evaluated;
    for (auto& [image, partial] : partials[shard]) {
      auto [it, inserted] = classes.try_emplace(image);
      ClassInfo& info = it->second;
      if (inserted) {
        info.first_outcome = partial.first_outcome;
        info.constant = partial.constant;
      } else {
        if (!partial.constant ||
            !info.first_outcome.ObservablyEquals(partial.first_outcome, obs)) {
          info.constant = false;
        }
      }
      info.members.insert(info.members.end(),
                          std::make_move_iterator(partial.members.begin()),
                          std::make_move_iterator(partial.members.end()));
    }
  }
  return classes;
}

}  // namespace

MaximalSynthesis SynthesizeMaximalMechanism(const ProtectionMechanism& q,
                                            const SecurityPolicy& policy,
                                            const InputDomain& domain, Observability obs,
                                            const CheckOptions& options) {
  assert(q.num_inputs() == policy.num_inputs());
  assert(q.num_inputs() == domain.num_inputs());

  MaximalSynthesis result;
  std::map<PolicyImage, ClassInfo> classes = TabulateClasses(
      q, policy, domain, obs, options, &result.inputs, &result.progress);

  result.policy_classes = classes.size();
  if (!result.progress.complete()) {
    // A table built from a partial tabulation could release a class whose
    // unseen members disagree — fail closed with no mechanism at all.
    return result;
  }

  auto table = std::make_shared<TableMechanism>("maximal(" + q.name() + ")", q.num_inputs());
  try {
    for (auto& [image, info] : classes) {
      (void)image;
      if (info.constant) {
        ++result.released_classes;
      }
      for (Input& member : info.members) {
        // Replaying Q preserves both value and steps for the released class.
        Outcome outcome = info.constant ? q.Run(member) : Outcome::Violation(0);
        table->Set(std::move(member), std::move(outcome));
      }
    }
  } catch (const std::exception& e) {
    AbortProgress(&result.progress, e.what());
    result.released_classes = 0;
    return result;
  } catch (...) {
    AbortProgress(&result.progress, "unknown error");
    result.released_classes = 0;
    return result;
  }
  result.mechanism = std::move(table);
  return result;
}

}  // namespace secpol
