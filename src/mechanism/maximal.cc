#include "src/mechanism/maximal.h"

#include <cassert>
#include <iterator>
#include <map>
#include <utility>
#include <vector>

namespace secpol {

namespace {

struct ClassInfo {
  std::vector<Input> members;
  Outcome first_outcome;
  bool constant = true;
};

// Tabulates one shard. Shard ranges are contiguous and increasing, so
// concatenating per-shard member lists in shard order reproduces the
// lexicographic member order of the serial tabulation, and a class is
// constant globally iff every shard is internally constant and every
// shard's first outcome observably equals the class's global first.
std::map<PolicyImage, ClassInfo> TabulateClasses(const ProtectionMechanism& q,
                                                 const SecurityPolicy& policy,
                                                 const InputDomain& domain, Observability obs,
                                                 int threads, std::uint64_t* inputs) {
  if (threads <= 1) {
    std::map<PolicyImage, ClassInfo> classes;
    domain.ForEach([&](InputView input) {
      ++*inputs;
      Outcome outcome = q.Run(input);
      PolicyImage image = policy.Image(input);
      auto [it, inserted] = classes.try_emplace(std::move(image));
      ClassInfo& info = it->second;
      if (inserted) {
        info.first_outcome = outcome;
      } else if (info.constant && !info.first_outcome.ObservablyEquals(outcome, obs)) {
        info.constant = false;
      }
      info.members.emplace_back(input.begin(), input.end());
    });
    return classes;
  }

  const std::uint64_t num_shards = CheckOptions::ShardsFor(threads, domain.size());
  std::vector<std::map<PolicyImage, ClassInfo>> partials(num_shards);
  std::vector<std::uint64_t> counts(num_shards, 0);
  domain.ParallelForEach(
      num_shards,
      [&](std::uint64_t shard, std::uint64_t rank, InputView input) -> bool {
        (void)rank;
        ++counts[shard];
        Outcome outcome = q.Run(input);
        PolicyImage image = policy.Image(input);
        auto [it, inserted] = partials[shard].try_emplace(std::move(image));
        ClassInfo& info = it->second;
        if (inserted) {
          info.first_outcome = outcome;
        } else if (info.constant && !info.first_outcome.ObservablyEquals(outcome, obs)) {
          info.constant = false;
        }
        info.members.emplace_back(input.begin(), input.end());
        return true;
      },
      threads);

  std::map<PolicyImage, ClassInfo> classes;
  for (std::uint64_t shard = 0; shard < num_shards; ++shard) {
    *inputs += counts[shard];
    for (auto& [image, partial] : partials[shard]) {
      auto [it, inserted] = classes.try_emplace(image);
      ClassInfo& info = it->second;
      if (inserted) {
        info.first_outcome = partial.first_outcome;
        info.constant = partial.constant;
      } else {
        if (!partial.constant ||
            !info.first_outcome.ObservablyEquals(partial.first_outcome, obs)) {
          info.constant = false;
        }
      }
      info.members.insert(info.members.end(),
                          std::make_move_iterator(partial.members.begin()),
                          std::make_move_iterator(partial.members.end()));
    }
  }
  return classes;
}

}  // namespace

MaximalSynthesis SynthesizeMaximalMechanism(const ProtectionMechanism& q,
                                            const SecurityPolicy& policy,
                                            const InputDomain& domain, Observability obs,
                                            const CheckOptions& options) {
  assert(q.num_inputs() == policy.num_inputs());
  assert(q.num_inputs() == domain.num_inputs());

  MaximalSynthesis result;
  std::map<PolicyImage, ClassInfo> classes =
      TabulateClasses(q, policy, domain, obs, options.ResolvedThreads(), &result.inputs);

  auto table = std::make_shared<TableMechanism>("maximal(" + q.name() + ")", q.num_inputs());
  result.policy_classes = classes.size();
  for (auto& [image, info] : classes) {
    (void)image;
    if (info.constant) {
      ++result.released_classes;
    }
    for (Input& member : info.members) {
      // Replaying Q preserves both value and steps for the released class.
      Outcome outcome = info.constant ? q.Run(member) : Outcome::Violation(0);
      table->Set(std::move(member), std::move(outcome));
    }
  }
  result.mechanism = std::move(table);
  return result;
}

}  // namespace secpol
