#include "src/mechanism/classes.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace secpol {

std::uint64_t ClassPartition::MultiMemberClasses() const {
  std::uint64_t multi = 0;
  for (std::uint64_t size : class_size) {
    if (size > 1) {
      ++multi;
    }
  }
  return multi;
}

ClassPartition PartitionByAllow(const InputDomain& domain, VarSet allowed) {
  ClassPartition partition;
  const std::optional<std::uint64_t> grid = domain.CheckedSize();
  if (!grid.has_value() || *grid > ClassPartition::kMaxPoints) {
    return partition;  // refused: empty
  }
  const int k = domain.num_inputs();
  assert(allowed.SubsetOf(VarSet::FirstN(k)));

  partition.num_points = *grid;
  partition.analytic = true;

  // Rank strides of the lexicographic order (coordinate 0 most significant).
  std::vector<std::uint64_t> stride(static_cast<size_t>(k), 1);
  for (int i = k - 2; i >= 0; --i) {
    stride[i] = stride[i + 1] * domain.values_for(i + 1).size();
  }

  // Class count = product of the allowed coordinates' sizes; the class id is
  // the mixed-radix value of the J-projected digits, so ids increase with
  // the representative's rank.
  std::uint64_t num_classes = 1;
  for (int i = 0; i < k; ++i) {
    if (allowed.Contains(i)) {
      num_classes *= domain.values_for(i).size();
    }
  }
  const std::uint64_t class_size = partition.num_points / std::max<std::uint64_t>(num_classes, 1);

  // Constant within every class: the allowed coordinates (shared by
  // definition) plus every singleton coordinate (nothing to vary).
  VarSet constant = allowed;
  for (int i = 0; i < k; ++i) {
    if (domain.values_for(i).size() == 1) {
      constant.Insert(i);
    }
  }

  partition.num_classes = static_cast<std::int64_t>(num_classes);
  partition.class_of_rank.assign(partition.num_points, 0);
  partition.representative.assign(num_classes, 0);
  partition.class_size.assign(num_classes, class_size);
  partition.constant_coords.assign(num_classes, constant);

  // One odometer pass over the ranks, maintaining the J-projected class id
  // incrementally.
  std::vector<std::uint64_t> digits(static_cast<size_t>(k), 0);
  std::uint64_t class_id = 0;
  std::vector<std::uint64_t> class_stride(static_cast<size_t>(k), 0);
  {
    std::uint64_t s = 1;
    for (int i = k - 1; i >= 0; --i) {
      if (allowed.Contains(i)) {
        class_stride[i] = s;
        s *= domain.values_for(i).size();
      }
    }
  }
  std::vector<char> seen(num_classes, 0);
  for (std::uint64_t rank = 0; rank < partition.num_points; ++rank) {
    partition.class_of_rank[rank] = static_cast<std::int32_t>(class_id);
    if (!seen[class_id]) {
      seen[class_id] = 1;
      // First visit in rank order = lowest member rank.
      partition.representative[class_id] = rank;
    }
    // Advance the odometer (no-op past the last rank).
    for (int i = k - 1; i >= 0; --i) {
      const std::uint64_t size = domain.values_for(i).size();
      if (++digits[i] < size) {
        if (allowed.Contains(i)) {
          class_id += class_stride[i];
        }
        break;
      }
      digits[i] = 0;
      if (allowed.Contains(i)) {
        class_id -= class_stride[i] * (size - 1);
      }
    }
  }
  return partition;
}

ClassPartition PartitionByImages(const InputDomain& domain, const SecurityPolicy& policy) {
  ClassPartition partition;
  const std::optional<std::uint64_t> grid = domain.CheckedSize();
  if (!grid.has_value() || *grid > ClassPartition::kMaxPoints) {
    return partition;  // refused: empty
  }
  const int k = domain.num_inputs();
  assert(policy.num_inputs() == k);

  partition.num_points = *grid;
  partition.analytic = false;
  partition.class_of_rank.assign(partition.num_points, 0);

  std::map<PolicyImage, std::int32_t> class_of_image;
  std::vector<Input> first_member;
  const VarSet all_coords = VarSet::FirstN(k);
  domain.ForEachRange(0, partition.num_points, [&](std::uint64_t rank, InputView input) {
    ++partition.policy_evals;
    PolicyImage image = policy.Image(input);
    auto [it, inserted] =
        class_of_image.try_emplace(std::move(image), static_cast<std::int32_t>(
                                                         partition.representative.size()));
    const std::int32_t c = it->second;
    partition.class_of_rank[rank] = c;
    if (inserted) {
      partition.representative.push_back(rank);
      partition.class_size.push_back(1);
      partition.constant_coords.push_back(all_coords);
      first_member.emplace_back(input.begin(), input.end());
    } else {
      ++partition.class_size[static_cast<size_t>(c)];
      VarSet& constant = partition.constant_coords[static_cast<size_t>(c)];
      const Input& first = first_member[static_cast<size_t>(c)];
      for (int i = 0; i < k; ++i) {
        if (constant.Contains(i) && input[i] != first[static_cast<size_t>(i)]) {
          constant.Erase(i);
        }
      }
    }
    return true;
  });
  partition.num_classes = static_cast<std::int64_t>(partition.representative.size());
  return partition;
}

ClassPartition BuildClassPartition(const InputDomain& domain, const SecurityPolicy& policy) {
  if (const auto* allow = dynamic_cast<const AllowPolicy*>(&policy)) {
    return PartitionByAllow(domain, allow->allowed());
  }
  return PartitionByImages(domain, policy);
}

Fingerprint TouchedBoxDigest(const ProgramDigestTree& tree, const std::vector<int>& boxes) {
  Fingerprinter fp;
  fp.Tag("touched-boxes");
  fp.U64(boxes.size());
  for (int box : boxes) {
    fp.I32(box);
    if (box >= 0 && static_cast<size_t>(box) < tree.nodes.size()) {
      fp.Nested(tree.nodes[static_cast<size_t>(box)].digest);
    } else {
      fp.Tag("missing-box");
    }
  }
  return fp.Digest();
}

ClassMemo::ClassMemo(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

std::optional<ClassMemo::Entry> ClassMemo::Lookup(const Fingerprint& context,
                                                  std::uint64_t rep_rank) {
  const Key key{context, rep_rank};
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // touch: move to front
  return it->second->entry;
}

void ClassMemo::Insert(const Fingerprint& context, std::uint64_t rep_rank, Entry entry) {
  const Key key{context, rep_rank};
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Slot{key, std::move(entry)});
  index_[key] = lru_.begin();
  while (index_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

std::size_t ClassMemo::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

std::uint64_t ClassMemo::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t ClassMemo::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::uint64_t ClassMemo::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

void ClassMemo::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

}  // namespace secpol
