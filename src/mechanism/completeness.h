// The completeness order on protection mechanisms (Section 4).
//
// "M1 is as complete as M2 (M1 >= M2) provided, for all inputs a, if
// M2(a) = Q(a) then M1(a) = Q(a)." Because every value outcome of a
// protection mechanism for Q *is* Q(a) by definition, the order depends only
// on where each mechanism emits values vs violation notices, so it can be
// computed without reference to Q.

#ifndef SECPOL_SRC_MECHANISM_COMPLETENESS_H_
#define SECPOL_SRC_MECHANISM_COMPLETENESS_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/mechanism/check_options.h"
#include "src/mechanism/domain.h"
#include "src/mechanism/mechanism.h"

namespace secpol {

enum class CompletenessRelation {
  kEquivalent,   // value sets identical
  kFirstMore,    // M1 > M2 (strictly more complete)
  kSecondMore,   // M2 > M1
  kIncomparable  // each returns a value somewhere the other violates
};

std::string CompletenessRelationName(CompletenessRelation relation);

struct CompletenessStats {
  std::uint64_t total = 0;
  std::uint64_t both_value = 0;
  std::uint64_t first_only = 0;   // M1 value, M2 violation
  std::uint64_t second_only = 0;  // M2 value, M1 violation
  std::uint64_t neither = 0;

  // How the sweep ended. On an incomplete run the counters cover only the
  // evaluated grid points, so Relation() is not authoritative.
  CheckProgress progress;

  CompletenessRelation Relation() const;

  // Utility of each mechanism: fraction of inputs answered with a real value.
  double FirstUtility() const;
  double SecondUtility() const;

  std::string ToString() const;
};

// Tabulates both mechanisms over `domain` and derives the order. The stats
// are pure per-input counts, so parallel shards merge by summation and the
// result is identical to the serial scan at any thread count. The sweep
// honours options.deadline / options.cancel and converts a throwing
// mechanism into progress.status = kAborted.
CompletenessStats CompareCompleteness(const ProtectionMechanism& m1,
                                      const ProtectionMechanism& m2,
                                      const InputDomain& domain,
                                      const CheckOptions& options = CheckOptions());

class OutcomeTable;

// The same comparison over a pre-built outcome table holding both mechanisms'
// outcomes (complete, with outcome and outcome2 columns). Byte-identical to
// the live overload on the same grid.
CompletenessStats CompareCompleteness(const OutcomeTable& table,
                                      const CheckOptions& options = CheckOptions());

// Fraction of the domain on which `m` returns a real value (its usefulness;
// the plug scores 0, the bare program scores 1). Ignores options.deadline —
// a partial utility fraction would be misleading; a throwing mechanism
// propagates as an exception to the caller.
double MeasureUtility(const ProtectionMechanism& m, const InputDomain& domain,
                      const CheckOptions& options = CheckOptions());

}  // namespace secpol

#endif  // SECPOL_SRC_MECHANISM_COMPLETENESS_H_
