#include "src/mechanism/outcome_table.h"

#include <cassert>
#include <optional>
#include <string>
#include <utility>

#include "src/mechanism/sweep.h"

namespace secpol {

OutcomeTable BuildOutcomeTable(const OutcomeTableSources& sources, const InputDomain& domain,
                               const CheckOptions& options) {
  assert(sources.mechanism != nullptr);
  CheckScope scope(options.obs, "tabulate");
  OutcomeTable table(domain);
  table.mechanism_name_ = sources.mechanism->name();
  if (sources.mechanism2 != nullptr) {
    table.mechanism2_name_ = sources.mechanism2->name();
  }
  if (sources.policy != nullptr) {
    table.policy_name_ = sources.policy->name();
  }
  if (sources.policy2 != nullptr) {
    table.policy2_name_ = sources.policy2->name();
  }

  const std::optional<std::uint64_t> grid = domain.CheckedSize();
  if (!grid.has_value() || *grid > OutcomeTable::kMaxPoints) {
    table.build_.total = domain.size();
    AbortProgress(&table.build_, "grid too large to tabulate (cap " +
                                     std::to_string(OutcomeTable::kMaxPoints) +
                                     " points); fall back to live checkers");
    return table;
  }

  const std::uint64_t points = *grid;
  table.outcomes_.resize(points);
  if (sources.mechanism2 != nullptr) {
    table.outcomes2_.resize(points);
  }
  if (sources.policy != nullptr) {
    table.images_.resize(points);
  }
  if (sources.policy2 != nullptr) {
    table.images2_.resize(points);
  }

  const SweepPlan plan = SweepPlan::For(options, points);
  table.build_ = SweepGrid(
      domain, options, plan, [&](std::uint64_t shard, std::uint64_t rank, InputView input) {
        (void)shard;
        table.outcomes_[rank] = sources.mechanism->Run(input);
        if (sources.mechanism2 != nullptr) {
          table.outcomes2_[rank] = sources.mechanism2->Run(input);
        }
        if (sources.policy != nullptr) {
          table.images_[rank] = sources.policy->Image(input);
        }
        if (sources.policy2 != nullptr) {
          table.images2_[rank] = sources.policy2->Image(input);
        }
        return true;
      });

  if (!table.build_.complete()) {
    // Release the partial columns: an incomplete table may not be consumed.
    table.outcomes_.clear();
    table.outcomes2_.clear();
    table.images_.clear();
    table.images2_.clear();
  }
  scope.SetPoints(table.build_.evaluated);
  return table;
}

}  // namespace secpol
