#include "src/mechanism/outcome_table.h"

#include <atomic>
#include <cassert>
#include <optional>
#include <string>
#include <utility>

#include "src/mechanism/sweep.h"

namespace secpol {

OutcomeTable BuildOutcomeTable(const OutcomeTableSources& sources, const InputDomain& domain,
                               const CheckOptions& options) {
  assert(sources.mechanism != nullptr);
  CheckScope scope(options.obs, "tabulate");
  OutcomeTable table(domain);
  table.mechanism_name_ = sources.mechanism->name();
  if (sources.mechanism2 != nullptr) {
    table.mechanism2_name_ = sources.mechanism2->name();
  }
  if (sources.policy != nullptr) {
    table.policy_name_ = sources.policy->name();
  }
  if (sources.policy2 != nullptr) {
    table.policy2_name_ = sources.policy2->name();
  }

  const std::optional<std::uint64_t> grid = domain.CheckedSize();
  if (!grid.has_value() || *grid > OutcomeTable::kMaxPoints) {
    table.build_.total = domain.size();
    AbortProgress(&table.build_, "grid too large to tabulate (cap " +
                                     std::to_string(OutcomeTable::kMaxPoints) +
                                     " points); fall back to live checkers");
    return table;
  }

  const std::uint64_t points = *grid;
  table.outcomes_.resize(points);
  if (sources.mechanism2 != nullptr) {
    table.outcomes2_.resize(points);
  }
  if (sources.policy != nullptr) {
    table.images_.resize(points);
  }
  if (sources.policy2 != nullptr) {
    table.images2_.resize(points);
  }

  const SweepPlan plan = SweepPlan::For(options, points);
  table.build_ = SweepGrid(
      domain, options, plan, [&](std::uint64_t shard, std::uint64_t rank, InputView input) {
        (void)shard;
        table.outcomes_[rank] = sources.mechanism->Run(input);
        if (sources.mechanism2 != nullptr) {
          table.outcomes2_[rank] = sources.mechanism2->Run(input);
        }
        if (sources.policy != nullptr) {
          table.images_[rank] = sources.policy->Image(input);
        }
        if (sources.policy2 != nullptr) {
          table.images2_[rank] = sources.policy2->Image(input);
        }
        return true;
      });

  if (!table.build_.complete()) {
    // Release the partial columns: an incomplete table may not be consumed.
    table.outcomes_.clear();
    table.outcomes2_.clear();
    table.images_.clear();
    table.images2_.clear();
  }
  scope.SetPoints(table.build_.evaluated);
  return table;
}

namespace {

// Per-column phase-1 state: the representative's outcome (when known) and
// whether it certifies the whole class. Plain-char flag vectors: distinct
// classes are distinct memory locations, so rank-disjoint shards writing
// distinct class slots need no synchronization.
struct ColumnCerts {
  std::vector<Outcome> rep;
  std::vector<char> have_rep;
  std::vector<char> certified;

  explicit ColumnCerts(std::size_t num_classes)
      : rep(num_classes), have_rep(num_classes, 0), certified(num_classes, 0) {}
};

// Resolves one representative for one column: memo first (revalidated
// against the current program tree), then a tracked run. Returns the number
// of actual mechanism evaluations performed (0 on a validated memo hit).
int ResolveRepresentative(const ProtectionMechanism& mechanism, InputView rep_input,
                          std::uint64_t rep_rank, VarSet class_constant, ClassMemo* memo,
                          const ProgramDigestTree* tree, const Fingerprint& context,
                          ColumnCerts& certs, std::int32_t c,
                          std::atomic<std::uint64_t>& memo_hits,
                          std::atomic<std::uint64_t>& memo_misses) {
  const bool memo_usable = memo != nullptr && tree != nullptr;
  if (memo_usable) {
    if (std::optional<ClassMemo::Entry> entry = memo->Lookup(context, rep_rank)) {
      if (TouchedBoxDigest(*tree, entry->boxes) == entry->touched_digest) {
        certs.rep[static_cast<size_t>(c)] = std::move(entry->outcome);
        certs.have_rep[static_cast<size_t>(c)] = 1;
        certs.certified[static_cast<size_t>(c)] =
            entry->reads.SubsetOf(class_constant) ? 1 : 0;
        memo_hits.fetch_add(1, std::memory_order_relaxed);
        return 0;
      }
    }
    memo_misses.fetch_add(1, std::memory_order_relaxed);
  }
  TrackedOutcome tracked = mechanism.RunTracked(rep_input);
  certs.have_rep[static_cast<size_t>(c)] = 1;
  certs.certified[static_cast<size_t>(c)] =
      (tracked.exact && tracked.reads.SubsetOf(class_constant)) ? 1 : 0;
  if (memo_usable && tracked.exact && tracked.boxes_exact) {
    ClassMemo::Entry entry;
    entry.touched_digest = TouchedBoxDigest(*tree, tracked.boxes);
    entry.boxes = std::move(tracked.boxes);
    entry.reads = tracked.reads;
    entry.outcome = tracked.outcome;
    memo->Insert(context, rep_rank, std::move(entry));
  }
  certs.rep[static_cast<size_t>(c)] = std::move(tracked.outcome);
  return 1;
}

}  // namespace

OutcomeTable BuildOutcomeTableWithClasses(const OutcomeTableSources& sources,
                                          const InputDomain& domain,
                                          const ClassSweepContext& context,
                                          const CheckOptions& options) {
  assert(sources.mechanism != nullptr);
  assert(context.partition != nullptr);
  CheckScope scope(options.obs, "tabulate-classes");
  OutcomeTable table(domain);
  table.mechanism_name_ = sources.mechanism->name();
  if (sources.mechanism2 != nullptr) {
    table.mechanism2_name_ = sources.mechanism2->name();
  }
  if (sources.policy != nullptr) {
    table.policy_name_ = sources.policy->name();
  }
  if (sources.policy2 != nullptr) {
    table.policy2_name_ = sources.policy2->name();
  }

  const std::optional<std::uint64_t> grid = domain.CheckedSize();
  if (!grid.has_value() || *grid > OutcomeTable::kMaxPoints) {
    table.build_.total = domain.size();
    AbortProgress(&table.build_, "grid too large to tabulate (cap " +
                                     std::to_string(OutcomeTable::kMaxPoints) +
                                     " points); fall back to live checkers");
    return table;
  }
  const std::uint64_t points = *grid;
  const ClassPartition& partition = *context.partition;
  if (partition.empty() || partition.num_points != points ||
      partition.class_of_rank.size() != points) {
    table.build_.total = points;
    AbortProgress(&table.build_, "class partition does not match grid");
    return table;
  }

  table.outcomes_.resize(points);
  if (sources.mechanism2 != nullptr) {
    table.outcomes2_.resize(points);
  }
  if (sources.policy != nullptr) {
    table.images_.resize(points);
  }
  if (sources.policy2 != nullptr) {
    table.images2_.resize(points);
  }

  const std::size_t num_classes = static_cast<std::size_t>(partition.num_classes);
  ColumnCerts certs1(num_classes);
  ColumnCerts certs2(sources.mechanism2 != nullptr ? num_classes : 0);
  std::atomic<std::uint64_t> mech_runs{0};
  std::atomic<std::uint64_t> mech2_runs{0};
  std::atomic<std::uint64_t> rep_evals{0};
  std::atomic<std::uint64_t> copied{0};
  std::atomic<std::uint64_t> memo_hits{0};
  std::atomic<std::uint64_t> memo_misses{0};

  // Phase 1: resolve representatives of multi-member classes — the only
  // classes where a certificate saves anything.
  std::vector<Value> multi_classes;
  for (std::size_t c = 0; c < num_classes; ++c) {
    if (partition.class_size[c] > 1) {
      multi_classes.push_back(static_cast<Value>(c));
    }
  }
  if (!multi_classes.empty()) {
    const InputDomain class_domain = InputDomain::PerInput({multi_classes});
    const SweepPlan rep_plan = SweepPlan::ForClasses(options, multi_classes.size());
    const CheckProgress phase1 = SweepGrid(
        class_domain, options, rep_plan,
        [&](std::uint64_t shard, std::uint64_t class_rank, InputView class_input) {
          (void)shard;
          (void)class_rank;
          const std::int32_t c = static_cast<std::int32_t>(class_input[0]);
          const std::uint64_t rep_rank = partition.representative[static_cast<size_t>(c)];
          const VarSet constant = partition.constant_coords[static_cast<size_t>(c)];
          Input rep_input;
          domain.ForEachRange(rep_rank, rep_rank + 1, [&](std::uint64_t, InputView tuple) {
            rep_input.assign(tuple.begin(), tuple.end());
            return true;
          });
          int runs = ResolveRepresentative(*sources.mechanism, rep_input, rep_rank, constant,
                                           context.memo, context.program_tree,
                                           context.memo_context, certs1, c, memo_hits,
                                           memo_misses);
          mech_runs.fetch_add(static_cast<std::uint64_t>(runs), std::memory_order_relaxed);
          rep_evals.fetch_add(static_cast<std::uint64_t>(runs), std::memory_order_relaxed);
          if (sources.mechanism2 != nullptr) {
            runs = ResolveRepresentative(*sources.mechanism2, rep_input, rep_rank, constant,
                                         context.memo, context.program_tree,
                                         context.memo_context2, certs2, c, memo_hits,
                                         memo_misses);
            mech2_runs.fetch_add(static_cast<std::uint64_t>(runs), std::memory_order_relaxed);
            rep_evals.fetch_add(static_cast<std::uint64_t>(runs), std::memory_order_relaxed);
          }
          return true;
        });
    if (!phase1.complete()) {
      // Fail closed with the representative sweep's status; the counters are
      // in representative units, so restate coverage in grid terms.
      table.build_ = phase1;
      table.build_.total = points;
      table.build_.evaluated = 0;
      table.outcomes_.clear();
      table.outcomes2_.clear();
      table.images_.clear();
      table.images2_.clear();
      scope.SetPoints(0);
      return table;
    }
  }

  // Phase 2: the ordinary kernel sweep over every rank. Certified classes
  // copy their representative's outcome instead of running the mechanism;
  // everything else — uncertified members, policy image columns, progress
  // accounting — is exactly the point build.
  const SweepPlan plan = SweepPlan::For(options, points);
  table.build_ = SweepGrid(
      domain, options, plan, [&](std::uint64_t shard, std::uint64_t rank, InputView input) {
        (void)shard;
        const std::int32_t c = partition.class_of_rank[rank];
        const std::size_t cs = static_cast<std::size_t>(c);
        const bool is_rep = partition.representative[cs] == rank;
        if (certs1.certified[cs]) {
          table.outcomes_[rank] = certs1.rep[cs];
          if (!is_rep) {
            copied.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (certs1.have_rep[cs] && is_rep) {
          table.outcomes_[rank] = certs1.rep[cs];
        } else {
          table.outcomes_[rank] = sources.mechanism->Run(input);
          mech_runs.fetch_add(1, std::memory_order_relaxed);
        }
        if (sources.mechanism2 != nullptr) {
          if (certs2.certified[cs]) {
            table.outcomes2_[rank] = certs2.rep[cs];
            if (!is_rep) {
              copied.fetch_add(1, std::memory_order_relaxed);
            }
          } else if (certs2.have_rep[cs] && is_rep) {
            table.outcomes2_[rank] = certs2.rep[cs];
          } else {
            table.outcomes2_[rank] = sources.mechanism2->Run(input);
            mech2_runs.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (sources.policy != nullptr) {
          table.images_[rank] = sources.policy->Image(input);
        }
        if (sources.policy2 != nullptr) {
          table.images2_[rank] = sources.policy2->Image(input);
        }
        return true;
      });

  if (!table.build_.complete()) {
    table.outcomes_.clear();
    table.outcomes2_.clear();
    table.images_.clear();
    table.images2_.clear();
  }

  if (context.stats != nullptr) {
    ClassBuildStats& stats = *context.stats;
    stats.classes = static_cast<std::uint64_t>(partition.num_classes);
    stats.multi_member_classes = partition.MultiMemberClasses();
    stats.analytic_partition = partition.analytic;
    stats.partition_policy_evals = partition.policy_evals;
    for (std::size_t c = 0; c < num_classes; ++c) {
      if (partition.class_size[c] > 1 && certs1.certified[c]) {
        ++stats.certified_classes;
      }
    }
    if (sources.mechanism2 != nullptr) {
      for (std::size_t c = 0; c < num_classes; ++c) {
        if (partition.class_size[c] > 1 && certs2.certified[c]) {
          ++stats.certified_classes2;
        }
      }
    }
    stats.rep_evals = rep_evals.load();
    stats.mechanism_runs = mech_runs.load();
    stats.mechanism2_runs = mech2_runs.load();
    stats.copied_points = copied.load();
    stats.memo_hits = memo_hits.load();
    stats.memo_misses = memo_misses.load();
  }
  if (options.obs.metrics != nullptr) {
    MetricsRegistry& m = *options.obs.metrics;
    m.GetCounter("classes.builds")->Add(1);
    m.GetCounter("classes.classes")->Add(static_cast<std::uint64_t>(partition.num_classes));
    m.GetCounter("classes.copied_points")->Add(copied.load());
    m.GetCounter("classes.mechanism_runs")->Add(mech_runs.load() + mech2_runs.load());
    m.GetCounter("classes.memo_hits")->Add(memo_hits.load());
    m.GetCounter("classes.memo_misses")->Add(memo_misses.load());
  }
  scope.SetPoints(table.build_.evaluated);
  return table;
}

}  // namespace secpol
