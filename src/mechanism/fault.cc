#include "src/mechanism/fault.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstddef>
#include <thread>

#include "src/flowchart/interpreter.h"

namespace secpol {
namespace {

// Same finalizer splitmix64 uses; good per-rank bit mixing without carrying
// generator state, so FiresAt is a pure function of (seed, rank).
std::uint64_t MixRank(std::uint64_t seed, std::uint64_t rank) {
  std::uint64_t z = seed ^ (rank + 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

std::string FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kThrow:
      return "throw";
    case FaultKind::kFuelExhaustion:
      return "fuel";
    case FaultKind::kWrongValue:
      return "wrong";
    case FaultKind::kSlowEval:
      return "slow";
  }
  return "?";
}

bool FaultSpec::TargetsRank(std::uint64_t rank) const {
  if (!ranks.empty()) {
    return std::find(ranks.begin(), ranks.end(), rank) != ranks.end();
  }
  if (rate_num == 0) {
    return false;
  }
  assert(rate_den > 0);
  return MixRank(seed, rank) % rate_den < rate_num;
}

std::string FaultSpec::ToString() const {
  std::string out = FaultKindName(kind);
  if (!ranks.empty()) {
    char sep = '@';
    for (std::uint64_t rank : ranks) {
      out += sep + std::to_string(rank);
      sep = '+';
    }
  } else {
    out += '~' + std::to_string(rate_num) + '/' + std::to_string(rate_den);
    if (seed != 0) {
      out += ':' + std::to_string(seed);
    }
  }
  if (transient) {
    out += '!';
  }
  if (fires_per_rank > 0) {
    out += 'x' + std::to_string(fires_per_rank);
  }
  if (kind == FaultKind::kSlowEval) {
    out += 'u' + std::to_string(slow_micros);
  }
  return out;
}

namespace {

Result<std::uint64_t> ParseUint(const std::string& text, std::size_t* pos) {
  if (*pos >= text.size() || text[*pos] < '0' || text[*pos] > '9') {
    return Error{"expected a number in fault spec at offset " + std::to_string(*pos)};
  }
  std::uint64_t value = 0;
  while (*pos < text.size() && text[*pos] >= '0' && text[*pos] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(text[*pos] - '0');
    ++(*pos);
  }
  return value;
}

Result<FaultSpec> ParseClause(const std::string& clause) {
  FaultSpec spec;
  std::size_t pos = 0;
  if (clause.rfind("throw", 0) == 0) {
    spec.kind = FaultKind::kThrow;
    pos = 5;
  } else if (clause.rfind("fuel", 0) == 0) {
    spec.kind = FaultKind::kFuelExhaustion;
    pos = 4;
  } else if (clause.rfind("wrong", 0) == 0) {
    spec.kind = FaultKind::kWrongValue;
    pos = 5;
  } else if (clause.rfind("slow", 0) == 0) {
    spec.kind = FaultKind::kSlowEval;
    pos = 4;
  } else {
    return Error{"unknown fault kind in clause '" + clause +
                 "' (want throw|fuel|wrong|slow)"};
  }
  bool explicit_fires = false;
  while (pos < clause.size()) {
    const char c = clause[pos++];
    switch (c) {
      case '@': {
        do {
          auto rank = ParseUint(clause, &pos);
          if (!rank.ok()) return rank.error();
          spec.ranks.push_back(rank.value());
        } while (pos < clause.size() && clause[pos] == '+' && ++pos);
        break;
      }
      case '~': {
        auto num = ParseUint(clause, &pos);
        if (!num.ok()) return num.error();
        if (pos >= clause.size() || clause[pos] != '/') {
          return Error{"rate in clause '" + clause + "' needs the form ~num/den"};
        }
        ++pos;
        auto den = ParseUint(clause, &pos);
        if (!den.ok()) return den.error();
        if (den.value() == 0) {
          return Error{"rate denominator must be nonzero in clause '" + clause + "'"};
        }
        spec.rate_num = static_cast<std::uint32_t>(num.value());
        spec.rate_den = static_cast<std::uint32_t>(den.value());
        break;
      }
      case ':': {
        auto seed = ParseUint(clause, &pos);
        if (!seed.ok()) return seed.error();
        spec.seed = seed.value();
        break;
      }
      case '!':
        spec.transient = true;
        break;
      case 'x': {
        auto n = ParseUint(clause, &pos);
        if (!n.ok()) return n.error();
        spec.fires_per_rank = static_cast<int>(n.value());
        explicit_fires = true;
        break;
      }
      case 'u': {
        auto micros = ParseUint(clause, &pos);
        if (!micros.ok()) return micros.error();
        spec.slow_micros = static_cast<std::uint32_t>(micros.value());
        break;
      }
      default:
        return Error{"unexpected character '" + std::string(1, c) + "' in clause '" +
                     clause + "'"};
    }
  }
  if (spec.ranks.empty() && spec.rate_num == 0) {
    return Error{"clause '" + clause + "' targets nothing: give @ranks or ~num/den"};
  }
  if (spec.transient && spec.kind != FaultKind::kThrow) {
    return Error{"'!' (transient) only applies to throw faults: '" + clause + "'"};
  }
  // A transient fault that fires forever can never be retried successfully;
  // default it to a single firing per rank.
  if (spec.transient && !explicit_fires) {
    spec.fires_per_rank = 1;
  }
  return spec;
}

}  // namespace

Result<std::vector<FaultSpec>> ParseFaultSpecs(const std::string& text) {
  std::vector<FaultSpec> specs;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(',', start);
    if (end == std::string::npos) end = text.size();
    const std::string clause = text.substr(start, end - start);
    if (clause.empty()) {
      return Error{"empty clause in fault spec '" + text + "'"};
    }
    auto spec = ParseClause(clause);
    if (!spec.ok()) return spec.error();
    specs.push_back(std::move(spec).value());
    start = end + 1;
    if (end == text.size()) break;
  }
  if (specs.empty()) {
    return Error{"empty fault spec"};
  }
  return specs;
}

FaultInjectingMechanism::FaultInjectingMechanism(
    std::shared_ptr<const ProtectionMechanism> inner, InputDomain domain,
    std::vector<FaultSpec> faults)
    : inner_(std::move(inner)), domain_(std::move(domain)), faults_(std::move(faults)) {
  assert(inner_ != nullptr);
  assert(inner_->num_inputs() == domain_.num_inputs());
}

bool FaultInjectingMechanism::ConsumeFire(std::size_t index, std::uint64_t rank) const {
  const FaultSpec& spec = faults_[index];
  if (!spec.TargetsRank(rank)) {
    return false;
  }
  if (spec.fires_per_rank > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    int& attempts = attempts_[{index, rank}];
    if (attempts >= spec.fires_per_rank) {
      return false;  // budget spent; behave like the inner mechanism now
    }
    ++attempts;
  }
  fired_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

Outcome FaultInjectingMechanism::Run(InputView input) const {
  const auto rank = domain_.RankOf(input);
  assert(rank.has_value() && "fault injection input must lie in the domain");
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    if (!ConsumeFire(i, *rank)) {
      continue;
    }
    const FaultSpec& spec = faults_[i];
    switch (spec.kind) {
      case FaultKind::kThrow:
        if (spec.transient) {
          throw TransientFaultError("transient fault at rank " + std::to_string(*rank));
        }
        throw FaultInjectedError("injected fault at rank " + std::to_string(*rank));
      case FaultKind::kFuelExhaustion:
        return Outcome::Violation(kDefaultFuel, "fuel exhausted");
      case FaultKind::kWrongValue: {
        Outcome outcome = inner_->Run(input);
        if (outcome.IsValue()) {
          outcome.value ^= 1;  // deterministic perturbation
        } else {
          outcome = Outcome::Val(0, outcome.steps);  // leak where it should deny
        }
        return outcome;
      }
      case FaultKind::kSlowEval:
        std::this_thread::sleep_for(std::chrono::microseconds(spec.slow_micros));
        return inner_->Run(input);
    }
  }
  return inner_->Run(input);
}

FaultInjectingPolicy::FaultInjectingPolicy(std::shared_ptr<const SecurityPolicy> inner,
                                           InputDomain domain, std::vector<FaultSpec> faults)
    : inner_(std::move(inner)), domain_(std::move(domain)), faults_(std::move(faults)) {
  assert(inner_ != nullptr);
  assert(inner_->num_inputs() == domain_.num_inputs());
}

PolicyImage FaultInjectingPolicy::Image(InputView input) const {
  const auto rank = domain_.RankOf(input);
  assert(rank.has_value() && "fault injection input must lie in the domain");
  for (const FaultSpec& spec : faults_) {
    if (!spec.TargetsRank(*rank)) {
      continue;
    }
    switch (spec.kind) {
      case FaultKind::kThrow:
        if (spec.transient) {
          throw TransientFaultError("transient fault at rank " + std::to_string(*rank));
        }
        throw FaultInjectedError("injected fault at rank " + std::to_string(*rank));
      case FaultKind::kWrongValue: {
        PolicyImage image = inner_->Image(input);
        if (!image.empty()) {
          image.front() ^= 1;
        } else {
          image.push_back(1);
        }
        return image;
      }
      case FaultKind::kSlowEval:
        std::this_thread::sleep_for(std::chrono::microseconds(spec.slow_micros));
        return inner_->Image(input);
      case FaultKind::kFuelExhaustion:
        break;  // no fuel in a policy; ignore
    }
  }
  return inner_->Image(input);
}

RetryingMechanism::RetryingMechanism(std::shared_ptr<const ProtectionMechanism> inner,
                                     int max_retries)
    : inner_(std::move(inner)), max_retries_(max_retries) {
  assert(inner_ != nullptr);
  assert(max_retries_ >= 0);
}

Outcome RetryingMechanism::Run(InputView input) const {
  for (int attempt = 0;; ++attempt) {
    try {
      return inner_->Run(input);
    } catch (const TransientFaultError&) {
      if (attempt >= max_retries_) {
        throw;
      }
      retries_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace secpol
