#include "src/mechanism/check_options.h"

#include <algorithm>

#include "src/util/thread_pool.h"

namespace secpol {

int CheckOptions::ResolvedThreads() const {
  if (num_threads <= 0) {
    return ThreadPool::HardwareThreads();
  }
  return num_threads;
}

std::uint64_t CheckOptions::ShardsFor(int threads, std::uint64_t grid_size) {
  const std::uint64_t want = static_cast<std::uint64_t>(std::max(1, threads)) * 8;
  return std::clamp<std::uint64_t>(grid_size, 1, want);
}

}  // namespace secpol
