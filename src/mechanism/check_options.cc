#include "src/mechanism/check_options.h"

#include <algorithm>
#include <utility>

#include "src/util/thread_pool.h"

namespace secpol {

int CheckOptions::ResolvedThreads() const {
  if (num_threads <= 0) {
    return ThreadPool::HardwareThreads();
  }
  return num_threads;
}

std::uint64_t CheckOptions::ShardsFor(int threads, std::uint64_t grid_size) {
  const std::uint64_t want = static_cast<std::uint64_t>(std::max(1, threads)) * 8;
  return std::clamp<std::uint64_t>(grid_size, 1, want);
}

Result<int> ValidateThreads(std::int64_t threads) {
  if (threads < 0) {
    return Error{"thread count must be >= 0 (0 = one per hardware thread); got " +
                 std::to_string(threads)};
  }
  if (threads > 4096) {
    return Error{"thread count must be <= 4096; got " + std::to_string(threads)};
  }
  return static_cast<int>(threads);
}

Result<Deadline> ValidateDeadlineMillis(std::int64_t millis) {
  if (millis <= 0) {
    return Error{"deadline must be a positive millisecond count; got " +
                 std::to_string(millis)};
  }
  return Deadline::AfterMillis(millis);
}

Result<int> ValidateRetries(std::int64_t retries) {
  if (retries < 0) {
    return Error{"retry bound must be >= 0; got " + std::to_string(retries)};
  }
  if (retries > 1000000) {
    return Error{"retry bound must be <= 1000000; got " + std::to_string(retries)};
  }
  return static_cast<int>(retries);
}

std::string CheckStatusName(CheckStatus status) {
  switch (status) {
    case CheckStatus::kCompleted:
      return "completed";
    case CheckStatus::kDeadlineExceeded:
      return "deadline exceeded";
    case CheckStatus::kAborted:
      return "aborted";
  }
  return "?";
}

std::string CheckProgress::ToString() const {
  std::string out = CheckStatusName(status);
  if (!complete()) {
    out += " after " + std::to_string(evaluated) + "/" + std::to_string(total) +
           " grid points";
    if (!message.empty()) {
      out += ": " + message;
    }
  }
  return out;
}

void MergeMeters(const std::vector<ShardMeter>& meters, CheckProgress* progress) {
  bool deadline = false;
  bool cancelled = false;
  for (const ShardMeter& meter : meters) {
    progress->evaluated += meter.evaluated;
    deadline = deadline || meter.gate.reason() == StopReason::kDeadline;
    cancelled = cancelled || meter.gate.reason() == StopReason::kCancelled;
  }
  if (deadline) {
    progress->status = CheckStatus::kDeadlineExceeded;
  } else if (cancelled) {
    progress->status = CheckStatus::kAborted;
    progress->message = "cancelled";
  }
}

void AbortProgress(CheckProgress* progress, std::string message) {
  progress->status = CheckStatus::kAborted;
  progress->message = std::move(message);
}

}  // namespace secpol
