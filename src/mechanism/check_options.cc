#include "src/mechanism/check_options.h"

#include <algorithm>
#include <utility>

#include "src/util/thread_pool.h"

namespace secpol {

int CheckOptions::ResolvedThreads() const {
  if (num_threads <= 0) {
    return ThreadPool::HardwareThreads();
  }
  return num_threads;
}

std::uint64_t CheckOptions::ShardsFor(int threads, std::uint64_t grid_size) {
  const std::uint64_t want = static_cast<std::uint64_t>(std::max(1, threads)) * 8;
  return std::clamp<std::uint64_t>(grid_size, 1, want);
}

std::string CheckStatusName(CheckStatus status) {
  switch (status) {
    case CheckStatus::kCompleted:
      return "completed";
    case CheckStatus::kDeadlineExceeded:
      return "deadline exceeded";
    case CheckStatus::kAborted:
      return "aborted";
  }
  return "?";
}

std::string CheckProgress::ToString() const {
  std::string out = CheckStatusName(status);
  if (!complete()) {
    out += " after " + std::to_string(evaluated) + "/" + std::to_string(total) +
           " grid points";
    if (!message.empty()) {
      out += ": " + message;
    }
  }
  return out;
}

void MergeMeters(const std::vector<ShardMeter>& meters, CheckProgress* progress) {
  bool deadline = false;
  bool cancelled = false;
  for (const ShardMeter& meter : meters) {
    progress->evaluated += meter.evaluated;
    deadline = deadline || meter.gate.reason() == StopReason::kDeadline;
    cancelled = cancelled || meter.gate.reason() == StopReason::kCancelled;
  }
  if (deadline) {
    progress->status = CheckStatus::kDeadlineExceeded;
  } else if (cancelled) {
    progress->status = CheckStatus::kAborted;
    progress->message = "cancelled";
  }
}

void AbortProgress(CheckProgress* progress, std::string message) {
  progress->status = CheckStatus::kAborted;
  progress->message = std::move(message);
}

}  // namespace secpol
