// The paper's *second* security question — Q as an "O operator".
//
// "If Q is used as an operator function, then the security question is:
// Does the value of Q(d1,...,dk) contain ALL the information that it should?
// This second question has sometimes been called 'data security' (Popek).
// It concerns itself with whether or not information, such as a system
// table, has been illegally altered and hence lost."
//
// The paper asserts without proof that its methods carry over; this module
// makes that concrete. Where confidentiality ("view function") soundness
// says M must not distinguish MORE than the policy image, integrity
// ("operator function") preservation says M must not distinguish LESS: a
// mechanism preserves a required-information policy R over a domain iff
// inputs with different R-images produce observably different outcomes —
// i.e. the map input -> outcome *refines* R, so R(d) is recoverable from
// M(d) and nothing the policy requires has been lost.
//
// The dual symmetry is exact: soundness = "outcome is a function of I(d)";
// preservation = "R(d) is a function of the outcome".

#ifndef SECPOL_SRC_MECHANISM_INTEGRITY_H_
#define SECPOL_SRC_MECHANISM_INTEGRITY_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/mechanism/check_options.h"
#include "src/mechanism/domain.h"
#include "src/mechanism/mechanism.h"
#include "src/mechanism/outcome.h"
#include "src/policy/policy.h"

namespace secpol {

// A witness of information loss: two inputs the policy requires to remain
// distinguishable that the mechanism collapses to one observable outcome.
struct IntegrityCounterexample {
  Input input_a;
  Input input_b;
  Outcome outcome;  // the shared observable outcome

  std::string ToString() const;
};

struct IntegrityReport {
  bool preserved = false;
  std::optional<IntegrityCounterexample> counterexample;
  std::uint64_t inputs_checked = 0;
  std::uint64_t required_classes = 0;

  // How the sweep ended. `preserved` is authoritative only when
  // progress.complete(); an incomplete run with a counterexample is still
  // definitively a loss (the collapsed pair was really evaluated), but the
  // witness need not be the rank-minimal one.
  CheckProgress progress;

  std::string ToString() const;
};

// Checks that `mechanism` preserves the information required by `required`
// over `domain` under observability `obs`. With options.num_threads != 1 the
// grid is evaluated in parallel shards; for completed runs the merged report
// (counterexample, counts) is identical to the serial scan at any thread
// count. The sweep honours options.deadline / options.cancel and converts a
// throwing mechanism into progress.status = kAborted.
IntegrityReport CheckInformationPreservation(const ProtectionMechanism& mechanism,
                                             const SecurityPolicy& required,
                                             const InputDomain& domain, Observability obs,
                                             const CheckOptions& options = CheckOptions());

class OutcomeTable;

// The same check over a pre-built outcome table (complete, with outcome and
// image columns; the table's primary policy plays the `required` role).
// Byte-identical to the live overload on the same grid.
IntegrityReport CheckInformationPreservation(const OutcomeTable& table, Observability obs,
                                             const CheckOptions& options = CheckOptions());

}  // namespace secpol

#endif  // SECPOL_SRC_MECHANISM_INTEGRITY_H_
