// Mechanism outcomes and the observability model.
//
// A protection mechanism M for Q maps each input either to Q(d) or to a
// violation notice from a set F disjoint from Q's outputs. Per the
// Observability Postulate, the output must encode everything the user can
// observe; running time is the canonical forgotten observable, so every
// Outcome carries a step count and the checker decides whether to observe it.

#ifndef SECPOL_SRC_MECHANISM_OUTCOME_H_
#define SECPOL_SRC_MECHANISM_OUTCOME_H_

#include <string>

#include "src/util/value.h"

namespace secpol {

// What the user of a mechanism can observe about one run.
enum class Observability {
  // The user sees only the value (or the fact of a violation notice). This
  // is Section 3's first assumption, range(Q) = Z.
  kValueOnly,
  // The user additionally observes the number of steps executed,
  // range(Q) = Z x Z. Timing channels become visible to the checker.
  kValueAndTime,
};

std::string ObservabilityName(Observability obs);

struct Outcome {
  enum class Kind {
    kValue,      // the real output Q(d)
    kViolation,  // a violation notice from F
  };

  Kind kind = Kind::kViolation;
  Value value = 0;       // meaningful iff kind == kValue
  StepCount steps = 0;   // always recorded
  std::string notice;    // meaningful iff kind == kViolation

  static Outcome Val(Value value, StepCount steps);
  static Outcome Violation(StepCount steps, std::string notice = "access violation");

  bool IsValue() const { return kind == Kind::kValue; }
  bool IsViolation() const { return kind == Kind::kViolation; }

  // Whether a user restricted to `obs` can distinguish this outcome from
  // `other`. Distinct violation notices are treated as the same single
  // notice, following Section 4 ("we do not distinguish between different
  // violation notices"); under kValueAndTime the steps at which any outcome
  // (including a violation) is delivered are observable.
  bool ObservablyEquals(const Outcome& other, Observability obs) const;

  std::string ToString() const;
};

}  // namespace secpol

#endif  // SECPOL_SRC_MECHANISM_OUTCOME_H_
