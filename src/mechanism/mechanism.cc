#include "src/mechanism/mechanism.h"

#include <cassert>

namespace secpol {

ProgramAsMechanism::ProgramAsMechanism(Program program, StepCount fuel)
    : program_(std::move(program)), fuel_(fuel) {}

Outcome ProgramAsMechanism::Run(InputView input) const {
  const ExecResult result = RunProgram(program_, input, fuel_);
  if (!result.halted) {
    return Outcome::Violation(result.steps, "fuel exhausted");
  }
  return Outcome::Val(result.output, result.steps);
}

TrackedOutcome ProgramAsMechanism::RunTracked(InputView input) const {
  ExecFootprint footprint;
  const ExecResult result = RunProgramTracked(program_, input, &footprint, fuel_);
  Outcome outcome = result.halted ? Outcome::Val(result.output, result.steps)
                                  : Outcome::Violation(result.steps, "fuel exhausted");
  return TrackedOutcome{std::move(outcome), footprint.reads, true, footprint.BoxIds(), true};
}

PlugMechanism::PlugMechanism(int num_inputs) : num_inputs_(num_inputs) {}

Outcome PlugMechanism::Run(InputView input) const {
  (void)input;
  return Outcome::Violation(0, "plug pulled");
}

FunctionMechanism::FunctionMechanism(std::string name, int num_inputs, Fn fn)
    : name_(std::move(name)), num_inputs_(num_inputs), fn_(std::move(fn)) {}

Outcome FunctionMechanism::Run(InputView input) const {
  assert(static_cast<int>(input.size()) == num_inputs_);
  return fn_(input);
}

TableMechanism::TableMechanism(std::string name, int num_inputs)
    : name_(std::move(name)), num_inputs_(num_inputs) {}

void TableMechanism::Set(Input input, Outcome outcome) {
  table_[std::move(input)] = std::move(outcome);
}

Outcome TableMechanism::Run(InputView input) const {
  const auto it = table_.find(Input(input.begin(), input.end()));
  if (it == table_.end()) {
    throw OutOfDomainError("TableMechanism '" + name_ + "': input outside tabulated domain");
  }
  return it->second;
}

JoinMechanism::JoinMechanism(std::vector<std::shared_ptr<const ProtectionMechanism>> members)
    : members_(std::move(members)) {
  assert(!members_.empty());
  for (const auto& member : members_) {
    (void)member;
    assert(member->num_inputs() == members_[0]->num_inputs());
  }
}

int JoinMechanism::num_inputs() const { return members_[0]->num_inputs(); }

namespace {

// Shared merge for Join/Meet tracked runs: member outcomes plus the union of
// member read sets, exact only when every member tracked. Box footprints are
// never merged — members may be different programs with unrelated box ids.
TrackedOutcome TrackMembers(
    const std::vector<std::shared_ptr<const ProtectionMechanism>>& members, InputView input,
    std::vector<Outcome>* outcomes) {
  TrackedOutcome merged;
  merged.exact = true;
  outcomes->clear();
  outcomes->reserve(members.size());
  for (const auto& member : members) {
    TrackedOutcome tracked = member->RunTracked(input);
    merged.reads = merged.reads.Union(tracked.reads);
    merged.exact = merged.exact && tracked.exact;
    outcomes->push_back(std::move(tracked.outcome));
  }
  return merged;
}

Outcome MergeJoin(const std::vector<Outcome>& outcomes) {
  StepCount total_steps = 0;
  for (const Outcome& outcome : outcomes) {
    total_steps += outcome.steps;
  }
  for (const Outcome& outcome : outcomes) {
    if (outcome.IsValue()) {
      return Outcome::Val(outcome.value, total_steps);
    }
  }
  return Outcome::Violation(total_steps, "all joined mechanisms violated");
}

Outcome MergeMeet(const std::vector<Outcome>& outcomes) {
  StepCount total_steps = 0;
  for (const Outcome& outcome : outcomes) {
    total_steps += outcome.steps;
  }
  for (const Outcome& outcome : outcomes) {
    if (outcome.IsViolation()) {
      return Outcome::Violation(total_steps, "some met mechanism violated");
    }
  }
  return Outcome::Val(outcomes.back().value, total_steps);
}

}  // namespace

Outcome JoinMechanism::Run(InputView input) const {
  std::vector<Outcome> outcomes;
  outcomes.reserve(members_.size());
  for (const auto& member : members_) {
    outcomes.push_back(member->Run(input));
  }
  return MergeJoin(outcomes);
}

TrackedOutcome JoinMechanism::RunTracked(InputView input) const {
  std::vector<Outcome> outcomes;
  TrackedOutcome merged = TrackMembers(members_, input, &outcomes);
  merged.outcome = MergeJoin(outcomes);
  return merged;
}

std::string JoinMechanism::name() const {
  std::string out = "(";
  for (size_t i = 0; i < members_.size(); ++i) {
    if (i > 0) {
      out += " v ";
    }
    out += members_[i]->name();
  }
  out += ")";
  return out;
}

std::shared_ptr<const ProtectionMechanism> Join(
    std::shared_ptr<const ProtectionMechanism> m1,
    std::shared_ptr<const ProtectionMechanism> m2) {
  std::vector<std::shared_ptr<const ProtectionMechanism>> members = {std::move(m1),
                                                                     std::move(m2)};
  return std::make_shared<JoinMechanism>(std::move(members));
}

MeetMechanism::MeetMechanism(std::vector<std::shared_ptr<const ProtectionMechanism>> members)
    : members_(std::move(members)) {
  assert(!members_.empty());
  for (const auto& member : members_) {
    (void)member;
    assert(member->num_inputs() == members_[0]->num_inputs());
  }
}

int MeetMechanism::num_inputs() const { return members_[0]->num_inputs(); }

Outcome MeetMechanism::Run(InputView input) const {
  std::vector<Outcome> outcomes;
  outcomes.reserve(members_.size());
  for (const auto& member : members_) {
    outcomes.push_back(member->Run(input));
  }
  return MergeMeet(outcomes);
}

TrackedOutcome MeetMechanism::RunTracked(InputView input) const {
  std::vector<Outcome> outcomes;
  TrackedOutcome merged = TrackMembers(members_, input, &outcomes);
  merged.outcome = MergeMeet(outcomes);
  return merged;
}

std::string MeetMechanism::name() const {
  std::string out = "(";
  for (size_t i = 0; i < members_.size(); ++i) {
    if (i > 0) {
      out += " ^ ";
    }
    out += members_[i]->name();
  }
  out += ")";
  return out;
}

std::shared_ptr<const ProtectionMechanism> Meet(
    std::shared_ptr<const ProtectionMechanism> m1,
    std::shared_ptr<const ProtectionMechanism> m2) {
  std::vector<std::shared_ptr<const ProtectionMechanism>> members = {std::move(m1),
                                                                     std::move(m2)};
  return std::make_shared<MeetMechanism>(std::move(members));
}

}  // namespace secpol
