// The soundness checker: decides the paper's central definition over a
// finite input domain.
//
// "M is sound provided there is a function M' : Y -> E u F such that for all
// d, M(d) = M'(I(d))" — i.e. M factors through the policy image. Over a
// finite domain this is decidable: group inputs by image and require M to be
// observably constant on every group. Ruzzo's observation (Section 4) that
// soundness is undecidable in general is precisely why the checker is
// parameterized by a finite domain.

#ifndef SECPOL_SRC_MECHANISM_SOUNDNESS_H_
#define SECPOL_SRC_MECHANISM_SOUNDNESS_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/mechanism/check_options.h"
#include "src/mechanism/domain.h"
#include "src/mechanism/mechanism.h"
#include "src/mechanism/outcome.h"
#include "src/policy/policy.h"

namespace secpol {

// A witness of unsoundness: two inputs the policy deems indistinguishable on
// which the mechanism behaves observably differently. This is exactly an
// information leak — by choosing between a and b an adversary encodes one
// bit the policy forbids.
struct SoundnessCounterexample {
  Input input_a;
  Input input_b;
  Outcome outcome_a;
  Outcome outcome_b;

  std::string ToString() const;
};

struct SoundnessReport {
  bool sound = false;
  std::optional<SoundnessCounterexample> counterexample;
  std::uint64_t inputs_checked = 0;
  std::uint64_t policy_classes = 0;

  // How the sweep ended. `sound` is authoritative only when
  // progress.complete(); an incomplete run with a counterexample is still
  // definitively UNSOUND (the witness pair was really evaluated), but the
  // witness need not be the rank-minimal one; an incomplete run without a
  // counterexample is UNKNOWN.
  CheckProgress progress;

  std::string ToString() const;
};

// Exhaustively checks soundness of `mechanism` for `policy` over `domain`
// under observability `obs`. mechanism.num_inputs() must match both the
// policy and the domain. With options.num_threads != 1 the grid is evaluated
// in parallel shards; for completed runs the report — including the exact
// counterexample pair and inputs_checked — is identical to the serial scan
// at any thread count, because shard partials are merged by global grid rank
// (first witness wins). The sweep honours options.deadline / options.cancel
// and converts a throwing mechanism into progress.status = kAborted; it
// never crashes or hangs.
SoundnessReport CheckSoundness(const ProtectionMechanism& mechanism,
                               const SecurityPolicy& policy, const InputDomain& domain,
                               Observability obs, const CheckOptions& options = CheckOptions());

class OutcomeTable;

// The same check over a pre-built outcome table: the reduction reads the
// tabulated (image, outcome) pairs instead of re-running the mechanism, so
// an audit sharing one table across checkers pays for each evaluation once.
// The table must be complete and carry outcomes and policy images; the
// report is byte-identical to the live overload on the same grid.
SoundnessReport CheckSoundness(const OutcomeTable& table, Observability obs,
                               const CheckOptions& options = CheckOptions());

}  // namespace secpol

#endif  // SECPOL_SRC_MECHANISM_SOUNDNESS_H_
