// The unified grid-sweep kernel under every extensional checker.
//
// Each check in the paper — soundness (Definition 2), the completeness order
// (Theorem 1), information preservation, maximal synthesis (Theorem 2),
// policy comparison, and leak measurement — is a fold over the same finite
// input grid. The kernel owns everything those folds share: shard-count
// selection, per-shard ShardMeter accounting, amortized deadline/cancel
// polling, the drain-token exception barrier, and the final CheckProgress
// merge. A checker reduces to (a) a per-shard visit body, (b) optionally a
// prune predicate that skips ranks proven irrelevant to the first witness,
// and (c) a merge of its per-shard partials.
//
// The serial reference scan is the kernel at one shard: a resolved thread
// count of one turns the grid into a single contiguous range evaluated
// inline, so every checker has exactly one sweep body and the serial ≡
// parallel byte-identical-report contract holds by construction — the merge
// of one shard's partials reconstructs precisely the serial report.

#ifndef SECPOL_SRC_MECHANISM_SWEEP_H_
#define SECPOL_SRC_MECHANISM_SWEEP_H_

#include <atomic>
#include <cstdint>
#include <exception>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "src/mechanism/check_options.h"
#include "src/mechanism/domain.h"
#include "src/mechanism/mechanism.h"
#include "src/obs/obs.h"
#include "src/util/deadline.h"
#include "src/util/value.h"

namespace secpol {

// How a sweep splits the grid: one shard for the serial reference scan, a
// small multiple of the thread count otherwise (CheckOptions::ShardsFor).
struct SweepPlan {
  int threads = 1;
  std::uint64_t num_shards = 1;

  static SweepPlan For(const CheckOptions& options, std::uint64_t grid_size);

  // Plan for a class-level sweep: the unit of work is one equivalence-class
  // representative, not one grid point, so shards are sized to the class
  // count. Representative runs are the expensive tracked evaluations, which
  // is why they get their own plan instead of inheriting the grid's.
  static SweepPlan ForClasses(const CheckOptions& options, std::uint64_t num_classes);
};

// Folds one finished sweep into the attached sinks: "sweep.*" counters, the
// per-shard point histogram, per-shard trace spans, and stop-event instants.
// A disabled ObsContext makes this a no-op. Defined in sweep.cc; called by
// SweepGrid after the meters are merged.
void RecordSweepMetrics(const ObsContext& obs, const std::vector<ShardMeter>& meters,
                        const CheckProgress& progress, bool exception, bool out_of_domain);

// A monotonically decreasing rank bound shared across shards. Once some
// shard proves "a witness exists at rank <= r", ranks beyond r can never
// contribute the *first* witness, so sibling shards skip them. Relaxed
// ordering suffices: the bound only prunes work, never decides the report —
// the merge re-derives the minimum-rank witness from the partials.
class ConflictBound {
 public:
  bool Excludes(std::uint64_t rank) const {
    return rank > bound_.load(std::memory_order_relaxed);
  }

  void LowerTo(std::uint64_t rank) {
    std::uint64_t prev = bound_.load(std::memory_order_relaxed);
    while (rank < prev &&
           !bound_.compare_exchange_weak(prev, rank, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<std::uint64_t> bound_{UINT64_MAX};
};

// Evaluates `visit(shard, rank, input)` over the whole grid under `plan`,
// owning the meters, the poll gates, the drain token, and the exception
// barrier. `prune(rank)` is consulted after the gate and before the point
// counts as evaluated; returning true stops the shard (the point is pruned,
// not skipped-and-continued, because prune bounds are monotone in rank
// within a contiguous shard). `visit` returning false stops its shard.
// The returned progress carries the merged coverage and status; a throwing
// visit surfaces as kAborted with the exception text, never as terminate.
template <typename VisitFn, typename PruneFn>
CheckProgress SweepGrid(const InputDomain& domain, const CheckOptions& options,
                        const SweepPlan& plan, const VisitFn& visit, const PruneFn& prune) {
  CheckProgress progress;
  progress.total = domain.size();
  // On a shard exception the pool cancels `drain`; sibling shards polling it
  // wind down instead of sweeping their full ranges.
  CancelToken drain;
  std::vector<ShardMeter> meters(plan.num_shards, ShardMeter(options, drain));
  // When tracing, each shard tracks its [first, last] visit window for the
  // per-shard trace span. The first visit reads the clock; after that the
  // window end is resampled every 64 points, so a span's end is approximate
  // by at most 63 points of work but the hot loop pays a clock read on only
  // 1/64 of the grid. Disabled obs costs a single predictable null check.
  TraceRecorder* const trace = options.obs.trace;
  bool exception = false;
  bool out_of_domain = false;
  try {
    domain.ParallelForEach(
        plan.num_shards,
        [&](std::uint64_t shard, std::uint64_t rank, InputView input) -> bool {
          ShardMeter& meter = meters[shard];
          if (meter.gate.ShouldStop()) {
            return false;
          }
          if (prune(rank)) {
            meter.pruned = 1;
            return false;
          }
          ++meter.evaluated;
          if (trace != nullptr) {
            if (meter.first_visit_us < 0) {
              meter.first_visit_us = trace->NowMicros();
              meter.last_visit_us = meter.first_visit_us;
            } else if ((meter.evaluated & 63) == 0) {
              meter.last_visit_us = trace->NowMicros();
            }
          }
          return visit(shard, rank, input);
        },
        plan.threads, &drain);
    MergeMeters(meters, &progress);
  } catch (const OutOfDomainError& e) {
    exception = true;
    out_of_domain = true;
    MergeMeters(meters, &progress);
    AbortProgress(&progress, e.what());
  } catch (const std::exception& e) {
    exception = true;
    MergeMeters(meters, &progress);
    AbortProgress(&progress, e.what());
  } catch (...) {
    exception = true;
    MergeMeters(meters, &progress);
    AbortProgress(&progress, "unknown error");
  }
  RecordSweepMetrics(options.obs, meters, progress, exception, out_of_domain);
  return progress;
}

// Sweep without a prune predicate (counting reducers: completeness, leak,
// maximal tabulation).
template <typename VisitFn>
CheckProgress SweepGrid(const InputDomain& domain, const CheckOptions& options,
                        const SweepPlan& plan, const VisitFn& visit) {
  return SweepGrid(domain, options, plan, visit, [](std::uint64_t) { return false; });
}

// ---------------------------------------------------------------------------
// Rank-ordered first-witness merging, shared by the witness-style reducers
// (soundness and integrity).

// One occurrence of a key (a policy class, an outcome signature): its global
// grid rank, the tuple, and the checker's payload for it.
template <typename Payload>
struct SweepOccurrence {
  std::uint64_t rank = 0;
  Input input;
  Payload payload;
};

// What one shard records per key. Divergence must be the complement of an
// equivalence relation on payloads, so to locate the first occurrence that
// disagrees with *any* reference payload it suffices to keep the shard's
// first occurrence and the first occurrence diverging from it: at most one
// of the two can agree with the reference.
template <typename Payload>
struct SweepClassPartial {
  SweepOccurrence<Payload> first;
  std::optional<SweepOccurrence<Payload>> divergent;
};

template <typename Key, typename Payload>
using SweepClassShards = std::vector<std::map<Key, SweepClassPartial<Payload>>>;

// Visit-side recording: first occurrence per key, first divergent occurrence
// per key, and the conflict bound (two diverging payloads under one key at
// ranks i1 < i2 guarantee a witness at rank <= i2 whatever the global
// representative turns out to be).
template <typename Key, typename Payload, typename DivergesFn>
void RecordOccurrence(std::map<Key, SweepClassPartial<Payload>>& classes, ConflictBound& bound,
                      std::uint64_t rank, InputView input, Key key, const Payload& payload,
                      const DivergesFn& diverges) {
  auto [it, inserted] = classes.try_emplace(std::move(key));
  SweepClassPartial<Payload>& partial = it->second;
  if (inserted) {
    partial.first = SweepOccurrence<Payload>{rank, Input(input.begin(), input.end()), payload};
    return;
  }
  if (!partial.divergent.has_value() && diverges(partial.first.payload, payload)) {
    partial.divergent =
        SweepOccurrence<Payload>{rank, Input(input.begin(), input.end()), payload};
    bound.LowerTo(rank);
  }
}

// The reconstructed serial witness: the minimum-rank occurrence that
// diverges from its key's global representative.
template <typename Payload>
struct SweepWitness {
  const SweepOccurrence<Payload>* rep = nullptr;      // the class representative
  const SweepOccurrence<Payload>* witness = nullptr;  // the diverging occurrence

  bool found() const { return witness != nullptr; }
  std::uint64_t rank() const { return witness->rank; }
};

// Merges per-shard partials. The global representative of a key is its
// lowest-rank occurrence (shard ranges are disjoint and increasing, so that
// is the `first` of the earliest shard that saw the key); `global_first` is
// filled with it. The witness is the minimum-rank occurrence diverging from
// its key's representative — exactly the pair the serial scan stops at.
template <typename Key, typename Payload, typename DivergesFn>
SweepWitness<Payload> MergeFirstWitness(
    const SweepClassShards<Key, Payload>& shards,
    std::map<Key, const SweepOccurrence<Payload>*>* global_first, const DivergesFn& diverges) {
  for (const auto& shard : shards) {
    for (const auto& [key, partial] : shard) {
      auto [it, inserted] = global_first->try_emplace(key, &partial.first);
      if (!inserted && partial.first.rank < it->second->rank) {
        it->second = &partial.first;
      }
    }
  }

  SweepWitness<Payload> out;
  std::uint64_t best_rank = UINT64_MAX;
  for (const auto& [key, rep] : *global_first) {
    for (const auto& shard : shards) {
      const auto it = shard.find(key);
      if (it == shard.end()) {
        continue;
      }
      const SweepClassPartial<Payload>& partial = it->second;
      const SweepOccurrence<Payload>* candidate = nullptr;
      if (partial.first.rank != rep->rank && diverges(rep->payload, partial.first.payload)) {
        candidate = &partial.first;
      } else if (partial.divergent.has_value() &&
                 diverges(rep->payload, partial.divergent->payload)) {
        candidate = &*partial.divergent;
      }
      if (candidate != nullptr && candidate->rank < best_rank) {
        best_rank = candidate->rank;
        out.rep = rep;
        out.witness = candidate;
      }
    }
  }
  return out;
}

}  // namespace secpol

#endif  // SECPOL_SRC_MECHANISM_SWEEP_H_
