#include "src/mechanism/soundness.h"

#include <atomic>
#include <cassert>
#include <exception>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "src/util/strings.h"

namespace secpol {

std::string SoundnessCounterexample::ToString() const {
  return "inputs " + FormatInput(input_a) + " and " + FormatInput(input_b) +
         " share a policy image but M gives [" + outcome_a.ToString() + "] vs [" +
         outcome_b.ToString() + "]";
}

std::string SoundnessReport::ToString() const {
  std::string out;
  if (progress.complete()) {
    out = sound ? "SOUND" : "UNSOUND";
  } else if (counterexample.has_value()) {
    // The witness is genuine, so the verdict is definitive even though the
    // sweep did not finish; it just need not be the first witness.
    out = "UNSOUND [" + progress.ToString() + "]";
  } else {
    out = "UNKNOWN [" + progress.ToString() + "]";
  }
  out += " (" + std::to_string(inputs_checked) + " inputs, " + std::to_string(policy_classes) +
         " policy classes)";
  if (counterexample.has_value()) {
    out += "\n  counterexample: " + counterexample->ToString();
  }
  return out;
}

namespace {

// The reference implementation: one lexicographic scan, stopping at the
// first input whose outcome observably differs from its class representative.
SoundnessReport CheckSoundnessSerial(const ProtectionMechanism& mechanism,
                                     const SecurityPolicy& policy, const InputDomain& domain,
                                     Observability obs, const CheckOptions& options) {
  SoundnessReport report;
  report.sound = true;
  report.progress.total = domain.size();

  std::vector<ShardMeter> meters(1, ShardMeter(options));
  ShardMeter& meter = meters.front();

  // First representative of each policy class, with its outcome.
  std::map<PolicyImage, std::pair<Input, Outcome>> representatives;

  try {
    domain.ForEachRange(0, report.progress.total, [&](std::uint64_t rank, InputView input) {
      (void)rank;
      if (meter.gate.ShouldStop()) {
        return false;
      }
      ++meter.evaluated;
      ++report.inputs_checked;
      PolicyImage image = policy.Image(input);
      Outcome outcome = mechanism.Run(input);
      auto [it, inserted] = representatives.try_emplace(
          std::move(image), Input(input.begin(), input.end()), outcome);
      if (inserted) {
        return true;
      }
      const auto& [rep_input, rep_outcome] = it->second;
      if (!rep_outcome.ObservablyEquals(outcome, obs)) {
        report.sound = false;
        SoundnessCounterexample cx;
        cx.input_a = rep_input;
        cx.input_b = Input(input.begin(), input.end());
        cx.outcome_a = rep_outcome;
        cx.outcome_b = outcome;
        report.counterexample = std::move(cx);
        return false;  // the serial scan stops at the first witness
      }
      return true;
    });
    MergeMeters(meters, &report.progress);
  } catch (const std::exception& e) {
    MergeMeters(meters, &report.progress);
    AbortProgress(&report.progress, e.what());
  } catch (...) {
    MergeMeters(meters, &report.progress);
    AbortProgress(&report.progress, "unknown error");
  }

  report.policy_classes = representatives.size();
  if (!report.progress.complete() && !report.counterexample.has_value()) {
    report.sound = false;  // fail closed: unknown, never "sound by timeout"
  }
  return report;
}

// One occurrence of a class member: its global grid rank, the tuple, and the
// mechanism's outcome on it.
struct Occurrence {
  std::uint64_t rank = 0;
  Input input;
  Outcome outcome;
};

// What one shard records per policy class. Observable equality is an
// equivalence relation, so to locate the first member that disagrees with
// *any* reference outcome it suffices to keep the first member overall and
// the first member observably different from it: at most one of the two can
// agree with the reference.
struct ClassPartial {
  Occurrence first;
  std::optional<Occurrence> divergent;
};

SoundnessReport CheckSoundnessParallel(const ProtectionMechanism& mechanism,
                                       const SecurityPolicy& policy, const InputDomain& domain,
                                       Observability obs, int threads,
                                       const CheckOptions& options) {
  const std::uint64_t grid = domain.size();
  const std::uint64_t num_shards = CheckOptions::ShardsFor(threads, grid);
  std::vector<std::map<PolicyImage, ClassPartial>> partials(num_shards);

  SoundnessReport report;
  report.progress.total = grid;

  // On a shard exception the pool cancels `drain`; sibling shards polling it
  // wind down instead of sweeping their full ranges.
  CancelToken drain;
  std::vector<ShardMeter> meters(num_shards, ShardMeter(options, drain));

  // Once some class holds two observably different outcomes at ranks
  // i1 < i2, a counterexample exists at rank <= i2 whatever the global
  // representative turns out to be, so ranks beyond the smallest such bound
  // can never contribute the first witness and shards may skip them.
  std::atomic<std::uint64_t> conflict_bound{UINT64_MAX};

  try {
    domain.ParallelForEach(
        num_shards,
        [&](std::uint64_t shard, std::uint64_t rank, InputView input) -> bool {
          ShardMeter& meter = meters[shard];
          if (meter.gate.ShouldStop()) {
            return false;
          }
          if (rank > conflict_bound.load(std::memory_order_relaxed)) {
            return false;
          }
          ++meter.evaluated;
          auto& classes = partials[shard];
          PolicyImage image = policy.Image(input);
          Outcome outcome = mechanism.Run(input);
          auto [it, inserted] = classes.try_emplace(std::move(image));
          ClassPartial& partial = it->second;
          if (inserted) {
            partial.first = Occurrence{rank, Input(input.begin(), input.end()), outcome};
            return true;
          }
          if (!partial.divergent.has_value() &&
              !partial.first.outcome.ObservablyEquals(outcome, obs)) {
            partial.divergent = Occurrence{rank, Input(input.begin(), input.end()), outcome};
            std::uint64_t prev = conflict_bound.load(std::memory_order_relaxed);
            while (rank < prev &&
                   !conflict_bound.compare_exchange_weak(prev, rank,
                                                         std::memory_order_relaxed)) {
            }
          }
          return true;
        },
        threads, &drain);
    MergeMeters(meters, &report.progress);
  } catch (const std::exception& e) {
    MergeMeters(meters, &report.progress);
    AbortProgress(&report.progress, e.what());
  } catch (...) {
    MergeMeters(meters, &report.progress);
    AbortProgress(&report.progress, "unknown error");
  }

  // Merge. The global representative of a class is its lowest-rank
  // occurrence; shard ranges are disjoint and increasing, so that is the
  // `first` of the earliest shard that saw the class.
  std::map<PolicyImage, const Occurrence*> global_first;
  for (const auto& shard : partials) {
    for (const auto& [image, partial] : shard) {
      auto [it, inserted] = global_first.try_emplace(image, &partial.first);
      if (!inserted && partial.first.rank < it->second->rank) {
        it->second = &partial.first;
      }
    }
  }

  // The serial counterexample is the minimum-rank member that observably
  // disagrees with its class representative.
  std::uint64_t best_rank = UINT64_MAX;
  const Occurrence* best_rep = nullptr;
  const Occurrence* best_witness = nullptr;
  for (const auto& [image, rep] : global_first) {
    for (const auto& shard : partials) {
      const auto it = shard.find(image);
      if (it == shard.end()) {
        continue;
      }
      const ClassPartial& partial = it->second;
      const Occurrence* candidate = nullptr;
      if (partial.first.rank != rep->rank &&
          !partial.first.outcome.ObservablyEquals(rep->outcome, obs)) {
        candidate = &partial.first;
      } else if (partial.divergent.has_value() &&
                 !partial.divergent->outcome.ObservablyEquals(rep->outcome, obs)) {
        candidate = &*partial.divergent;
      }
      if (candidate != nullptr && candidate->rank < best_rank) {
        best_rank = candidate->rank;
        best_rep = rep;
        best_witness = candidate;
      }
    }
  }

  if (best_witness == nullptr) {
    if (report.progress.complete()) {
      report.sound = true;
      report.inputs_checked = grid;
    } else {
      // Fail closed: partial coverage without a witness proves nothing.
      report.sound = false;
      report.inputs_checked = report.progress.evaluated;
    }
    report.policy_classes = global_first.size();
    return report;
  }
  report.sound = false;
  // The serial scan stops at the witness: it has counted best_rank + 1
  // inputs and seen exactly the classes that first occur at or before it.
  // (On an incomplete run this reconstruction is best-effort: the witness is
  // genuine but earlier unevaluated ranks might hold an earlier one.)
  report.inputs_checked = best_rank + 1;
  for (const auto& [image, rep] : global_first) {
    (void)image;
    if (rep->rank <= best_rank) {
      ++report.policy_classes;
    }
  }
  SoundnessCounterexample cx;
  cx.input_a = best_rep->input;
  cx.input_b = best_witness->input;
  cx.outcome_a = best_rep->outcome;
  cx.outcome_b = best_witness->outcome;
  report.counterexample = std::move(cx);
  return report;
}

}  // namespace

SoundnessReport CheckSoundness(const ProtectionMechanism& mechanism,
                               const SecurityPolicy& policy, const InputDomain& domain,
                               Observability obs, const CheckOptions& options) {
  assert(mechanism.num_inputs() == policy.num_inputs());
  assert(mechanism.num_inputs() == domain.num_inputs());
  const int threads = options.ResolvedThreads();
  if (threads <= 1) {
    return CheckSoundnessSerial(mechanism, policy, domain, obs, options);
  }
  return CheckSoundnessParallel(mechanism, policy, domain, obs, threads, options);
}

}  // namespace secpol
