#include "src/mechanism/soundness.h"

#include <cassert>
#include <cstdint>
#include <map>
#include <utility>

#include "src/mechanism/outcome_table.h"
#include "src/mechanism/sweep.h"
#include "src/util/strings.h"

namespace secpol {

std::string SoundnessCounterexample::ToString() const {
  return "inputs " + FormatInput(input_a) + " and " + FormatInput(input_b) +
         " share a policy image but M gives [" + outcome_a.ToString() + "] vs [" +
         outcome_b.ToString() + "]";
}

std::string SoundnessReport::ToString() const {
  std::string out;
  if (progress.complete()) {
    out = sound ? "SOUND" : "UNSOUND";
  } else if (counterexample.has_value()) {
    // The witness is genuine, so the verdict is definitive even though the
    // sweep did not finish; it just need not be the first witness.
    out = "UNSOUND [" + progress.ToString() + "]";
  } else {
    out = "UNKNOWN [" + progress.ToString() + "]";
  }
  out += " (" + std::to_string(inputs_checked) + " inputs, " + std::to_string(policy_classes) +
         " policy classes)";
  if (counterexample.has_value()) {
    out += "\n  counterexample: " + counterexample->ToString();
  }
  return out;
}

namespace {

// The soundness reducer over the sweep kernel. `eval(rank, input)` produces
// the point's (policy image, outcome) pair; the reduction groups points by
// image and reconstructs the serial scan's first counterexample — the
// minimum-rank member observably disagreeing with its class representative.
template <typename EvalFn>
SoundnessReport CheckSoundnessImpl(const InputDomain& domain, Observability obs,
                                   const CheckOptions& options, const EvalFn& eval) {
  SoundnessReport report;
  const std::uint64_t grid = domain.size();
  const SweepPlan plan = SweepPlan::For(options, grid);
  SweepClassShards<PolicyImage, Outcome> partials(plan.num_shards);
  ConflictBound bound;
  const auto diverges = [obs](const Outcome& a, const Outcome& b) {
    return !a.ObservablyEquals(b, obs);
  };

  report.progress = SweepGrid(
      domain, options, plan,
      [&](std::uint64_t shard, std::uint64_t rank, InputView input) -> bool {
        auto [image, outcome] = eval(rank, input);
        RecordOccurrence(partials[shard], bound, rank, input, std::move(image), outcome,
                        diverges);
        return true;
      },
      [&](std::uint64_t rank) { return bound.Excludes(rank); });

  std::map<PolicyImage, const SweepOccurrence<Outcome>*> global_first;
  const SweepWitness<Outcome> witness = MergeFirstWitness(partials, &global_first, diverges);

  if (!witness.found()) {
    if (report.progress.complete()) {
      report.sound = true;
      report.inputs_checked = grid;
    } else {
      // Fail closed: partial coverage without a witness proves nothing.
      report.sound = false;
      report.inputs_checked = report.progress.evaluated;
    }
    report.policy_classes = global_first.size();
    return report;
  }

  report.sound = false;
  // The serial scan stops at the witness: it has counted witness.rank() + 1
  // inputs and seen exactly the classes that first occur at or before it.
  // (On an incomplete run this reconstruction is best-effort: the witness is
  // genuine but earlier unevaluated ranks might hold an earlier one.)
  report.inputs_checked = witness.rank() + 1;
  for (const auto& [image, rep] : global_first) {
    (void)image;
    if (rep->rank <= witness.rank()) {
      ++report.policy_classes;
    }
  }
  SoundnessCounterexample cx;
  cx.input_a = witness.rep->input;
  cx.input_b = witness.witness->input;
  cx.outcome_a = witness.rep->payload;
  cx.outcome_b = witness.witness->payload;
  report.counterexample = std::move(cx);
  return report;
}

struct SoundnessPoint {
  PolicyImage image;
  Outcome outcome;
};

}  // namespace

SoundnessReport CheckSoundness(const ProtectionMechanism& mechanism,
                               const SecurityPolicy& policy, const InputDomain& domain,
                               Observability obs, const CheckOptions& options) {
  assert(mechanism.num_inputs() == policy.num_inputs());
  assert(mechanism.num_inputs() == domain.num_inputs());
  CheckScope scope(options.obs, "soundness");
  SoundnessReport report =
      CheckSoundnessImpl(domain, obs, options, [&](std::uint64_t, InputView input) {
        // Braced initialization fixes the historical evaluation order: the
        // policy image before the mechanism run.
        return SoundnessPoint{policy.Image(input), mechanism.Run(input)};
      });
  scope.SetPoints(report.progress.evaluated);
  return report;
}

SoundnessReport CheckSoundness(const OutcomeTable& table, Observability obs,
                               const CheckOptions& options) {
  assert(table.complete());
  assert(table.has_outcomes() && table.has_images());
  CheckScope scope(options.obs, "soundness");
  SoundnessReport report =
      CheckSoundnessImpl(table.domain(), obs, options, [&](std::uint64_t rank, InputView) {
        return SoundnessPoint{table.image(rank), table.outcome(rank)};
      });
  scope.SetPoints(report.progress.evaluated);
  return report;
}

}  // namespace secpol
