#include "src/mechanism/soundness.h"

#include <cassert>
#include <map>
#include <utility>

#include "src/util/strings.h"

namespace secpol {

std::string SoundnessCounterexample::ToString() const {
  return "inputs " + FormatInput(input_a) + " and " + FormatInput(input_b) +
         " share a policy image but M gives [" + outcome_a.ToString() + "] vs [" +
         outcome_b.ToString() + "]";
}

std::string SoundnessReport::ToString() const {
  std::string out = sound ? "SOUND" : "UNSOUND";
  out += " (" + std::to_string(inputs_checked) + " inputs, " + std::to_string(policy_classes) +
         " policy classes)";
  if (counterexample.has_value()) {
    out += "\n  counterexample: " + counterexample->ToString();
  }
  return out;
}

SoundnessReport CheckSoundness(const ProtectionMechanism& mechanism,
                               const SecurityPolicy& policy, const InputDomain& domain,
                               Observability obs) {
  assert(mechanism.num_inputs() == policy.num_inputs());
  assert(mechanism.num_inputs() == domain.num_inputs());

  SoundnessReport report;
  report.sound = true;

  // First representative of each policy class, with its outcome.
  std::map<PolicyImage, std::pair<Input, Outcome>> representatives;

  domain.ForEach([&](InputView input) {
    if (!report.sound) {
      return;  // already found a counterexample; skim the rest
    }
    ++report.inputs_checked;
    PolicyImage image = policy.Image(input);
    Outcome outcome = mechanism.Run(input);
    auto [it, inserted] = representatives.try_emplace(
        std::move(image), Input(input.begin(), input.end()), outcome);
    if (inserted) {
      return;
    }
    const auto& [rep_input, rep_outcome] = it->second;
    if (!rep_outcome.ObservablyEquals(outcome, obs)) {
      report.sound = false;
      SoundnessCounterexample cx;
      cx.input_a = rep_input;
      cx.input_b = Input(input.begin(), input.end());
      cx.outcome_a = rep_outcome;
      cx.outcome_b = outcome;
      report.counterexample = std::move(cx);
    }
  });

  report.policy_classes = representatives.size();
  return report;
}

}  // namespace secpol
