#include "src/mechanism/sweep.h"

namespace secpol {

SweepPlan SweepPlan::For(const CheckOptions& options, std::uint64_t grid_size) {
  SweepPlan plan;
  plan.threads = options.ResolvedThreads();
  // One shard is the serial reference scan: a single contiguous range
  // evaluated inline, no pool, immediate exception propagation.
  plan.num_shards = plan.threads <= 1 ? 1 : CheckOptions::ShardsFor(plan.threads, grid_size);
  return plan;
}

}  // namespace secpol
