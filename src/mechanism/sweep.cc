#include "src/mechanism/sweep.h"

namespace secpol {

SweepPlan SweepPlan::For(const CheckOptions& options, std::uint64_t grid_size) {
  SweepPlan plan;
  plan.threads = options.ResolvedThreads();
  // One shard is the serial reference scan: a single contiguous range
  // evaluated inline, no pool, immediate exception propagation.
  plan.num_shards = plan.threads <= 1 ? 1 : CheckOptions::ShardsFor(plan.threads, grid_size);
  return plan;
}

SweepPlan SweepPlan::ForClasses(const CheckOptions& options, std::uint64_t num_classes) {
  return For(options, num_classes);
}

void RecordSweepMetrics(const ObsContext& obs, const std::vector<ShardMeter>& meters,
                        const CheckProgress& progress, bool exception, bool out_of_domain) {
  if (!obs.enabled()) {
    return;
  }
  std::uint64_t polls = 0;
  std::uint64_t pruned_shards = 0;
  for (const ShardMeter& meter : meters) {
    polls += meter.gate.polls();
    pruned_shards += meter.pruned;
  }
  if (obs.metrics != nullptr) {
    MetricsRegistry& m = *obs.metrics;
    m.GetCounter("sweep.sweeps")->Add(1);
    m.GetCounter("sweep.points")->Add(progress.evaluated);
    m.GetCounter("sweep.shards")->Add(meters.size());
    m.GetCounter("sweep.polls")->Add(polls);
    m.GetCounter("sweep.pruned_shards")->Add(pruned_shards);
    if (progress.status == CheckStatus::kDeadlineExceeded) {
      m.GetCounter("sweep.deadline_stops")->Add(1);
    }
    if (progress.status == CheckStatus::kAborted && !exception) {
      m.GetCounter("sweep.cancel_stops")->Add(1);
    }
    if (exception) {
      m.GetCounter("sweep.exceptions")->Add(1);
    }
    if (out_of_domain) {
      m.GetCounter("sweep.out_of_domain")->Add(1);
    }
    Histogram* const shard_points = m.GetHistogram("sweep.shard_points");
    for (const ShardMeter& meter : meters) {
      shard_points->Record(meter.evaluated);
    }
  }
  if (obs.trace != nullptr) {
    for (std::size_t i = 0; i < meters.size(); ++i) {
      const ShardMeter& meter = meters[i];
      if (meter.first_visit_us < 0) {
        continue;
      }
      Json args = Json::MakeObject();
      args.Set("shard", Json::MakeInt(static_cast<std::int64_t>(i)));
      args.Set("points", Json::MakeInt(static_cast<std::int64_t>(meter.evaluated)));
      if (meter.pruned != 0) {
        args.Set("pruned", Json::MakeBool(true));
      }
      obs.trace->AddComplete("shard " + std::to_string(i), "sweep", meter.first_visit_us,
                             meter.last_visit_us - meter.first_visit_us, std::move(args));
    }
    if (progress.status == CheckStatus::kDeadlineExceeded) {
      obs.trace->AddInstant("deadline exceeded", "sweep");
    } else if (progress.status == CheckStatus::kAborted) {
      Json args = Json::MakeObject();
      args.Set("message", Json::MakeString(progress.message));
      obs.trace->AddInstant(exception ? "sweep exception" : "sweep cancelled", "sweep",
                            std::move(args));
    }
  }
}

}  // namespace secpol
