// Security policies (Section 2).
//
// "A security policy I for the program Q : D1 x ... x Dk -> E is a function
// from D1 x ... x Dk to Y where Y is a new set."
//
// A policy is an information filter: I(d) is everything the user is allowed
// to learn about the input d. Soundness of a mechanism M is the statement
// that M factors through I. Operationally (and this is how the soundness
// checker uses policies) two inputs with the same image must be
// indistinguishable through M.
//
// The paper's central family is allow(i1,...,im) — project onto the allowed
// coordinates — but the definition admits arbitrary filters; we also provide
// the content-dependent file-system policy of Example 2 and a
// history/budget-dependent policy as witnesses of that generality.

#ifndef SECPOL_SRC_POLICY_POLICY_H_
#define SECPOL_SRC_POLICY_POLICY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/util/fingerprint.h"
#include "src/util/value.h"
#include "src/util/var_set.h"

namespace secpol {

// The policy image I(d), encoded as a value tuple. Equality of images defines
// the policy's indistinguishability classes.
using PolicyImage = std::vector<Value>;

// One leaf of a policy's digest tree: the content hash of how the policy
// treats input coordinate `coordinate`.
struct CoordinateFingerprint {
  int coordinate = -1;
  Fingerprint digest;

  bool operator==(const CoordinateFingerprint& other) const {
    return coordinate == other.coordinate && digest == other.digest;
  }
};

// A compositional fingerprint of a policy, mirroring ProgramDigestTree: a
// skeleton digest plus one digest per input coordinate, combined into a
// root. Contract: if two policies' trees agree on the skeleton and on
// coordinate i's leaf, then the policies treat coordinate i identically —
// an edit that flips only those leaves can only affect equivalence classes
// through those coordinates. The base implementation is fail-closed: every
// leaf derives from the policy's whole flat fingerprint, so ANY change marks
// every coordinate changed. Policies whose structure is genuinely
// per-coordinate (AllowPolicy) override with precise leaves.
struct PolicyDigestTree {
  Fingerprint skeleton;
  std::vector<CoordinateFingerprint> coordinates;  // one per input coordinate
  Fingerprint root;
};

// Coordinates whose leaves differ between the trees (including coordinates
// present in only one, when arities differ). As with ChangedNodes, compare
// `skeleton` members separately.
std::vector<int> ChangedCoordinates(const PolicyDigestTree& a, const PolicyDigestTree& b);

class SecurityPolicy {
 public:
  virtual ~SecurityPolicy() = default;

  // Number of program inputs this policy filters.
  virtual int num_inputs() const = 0;

  // I(d1,...,dk).
  virtual PolicyImage Image(InputView input) const = 0;

  virtual std::string name() const = 0;

  // Canonical serialization hook for content addressing (the batch service's
  // check-result cache keys on it). Contract: two policies whose encodings
  // match must compute the same Image on every input. The base encoding is
  // the dynamic name() — sufficient for the policies here because each
  // name() spells out every behavioural parameter — but subclasses whose
  // name does NOT determine Image must override with a structured encoding.
  virtual void AppendFingerprint(Fingerprinter* fp) const;

  // The compositional digest tree (see PolicyDigestTree above). The base
  // builds the fail-closed tree from AppendFingerprint.
  virtual PolicyDigestTree DigestTree() const;
};

// allow(J): the user may learn exactly the coordinates in J.
// allow() (empty J) is "allow the user no information";
// allow(0..k-1) is "allow the user any information he wants".
class AllowPolicy : public SecurityPolicy {
 public:
  AllowPolicy(int num_inputs, VarSet allowed);

  static AllowPolicy AllowAll(int num_inputs);
  static AllowPolicy AllowNone(int num_inputs);

  // The allowed coordinate set J.
  VarSet allowed() const { return allowed_; }
  // The disallowed complement.
  VarSet denied() const;

  int num_inputs() const override { return num_inputs_; }
  PolicyImage Image(InputView input) const override;
  std::string name() const override;
  void AppendFingerprint(Fingerprinter* fp) const override;
  // Precise leaves: coordinate i's digest covers only whether i is in J, so
  // toggling one coordinate's permission changes exactly one leaf.
  PolicyDigestTree DigestTree() const override;

 private:
  int num_inputs_;
  VarSet allowed_;
};

// Example 2's file-system policy: inputs are k directories followed by k
// files; the user may always see every directory, and may see file i exactly
// when directory i grants access (its value equals `grant_value`).
//
//   I(d1..dk, f1..fk) = (d1..dk, f1'..fk'),  fi' = fi if di == grant else 0.
//
// Note this policy is NOT of the allow(...) form: which coordinates are
// filtered depends on the input itself.
class DirectoryGatedPolicy : public SecurityPolicy {
 public:
  DirectoryGatedPolicy(int num_files, Value grant_value);

  int num_files() const { return num_files_; }
  Value grant_value() const { return grant_value_; }

  int num_inputs() const override { return 2 * num_files_; }
  PolicyImage Image(InputView input) const override;
  std::string name() const override;
  void AppendFingerprint(Fingerprinter* fp) const override;

 private:
  int num_files_;
  Value grant_value_;
};

// A history-dependent policy in the single-shot encoding the paper sketches
// for data-base systems: the last input coordinate is a query budget b; the
// user may learn the first min(b, n) secret coordinates and the budget
// itself. ("Policies where what a user is permitted to view is dependent
// upon a history of the user's previous queries.")
class QueryBudgetPolicy : public SecurityPolicy {
 public:
  explicit QueryBudgetPolicy(int num_secrets);

  int num_inputs() const override { return num_secrets_ + 1; }
  PolicyImage Image(InputView input) const override;
  std::string name() const override;
  void AppendFingerprint(Fingerprinter* fp) const override;

 private:
  int num_secrets_;
};

}  // namespace secpol

#endif  // SECPOL_SRC_POLICY_POLICY_H_
