#include "src/policy/policy.h"

#include <algorithm>
#include <cassert>

namespace secpol {

void SecurityPolicy::AppendFingerprint(Fingerprinter* fp) const {
  fp->Tag("policy");
  fp->Str(name());
  fp->I32(num_inputs());
}

namespace {

// Combines a skeleton digest and per-coordinate leaves into a tree root.
PolicyDigestTree FinishPolicyTree(Fingerprint skeleton,
                                  std::vector<CoordinateFingerprint> coordinates) {
  PolicyDigestTree tree;
  tree.skeleton = skeleton;
  tree.coordinates = std::move(coordinates);
  Fingerprinter root;
  root.Tag("policy-tree");
  root.Nested(tree.skeleton);
  for (const CoordinateFingerprint& leaf : tree.coordinates) {
    root.Nested(leaf.digest);
  }
  tree.root = root.Digest();
  return tree;
}

}  // namespace

PolicyDigestTree SecurityPolicy::DigestTree() const {
  // Fail-closed: every leaf is derived from the whole flat fingerprint, so
  // any behavioural change marks every coordinate as changed.
  Fingerprinter whole;
  AppendFingerprint(&whole);
  const Fingerprint flat = whole.Digest();

  Fingerprinter skeleton;
  skeleton.Tag("policy-skeleton-opaque");
  skeleton.Nested(flat);
  skeleton.I32(num_inputs());

  std::vector<CoordinateFingerprint> coordinates;
  coordinates.reserve(static_cast<size_t>(num_inputs()));
  for (int i = 0; i < num_inputs(); ++i) {
    Fingerprinter leaf;
    leaf.Tag("policy-coord-opaque");
    leaf.I32(i);
    leaf.Nested(flat);
    coordinates.push_back(CoordinateFingerprint{i, leaf.Digest()});
  }
  return FinishPolicyTree(skeleton.Digest(), std::move(coordinates));
}

std::vector<int> ChangedCoordinates(const PolicyDigestTree& a, const PolicyDigestTree& b) {
  std::vector<int> changed;
  const size_t common = std::min(a.coordinates.size(), b.coordinates.size());
  for (size_t i = 0; i < common; ++i) {
    if (!(a.coordinates[i] == b.coordinates[i])) {
      changed.push_back(static_cast<int>(i));
    }
  }
  for (size_t i = common; i < std::max(a.coordinates.size(), b.coordinates.size()); ++i) {
    changed.push_back(static_cast<int>(i));
  }
  return changed;
}

AllowPolicy::AllowPolicy(int num_inputs, VarSet allowed)
    : num_inputs_(num_inputs), allowed_(allowed) {
  assert(allowed.SubsetOf(VarSet::FirstN(num_inputs)));
}

AllowPolicy AllowPolicy::AllowAll(int num_inputs) {
  return AllowPolicy(num_inputs, VarSet::FirstN(num_inputs));
}

AllowPolicy AllowPolicy::AllowNone(int num_inputs) {
  return AllowPolicy(num_inputs, VarSet::Empty());
}

VarSet AllowPolicy::denied() const { return VarSet::FirstN(num_inputs_).Minus(allowed_); }

PolicyImage AllowPolicy::Image(InputView input) const {
  assert(static_cast<int>(input.size()) == num_inputs_);
  PolicyImage image;
  image.reserve(static_cast<size_t>(allowed_.size()));
  for (int i = 0; i < num_inputs_; ++i) {
    if (allowed_.Contains(i)) {
      image.push_back(input[i]);
    }
  }
  return image;
}

std::string AllowPolicy::name() const {
  std::string out = "allow(";
  bool first = true;
  for (int i = 0; i < num_inputs_; ++i) {
    if (allowed_.Contains(i)) {
      if (!first) {
        out += ",";
      }
      out += std::to_string(i);
      first = false;
    }
  }
  out += ")";
  return out;
}

void AllowPolicy::AppendFingerprint(Fingerprinter* fp) const {
  fp->Tag("allow-policy");
  fp->I32(num_inputs_);
  fp->U64(allowed_.bits());
}

PolicyDigestTree AllowPolicy::DigestTree() const {
  Fingerprinter skeleton;
  skeleton.Tag("allow-policy-skeleton");
  skeleton.I32(num_inputs_);

  std::vector<CoordinateFingerprint> coordinates;
  coordinates.reserve(static_cast<size_t>(num_inputs_));
  for (int i = 0; i < num_inputs_; ++i) {
    Fingerprinter leaf;
    leaf.Tag("allow-policy-coord");
    leaf.I32(i);
    leaf.Bool(allowed_.Contains(i));
    coordinates.push_back(CoordinateFingerprint{i, leaf.Digest()});
  }
  return FinishPolicyTree(skeleton.Digest(), std::move(coordinates));
}

DirectoryGatedPolicy::DirectoryGatedPolicy(int num_files, Value grant_value)
    : num_files_(num_files), grant_value_(grant_value) {}

PolicyImage DirectoryGatedPolicy::Image(InputView input) const {
  assert(static_cast<int>(input.size()) == num_inputs());
  PolicyImage image(input.begin(), input.begin() + num_files_);
  for (int i = 0; i < num_files_; ++i) {
    const bool granted = input[i] == grant_value_;
    image.push_back(granted ? input[num_files_ + i] : 0);
  }
  return image;
}

std::string DirectoryGatedPolicy::name() const {
  return "directory-gated(" + std::to_string(num_files_) + " files)";
}

void DirectoryGatedPolicy::AppendFingerprint(Fingerprinter* fp) const {
  fp->Tag("directory-gated-policy");
  fp->I32(num_files_);
  fp->I64(grant_value_);
}

QueryBudgetPolicy::QueryBudgetPolicy(int num_secrets) : num_secrets_(num_secrets) {}

PolicyImage QueryBudgetPolicy::Image(InputView input) const {
  assert(static_cast<int>(input.size()) == num_inputs());
  const Value budget = input[num_secrets_];
  const int visible =
      static_cast<int>(std::clamp<Value>(budget, 0, static_cast<Value>(num_secrets_)));
  PolicyImage image;
  for (int i = 0; i < visible; ++i) {
    image.push_back(input[i]);
  }
  for (int i = visible; i < num_secrets_; ++i) {
    image.push_back(0);
  }
  image.push_back(budget);
  return image;
}

std::string QueryBudgetPolicy::name() const {
  return "query-budget(" + std::to_string(num_secrets_) + " secrets)";
}

void QueryBudgetPolicy::AppendFingerprint(Fingerprinter* fp) const {
  fp->Tag("query-budget-policy");
  fp->I32(num_secrets_);
}

}  // namespace secpol
