// Policy algebra: combining information filters.
//
// The paper notes its policy definition "does admit arbitrarily complex
// policies"; once policies are first-class it is natural to combine and
// compare them. The comparison predicate RevealsAtMost lives in
// src/mechanism/policy_compare.h (it needs a finite domain to quantify
// over); the composite policies live here.

#ifndef SECPOL_SRC_POLICY_REFINEMENT_H_
#define SECPOL_SRC_POLICY_REFINEMENT_H_

#include <memory>
#include <string>

#include "src/policy/policy.h"

namespace secpol {

// The common refinement of two filters: image = (p image, q image). Its
// indistinguishability classes are the pairwise intersections of p's and
// q's classes, so it reveals what EITHER constituent reveals; a mechanism
// sound for p or for q alone is automatically sound for the product.
class ProductPolicy : public SecurityPolicy {
 public:
  ProductPolicy(std::shared_ptr<const SecurityPolicy> p,
                std::shared_ptr<const SecurityPolicy> q);

  int num_inputs() const override;
  PolicyImage Image(InputView input) const override;
  std::string name() const override;
  // Composes the members' structured encodings (a name-based default would
  // be sound only if both members' names determine their images).
  void AppendFingerprint(Fingerprinter* fp) const override;

 private:
  std::shared_ptr<const SecurityPolicy> p_;
  std::shared_ptr<const SecurityPolicy> q_;
};

// A policy well beyond the allow(...) family: reveal only the SUM of all
// inputs — the aggregate may be published, the components may not. No
// label-based mechanism in this library can enforce it non-trivially
// (labels cannot express "only the sum is clean"), but the finite maximal
// synthesizer of Theorem 2 handles it like any other filter; the tests use
// it to demonstrate the generality of both definitions.
class AggregateSumPolicy : public SecurityPolicy {
 public:
  explicit AggregateSumPolicy(int num_inputs);

  int num_inputs() const override { return num_inputs_; }
  PolicyImage Image(InputView input) const override;
  std::string name() const override;

 private:
  int num_inputs_;
};

}  // namespace secpol

#endif  // SECPOL_SRC_POLICY_REFINEMENT_H_
