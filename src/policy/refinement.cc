#include "src/policy/refinement.h"

#include <cassert>

namespace secpol {

ProductPolicy::ProductPolicy(std::shared_ptr<const SecurityPolicy> p,
                             std::shared_ptr<const SecurityPolicy> q)
    : p_(std::move(p)), q_(std::move(q)) {
  assert(p_->num_inputs() == q_->num_inputs());
}

int ProductPolicy::num_inputs() const { return p_->num_inputs(); }

PolicyImage ProductPolicy::Image(InputView input) const {
  PolicyImage image = p_->Image(input);
  // A length marker keeps (a,bc) and (ab,c) images distinct.
  image.push_back(static_cast<Value>(image.size()));
  for (Value v : q_->Image(input)) {
    image.push_back(v);
  }
  return image;
}

std::string ProductPolicy::name() const {
  // Built by append: GCC 12's -Wrestrict false-fires on the equivalent
  // char* + std::string chain when inlined at -O3 (PR 105651).
  std::string name = "(";
  name += p_->name();
  name += " * ";
  name += q_->name();
  name += ")";
  return name;
}

void ProductPolicy::AppendFingerprint(Fingerprinter* fp) const {
  fp->Tag("product-policy");
  p_->AppendFingerprint(fp);
  q_->AppendFingerprint(fp);
}

AggregateSumPolicy::AggregateSumPolicy(int num_inputs) : num_inputs_(num_inputs) {}

PolicyImage AggregateSumPolicy::Image(InputView input) const {
  assert(static_cast<int>(input.size()) == num_inputs_);
  Value sum = 0;
  for (Value v : input) {
    sum += v;
  }
  return {sum};
}

std::string AggregateSumPolicy::name() const {
  return "aggregate-sum(" + std::to_string(num_inputs_) + ")";
}

}  // namespace secpol
