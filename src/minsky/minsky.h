// Minsky register machines (Example 1's computation model).
//
// "The value Q(d1,...,dk) is the value obtained by the computation of some
// given Minsky-machine that was started with its ith register containing
// di." The machine has non-negative integer registers and two operations:
// increment, and decrement-or-jump-if-zero. This is the substrate on which
// Fenton's data-mark machine (data_mark.h) runs.

#ifndef SECPOL_SRC_MINSKY_MINSKY_H_
#define SECPOL_SRC_MINSKY_MINSKY_H_

#include <string>
#include <vector>

#include "src/util/value.h"

namespace secpol {

struct MinskyInst {
  enum class Op {
    kInc,          // reg += 1; fall through
    kDecJz,        // if reg == 0 jump to target, else reg -= 1 and fall through
    kJmp,          // unconditional jump to target
    kHalt,         // stop; the output register holds the result
    kGuardedHalt,  // Fenton's "if P = null then halt" — semantics are chosen
                   // by the data-mark machine; the plain machine treats it
                   // as kHalt
  };

  Op op = Op::kHalt;
  int reg = -1;     // kInc, kDecJz
  int target = -1;  // kDecJz, kJmp

  static MinskyInst Inc(int reg);
  static MinskyInst DecJz(int reg, int target);
  static MinskyInst Jmp(int target);
  static MinskyInst Halt();
  static MinskyInst GuardedHalt();
};

struct MinskyProgram {
  std::string name;
  int num_registers = 0;
  // Registers [0, num_inputs) are initialized from the input tuple; the rest
  // start at 0.
  int num_inputs = 0;
  // The register whose value is the program's output.
  int output_reg = 0;
  std::vector<MinskyInst> code;

  // Structural validation: register/target ranges.
  bool Valid() const;
  std::string ToString() const;
};

struct MinskyResult {
  Value output = 0;
  StepCount steps = 0;
  bool halted = false;         // false: fuel exhausted
  bool fell_off_end = false;   // control ran past the last instruction
};

inline constexpr StepCount kMinskyDefaultFuel = 1u << 20;

// Plain (unprotected) execution; negative inputs are clamped to 0 (Minsky
// registers are naturals).
MinskyResult RunMinsky(const MinskyProgram& program, InputView input,
                       StepCount fuel = kMinskyDefaultFuel);

// --- A small library of machines, used by tests and examples ---

// r0 = r0 + r1 (destroys r1).
MinskyProgram MakeAddProgram();
// r0 = r1 (destroys r1).
MinskyProgram MakeMoveProgram();
// r0 = 1 if r0 == 0 else 0.
MinskyProgram MakeIsZeroProgram();
// r0 = min(r0, r1).
MinskyProgram MakeMinProgram();

}  // namespace secpol

#endif  // SECPOL_SRC_MINSKY_MINSKY_H_
