// Fenton's data-mark machine (Example 1).
//
// Each register carries a security attribute, null or priv ("the latter
// indicating that the register possibly contains privileged information"),
// and so does the program counter P. Testing a priv register marks P priv;
// writing under a priv P marks the written register priv. The machine's
// output is released only when the output register's mark is null.
//
// The paper's Example 1 (continued) observes that Fenton's halt statement
//     if P = null then halt
// is "not completely defined" when P = priv, and that one reasonable
// interpretation — emit an error message — is UNSOUND, because "a program
// can be written that will output an error message if and only if x = 0"
// (negative inference). This module implements all the candidate semantics
// so the soundness checker can adjudicate:
//
//   kSkipWhenPriv  — the guarded halt is a no-op when P = priv; if it was
//                    the last statement, execution "falls off the end",
//                    which the paper notes is undefined (we surface it as a
//                    distinct violation notice).
//   kErrorWhenPriv — the guarded halt emits a violation notice when
//                    P = priv. This is the unsound interpretation.
//
// Orthogonally, `check_pc_at_halt` decides whether a plain HALT releases the
// output when P = priv but the output register is null-marked. Fenton's
// original machine releases it (the output mark alone is consulted); the
// repaired machine joins P into the release decision, which is what makes
// the construction sound (it is the Minsky-machine twin of the flowchart
// halt rule y-bar u C-bar subset-of J).

#ifndef SECPOL_SRC_MINSKY_DATA_MARK_H_
#define SECPOL_SRC_MINSKY_DATA_MARK_H_

#include <memory>
#include <string>
#include <vector>

#include "src/mechanism/mechanism.h"
#include "src/minsky/minsky.h"
#include "src/util/var_set.h"

namespace secpol {

enum class GuardedHaltSemantics {
  kSkipWhenPriv,
  kErrorWhenPriv,
};

std::string GuardedHaltSemanticsName(GuardedHaltSemantics semantics);

struct DataMarkConfig {
  // Registers initially marked priv (typically the secret inputs).
  VarSet priv_registers;
  GuardedHaltSemantics guarded_halt = GuardedHaltSemantics::kSkipWhenPriv;
  // Join P into the release decision at plain HALT (the repaired machine).
  bool check_pc_at_halt = false;
  StepCount fuel = kMinskyDefaultFuel;
};

class DataMarkMachine : public ProtectionMechanism {
 public:
  DataMarkMachine(MinskyProgram program, DataMarkConfig config);

  int num_inputs() const override { return program_.num_inputs; }
  Outcome Run(InputView input) const override;
  std::string name() const override;

  const MinskyProgram& program() const { return program_; }

 private:
  MinskyProgram program_;
  DataMarkConfig config_;
};

// The Example 1 witness: under kErrorWhenPriv this machine emits the error
// notice iff its (priv) input register x is 0, and returns the value 0
// otherwise — leaking whether x == 0 through the notice itself.
// Register 0 is the priv input x; register 1 is the (null) output.
MinskyProgram MakeNegativeInferenceWitness();

}  // namespace secpol

#endif  // SECPOL_SRC_MINSKY_DATA_MARK_H_
