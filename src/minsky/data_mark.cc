#include "src/minsky/data_mark.h"

#include <cassert>

namespace secpol {

std::string GuardedHaltSemanticsName(GuardedHaltSemantics semantics) {
  switch (semantics) {
    case GuardedHaltSemantics::kSkipWhenPriv:
      return "skip-when-priv";
    case GuardedHaltSemantics::kErrorWhenPriv:
      return "error-when-priv";
  }
  return "?";
}

DataMarkMachine::DataMarkMachine(MinskyProgram program, DataMarkConfig config)
    : program_(std::move(program)), config_(config) {
  assert(program_.Valid());
}

std::string DataMarkMachine::name() const {
  return "data-mark[" + GuardedHaltSemanticsName(config_.guarded_halt) +
         (config_.check_pc_at_halt ? ",pc-checked" : "") + "](" + program_.name + ")";
}

Outcome DataMarkMachine::Run(InputView input) const {
  std::vector<Value> regs(static_cast<size_t>(program_.num_registers), 0);
  std::vector<bool> priv(static_cast<size_t>(program_.num_registers), false);
  for (int i = 0; i < program_.num_inputs && i < static_cast<int>(input.size()); ++i) {
    regs[i] = input[i] < 0 ? 0 : input[i];
  }
  for (int r = 0; r < program_.num_registers; ++r) {
    priv[r] = config_.priv_registers.Contains(r);
  }
  bool pc_priv = false;

  StepCount steps = 0;
  int pc = 0;
  while (steps < config_.fuel) {
    if (pc >= static_cast<int>(program_.code.size())) {
      // "The semantics of the halt statement are undefined in case the halt
      // statement is the last program statement" — surfaced as its own
      // notice so experiments can observe the gap.
      return Outcome::Violation(steps, "undefined: control ran past program end");
    }
    ++steps;
    const MinskyInst& inst = program_.code[pc];
    switch (inst.op) {
      case MinskyInst::Op::kInc:
        // Writing under a priv program counter marks the register priv.
        priv[inst.reg] = priv[inst.reg] || pc_priv;
        ++regs[inst.reg];
        ++pc;
        break;
      case MinskyInst::Op::kDecJz:
        // Testing a priv register marks the program counter priv.
        pc_priv = pc_priv || priv[inst.reg];
        if (regs[inst.reg] == 0) {
          pc = inst.target;
        } else {
          priv[inst.reg] = priv[inst.reg] || pc_priv;
          --regs[inst.reg];
          ++pc;
        }
        break;
      case MinskyInst::Op::kJmp:
        pc = inst.target;
        break;
      case MinskyInst::Op::kGuardedHalt:
        if (!pc_priv) {
          // "if P = null then halt" — release path below.
          const bool out_priv = priv[program_.output_reg];
          if (out_priv) {
            return Outcome::Violation(steps, "output register marked priv");
          }
          return Outcome::Val(regs[program_.output_reg], steps);
        }
        switch (config_.guarded_halt) {
          case GuardedHaltSemantics::kSkipWhenPriv:
            ++pc;  // treat as a no-op and proceed
            break;
          case GuardedHaltSemantics::kErrorWhenPriv:
            // The unsound interpretation: the notice itself becomes a
            // channel (negative inference).
            return Outcome::Violation(steps, "halt suppressed: P = priv");
        }
        break;
      case MinskyInst::Op::kHalt: {
        const bool blocked =
            priv[program_.output_reg] || (config_.check_pc_at_halt && pc_priv);
        if (blocked) {
          return Outcome::Violation(steps, "output register marked priv");
        }
        return Outcome::Val(regs[program_.output_reg], steps);
      }
    }
  }
  return Outcome::Violation(steps, "fuel exhausted");
}

MinskyProgram MakeNegativeInferenceWitness() {
  MinskyProgram p;
  p.name = "negative_inference";
  p.num_registers = 2;
  p.num_inputs = 1;   // register 0 = x, the priv input
  p.output_reg = 1;   // register 1 stays 0 and null-marked
  p.code = {
      MinskyInst::DecJz(0, 2),   // 0: x == 0 -> guarded halt; P becomes priv
      MinskyInst::Jmp(3),        // 1: x != 0 -> plain halt
      MinskyInst::GuardedHalt(), // 2: P = priv here on every path
      MinskyInst::Halt(),        // 3: releases r1 = 0 (null mark)
  };
  return p;
}

}  // namespace secpol
