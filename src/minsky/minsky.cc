#include "src/minsky/minsky.h"

namespace secpol {

MinskyInst MinskyInst::Inc(int reg) {
  MinskyInst inst;
  inst.op = Op::kInc;
  inst.reg = reg;
  return inst;
}

MinskyInst MinskyInst::DecJz(int reg, int target) {
  MinskyInst inst;
  inst.op = Op::kDecJz;
  inst.reg = reg;
  inst.target = target;
  return inst;
}

MinskyInst MinskyInst::Jmp(int target) {
  MinskyInst inst;
  inst.op = Op::kJmp;
  inst.target = target;
  return inst;
}

MinskyInst MinskyInst::Halt() {
  MinskyInst inst;
  inst.op = Op::kHalt;
  return inst;
}

MinskyInst MinskyInst::GuardedHalt() {
  MinskyInst inst;
  inst.op = Op::kGuardedHalt;
  return inst;
}

bool MinskyProgram::Valid() const {
  if (num_inputs > num_registers || output_reg < 0 || output_reg >= num_registers) {
    return false;
  }
  for (const MinskyInst& inst : code) {
    switch (inst.op) {
      case MinskyInst::Op::kInc:
        if (inst.reg < 0 || inst.reg >= num_registers) {
          return false;
        }
        break;
      case MinskyInst::Op::kDecJz:
        if (inst.reg < 0 || inst.reg >= num_registers || inst.target < 0 ||
            inst.target > static_cast<int>(code.size())) {
          return false;
        }
        break;
      case MinskyInst::Op::kJmp:
        if (inst.target < 0 || inst.target > static_cast<int>(code.size())) {
          return false;
        }
        break;
      case MinskyInst::Op::kHalt:
      case MinskyInst::Op::kGuardedHalt:
        break;
    }
  }
  return true;
}

std::string MinskyProgram::ToString() const {
  std::string out = "minsky " + name + " (" + std::to_string(num_registers) + " regs)\n";
  for (size_t i = 0; i < code.size(); ++i) {
    const MinskyInst& inst = code[i];
    out += "  " + std::to_string(i) + ": ";
    switch (inst.op) {
      case MinskyInst::Op::kInc:
        out += "INC r" + std::to_string(inst.reg);
        break;
      case MinskyInst::Op::kDecJz:
        out += "DECJZ r" + std::to_string(inst.reg) + ", " + std::to_string(inst.target);
        break;
      case MinskyInst::Op::kJmp:
        out += "JMP " + std::to_string(inst.target);
        break;
      case MinskyInst::Op::kHalt:
        out += "HALT";
        break;
      case MinskyInst::Op::kGuardedHalt:
        out += "IF P = null THEN HALT";
        break;
    }
    out += "\n";
  }
  return out;
}

MinskyResult RunMinsky(const MinskyProgram& program, InputView input, StepCount fuel) {
  std::vector<Value> regs(static_cast<size_t>(program.num_registers), 0);
  for (int i = 0; i < program.num_inputs && i < static_cast<int>(input.size()); ++i) {
    regs[i] = input[i] < 0 ? 0 : input[i];
  }
  MinskyResult result;
  int pc = 0;
  while (result.steps < fuel) {
    if (pc >= static_cast<int>(program.code.size())) {
      result.fell_off_end = true;
      result.halted = true;
      result.output = regs[program.output_reg];
      return result;
    }
    ++result.steps;
    const MinskyInst& inst = program.code[pc];
    switch (inst.op) {
      case MinskyInst::Op::kInc:
        ++regs[inst.reg];
        ++pc;
        break;
      case MinskyInst::Op::kDecJz:
        if (regs[inst.reg] == 0) {
          pc = inst.target;
        } else {
          --regs[inst.reg];
          ++pc;
        }
        break;
      case MinskyInst::Op::kJmp:
        pc = inst.target;
        break;
      case MinskyInst::Op::kHalt:
      case MinskyInst::Op::kGuardedHalt:
        result.halted = true;
        result.output = regs[program.output_reg];
        return result;
    }
  }
  return result;
}

MinskyProgram MakeAddProgram() {
  MinskyProgram p;
  p.name = "add";
  p.num_registers = 2;
  p.num_inputs = 2;
  p.code = {
      MinskyInst::DecJz(1, 3),
      MinskyInst::Inc(0),
      MinskyInst::Jmp(0),
      MinskyInst::Halt(),
  };
  return p;
}

MinskyProgram MakeMoveProgram() {
  MinskyProgram p;
  p.name = "move";
  p.num_registers = 2;
  p.num_inputs = 2;
  p.code = {
      MinskyInst::DecJz(0, 2),
      MinskyInst::Jmp(0),
      MinskyInst::DecJz(1, 5),
      MinskyInst::Inc(0),
      MinskyInst::Jmp(2),
      MinskyInst::Halt(),
  };
  return p;
}

MinskyProgram MakeIsZeroProgram() {
  MinskyProgram p;
  p.name = "is_zero";
  p.num_registers = 1;
  p.num_inputs = 1;
  p.code = {
      MinskyInst::DecJz(0, 4),
      MinskyInst::DecJz(0, 3),
      MinskyInst::Jmp(1),
      MinskyInst::Halt(),
      MinskyInst::Inc(0),
      MinskyInst::Halt(),
  };
  return p;
}

MinskyProgram MakeMinProgram() {
  MinskyProgram p;
  p.name = "min";
  p.num_registers = 3;
  p.num_inputs = 2;
  p.code = {
      MinskyInst::DecJz(0, 6),  // 0: r0 == 0 -> move result
      MinskyInst::DecJz(1, 4),  // 1: r1 == 0 -> zero r0 first
      MinskyInst::Inc(2),       // 2
      MinskyInst::Jmp(0),       // 3
      MinskyInst::DecJz(0, 6),  // 4: drain r0
      MinskyInst::Jmp(4),       // 5
      MinskyInst::DecJz(2, 9),  // 6: move r2 -> r0
      MinskyInst::Inc(0),       // 7
      MinskyInst::Jmp(6),       // 8
      MinskyInst::Halt(),       // 9
  };
  return p;
}

}  // namespace secpol
