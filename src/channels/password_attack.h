// The page-boundary password attack (Section 2) versus brute force.
//
// A password checker compares a guess to the secret character by character
// and stops at the first mismatch — the classic early-exit comparison. The
// checker itself never reveals more than accept/reject, and its running time
// is hidden; but it *touches guess memory* as it compares. An attacker who
// places the guess across a page boundary and watches which pages fault
// learns how far the comparison got, turning the n^k search into n*k.

#ifndef SECPOL_SRC_CHANNELS_PASSWORD_ATTACK_H_
#define SECPOL_SRC_CHANNELS_PASSWORD_ATTACK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/channels/paging.h"

namespace secpol {

// The victim: holds the secret and checks guesses through paged memory.
class PasswordChecker {
 public:
  // secret: k symbols, each in [0, alphabet).
  PasswordChecker(std::vector<int> secret, int alphabet);

  int length() const { return static_cast<int>(secret_.size()); }
  int alphabet() const { return alphabet_; }

  // Compares guess (laid out in `memory` starting at `guess_base`) against
  // the secret, touching guess memory cell by cell and stopping at the first
  // mismatch. Returns true iff the guess is correct. Increments the attempt
  // counter.
  bool Check(const std::vector<int>& guess, PagedMemory& memory, std::uint64_t guess_base);

  std::uint64_t attempts() const { return attempts_; }

 private:
  std::vector<int> secret_;
  int alphabet_;
  std::uint64_t attempts_ = 0;
};

struct AttackResult {
  bool found = false;
  std::vector<int> recovered;
  std::uint64_t guesses = 0;  // oracle calls used
};

// Exhaustive search in lexicographic order; worst case n^k oracle calls.
// `max_guesses` aborts hopeless runs (returns found=false).
AttackResult BruteForceAttack(PasswordChecker& checker, std::uint64_t max_guesses);

// The page-boundary attack: for each position, each candidate symbol is
// probed with the *next* position placed on a freshly flushed page; if that
// page faults, the comparison advanced past the candidate, so the candidate
// is correct. At most n probes per position — n*k total.
AttackResult PageBoundaryAttack(PasswordChecker& checker);

}  // namespace secpol

#endif  // SECPOL_SRC_CHANNELS_PASSWORD_ATTACK_H_
