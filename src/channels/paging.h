// A miniature demand-paging simulator.
//
// Section 2's closing war story: "user passwords consist of exactly K
// characters ... the work factor can be reduced to n * K by appropriately
// placing candidate passwords across page boundaries and observing page
// movement resulting from 'guessing' password values." Observing page
// movement needs nothing more than: pages fault the first time they are
// touched, and faults are countable. This simulator provides exactly that.

#ifndef SECPOL_SRC_CHANNELS_PAGING_H_
#define SECPOL_SRC_CHANNELS_PAGING_H_

#include <cstdint>
#include <set>
#include <vector>

#include "src/util/value.h"

namespace secpol {

class PagedMemory {
 public:
  explicit PagedMemory(std::uint64_t page_size);

  std::uint64_t page_size() const { return page_size_; }
  std::uint64_t PageOf(std::uint64_t address) const { return address / page_size_; }

  // Touches `address`; a fault is recorded if its page is not resident, and
  // the page becomes resident.
  void Access(std::uint64_t address);

  bool Resident(std::uint64_t page) const { return resident_.count(page) > 0; }
  std::uint64_t faults() const { return faults_; }

  // Evicts every page (the attacker's reset between probes).
  void FlushAll();

 private:
  std::uint64_t page_size_;
  std::set<std::uint64_t> resident_;
  std::uint64_t faults_ = 0;
};

}  // namespace secpol

#endif  // SECPOL_SRC_CHANNELS_PAGING_H_
