#include "src/channels/timing.h"

#include <cmath>
#include <map>
#include <set>
#include <tuple>

#include "src/util/strings.h"

namespace secpol {

std::string LeakReport::ToString() const {
  return "leak: max " + FormatDouble(max_leak_bits, 3) + " bits/run (" +
         std::to_string(max_distinct_outcomes) + " distinguishable outcomes; " +
         std::to_string(leaky_classes) + "/" + std::to_string(policy_classes) +
         " classes leaky)";
}

LeakReport MeasureLeak(const ProtectionMechanism& mechanism, const SecurityPolicy& policy,
                       const InputDomain& domain, Observability obs) {
  // Observable signature: (kind, value-if-any, steps-if-observable).
  using Signature = std::tuple<int, Value, StepCount>;
  std::map<PolicyImage, std::set<Signature>> classes;

  domain.ForEach([&](InputView input) {
    const Outcome outcome = mechanism.Run(input);
    Signature sig{outcome.IsValue() ? 1 : 0, outcome.IsValue() ? outcome.value : 0,
                  obs == Observability::kValueAndTime ? outcome.steps : 0};
    classes[policy.Image(input)].insert(sig);
  });

  LeakReport report;
  report.policy_classes = classes.size();
  for (const auto& [image, signatures] : classes) {
    (void)image;
    report.max_distinct_outcomes =
        std::max<std::uint64_t>(report.max_distinct_outcomes, signatures.size());
    if (signatures.size() > 1) {
      ++report.leaky_classes;
    }
  }
  if (report.max_distinct_outcomes > 0) {
    report.max_leak_bits = std::log2(static_cast<double>(report.max_distinct_outcomes));
  }
  return report;
}

}  // namespace secpol
