#include "src/channels/timing.h"

#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "src/mechanism/outcome_table.h"
#include "src/mechanism/sweep.h"
#include "src/util/strings.h"

namespace secpol {

std::string LeakReport::ToString() const {
  std::string out = "leak: max " + FormatDouble(max_leak_bits, 3) + " bits/run (" +
                    std::to_string(max_distinct_outcomes) + " distinguishable outcomes; " +
                    std::to_string(leaky_classes) + "/" + std::to_string(policy_classes) +
                    " classes leaky)";
  if (!progress.complete()) {
    out += " [lower bound; " + progress.ToString() + "]";
  }
  return out;
}

namespace {

// Observable signature: (kind, value-if-any, steps-if-observable).
using Signature = std::tuple<int, Value, StepCount>;

struct LeakPoint {
  PolicyImage image;
  Outcome outcome;
};

// The leak reducer: per-class signature sets, merged by set union — order
// independent, so shard structure cannot affect the report.
template <typename EvalFn>
LeakReport MeasureLeakImpl(const InputDomain& domain, Observability obs,
                           const CheckOptions& options, const EvalFn& eval) {
  const auto signature_of = [obs](const Outcome& outcome) {
    return Signature{outcome.IsValue() ? 1 : 0, outcome.IsValue() ? outcome.value : 0,
                     obs == Observability::kValueAndTime ? outcome.steps : 0};
  };

  LeakReport report;
  const std::uint64_t grid = domain.size();
  const SweepPlan plan = SweepPlan::For(options, grid);
  std::vector<std::map<PolicyImage, std::set<Signature>>> partials(plan.num_shards);

  report.progress = SweepGrid(
      domain, options, plan, [&](std::uint64_t shard, std::uint64_t rank, InputView input) {
        LeakPoint point = eval(rank, input);
        partials[shard][std::move(point.image)].insert(signature_of(point.outcome));
        return true;
      });

  std::map<PolicyImage, std::set<Signature>> classes;
  for (auto& shard : partials) {
    for (auto& [image, signatures] : shard) {
      classes[image].insert(signatures.begin(), signatures.end());
    }
  }
  report.policy_classes = classes.size();
  for (const auto& [image, signatures] : classes) {
    (void)image;
    report.max_distinct_outcomes =
        std::max<std::uint64_t>(report.max_distinct_outcomes, signatures.size());
    if (signatures.size() > 1) {
      ++report.leaky_classes;
    }
  }
  if (report.max_distinct_outcomes > 0) {
    report.max_leak_bits = std::log2(static_cast<double>(report.max_distinct_outcomes));
  }
  return report;
}

}  // namespace

LeakReport MeasureLeak(const ProtectionMechanism& mechanism, const SecurityPolicy& policy,
                       const InputDomain& domain, Observability obs,
                       const CheckOptions& options) {
  CheckScope scope(options.obs, "leak");
  LeakReport report = MeasureLeakImpl(domain, obs, options, [&](std::uint64_t, InputView input) {
    // Braced initialization fixes the evaluation order: the policy image
    // before the mechanism run, so an aborted run leaves the faulting
    // point's class unrecorded under either order of the historical
    // (indeterminately sequenced) formulation.
    return LeakPoint{policy.Image(input), mechanism.Run(input)};
  });
  scope.SetPoints(report.progress.evaluated);
  return report;
}

LeakReport MeasureLeak(const OutcomeTable& table, Observability obs,
                       const CheckOptions& options) {
  CheckScope scope(options.obs, "leak");
  LeakReport report =
      MeasureLeakImpl(table.domain(), obs, options, [&](std::uint64_t rank, InputView) {
        return LeakPoint{table.image(rank), table.outcome(rank)};
      });
  scope.SetPoints(report.progress.evaluated);
  return report;
}

}  // namespace secpol
