#include "src/channels/timing.h"

#include <cmath>
#include <exception>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "src/util/strings.h"

namespace secpol {

std::string LeakReport::ToString() const {
  std::string out = "leak: max " + FormatDouble(max_leak_bits, 3) + " bits/run (" +
                    std::to_string(max_distinct_outcomes) + " distinguishable outcomes; " +
                    std::to_string(leaky_classes) + "/" + std::to_string(policy_classes) +
                    " classes leaky)";
  if (!progress.complete()) {
    out += " [lower bound; " + progress.ToString() + "]";
  }
  return out;
}

LeakReport MeasureLeak(const ProtectionMechanism& mechanism, const SecurityPolicy& policy,
                       const InputDomain& domain, Observability obs,
                       const CheckOptions& options) {
  // Observable signature: (kind, value-if-any, steps-if-observable).
  using Signature = std::tuple<int, Value, StepCount>;
  std::map<PolicyImage, std::set<Signature>> classes;

  const auto signature_of = [obs](const Outcome& outcome) {
    return Signature{outcome.IsValue() ? 1 : 0, outcome.IsValue() ? outcome.value : 0,
                     obs == Observability::kValueAndTime ? outcome.steps : 0};
  };

  LeakReport report;
  const std::uint64_t grid = domain.size();
  report.progress.total = grid;

  const int threads = options.ResolvedThreads();
  if (threads <= 1) {
    std::vector<ShardMeter> meters(1, ShardMeter(options));
    ShardMeter& meter = meters.front();
    try {
      domain.ForEachRange(0, grid, [&](std::uint64_t rank, InputView input) {
        (void)rank;
        if (meter.gate.ShouldStop()) {
          return false;
        }
        ++meter.evaluated;
        classes[policy.Image(input)].insert(signature_of(mechanism.Run(input)));
        return true;
      });
      MergeMeters(meters, &report.progress);
    } catch (const std::exception& e) {
      MergeMeters(meters, &report.progress);
      AbortProgress(&report.progress, e.what());
    } catch (...) {
      MergeMeters(meters, &report.progress);
      AbortProgress(&report.progress, "unknown error");
    }
  } else {
    const std::uint64_t num_shards = CheckOptions::ShardsFor(threads, grid);
    std::vector<std::map<PolicyImage, std::set<Signature>>> partials(num_shards);
    CancelToken drain;
    std::vector<ShardMeter> meters(num_shards, ShardMeter(options, drain));
    try {
      domain.ParallelForEach(
          num_shards,
          [&](std::uint64_t shard, std::uint64_t rank, InputView input) -> bool {
            (void)rank;
            ShardMeter& meter = meters[shard];
            if (meter.gate.ShouldStop()) {
              return false;
            }
            ++meter.evaluated;
            partials[shard][policy.Image(input)].insert(signature_of(mechanism.Run(input)));
            return true;
          },
          threads, &drain);
      MergeMeters(meters, &report.progress);
    } catch (const std::exception& e) {
      MergeMeters(meters, &report.progress);
      AbortProgress(&report.progress, e.what());
    } catch (...) {
      MergeMeters(meters, &report.progress);
      AbortProgress(&report.progress, "unknown error");
    }
    for (auto& shard : partials) {
      for (auto& [image, signatures] : shard) {
        classes[image].insert(signatures.begin(), signatures.end());
      }
    }
  }
  report.policy_classes = classes.size();
  for (const auto& [image, signatures] : classes) {
    (void)image;
    report.max_distinct_outcomes =
        std::max<std::uint64_t>(report.max_distinct_outcomes, signatures.size());
    if (signatures.size() > 1) {
      ++report.leaky_classes;
    }
  }
  if (report.max_distinct_outcomes > 0) {
    report.max_leak_bits = std::log2(static_cast<double>(report.max_distinct_outcomes));
  }
  return report;
}

}  // namespace secpol
