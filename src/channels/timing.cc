#include "src/channels/timing.h"

#include <cmath>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "src/util/strings.h"

namespace secpol {

std::string LeakReport::ToString() const {
  return "leak: max " + FormatDouble(max_leak_bits, 3) + " bits/run (" +
         std::to_string(max_distinct_outcomes) + " distinguishable outcomes; " +
         std::to_string(leaky_classes) + "/" + std::to_string(policy_classes) +
         " classes leaky)";
}

LeakReport MeasureLeak(const ProtectionMechanism& mechanism, const SecurityPolicy& policy,
                       const InputDomain& domain, Observability obs,
                       const CheckOptions& options) {
  // Observable signature: (kind, value-if-any, steps-if-observable).
  using Signature = std::tuple<int, Value, StepCount>;
  std::map<PolicyImage, std::set<Signature>> classes;

  const auto signature_of = [obs](const Outcome& outcome) {
    return Signature{outcome.IsValue() ? 1 : 0, outcome.IsValue() ? outcome.value : 0,
                     obs == Observability::kValueAndTime ? outcome.steps : 0};
  };

  const int threads = options.ResolvedThreads();
  if (threads <= 1) {
    domain.ForEach([&](InputView input) {
      classes[policy.Image(input)].insert(signature_of(mechanism.Run(input)));
    });
  } else {
    const std::uint64_t num_shards = CheckOptions::ShardsFor(threads, domain.size());
    std::vector<std::map<PolicyImage, std::set<Signature>>> partials(num_shards);
    domain.ParallelForEach(
        num_shards,
        [&](std::uint64_t shard, std::uint64_t rank, InputView input) -> bool {
          (void)rank;
          partials[shard][policy.Image(input)].insert(signature_of(mechanism.Run(input)));
          return true;
        },
        threads);
    for (auto& shard : partials) {
      for (auto& [image, signatures] : shard) {
        classes[image].insert(signatures.begin(), signatures.end());
      }
    }
  }

  LeakReport report;
  report.policy_classes = classes.size();
  for (const auto& [image, signatures] : classes) {
    (void)image;
    report.max_distinct_outcomes =
        std::max<std::uint64_t>(report.max_distinct_outcomes, signatures.size());
    if (signatures.size() > 1) {
      ++report.leaky_classes;
    }
  }
  if (report.max_distinct_outcomes > 0) {
    report.max_leak_bits = std::log2(static_cast<double>(report.max_distinct_outcomes));
  }
  return report;
}

}  // namespace secpol
