#include "src/channels/password_attack.h"

#include <cassert>

namespace secpol {

PasswordChecker::PasswordChecker(std::vector<int> secret, int alphabet)
    : secret_(std::move(secret)), alphabet_(alphabet) {
  assert(alphabet_ > 0);
  for (int c : secret_) {
    (void)c;
    assert(c >= 0 && c < alphabet_);
  }
}

bool PasswordChecker::Check(const std::vector<int>& guess, PagedMemory& memory,
                            std::uint64_t guess_base) {
  ++attempts_;
  // Early-exit comparison: each compared character of the guess is touched
  // in memory before the comparison. The observable side effect — which
  // pages became resident — is exactly what the attack exploits.
  for (size_t i = 0; i < secret_.size(); ++i) {
    memory.Access(guess_base + i);
    const int g = i < guess.size() ? guess[i] : -1;
    if (g != secret_[i]) {
      return false;
    }
  }
  return guess.size() == secret_.size();
}

AttackResult BruteForceAttack(PasswordChecker& checker, std::uint64_t max_guesses) {
  const int k = checker.length();
  const int n = checker.alphabet();
  AttackResult result;
  std::vector<int> guess(static_cast<size_t>(k), 0);
  // One huge page: brute force learns nothing from paging.
  PagedMemory memory(1u << 20);

  while (result.guesses < max_guesses) {
    ++result.guesses;
    if (checker.Check(guess, memory, 0)) {
      result.found = true;
      result.recovered = guess;
      return result;
    }
    // Lexicographic increment.
    int pos = k - 1;
    while (pos >= 0) {
      if (++guess[static_cast<size_t>(pos)] < n) {
        break;
      }
      guess[static_cast<size_t>(pos)] = 0;
      --pos;
    }
    if (pos < 0) {
      return result;  // exhausted the space without a match
    }
  }
  return result;
}

AttackResult PageBoundaryAttack(PasswordChecker& checker) {
  const int k = checker.length();
  const int n = checker.alphabet();
  AttackResult result;
  std::vector<int> recovered;

  const std::uint64_t page_size = static_cast<std::uint64_t>(k) + 1;
  PagedMemory memory(page_size);

  for (int pos = 0; pos < k; ++pos) {
    bool pinned = false;
    for (int candidate = 0; candidate < n; ++candidate) {
      std::vector<int> guess = recovered;
      guess.push_back(candidate);
      guess.resize(static_cast<size_t>(k), 0);

      if (pos == k - 1) {
        // Last position: the oracle's accept/reject answer suffices.
        ++result.guesses;
        if (checker.Check(guess, memory, 0)) {
          recovered.push_back(candidate);
          pinned = true;
          break;
        }
        continue;
      }

      // Place the guess so that characters [0, pos] share a page and
      // character pos+1 begins the next, initially non-resident, page.
      const std::uint64_t base = page_size - static_cast<std::uint64_t>(pos) - 1;
      const std::uint64_t probe_page = memory.PageOf(base + static_cast<std::uint64_t>(pos) + 1);
      memory.FlushAll();
      memory.Access(base);  // make the first page resident

      ++result.guesses;
      checker.Check(guess, memory, base);
      if (memory.Resident(probe_page)) {
        // The comparison crossed the boundary: every character up to and
        // including `candidate` matched.
        recovered.push_back(candidate);
        pinned = true;
        break;
      }
    }
    if (!pinned) {
      return result;  // inconsistent oracle; give up
    }
  }
  result.found = true;
  result.recovered = std::move(recovered);
  return result;
}

}  // namespace secpol
