// Quantifying leaks through forgotten observables.
//
// The Observability Postulate says the output must encode everything the
// user can observe. When a mechanism is sound for value-only observation but
// not for value+time, the difference is a timing channel; this module
// measures its capacity over a finite domain: within each policy class, the
// number of distinguishable observable outcomes bounds what an adversary can
// learn (log2 of it, in bits per run). A sound mechanism scores exactly one
// outcome per class — zero bits.

#ifndef SECPOL_SRC_CHANNELS_TIMING_H_
#define SECPOL_SRC_CHANNELS_TIMING_H_

#include <cstdint>
#include <string>

#include "src/mechanism/check_options.h"
#include "src/mechanism/domain.h"
#include "src/mechanism/mechanism.h"
#include "src/mechanism/outcome.h"
#include "src/policy/policy.h"

namespace secpol {

struct LeakReport {
  // The largest number of observably distinct outcomes within one policy
  // class (1 = sound).
  std::uint64_t max_distinct_outcomes = 0;
  // log2(max_distinct_outcomes): bits an adversary can extract per run by
  // choosing inputs inside one class.
  double max_leak_bits = 0.0;
  // Classes with more than one distinct outcome.
  std::uint64_t leaky_classes = 0;
  std::uint64_t policy_classes = 0;

  // How the sweep ended. On an incomplete run the measured capacity is a
  // *lower* bound — unevaluated inputs can only add distinguishable
  // outcomes, never remove them.
  CheckProgress progress;

  std::string ToString() const;
};

// Measures the channel of `mechanism` w.r.t. `policy` over `domain` under
// observability `obs`. With obs = kValueAndTime and a mechanism sound for
// kValueOnly, the report isolates the pure timing channel. The per-class
// signature sets are merged by union across parallel shards, so the report
// is identical to the serial scan at any thread count for completed runs.
// The sweep honours options.deadline / options.cancel and converts a
// throwing mechanism into progress.status = kAborted.
LeakReport MeasureLeak(const ProtectionMechanism& mechanism, const SecurityPolicy& policy,
                       const InputDomain& domain, Observability obs,
                       const CheckOptions& options = CheckOptions());

class OutcomeTable;

// The same measurement over a pre-built outcome table (complete, with
// outcome and image columns). Byte-identical to the live overload on the
// same grid.
LeakReport MeasureLeak(const OutcomeTable& table, Observability obs,
                       const CheckOptions& options = CheckOptions());

}  // namespace secpol

#endif  // SECPOL_SRC_CHANNELS_TIMING_H_
