#include "src/channels/paging.h"

#include <cassert>

namespace secpol {

PagedMemory::PagedMemory(std::uint64_t page_size) : page_size_(page_size) {
  assert(page_size > 0);
}

void PagedMemory::Access(std::uint64_t address) {
  const std::uint64_t page = PageOf(address);
  if (resident_.insert(page).second) {
    ++faults_;
  }
}

void PagedMemory::FlushAll() { resident_.clear(); }

}  // namespace secpol
