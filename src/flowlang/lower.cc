#include "src/flowlang/lower.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "src/flowlang/parser.h"

namespace secpol {

namespace {

class Lowerer {
 public:
  explicit Lowerer(const SourceProgram& source)
      : source_(source),
        program_(source.name, source.input_names, source.local_names) {}

  Program Run() {
    // Box 0: start (added below); the final halt is the continuation of the
    // whole body.
    Box start;
    start.kind = Box::Kind::kStart;
    start.next = -1;
    const int start_id = program_.AddBox(start);

    Box halt;
    halt.kind = Box::Kind::kHalt;
    const int halt_id = program_.AddBox(halt);

    const int entry = EmitBlock(source_.body, halt_id);
    program_.mutable_box(start_id).next = entry;

    Result<bool> valid = program_.Validate();
    if (!valid.ok()) {
      std::fprintf(stderr, "Lower produced invalid program: %s\n",
                   valid.error().ToString().c_str());
      std::abort();
    }
    return std::move(program_);
  }

 private:
  // Emits `block`, arranging for control to continue at `cont`. Returns the
  // entry box id of the emitted code ( `cont` itself for an empty block).
  int EmitBlock(const std::vector<Stmt>& block, int cont) {
    int entry = cont;
    // Emit back to front so each statement knows its continuation.
    for (auto it = block.rbegin(); it != block.rend(); ++it) {
      entry = EmitStmt(*it, entry);
    }
    return entry;
  }

  int EmitStmt(const Stmt& stmt, int cont) {
    switch (stmt.kind) {
      case Stmt::Kind::kAssign: {
        Box box;
        box.kind = Box::Kind::kAssign;
        box.var = stmt.var;
        box.expr = stmt.expr;
        box.next = cont;
        return program_.AddBox(box);
      }
      case Stmt::Kind::kIf: {
        const int then_entry = EmitBlock(stmt.then_body, cont);
        const int else_entry = EmitBlock(stmt.else_body, cont);
        Box box;
        box.kind = Box::Kind::kDecision;
        box.predicate = stmt.cond;
        box.true_next = then_entry;
        box.false_next = else_entry;
        return program_.AddBox(box);
      }
      case Stmt::Kind::kWhile: {
        // The decision box must exist before the body (the body jumps back to
        // it); reserve it, emit the body, then patch.
        Box placeholder;
        placeholder.kind = Box::Kind::kDecision;
        placeholder.predicate = stmt.cond;
        placeholder.true_next = -1;
        placeholder.false_next = cont;
        const int decision_id = program_.AddBox(placeholder);
        const int body_entry = EmitBlock(stmt.body, decision_id);
        program_.mutable_box(decision_id).true_next = body_entry;
        return decision_id;
      }
      case Stmt::Kind::kHalt: {
        Box box;
        box.kind = Box::Kind::kHalt;
        return program_.AddBox(box);
      }
    }
    assert(false && "unreachable");
    return cont;
  }

  const SourceProgram& source_;
  Program program_;
};

}  // namespace

Program Lower(const SourceProgram& source) {
  Lowerer lowerer(source);
  return lowerer.Run();
}

Program MustCompile(std::string_view source) { return Lower(MustParseProgram(source)); }

}  // namespace secpol
