#include "src/flowlang/ast.h"

namespace secpol {

Stmt Stmt::Assign(int var, Expr expr) {
  Stmt s;
  s.kind = Kind::kAssign;
  s.var = var;
  s.expr = std::move(expr);
  return s;
}

Stmt Stmt::If(Expr cond, std::vector<Stmt> then_body, std::vector<Stmt> else_body) {
  Stmt s;
  s.kind = Kind::kIf;
  s.cond = std::move(cond);
  s.then_body = std::move(then_body);
  s.else_body = std::move(else_body);
  return s;
}

Stmt Stmt::While(Expr cond, std::vector<Stmt> body) {
  Stmt s;
  s.kind = Kind::kWhile;
  s.cond = std::move(cond);
  s.body = std::move(body);
  return s;
}

Stmt Stmt::Halt() {
  Stmt s;
  s.kind = Kind::kHalt;
  return s;
}

std::string SourceProgram::VarName(int id) const {
  if (id < num_inputs()) {
    return input_names[id];
  }
  if (id < num_inputs() + num_locals()) {
    return local_names[id - num_inputs()];
  }
  return "y";
}

int SourceProgram::FindVar(const std::string& var_name) const {
  for (int i = 0; i < num_vars(); ++i) {
    if (VarName(i) == var_name) {
      return i;
    }
  }
  return -1;
}

namespace {

void PrintBlock(const SourceProgram& p, const std::vector<Stmt>& block, int indent,
                std::string& out);

void PrintStmt(const SourceProgram& p, const Stmt& stmt, int indent, std::string& out) {
  auto name_of = [&p](int id) { return p.VarName(id); };
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  switch (stmt.kind) {
    case Stmt::Kind::kAssign:
      out += pad + p.VarName(stmt.var) + " = " + stmt.expr.ToString(name_of) + ";\n";
      break;
    case Stmt::Kind::kIf:
      out += pad + "if (" + stmt.cond.ToString(name_of) + ") {\n";
      PrintBlock(p, stmt.then_body, indent + 1, out);
      if (!stmt.else_body.empty()) {
        out += pad + "} else {\n";
        PrintBlock(p, stmt.else_body, indent + 1, out);
      }
      out += pad + "}\n";
      break;
    case Stmt::Kind::kWhile:
      out += pad + "while (" + stmt.cond.ToString(name_of) + ") {\n";
      PrintBlock(p, stmt.body, indent + 1, out);
      out += pad + "}\n";
      break;
    case Stmt::Kind::kHalt:
      out += pad + "halt;\n";
      break;
  }
}

void PrintBlock(const SourceProgram& p, const std::vector<Stmt>& block, int indent,
                std::string& out) {
  for (const Stmt& stmt : block) {
    PrintStmt(p, stmt, indent, out);
  }
}

}  // namespace

std::string SourceProgram::ToString() const {
  std::string out = "program " + name + "(";
  for (size_t i = 0; i < input_names.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += input_names[i];
  }
  out += ") {\n";
  if (!local_names.empty()) {
    out += "  locals ";
    for (size_t i = 0; i < local_names.size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += local_names[i];
    }
    out += ";\n";
  }
  PrintBlock(*this, body, 1, out);
  out += "}\n";
  return out;
}

}  // namespace secpol
