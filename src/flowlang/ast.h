// Structured source AST for the flowlang front-end language.
//
// flowlang is a small structured language that lowers to the paper's
// flowchart model. Programs in tests, examples, and the corpus generator are
// written (or generated) as flowlang and lowered. The Section 4/5 program
// transforms also operate on this AST, because the single-entry/single-exit
// structures the paper transforms are exactly flowlang's if/while statements.
//
// Grammar sketch:
//
//   program NAME '(' params ')' '{' [ 'locals' idents ';' ] stmt* '}'
//   stmt := IDENT '=' expr ';'
//         | 'if' '(' expr ')' block [ 'else' block ]
//         | 'while' '(' expr ')' block
//         | 'halt' ';'
//   expr := usual C-like precedence, plus select(c,a,b), min(a,b), max(a,b)
//
// The output variable is always named `y` and is implicitly declared.
// Variable ids in embedded Exprs follow the flowchart numbering: inputs in
// parameter order, locals in declaration order, then y.

#ifndef SECPOL_SRC_FLOWLANG_AST_H_
#define SECPOL_SRC_FLOWLANG_AST_H_

#include <string>
#include <vector>

#include "src/expr/expr.h"
#include "src/flowchart/program.h"

namespace secpol {

struct Stmt {
  enum class Kind { kAssign, kIf, kWhile, kHalt };

  Kind kind = Kind::kAssign;

  // kAssign: var <- expr.
  int var = -1;
  Expr expr;

  // kIf / kWhile condition (true iff nonzero).
  Expr cond;

  // kIf bodies (else_body may be empty) and kWhile body.
  std::vector<Stmt> then_body;
  std::vector<Stmt> else_body;
  std::vector<Stmt> body;

  static Stmt Assign(int var, Expr expr);
  static Stmt If(Expr cond, std::vector<Stmt> then_body, std::vector<Stmt> else_body = {});
  static Stmt While(Expr cond, std::vector<Stmt> body);
  static Stmt Halt();
};

struct SourceProgram {
  std::string name;
  std::vector<std::string> input_names;
  std::vector<std::string> local_names;
  std::vector<Stmt> body;

  int num_inputs() const { return static_cast<int>(input_names.size()); }
  int num_locals() const { return static_cast<int>(local_names.size()); }
  int num_vars() const { return num_inputs() + num_locals() + 1; }
  int output_var() const { return num_inputs() + num_locals(); }

  // Variable name by flowchart id.
  std::string VarName(int id) const;
  // Id of a named variable, or -1.
  int FindVar(const std::string& var_name) const;

  // Pretty-prints back to flowlang source.
  std::string ToString() const;
};

}  // namespace secpol

#endif  // SECPOL_SRC_FLOWLANG_AST_H_
