// Recursive-descent parser for flowlang.

#ifndef SECPOL_SRC_FLOWLANG_PARSER_H_
#define SECPOL_SRC_FLOWLANG_PARSER_H_

#include <string_view>

#include "src/flowlang/ast.h"
#include "src/util/result.h"

namespace secpol {

// Parses one flowlang program. Undeclared variables, assignment to inputs,
// and syntax errors are reported as Error with source positions.
Result<SourceProgram> ParseProgram(std::string_view source);

// Convenience: parse-or-abort, for tests and examples whose sources are
// string literals known to be valid.
SourceProgram MustParseProgram(std::string_view source);

}  // namespace secpol

#endif  // SECPOL_SRC_FLOWLANG_PARSER_H_
