#include "src/flowlang/lexer.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace secpol {

namespace {

TokenKind KeywordKind(const std::string& text) {
  if (text == "program") {
    return TokenKind::kKwProgram;
  }
  if (text == "locals") {
    return TokenKind::kKwLocals;
  }
  if (text == "if") {
    return TokenKind::kKwIf;
  }
  if (text == "else") {
    return TokenKind::kKwElse;
  }
  if (text == "while") {
    return TokenKind::kKwWhile;
  }
  if (text == "halt") {
    return TokenKind::kKwHalt;
  }
  if (text == "select") {
    return TokenKind::kKwSelect;
  }
  if (text == "min") {
    return TokenKind::kKwMin;
  }
  if (text == "max") {
    return TokenKind::kKwMax;
  }
  return TokenKind::kIdent;
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  size_t i = 0;

  auto make = [&](TokenKind kind, std::string text) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    t.column = column;
    return t;
  };
  auto advance = [&](size_t n) {
    for (size_t j = 0; j < n && i < source.size(); ++j, ++i) {
      if (source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
  };

  while (i < source.size()) {
    const char c = source[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      while (i < source.size() && source[i] != '\n') {
        advance(1);
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < source.size() && std::isdigit(static_cast<unsigned char>(source[j]))) {
        ++j;
      }
      Token t = make(TokenKind::kInt, std::string(source.substr(i, j - i)));
      errno = 0;
      t.int_value = std::strtoll(t.text.c_str(), nullptr, 10);
      if (errno == ERANGE) {
        return Error{"integer literal out of range", line, column};
      }
      tokens.push_back(std::move(t));
      advance(j - i);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[j])) || source[j] == '_')) {
        ++j;
      }
      std::string text(source.substr(i, j - i));
      const TokenKind kind = KeywordKind(text);
      Token t = make(kind, std::move(text));
      tokens.push_back(std::move(t));
      advance(j - i);
      continue;
    }

    auto two = [&](char second) {
      return i + 1 < source.size() && source[i + 1] == second;
    };
    TokenKind kind;
    size_t len = 1;
    switch (c) {
      case '(':
        kind = TokenKind::kLParen;
        break;
      case ')':
        kind = TokenKind::kRParen;
        break;
      case '{':
        kind = TokenKind::kLBrace;
        break;
      case '}':
        kind = TokenKind::kRBrace;
        break;
      case ',':
        kind = TokenKind::kComma;
        break;
      case ';':
        kind = TokenKind::kSemicolon;
        break;
      case '+':
        kind = TokenKind::kPlus;
        break;
      case '-':
        kind = TokenKind::kMinus;
        break;
      case '*':
        kind = TokenKind::kStar;
        break;
      case '/':
        kind = TokenKind::kSlash;
        break;
      case '%':
        kind = TokenKind::kPercent;
        break;
      case '^':
        kind = TokenKind::kCaret;
        break;
      case '&':
        kind = two('&') ? (len = 2, TokenKind::kAmpAmp) : TokenKind::kAmp;
        break;
      case '|':
        kind = two('|') ? (len = 2, TokenKind::kPipePipe) : TokenKind::kPipe;
        break;
      case '=':
        kind = two('=') ? (len = 2, TokenKind::kEqEq) : TokenKind::kAssign;
        break;
      case '!':
        kind = two('=') ? (len = 2, TokenKind::kNotEq) : TokenKind::kBang;
        break;
      case '<':
        kind = two('=') ? (len = 2, TokenKind::kLe) : TokenKind::kLt;
        break;
      case '>':
        kind = two('=') ? (len = 2, TokenKind::kGe) : TokenKind::kGt;
        break;
      default:
        return Error{std::string("unexpected character '") + c + "'", line, column};
    }
    tokens.push_back(make(kind, std::string(source.substr(i, len))));
    advance(len);
  }
  tokens.push_back(make(TokenKind::kEof, ""));
  return tokens;
}

}  // namespace secpol
