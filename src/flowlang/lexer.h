// Tokenizer for flowlang source text.

#ifndef SECPOL_SRC_FLOWLANG_LEXER_H_
#define SECPOL_SRC_FLOWLANG_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/result.h"

namespace secpol {

enum class TokenKind {
  kIdent,
  kInt,
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kComma,
  kSemicolon,
  kAssign,   // =
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kAmp,      // &
  kAmpAmp,   // &&
  kPipe,     // |
  kPipePipe, // ||
  kCaret,    // ^
  kBang,     // !
  kEqEq,
  kNotEq,
  kLt,
  kLe,
  kGt,
  kGe,
  // Keywords.
  kKwProgram,
  kKwLocals,
  kKwIf,
  kKwElse,
  kKwWhile,
  kKwHalt,
  kKwSelect,
  kKwMin,
  kKwMax,
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  std::int64_t int_value = 0;
  int line = 1;
  int column = 1;
};

// Tokenizes `source`. Comments run from "//" to end of line. Returns an
// Error for unknown characters or malformed integers.
Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace secpol

#endif  // SECPOL_SRC_FLOWLANG_LEXER_H_
