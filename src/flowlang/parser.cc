#include "src/flowlang/parser.h"

#include <cstdio>
#include <cstdlib>
#include <optional>

#include "src/flowlang/lexer.h"

namespace secpol {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SourceProgram> Parse() {
    if (auto err = Expect(TokenKind::kKwProgram)) {
      return *err;
    }
    if (Peek().kind != TokenKind::kIdent) {
      return Err("expected program name");
    }
    program_.name = Next().text;

    if (auto err = Expect(TokenKind::kLParen)) {
      return *err;
    }
    if (Peek().kind != TokenKind::kRParen) {
      while (true) {
        if (Peek().kind != TokenKind::kIdent) {
          return Err("expected parameter name");
        }
        program_.input_names.push_back(Next().text);
        if (Peek().kind == TokenKind::kComma) {
          Next();
          continue;
        }
        break;
      }
    }
    if (auto err = Expect(TokenKind::kRParen)) {
      return *err;
    }
    if (auto err = Expect(TokenKind::kLBrace)) {
      return *err;
    }
    if (Peek().kind == TokenKind::kKwLocals) {
      Next();
      while (true) {
        if (Peek().kind != TokenKind::kIdent) {
          return Err("expected local variable name");
        }
        program_.local_names.push_back(Next().text);
        if (Peek().kind == TokenKind::kComma) {
          Next();
          continue;
        }
        break;
      }
      if (auto err = Expect(TokenKind::kSemicolon)) {
        return *err;
      }
    }

    // Duplicate-name check.
    for (int i = 0; i < program_.num_vars(); ++i) {
      for (int j = i + 1; j < program_.num_vars(); ++j) {
        if (program_.VarName(i) == program_.VarName(j)) {
          return Err("duplicate variable name '" + program_.VarName(i) + "'");
        }
      }
    }

    Result<std::vector<Stmt>> body = ParseBlockBody(TokenKind::kRBrace);
    if (!body.ok()) {
      return body.error();
    }
    program_.body = std::move(body).value();
    if (auto err = Expect(TokenKind::kRBrace)) {
      return *err;
    }
    if (Peek().kind != TokenKind::kEof) {
      return Err("trailing input after program");
    }
    return std::move(program_);
  }

 private:
  const Token& Peek(int ahead = 0) const {
    const size_t idx = pos_ + static_cast<size_t>(ahead);
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }
  const Token& Next() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  Error Err(const std::string& message) const {
    return Error{message, Peek().line, Peek().column};
  }

  // Returns an error if the next token is not `kind`; otherwise consumes it.
  std::optional<Error> Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return Err("unexpected token '" + Peek().text + "'");
    }
    Next();
    return std::nullopt;
  }

  Result<std::vector<Stmt>> ParseBlockBody(TokenKind terminator) {
    std::vector<Stmt> stmts;
    while (Peek().kind != terminator && Peek().kind != TokenKind::kEof) {
      Result<Stmt> stmt = ParseStmt();
      if (!stmt.ok()) {
        return stmt.error();
      }
      stmts.push_back(std::move(stmt).value());
    }
    return stmts;
  }

  Result<std::vector<Stmt>> ParseBracedBlock() {
    if (auto err = Expect(TokenKind::kLBrace)) {
      return *err;
    }
    Result<std::vector<Stmt>> body = ParseBlockBody(TokenKind::kRBrace);
    if (!body.ok()) {
      return body;
    }
    if (auto err = Expect(TokenKind::kRBrace)) {
      return *err;
    }
    return body;
  }

  Result<Stmt> ParseStmt() {
    switch (Peek().kind) {
      case TokenKind::kKwHalt: {
        Next();
        if (auto err = Expect(TokenKind::kSemicolon)) {
          return *err;
        }
        return Stmt::Halt();
      }
      case TokenKind::kKwIf: {
        Next();
        if (auto err = Expect(TokenKind::kLParen)) {
          return *err;
        }
        Result<Expr> cond = ParseExpr();
        if (!cond.ok()) {
          return cond.error();
        }
        if (auto err = Expect(TokenKind::kRParen)) {
          return *err;
        }
        Result<std::vector<Stmt>> then_body = ParseBracedBlock();
        if (!then_body.ok()) {
          return then_body.error();
        }
        std::vector<Stmt> else_body;
        if (Peek().kind == TokenKind::kKwElse) {
          Next();
          Result<std::vector<Stmt>> parsed = ParseBracedBlock();
          if (!parsed.ok()) {
            return parsed.error();
          }
          else_body = std::move(parsed).value();
        }
        return Stmt::If(std::move(cond).value(), std::move(then_body).value(),
                        std::move(else_body));
      }
      case TokenKind::kKwWhile: {
        Next();
        if (auto err = Expect(TokenKind::kLParen)) {
          return *err;
        }
        Result<Expr> cond = ParseExpr();
        if (!cond.ok()) {
          return cond.error();
        }
        if (auto err = Expect(TokenKind::kRParen)) {
          return *err;
        }
        Result<std::vector<Stmt>> body = ParseBracedBlock();
        if (!body.ok()) {
          return body.error();
        }
        return Stmt::While(std::move(cond).value(), std::move(body).value());
      }
      case TokenKind::kIdent: {
        const Token& ident = Next();
        const int var = program_.FindVar(ident.text);
        if (var < 0) {
          return Error{"undeclared variable '" + ident.text + "'", ident.line, ident.column};
        }
        if (var < program_.num_inputs()) {
          return Error{"cannot assign to input variable '" + ident.text + "'", ident.line,
                       ident.column};
        }
        if (auto err = Expect(TokenKind::kAssign)) {
          return *err;
        }
        Result<Expr> expr = ParseExpr();
        if (!expr.ok()) {
          return expr.error();
        }
        if (auto err = Expect(TokenKind::kSemicolon)) {
          return *err;
        }
        return Stmt::Assign(var, std::move(expr).value());
      }
      default:
        return Err("expected statement");
    }
  }

  // Expression precedence climbing. Levels, loosest first:
  //   || ; && ; | ; ^ ; & ; == != ; < <= > >= ; + - ; * / % ; unary ; primary
  Result<Expr> ParseExpr() { return ParseBinary(0); }

  struct OpLevel {
    TokenKind token;
    BinaryOp op;
    int level;
  };

  static constexpr int kNumLevels = 9;

  std::optional<BinaryOp> MatchLevel(int level) const {
    static const OpLevel kOps[] = {
        {TokenKind::kPipePipe, BinaryOp::kOr, 0},    {TokenKind::kAmpAmp, BinaryOp::kAnd, 1},
        {TokenKind::kPipe, BinaryOp::kBitOr, 2},     {TokenKind::kCaret, BinaryOp::kBitXor, 3},
        {TokenKind::kAmp, BinaryOp::kBitAnd, 4},     {TokenKind::kEqEq, BinaryOp::kEq, 5},
        {TokenKind::kNotEq, BinaryOp::kNe, 5},       {TokenKind::kLt, BinaryOp::kLt, 6},
        {TokenKind::kLe, BinaryOp::kLe, 6},          {TokenKind::kGt, BinaryOp::kGt, 6},
        {TokenKind::kGe, BinaryOp::kGe, 6},          {TokenKind::kPlus, BinaryOp::kAdd, 7},
        {TokenKind::kMinus, BinaryOp::kSub, 7},      {TokenKind::kStar, BinaryOp::kMul, 8},
        {TokenKind::kSlash, BinaryOp::kDiv, 8},      {TokenKind::kPercent, BinaryOp::kMod, 8},
    };
    for (const OpLevel& entry : kOps) {
      if (entry.level == level && entry.token == Peek().kind) {
        return entry.op;
      }
    }
    return std::nullopt;
  }

  Result<Expr> ParseBinary(int level) {
    if (level >= kNumLevels) {
      return ParseUnary();
    }
    Result<Expr> lhs = ParseBinary(level + 1);
    if (!lhs.ok()) {
      return lhs;
    }
    Expr expr = std::move(lhs).value();
    while (auto op = MatchLevel(level)) {
      Next();
      Result<Expr> rhs = ParseBinary(level + 1);
      if (!rhs.ok()) {
        return rhs;
      }
      expr = Expr::Binary(*op, std::move(expr), std::move(rhs).value());
    }
    return expr;
  }

  Result<Expr> ParseUnary() {
    if (Peek().kind == TokenKind::kMinus) {
      Next();
      Result<Expr> operand = ParseUnary();
      if (!operand.ok()) {
        return operand;
      }
      return Expr::Unary(UnaryOp::kNeg, std::move(operand).value());
    }
    if (Peek().kind == TokenKind::kBang) {
      Next();
      Result<Expr> operand = ParseUnary();
      if (!operand.ok()) {
        return operand;
      }
      return Expr::Unary(UnaryOp::kNot, std::move(operand).value());
    }
    return ParsePrimary();
  }

  // Parses "(e1, e2[, e3])" for the builtin calls.
  Result<std::vector<Expr>> ParseArgs(int count) {
    if (auto err = Expect(TokenKind::kLParen)) {
      return *err;
    }
    std::vector<Expr> args;
    for (int i = 0; i < count; ++i) {
      if (i > 0) {
        if (auto err = Expect(TokenKind::kComma)) {
          return *err;
        }
      }
      Result<Expr> arg = ParseExpr();
      if (!arg.ok()) {
        return arg.error();
      }
      args.push_back(std::move(arg).value());
    }
    if (auto err = Expect(TokenKind::kRParen)) {
      return *err;
    }
    return args;
  }

  Result<Expr> ParsePrimary() {
    switch (Peek().kind) {
      case TokenKind::kInt: {
        const Token& t = Next();
        return Expr::Const(t.int_value);
      }
      case TokenKind::kIdent: {
        const Token& t = Next();
        const int var = program_.FindVar(t.text);
        if (var < 0) {
          return Error{"undeclared variable '" + t.text + "'", t.line, t.column};
        }
        return Expr::Var(var);
      }
      case TokenKind::kLParen: {
        Next();
        Result<Expr> inner = ParseExpr();
        if (!inner.ok()) {
          return inner;
        }
        if (auto err = Expect(TokenKind::kRParen)) {
          return *err;
        }
        return inner;
      }
      case TokenKind::kKwSelect: {
        Next();
        Result<std::vector<Expr>> args = ParseArgs(3);
        if (!args.ok()) {
          return args.error();
        }
        auto& a = args.value();
        return Expr::Select(a[0], a[1], a[2]);
      }
      case TokenKind::kKwMin:
      case TokenKind::kKwMax: {
        const BinaryOp op = Peek().kind == TokenKind::kKwMin ? BinaryOp::kMin : BinaryOp::kMax;
        Next();
        Result<std::vector<Expr>> args = ParseArgs(2);
        if (!args.ok()) {
          return args.error();
        }
        auto& a = args.value();
        return Expr::Binary(op, a[0], a[1]);
      }
      default:
        return Err("expected expression");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  SourceProgram program_;
};

}  // namespace

Result<SourceProgram> ParseProgram(std::string_view source) {
  Result<std::vector<Token>> tokens = Tokenize(source);
  if (!tokens.ok()) {
    return tokens.error();
  }
  Parser parser(std::move(tokens).value());
  return parser.Parse();
}

SourceProgram MustParseProgram(std::string_view source) {
  Result<SourceProgram> parsed = ParseProgram(source);
  if (!parsed.ok()) {
    std::fprintf(stderr, "MustParseProgram failed: %s\nsource:\n%.*s\n",
                 parsed.error().ToString().c_str(), static_cast<int>(source.size()),
                 source.data());
    std::abort();
  }
  return std::move(parsed).value();
}

}  // namespace secpol
