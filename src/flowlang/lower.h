// Lowering from the structured flowlang AST to the flowchart model.

#ifndef SECPOL_SRC_FLOWLANG_LOWER_H_
#define SECPOL_SRC_FLOWLANG_LOWER_H_

#include "src/flowchart/program.h"
#include "src/flowlang/ast.h"

namespace secpol {

// Lowers `source` to a flowchart Program. Execution falls through to an
// implicit halt at the end of the program body; explicit `halt;` statements
// lower to halt boxes. The result is validated; lowering a syntactically
// valid SourceProgram cannot fail.
Program Lower(const SourceProgram& source);

// Parses and lowers in one step (aborts on parse error; for literals).
Program MustCompile(std::string_view source);

}  // namespace secpol

#endif  // SECPOL_SRC_FLOWLANG_LOWER_H_
