// A flat bytecode backend for flowchart programs.
//
// The AST-walking interpreter is the reference semantics; this compiler
// flattens each flowchart into three-address code over a register file
// (program variables first, expression temporaries after), removing all
// pointer chasing from the hot loop. The observable behaviour — output,
// *step count*, halting box — is bit-identical to the reference interpreter:
// each flowchart box charges exactly one step, attributed to the box's first
// instruction, so a bytecode run can stand in for an interpreted run even
// under Observability::kValueAndTime. A differential property suite enforces
// this on random corpora.

#ifndef SECPOL_SRC_FLOWCHART_BYTECODE_H_
#define SECPOL_SRC_FLOWCHART_BYTECODE_H_

#include <string>
#include <vector>

#include "src/flowchart/interpreter.h"
#include "src/flowchart/program.h"

namespace secpol {

enum class BcOp {
  kConst,     // dst <- imm
  kMov,       // dst <- reg a
  kUnary,     // dst <- unary_op a
  kBinary,    // dst <- a binary_op b
  kSelect,    // dst <- a != 0 ? b : c
  kJump,      // pc <- target
  kBranchZ,   // pc <- target if reg a == 0, else fall through
  kHalt,      // stop; output register holds y
};

struct BcInst {
  BcOp op = BcOp::kHalt;
  int dst = -1;
  int a = -1;
  int b = -1;
  int c = -1;
  Value imm = 0;
  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kAdd;
  int target = -1;
  // True on the first instruction compiled from each flowchart box: executing
  // it charges one step, preserving the reference step count.
  bool charges_step = false;
  // The source box id (reported as halt_box for kHalt, and for diagnostics).
  int source_box = -1;
};

class BytecodeProgram {
 public:
  int num_inputs() const { return num_inputs_; }
  int num_registers() const { return num_registers_; }
  int output_reg() const { return output_reg_; }
  const std::vector<BcInst>& code() const { return code_; }

  std::string ToString() const;

 private:
  friend BytecodeProgram CompileToBytecode(const Program& program);
  int num_inputs_ = 0;
  int num_registers_ = 0;
  int output_reg_ = 0;
  std::vector<BcInst> code_;
};

// Compiles a valid flowchart program.
BytecodeProgram CompileToBytecode(const Program& program);

// Executes with semantics identical to RunProgram on the source flowchart
// (same output, steps, halted flag, and halt_box).
ExecResult RunBytecode(const BytecodeProgram& bytecode, InputView input,
                       StepCount fuel = kDefaultFuel);

}  // namespace secpol

#endif  // SECPOL_SRC_FLOWCHART_BYTECODE_H_
