// A flat bytecode backend for flowchart programs.
//
// The AST-walking interpreter is the reference semantics; this compiler
// flattens each flowchart into three-address code over a register file
// (program variables first, expression temporaries after), removing all
// pointer chasing from the hot loop. The observable behaviour — output,
// *step count*, halting box — is bit-identical to the reference interpreter:
// each flowchart box charges exactly one step, attributed to the box's first
// instruction, so a bytecode run can stand in for an interpreted run even
// under Observability::kValueAndTime. A differential property suite enforces
// this on random corpora.
//
// The compiler can additionally weave in the surveillance instrumentation of
// Section 3 (DESIGN.md §15): label ops that join taint bitsets in a label
// register file, update the pc label, perform M′'s pre-test abort, and run
// the release check at halt. Instrumented code is executed by the
// surveillance runner in src/surveillance/compiled.h; the plain RunBytecode
// below fails closed on label ops rather than silently skipping them.

#ifndef SECPOL_SRC_FLOWCHART_BYTECODE_H_
#define SECPOL_SRC_FLOWCHART_BYTECODE_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/flowchart/interpreter.h"
#include "src/flowchart/program.h"

namespace secpol {

// The bytecode layer's fail-closed error: compiling an invalid program,
// running instrumented code on the plain runner, or any other misuse that
// would otherwise read garbage. Thrown unconditionally (never compiled out
// with NDEBUG); the sweep kernel's exception barrier turns it into an
// aborted, fail-closed verdict.
class BytecodeError : public std::runtime_error {
 public:
  explicit BytecodeError(const std::string& what) : std::runtime_error(what) {}
};

enum class BcOp {
  kConst,     // dst <- imm
  kMov,       // dst <- reg a
  kUnary,     // dst <- unary_op a
  kBinary,    // dst <- a binary_op b
  kSelect,    // dst <- a != 0 ? b : c
  kJump,      // pc <- target
  kBranchZ,   // pc <- target if reg a == 0, else fall through
  kHalt,      // stop; output register holds y

  // Surveillance label ops (only emitted by the instrumenting compile; the
  // plain runner rejects them). Labels are raw 64-bit taint bitsets indexed
  // by program variable, mirroring VarSet's representation exactly.
  kLabAssign,       // labels[dst] <- join(vars_mask) | pc_label
  kLabAssignHW,     // labels[dst] <- labels[dst] | join(vars_mask) | pc_label
  kLabTest,         // pc_label |= join(vars_mask); b = scope join box or -1
  kLabTestChecked,  // M′: abort before the test if (join | pc_label) ⊄ allowed
  kLabHalt,         // release y iff (labels[y] | pc_label) ⊆ allowed
  kLabRestore,      // scoped pc: pop scopes whose join box == this box
};

struct BcInst {
  BcOp op = BcOp::kHalt;
  int dst = -1;
  int a = -1;
  int b = -1;
  int c = -1;
  Value imm = 0;
  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kAdd;
  int target = -1;
  // For label ops: the bitset of variables free in the box's expression or
  // predicate (VarSet::bits() of FreeVars), joined into the new label.
  std::uint64_t vars_mask = 0;
  // True on the first instruction compiled from each flowchart box: executing
  // it charges one step, preserving the reference step count.
  bool charges_step = false;
  // The source box id (reported as halt_box for kHalt, and for diagnostics).
  int source_box = -1;
};

// Optional surveillance instrumentation for CompileToBytecode. Plain data so
// the flowchart layer needs no dependency on the surveillance enums; the
// caller (CompileSurveillance) translates TimingMode/LabelDiscipline and
// supplies the immediate postdominators for the scoped discipline.
struct BcSurveillance {
  bool high_water = false;    // assignment joins the old label (no forgetting)
  bool checked_tests = false;  // M′: abort before any test on disallowed data
  bool scoped_pc = false;      // naive discipline: restore C-bar at join points
  std::vector<int> ipdom;      // join box per box; consulted iff scoped_pc
};

// Reusable execution scratch: the register file, the label file, and the
// scoped-pc stack. Callers that sweep many points construct one per shard
// and pass it to every run, hoisting all heap churn out of the point loop;
// the runners size the vectors on entry (grow-only in steady state).
struct BcScratch {
  std::vector<Value> regs;
  std::vector<std::uint64_t> labels;
  std::vector<std::pair<int, std::uint64_t>> scopes;  // (join box, saved C-bar)
};

class BytecodeProgram {
 public:
  int num_inputs() const { return num_inputs_; }
  int num_registers() const { return num_registers_; }
  int output_reg() const { return output_reg_; }
  const std::vector<BcInst>& code() const { return code_; }
  // True iff the program contains surveillance label ops (instrumented
  // compile); such code must run on the surveillance runner.
  bool instrumented() const { return instrumented_; }

  std::string ToString() const;

 private:
  friend BytecodeProgram CompileToBytecode(const Program& program,
                                           const BcSurveillance* surveillance);
  int num_inputs_ = 0;
  int num_registers_ = 0;
  int output_reg_ = 0;
  bool instrumented_ = false;
  std::vector<BcInst> code_;
};

// Compiles a flowchart program; with non-null `surveillance`, weaves the
// label ops of the instrumented semantics into each box's chunk. Throws
// BytecodeError if the program fails validation — compiling an unvalidated
// program previously asserted, which compiled to nothing in Release builds.
BytecodeProgram CompileToBytecode(const Program& program,
                                  const BcSurveillance* surveillance);
inline BytecodeProgram CompileToBytecode(const Program& program) {
  return CompileToBytecode(program, nullptr);
}

// Executes with semantics identical to RunProgram on the source flowchart
// (same output, steps, halted flag, and halt_box). Throws ArityError on an
// input/arity mismatch (previously an assert, i.e. an out-of-bounds read in
// Release builds) and BytecodeError on instrumented code.
ExecResult RunBytecode(const BytecodeProgram& bytecode, InputView input,
                       StepCount fuel = kDefaultFuel);

// Same, with caller-supplied scratch: no per-call allocation. The scratch is
// resized as needed and may be reused across programs.
ExecResult RunBytecode(const BytecodeProgram& bytecode, InputView input, BcScratch& scratch,
                       StepCount fuel = kDefaultFuel);

}  // namespace secpol

#endif  // SECPOL_SRC_FLOWCHART_BYTECODE_H_
