#include "src/flowchart/dot.h"

namespace secpol {

namespace {

std::string EscapeLabel(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

}  // namespace

std::string ProgramToDot(const Program& program) {
  // Built by append throughout: GCC 12's -Wrestrict false-fires on
  // char* + std::string chains when inlined at -O3 (PR 105651).
  auto name_of = [&program](int id) { return program.VarName(id); };
  std::string out = "digraph \"";
  out += EscapeLabel(program.name());
  out += "\" {\n";
  out += "  node [fontname=\"monospace\"];\n";
  for (int i = 0; i < program.num_boxes(); ++i) {
    const Box& box = program.box(i);
    std::string id = "b";
    id += std::to_string(i);
    switch (box.kind) {
      case Box::Kind::kStart:
        out += "  ";
        out += id;
        out += " [shape=oval, label=\"START\"];\n";
        out += "  ";
        out += id;
        out += " -> b";
        out += std::to_string(box.next);
        out += ";\n";
        break;
      case Box::Kind::kAssign: {
        std::string label = program.VarName(box.var);
        label += " <- ";
        label += box.expr.ToString(name_of);
        out += "  ";
        out += id;
        out += " [shape=box, label=\"";
        out += EscapeLabel(label);
        out += "\"];\n";
        out += "  ";
        out += id;
        out += " -> b";
        out += std::to_string(box.next);
        out += ";\n";
        break;
      }
      case Box::Kind::kDecision:
        out += "  ";
        out += id;
        out += " [shape=diamond, label=\"";
        out += EscapeLabel(box.predicate.ToString(name_of));
        out += "\"];\n";
        out += "  ";
        out += id;
        out += " -> b";
        out += std::to_string(box.true_next);
        out += " [label=\"T\"];\n";
        out += "  ";
        out += id;
        out += " -> b";
        out += std::to_string(box.false_next);
        out += " [label=\"F\"];\n";
        break;
      case Box::Kind::kHalt:
        out += "  ";
        out += id;
        out += " [shape=oval, label=\"HALT\"];\n";
        break;
    }
  }
  out += "}\n";
  return out;
}

}  // namespace secpol
