#include "src/flowchart/dot.h"

namespace secpol {

namespace {

std::string EscapeLabel(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

}  // namespace

std::string ProgramToDot(const Program& program) {
  auto name_of = [&program](int id) { return program.VarName(id); };
  std::string out = "digraph \"" + EscapeLabel(program.name()) + "\" {\n";
  out += "  node [fontname=\"monospace\"];\n";
  for (int i = 0; i < program.num_boxes(); ++i) {
    const Box& box = program.box(i);
    const std::string id = "b" + std::to_string(i);
    switch (box.kind) {
      case Box::Kind::kStart:
        out += "  " + id + " [shape=oval, label=\"START\"];\n";
        out += "  " + id + " -> b" + std::to_string(box.next) + ";\n";
        break;
      case Box::Kind::kAssign:
        out += "  " + id + " [shape=box, label=\"" +
               EscapeLabel(program.VarName(box.var) + " <- " + box.expr.ToString(name_of)) +
               "\"];\n";
        out += "  " + id + " -> b" + std::to_string(box.next) + ";\n";
        break;
      case Box::Kind::kDecision:
        out += "  " + id + " [shape=diamond, label=\"" +
               EscapeLabel(box.predicate.ToString(name_of)) + "\"];\n";
        out += "  " + id + " -> b" + std::to_string(box.true_next) + " [label=\"T\"];\n";
        out += "  " + id + " -> b" + std::to_string(box.false_next) + " [label=\"F\"];\n";
        break;
      case Box::Kind::kHalt:
        out += "  " + id + " [shape=oval, label=\"HALT\"];\n";
        break;
    }
  }
  out += "}\n";
  return out;
}

}  // namespace secpol
