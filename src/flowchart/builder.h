// Fluent construction of flowchart programs from C++.
//
// The builder appends boxes in straight-line order and lets tests and
// examples express the paper's witness programs compactly:
//
//   ProgramBuilder b("witness", {"x1", "x2"}, {});
//   int d = b.Decision(Ne(V(0), C(0)));
//   int t = b.Assign(b.OutputVar(), C(1));
//   int e = b.Assign(b.OutputVar(), C(2));
//   b.SetBranches(d, t, e);
//   b.Goto(t, b.HaltBox());  ...
//
// Most users should prefer the flowlang front end; the builder exists for
// programs whose graph structure is not expressible as structured code.

#ifndef SECPOL_SRC_FLOWCHART_BUILDER_H_
#define SECPOL_SRC_FLOWCHART_BUILDER_H_

#include <string>
#include <vector>

#include "src/flowchart/program.h"

namespace secpol {

class ProgramBuilder {
 public:
  ProgramBuilder(std::string name, std::vector<std::string> input_names,
                 std::vector<std::string> local_names);

  // Variable lookup.
  int Var(const std::string& name) const;
  int OutputVar() const { return program_.output_var(); }

  // Box creation. Successor edges default to "the next box appended", which
  // makes straight-line code read naturally; use Goto/SetBranches to rewire.
  int Start();
  int Assign(int var, Expr expr);
  int Decision(Expr predicate);
  int HaltBox();

  // Rewires the unconditional successor of `box` (start or assign).
  void Goto(int box, int target);
  // Rewires both branches of a decision box.
  void SetBranches(int decision, int true_target, int false_target);

  // Finalizes: resolves "fall-through" edges (-2 placeholders) to the next
  // appended box, validates, and returns the program. Aborts on invalid
  // structure (builder misuse is a programming error).
  Program Build();

 private:
  Program program_;
  bool built_ = false;
};

}  // namespace secpol

#endif  // SECPOL_SRC_FLOWCHART_BUILDER_H_
