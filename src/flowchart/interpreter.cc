#include "src/flowchart/interpreter.h"

#include <string>
#include <vector>

namespace secpol {

namespace {

void CheckArity(const Program& program, InputView input) {
  if (static_cast<int>(input.size()) != program.num_inputs()) {
    throw ArityError("program '" + program.name() + "' expects " +
                     std::to_string(program.num_inputs()) + " inputs, got " +
                     std::to_string(input.size()));
  }
}

}  // namespace

ExecResult RunProgram(const Program& program, InputView input, StepCount fuel) {
  CheckArity(program, input);
  std::vector<Value> env(program.num_vars(), 0);
  for (int i = 0; i < program.num_inputs(); ++i) {
    env[i] = input[i];
  }

  ExecResult result;
  int pc = program.start_box();
  while (result.steps < fuel) {
    ++result.steps;
    const Box& box = program.box(pc);
    switch (box.kind) {
      case Box::Kind::kStart:
        pc = box.next;
        break;
      case Box::Kind::kAssign:
        env[box.var] = box.expr.Eval(env);
        pc = box.next;
        break;
      case Box::Kind::kDecision:
        pc = box.predicate.Eval(env) != 0 ? box.true_next : box.false_next;
        break;
      case Box::Kind::kHalt:
        result.output = env[program.output_var()];
        result.halted = true;
        result.halt_box = pc;
        return result;
    }
  }
  return result;  // fuel exhausted
}

std::vector<int> ExecFootprint::BoxIds() const {
  std::vector<int> out;
  for (size_t b = 0; b < boxes.size(); ++b) {
    if (boxes[b]) {
      out.push_back(static_cast<int>(b));
    }
  }
  return out;
}

ExecResult RunProgramTracked(const Program& program, InputView input, ExecFootprint* footprint,
                             StepCount fuel) {
  CheckArity(program, input);
  if (footprint == nullptr) {
    throw std::invalid_argument("RunProgramTracked requires a footprint sink");
  }
  std::vector<Value> env(program.num_vars(), 0);
  for (int i = 0; i < program.num_inputs(); ++i) {
    env[i] = input[i];
  }
  footprint->reads = VarSet();
  footprint->boxes.assign(static_cast<size_t>(program.num_boxes()), false);
  // Input variables that have been overwritten no longer carry input data;
  // reading them is not an input read.
  VarSet live_inputs = VarSet::FirstN(program.num_inputs());
  const auto note_reads = [&](const Expr& expr) {
    footprint->reads = footprint->reads.Union(expr.FreeVars().Intersect(live_inputs));
  };

  ExecResult result;
  int pc = program.start_box();
  while (result.steps < fuel) {
    ++result.steps;
    footprint->boxes[pc] = true;
    const Box& box = program.box(pc);
    switch (box.kind) {
      case Box::Kind::kStart:
        pc = box.next;
        break;
      case Box::Kind::kAssign:
        note_reads(box.expr);
        env[box.var] = box.expr.Eval(env);
        if (program.IsInputVar(box.var)) {
          live_inputs.Erase(box.var);
        }
        pc = box.next;
        break;
      case Box::Kind::kDecision:
        note_reads(box.predicate);
        pc = box.predicate.Eval(env) != 0 ? box.true_next : box.false_next;
        break;
      case Box::Kind::kHalt:
        // y is never an input variable (ids place it after all inputs), so
        // reading it at the halt box adds no input dependency of its own.
        result.output = env[program.output_var()];
        result.halted = true;
        result.halt_box = pc;
        return result;
    }
  }
  return result;  // fuel exhausted
}

namespace {

// Recursively enumerates the grid and compares outputs.
bool EquivalentRec(const Program& p1, const Program& p2, const std::vector<Value>& grid_values,
                   std::vector<Value>& input, size_t index, StepCount fuel) {
  if (index == input.size()) {
    const ExecResult r1 = RunProgram(p1, input, fuel);
    const ExecResult r2 = RunProgram(p2, input, fuel);
    if (r1.halted != r2.halted) {
      return false;
    }
    // Both exhausted fuel: equivalent as far as is observable within it.
    return !r1.halted || r1.output == r2.output;
  }
  for (Value v : grid_values) {
    input[index] = v;
    if (!EquivalentRec(p1, p2, grid_values, input, index + 1, fuel)) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool FunctionallyEquivalentOnGrid(const Program& p1, const Program& p2,
                                  const std::vector<Value>& grid_values, StepCount fuel) {
  if (p1.num_inputs() != p2.num_inputs()) {
    return false;
  }
  std::vector<Value> input(p1.num_inputs(), 0);
  if (input.empty()) {
    const ExecResult r1 = RunProgram(p1, input, fuel);
    const ExecResult r2 = RunProgram(p2, input, fuel);
    return r1.halted && r2.halted && r1.output == r2.output;
  }
  return EquivalentRec(p1, p2, grid_values, input, 0, fuel);
}

}  // namespace secpol
