// A conservative flowchart optimizer.
//
// Applies the expression simplifier to every box and short-circuits
// decisions whose predicates fold to constants (their untaken edge is
// rewired away, leaving the box as a pass-through test on a constant — the
// box itself is kept so step counts are preserved exactly). Dead boxes are
// left in place (they cost nothing and box ids stay stable).
//
// Guarantees, enforced by tests:
//   * functional equivalence (output AND step count AND halt box);
//   * surveillance labels never grow — simplification only ever removes
//     dependencies (x * 0, Select(c, e, e), ...), so the optimized program's
//     surveillance mechanism is at least as complete as the original's.

#ifndef SECPOL_SRC_FLOWCHART_OPTIMIZE_H_
#define SECPOL_SRC_FLOWCHART_OPTIMIZE_H_

#include "src/flowchart/program.h"

namespace secpol {

struct OptimizeStats {
  int expressions_simplified = 0;
  int predicates_folded = 0;
};

// Returns the optimized program (same box count and numbering).
Program OptimizeProgram(const Program& program, OptimizeStats* stats = nullptr);

}  // namespace secpol

#endif  // SECPOL_SRC_FLOWCHART_OPTIMIZE_H_
