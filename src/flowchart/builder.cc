#include "src/flowchart/builder.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace secpol {

namespace {
// Sentinel edge meaning "the box appended after this one".
constexpr int kFallThrough = -2;
}  // namespace

ProgramBuilder::ProgramBuilder(std::string name, std::vector<std::string> input_names,
                               std::vector<std::string> local_names)
    : program_(std::move(name), std::move(input_names), std::move(local_names)) {
  Start();
}

int ProgramBuilder::Var(const std::string& name) const {
  const int id = program_.FindVar(name);
  assert(id >= 0 && "unknown variable name");
  return id;
}

int ProgramBuilder::Start() {
  Box box;
  box.kind = Box::Kind::kStart;
  box.next = kFallThrough;
  return program_.AddBox(box);
}

int ProgramBuilder::Assign(int var, Expr expr) {
  Box box;
  box.kind = Box::Kind::kAssign;
  box.var = var;
  box.expr = std::move(expr);
  box.next = kFallThrough;
  return program_.AddBox(box);
}

int ProgramBuilder::Decision(Expr predicate) {
  Box box;
  box.kind = Box::Kind::kDecision;
  box.predicate = std::move(predicate);
  box.true_next = kFallThrough;
  box.false_next = kFallThrough;
  return program_.AddBox(box);
}

int ProgramBuilder::HaltBox() {
  Box box;
  box.kind = Box::Kind::kHalt;
  return program_.AddBox(box);
}

void ProgramBuilder::Goto(int box, int target) {
  Box& b = program_.mutable_box(box);
  assert(b.kind == Box::Kind::kStart || b.kind == Box::Kind::kAssign);
  b.next = target;
}

void ProgramBuilder::SetBranches(int decision, int true_target, int false_target) {
  Box& b = program_.mutable_box(decision);
  assert(b.kind == Box::Kind::kDecision);
  b.true_next = true_target;
  b.false_next = false_target;
}

Program ProgramBuilder::Build() {
  assert(!built_);
  built_ = true;
  // Resolve fall-through edges.
  for (int i = 0; i < program_.num_boxes(); ++i) {
    Box& box = program_.mutable_box(i);
    auto resolve = [&](int& edge) {
      if (edge == kFallThrough) {
        edge = i + 1;
      }
    };
    switch (box.kind) {
      case Box::Kind::kStart:
      case Box::Kind::kAssign:
        resolve(box.next);
        break;
      case Box::Kind::kDecision:
        resolve(box.true_next);
        resolve(box.false_next);
        break;
      case Box::Kind::kHalt:
        break;
    }
  }
  Result<bool> valid = program_.Validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "ProgramBuilder produced invalid program '%s': %s\n%s\n",
                 program_.name().c_str(), valid.error().ToString().c_str(),
                 program_.ToString().c_str());
    std::abort();
  }
  return std::move(program_);
}

}  // namespace secpol
