// The plain (unprotected) flowchart interpreter.
//
// Running a flowchart yields the value of y at the halt box plus the number
// of steps executed — the two-component output (value, time) of Section 3.
// Whether "time" is released to the user is a property of the mechanism and
// the observability assumption, not of the interpreter; we always record it.

#ifndef SECPOL_SRC_FLOWCHART_INTERPRETER_H_
#define SECPOL_SRC_FLOWCHART_INTERPRETER_H_

#include <stdexcept>
#include <string>
#include <vector>

#include "src/flowchart/program.h"
#include "src/util/value.h"
#include "src/util/var_set.h"

namespace secpol {

// Fail-closed error for input tuples whose size does not match the
// program's arity. Crosses layers (manifest-derived grids, wire-submitted
// jobs, bytecode callers), so it is a typed throw — never a debug-only
// assert that would become an out-of-bounds read in Release builds. The
// sweep kernel's exception barrier turns it into an aborted verdict.
class ArityError : public std::runtime_error {
 public:
  explicit ArityError(const std::string& what) : std::runtime_error(what) {}
};

// Default fuel bound. Programs in this library are total by construction;
// the bound exists to turn accidental nontermination into a detectable error
// instead of a hang.
inline constexpr StepCount kDefaultFuel = 1u << 22;

struct ExecResult {
  Value output = 0;       // value of y at halt
  StepCount steps = 0;    // boxes executed (including start and halt)
  bool halted = false;    // false => fuel exhausted
  int halt_box = -1;      // which halt box terminated execution
};

// Executes `program` on `input` (input.size() must equal num_inputs()).
ExecResult RunProgram(const Program& program, InputView input, StepCount fuel = kDefaultFuel);

// What one tracked execution consumed: a sound over-approximation of the
// input coordinates the run depended on, and the set of boxes it executed.
//
// `reads` contains every input variable that still held its initial input
// value when a box referencing it executed (reads are over-approximated per
// executed box via FreeVars, which is sound: extra coordinates only weaken
// the certificate below, never break it). The dependency theorem the
// class sweep relies on (DESIGN.md §14): execution is a deterministic
// function of the start box, the contents of the executed boxes, and the
// values of the coordinates in `reads` — so two inputs agreeing on `reads`
// produce byte-identical traces, outcomes, and step counts.
//
// `boxes[b]` is true iff box b executed at least once. An edit to a program
// box outside this set cannot change the run (the incremental-recheck memo
// keys on exactly this, via the per-node digest tree).
struct ExecFootprint {
  VarSet reads;
  std::vector<bool> boxes;

  // The executed boxes as a sorted id list (the memo-friendly form).
  std::vector<int> BoxIds() const;
};

// RunProgram plus the execution's footprint. The traced run costs a FreeVars
// walk per executed box (the same price the surveillance interpreter already
// pays per step), so it is reserved for class representatives, not the grid
// hot path.
ExecResult RunProgramTracked(const Program& program, InputView input, ExecFootprint* footprint,
                             StepCount fuel = kDefaultFuel);

// Exhaustively checks that two programs compute the same output function on
// the cross product of `grid_values` assigned to each input (both programs
// must have the same arity). Returns true iff functionally equivalent on the
// grid. Used to audit the Section 4/5 program transforms.
bool FunctionallyEquivalentOnGrid(const Program& p1, const Program& p2,
                                  const std::vector<Value>& grid_values,
                                  StepCount fuel = kDefaultFuel);

}  // namespace secpol

#endif  // SECPOL_SRC_FLOWCHART_INTERPRETER_H_
