// The plain (unprotected) flowchart interpreter.
//
// Running a flowchart yields the value of y at the halt box plus the number
// of steps executed — the two-component output (value, time) of Section 3.
// Whether "time" is released to the user is a property of the mechanism and
// the observability assumption, not of the interpreter; we always record it.

#ifndef SECPOL_SRC_FLOWCHART_INTERPRETER_H_
#define SECPOL_SRC_FLOWCHART_INTERPRETER_H_

#include "src/flowchart/program.h"
#include "src/util/value.h"

namespace secpol {

// Default fuel bound. Programs in this library are total by construction;
// the bound exists to turn accidental nontermination into a detectable error
// instead of a hang.
inline constexpr StepCount kDefaultFuel = 1u << 22;

struct ExecResult {
  Value output = 0;       // value of y at halt
  StepCount steps = 0;    // boxes executed (including start and halt)
  bool halted = false;    // false => fuel exhausted
  int halt_box = -1;      // which halt box terminated execution
};

// Executes `program` on `input` (input.size() must equal num_inputs()).
ExecResult RunProgram(const Program& program, InputView input, StepCount fuel = kDefaultFuel);

// Exhaustively checks that two programs compute the same output function on
// the cross product of `grid_values` assigned to each input (both programs
// must have the same arity). Returns true iff functionally equivalent on the
// grid. Used to audit the Section 4/5 program transforms.
bool FunctionallyEquivalentOnGrid(const Program& p1, const Program& p2,
                                  const std::vector<Value>& grid_values,
                                  StepCount fuel = kDefaultFuel);

}  // namespace secpol

#endif  // SECPOL_SRC_FLOWCHART_INTERPRETER_H_
