// The flowchart program model of Section 3.
//
// "A flowchart F is a finite connected directed graph whose nodes are boxes"
// of four kinds: start, decision, assignment, halt. Variables are the input
// variables x1..xk, program variables r1..rm, and the single output variable
// y. Execution begins at the unique start box with program variables and y
// initialized to 0 and inputs bound to the input tuple.
//
// Variable ids are assigned densely:
//   [0, num_inputs)                          the inputs x1..xk
//   [num_inputs, num_inputs + num_locals)    the program variables r1..rm
//   num_inputs + num_locals                  the output variable y

#ifndef SECPOL_SRC_FLOWCHART_PROGRAM_H_
#define SECPOL_SRC_FLOWCHART_PROGRAM_H_

#include <string>
#include <vector>

#include "src/expr/expr.h"
#include "src/util/fingerprint.h"
#include "src/util/result.h"
#include "src/util/value.h"
#include "src/util/var_set.h"

namespace secpol {

// One node of the flowchart graph. Which fields are meaningful depends on
// `kind`; `next` edges are indices into Program::boxes.
struct Box {
  enum class Kind { kStart, kAssign, kDecision, kHalt };

  Kind kind = Kind::kHalt;

  // kStart, kAssign: the unconditional successor.
  int next = -1;

  // kAssign: `var <- expr`.
  int var = -1;
  Expr expr;

  // kDecision: branch to true_next iff predicate evaluates nonzero.
  Expr predicate;
  int true_next = -1;
  int false_next = -1;
};

// One leaf of a program's digest tree: the content hash of a single box
// (its kind, edges, assigned variable, and expression).
struct NodeFingerprint {
  int box = -1;
  Fingerprint digest;

  bool operator==(const NodeFingerprint& other) const {
    return box == other.box && digest == other.digest;
  }
};

// A compositional fingerprint of a program: a skeleton digest (name, arity,
// variable names, start box, box count) plus one digest per box, combined
// Merkle-style into a root. Two trees with equal roots encode equal
// programs; two trees with equal skeletons but differing node digests
// pinpoint exactly WHICH boxes changed — the changed-dependency set the
// incremental recheck (DESIGN.md §14) prunes with. Computed on demand (the
// Program is mutable via mutable_box, so there is no safe place to cache).
//
// Note the root is deliberately NOT the same value as ContentFingerprint():
// the flat encoding is pinned by cache-key goldens and must not change; the
// tree is a separate, additive construction.
struct ProgramDigestTree {
  Fingerprint skeleton;
  std::vector<NodeFingerprint> nodes;  // one per box, in box-id order
  Fingerprint root;
};

// The box ids whose digests differ between the two trees (including ids
// present in only one tree, when box counts differ). A skeleton change is
// reported separately by comparing `skeleton` members — callers that key on
// box edits must treat a skeleton change as "everything changed".
std::vector<int> ChangedNodes(const ProgramDigestTree& a, const ProgramDigestTree& b);

class Program {
 public:
  Program(std::string name, std::vector<std::string> input_names,
          std::vector<std::string> local_names);

  const std::string& name() const { return name_; }
  int num_inputs() const { return num_inputs_; }
  int num_locals() const { return num_locals_; }
  // Total number of variables including the output.
  int num_vars() const { return num_inputs_ + num_locals_ + 1; }
  // The id of the output variable y.
  int output_var() const { return num_inputs_ + num_locals_; }
  bool IsInputVar(int id) const { return id >= 0 && id < num_inputs_; }

  const std::string& VarName(int id) const { return var_names_[id]; }
  const std::vector<std::string>& var_names() const { return var_names_; }
  // Returns the id of the named variable, or -1.
  int FindVar(const std::string& name) const;

  int num_boxes() const { return static_cast<int>(boxes_.size()); }
  const Box& box(int id) const { return boxes_[id]; }
  Box& mutable_box(int id) { return boxes_[id]; }
  const std::vector<Box>& boxes() const { return boxes_; }

  int start_box() const { return start_box_; }

  // Appends a box and returns its id. The first kStart box appended becomes
  // the start box.
  int AddBox(Box box);

  // Structural validation: exactly one start box, all edges in range, all
  // variable ids in range, no assignment to an input variable, halt boxes
  // reachable, every non-halt box has successors.
  Result<bool> Validate() const;

  // The set of input ids (as VarSet) whose variables occur anywhere in the
  // program text. Useful diagnostics.
  VarSet ReferencedInputs() const;

  // Human-readable listing of the boxes.
  std::string ToString() const;

  // Canonical serialization hook for content addressing: appends a tagged
  // encoding of everything this program *is* — name, variable names, box
  // graph (kinds, edges, assigned variables, expressions), start box. Names
  // are included deliberately: they appear in mechanism names and violation
  // notices, and the batch service's cache-key soundness argument (DESIGN.md
  // §9) requires the fingerprint to cover everything that can reach report
  // text. Pinned by golden hashes in tests/fingerprint_test.cc.
  void AppendFingerprint(Fingerprinter* fp) const;

  // Convenience: the digest of AppendFingerprint into a fresh Fingerprinter.
  Fingerprint ContentFingerprint() const;

  // The compositional digest tree (see ProgramDigestTree above).
  ProgramDigestTree DigestTree() const;
  // The digest of one box alone (the tree's leaf for `box_id`).
  Fingerprint BoxDigest(int box_id) const;

 private:
  std::string name_;
  int num_inputs_;
  int num_locals_;
  std::vector<std::string> var_names_;
  std::vector<Box> boxes_;
  int start_box_ = -1;
};

}  // namespace secpol

#endif  // SECPOL_SRC_FLOWCHART_PROGRAM_H_
