// Graphviz DOT export of flowchart programs, for documentation and debugging.

#ifndef SECPOL_SRC_FLOWCHART_DOT_H_
#define SECPOL_SRC_FLOWCHART_DOT_H_

#include <string>

#include "src/flowchart/program.h"

namespace secpol {

// Renders `program` as a DOT digraph. Decision boxes become diamonds,
// assignments rectangles, start/halt ovals.
std::string ProgramToDot(const Program& program);

}  // namespace secpol

#endif  // SECPOL_SRC_FLOWCHART_DOT_H_
