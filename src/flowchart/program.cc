#include "src/flowchart/program.h"

#include <algorithm>
#include <deque>

namespace secpol {

Program::Program(std::string name, std::vector<std::string> input_names,
                 std::vector<std::string> local_names)
    : name_(std::move(name)),
      num_inputs_(static_cast<int>(input_names.size())),
      num_locals_(static_cast<int>(local_names.size())) {
  var_names_ = std::move(input_names);
  for (auto& local : local_names) {
    var_names_.push_back(std::move(local));
  }
  var_names_.push_back("y");
}

int Program::FindVar(const std::string& name) const {
  for (int i = 0; i < num_vars(); ++i) {
    if (var_names_[i] == name) {
      return i;
    }
  }
  return -1;
}

int Program::AddBox(Box box) {
  const int id = static_cast<int>(boxes_.size());
  if (box.kind == Box::Kind::kStart && start_box_ < 0) {
    start_box_ = id;
  }
  boxes_.push_back(std::move(box));
  return id;
}

Result<bool> Program::Validate() const {
  if (num_vars() > VarSet::kMaxIndex + 1) {
    return Error{"too many variables (limit 64)"};
  }
  int start_count = 0;
  for (const Box& box : boxes_) {
    if (box.kind == Box::Kind::kStart) {
      ++start_count;
    }
  }
  if (start_count != 1) {
    return Error{"program must have exactly one start box, found " +
                 std::to_string(start_count)};
  }
  auto edge_ok = [&](int target) { return target >= 0 && target < num_boxes(); };
  auto vars_ok = [&](const Expr& e) { return e.FreeVars().SubsetOf(VarSet::FirstN(num_vars())); };

  bool has_halt = false;
  for (int i = 0; i < num_boxes(); ++i) {
    const Box& box = boxes_[i];
    const std::string where = "box " + std::to_string(i) + ": ";
    switch (box.kind) {
      case Box::Kind::kStart:
        if (!edge_ok(box.next)) {
          return Error{where + "start has invalid successor"};
        }
        break;
      case Box::Kind::kAssign:
        if (!edge_ok(box.next)) {
          return Error{where + "assignment has invalid successor"};
        }
        if (box.var < 0 || box.var >= num_vars()) {
          return Error{where + "assignment to invalid variable id"};
        }
        if (IsInputVar(box.var)) {
          return Error{where + "assignment to input variable " + VarName(box.var)};
        }
        if (!vars_ok(box.expr)) {
          return Error{where + "expression references out-of-range variable"};
        }
        break;
      case Box::Kind::kDecision:
        if (!edge_ok(box.true_next) || !edge_ok(box.false_next)) {
          return Error{where + "decision has invalid successor"};
        }
        if (!vars_ok(box.predicate)) {
          return Error{where + "predicate references out-of-range variable"};
        }
        break;
      case Box::Kind::kHalt:
        has_halt = true;
        break;
    }
  }
  if (!has_halt) {
    return Error{"program has no halt box"};
  }

  // Reachability: some halt box must be reachable from start.
  std::vector<bool> seen(boxes_.size(), false);
  std::deque<int> queue = {start_box_};
  seen[start_box_] = true;
  bool halt_reachable = false;
  while (!queue.empty()) {
    const int id = queue.front();
    queue.pop_front();
    const Box& box = boxes_[id];
    auto visit = [&](int target) {
      if (target >= 0 && !seen[target]) {
        seen[target] = true;
        queue.push_back(target);
      }
    };
    switch (box.kind) {
      case Box::Kind::kStart:
      case Box::Kind::kAssign:
        visit(box.next);
        break;
      case Box::Kind::kDecision:
        visit(box.true_next);
        visit(box.false_next);
        break;
      case Box::Kind::kHalt:
        halt_reachable = true;
        break;
    }
  }
  if (!halt_reachable) {
    return Error{"no halt box is reachable from start"};
  }
  return true;
}

VarSet Program::ReferencedInputs() const {
  VarSet inputs = VarSet::FirstN(num_inputs_);
  VarSet seen;
  for (const Box& box : boxes_) {
    switch (box.kind) {
      case Box::Kind::kAssign:
        seen = seen.Union(box.expr.FreeVars());
        break;
      case Box::Kind::kDecision:
        seen = seen.Union(box.predicate.FreeVars());
        break;
      default:
        break;
    }
  }
  return seen.Intersect(inputs);
}

std::string Program::ToString() const {
  auto name_of = [this](int id) { return VarName(id); };
  std::string out = "program " + name_ + " (start=" + std::to_string(start_box_) + ")\n";
  for (int i = 0; i < num_boxes(); ++i) {
    const Box& box = boxes_[i];
    out += "  [" + std::to_string(i) + "] ";
    switch (box.kind) {
      case Box::Kind::kStart:
        out += "START -> " + std::to_string(box.next);
        break;
      case Box::Kind::kAssign:
        out += VarName(box.var) + " <- " + box.expr.ToString(name_of) + " -> " +
               std::to_string(box.next);
        break;
      case Box::Kind::kDecision:
        out += "if " + box.predicate.ToString(name_of) + " -> " + std::to_string(box.true_next) +
               " else -> " + std::to_string(box.false_next);
        break;
      case Box::Kind::kHalt:
        out += "HALT";
        break;
    }
    out += "\n";
  }
  return out;
}

namespace {

// The canonical encoding of one box. Shared by the flat program fingerprint
// (golden-pinned: this must keep writing exactly the bytes it always has)
// and the per-box leaves of the digest tree.
void AppendBoxFingerprint(const Box& box, Fingerprinter* fp) {
  fp->Tag("box");
  fp->I32(static_cast<int>(box.kind));
  switch (box.kind) {
    case Box::Kind::kStart:
      fp->I32(box.next);
      break;
    case Box::Kind::kAssign:
      fp->I32(box.var);
      box.expr.AppendFingerprint(fp);
      fp->I32(box.next);
      break;
    case Box::Kind::kDecision:
      box.predicate.AppendFingerprint(fp);
      fp->I32(box.true_next);
      fp->I32(box.false_next);
      break;
    case Box::Kind::kHalt:
      break;
  }
}

}  // namespace

void Program::AppendFingerprint(Fingerprinter* fp) const {
  fp->Tag("program");
  fp->Str(name_);
  fp->I32(num_inputs_);
  fp->I32(num_locals_);
  fp->U64(var_names_.size());
  for (const std::string& name : var_names_) {
    fp->Str(name);
  }
  fp->I32(start_box_);
  fp->U64(boxes_.size());
  for (const Box& box : boxes_) {
    AppendBoxFingerprint(box, fp);
  }
}

Fingerprint Program::ContentFingerprint() const {
  Fingerprinter fp;
  AppendFingerprint(&fp);
  return fp.Digest();
}

Fingerprint Program::BoxDigest(int box_id) const {
  Fingerprinter fp;
  AppendBoxFingerprint(boxes_[static_cast<size_t>(box_id)], &fp);
  return fp.Digest();
}

ProgramDigestTree Program::DigestTree() const {
  ProgramDigestTree tree;

  Fingerprinter skeleton;
  skeleton.Tag("program-skeleton");
  skeleton.Str(name_);
  skeleton.I32(num_inputs_);
  skeleton.I32(num_locals_);
  skeleton.U64(var_names_.size());
  for (const std::string& name : var_names_) {
    skeleton.Str(name);
  }
  skeleton.I32(start_box_);
  skeleton.U64(boxes_.size());
  tree.skeleton = skeleton.Digest();

  tree.nodes.reserve(boxes_.size());
  Fingerprinter root;
  root.Tag("program-tree");
  root.Nested(tree.skeleton);
  for (int b = 0; b < num_boxes(); ++b) {
    const Fingerprint leaf = BoxDigest(b);
    tree.nodes.push_back(NodeFingerprint{b, leaf});
    root.Nested(leaf);
  }
  tree.root = root.Digest();
  return tree;
}

std::vector<int> ChangedNodes(const ProgramDigestTree& a, const ProgramDigestTree& b) {
  std::vector<int> changed;
  const size_t common = std::min(a.nodes.size(), b.nodes.size());
  for (size_t i = 0; i < common; ++i) {
    if (!(a.nodes[i] == b.nodes[i])) {
      changed.push_back(static_cast<int>(i));
    }
  }
  for (size_t i = common; i < std::max(a.nodes.size(), b.nodes.size()); ++i) {
    changed.push_back(static_cast<int>(i));
  }
  return changed;
}

}  // namespace secpol
