#include "src/flowchart/bytecode.h"

#include <string>

#include "src/expr/arith.h"

namespace secpol {

namespace {

// Compiles expressions for one box into three-address code. Temporaries are
// allocated after the program's variables and recycled per box.
class ExprCompiler {
 public:
  ExprCompiler(int first_temp, std::vector<BcInst>* code)
      : first_temp_(first_temp), next_temp_(first_temp), code_(code) {}

  int max_register_used() const { return max_register_used_; }

  // Compiles `expr`; the result lands in `desired_dst` if >= 0, otherwise in
  // any register (possibly the variable's own register for leaves). Returns
  // the register holding the result.
  int Compile(const Expr& expr, int desired_dst) {
    switch (expr.kind()) {
      case Expr::Kind::kConst: {
        const int dst = Alloc(desired_dst);
        BcInst inst;
        inst.op = BcOp::kConst;
        inst.dst = dst;
        inst.imm = expr.const_value();
        code_->push_back(inst);
        return dst;
      }
      case Expr::Kind::kVar: {
        if (desired_dst < 0 || desired_dst == expr.var_id()) {
          Note(expr.var_id());
          return expr.var_id();
        }
        BcInst inst;
        inst.op = BcOp::kMov;
        inst.dst = desired_dst;
        inst.a = expr.var_id();
        code_->push_back(inst);
        Note(desired_dst);
        return desired_dst;
      }
      case Expr::Kind::kUnary: {
        const int a = Compile(expr.operand(0), -1);
        const int dst = Alloc(desired_dst);
        BcInst inst;
        inst.op = BcOp::kUnary;
        inst.unary_op = expr.unary_op();
        inst.dst = dst;
        inst.a = a;
        code_->push_back(inst);
        return dst;
      }
      case Expr::Kind::kBinary: {
        const int a = Compile(expr.operand(0), -1);
        const int b = Compile(expr.operand(1), -1);
        const int dst = Alloc(desired_dst);
        BcInst inst;
        inst.op = BcOp::kBinary;
        inst.binary_op = expr.binary_op();
        inst.dst = dst;
        inst.a = a;
        inst.b = b;
        code_->push_back(inst);
        return dst;
      }
      case Expr::Kind::kSelect: {
        const int a = Compile(expr.operand(0), -1);
        const int b = Compile(expr.operand(1), -1);
        const int c = Compile(expr.operand(2), -1);
        const int dst = Alloc(desired_dst);
        BcInst inst;
        inst.op = BcOp::kSelect;
        inst.dst = dst;
        inst.a = a;
        inst.b = b;
        inst.c = c;
        code_->push_back(inst);
        return dst;
      }
    }
    return 0;
  }

 private:
  int Alloc(int desired_dst) {
    const int reg = desired_dst >= 0 ? desired_dst : next_temp_++;
    Note(reg);
    return reg;
  }
  void Note(int reg) {
    if (reg > max_register_used_) {
      max_register_used_ = reg;
    }
  }

  int first_temp_;
  int next_temp_;
  int max_register_used_ = 0;
  std::vector<BcInst>* code_;
};

}  // namespace

BytecodeProgram CompileToBytecode(const Program& program, const BcSurveillance* surveillance) {
  if (const Result<bool> valid = program.Validate(); !valid.ok()) {
    throw BytecodeError("cannot compile invalid program '" + program.name() +
                        "': " + valid.error().ToString());
  }
  if (surveillance != nullptr && surveillance->scoped_pc &&
      static_cast<int>(surveillance->ipdom.size()) != program.num_boxes()) {
    throw BytecodeError("scoped-pc instrumentation needs one ipdom entry per box");
  }
  BytecodeProgram out;
  out.num_inputs_ = program.num_inputs();
  out.output_reg_ = program.output_var();
  out.instrumented_ = surveillance != nullptr;

  // Pass 1: compile each box into a chunk with box-indexed jump targets.
  // Instrumented chunks lead with the box's label ops (after the scoped-pc
  // restore, which must run whenever control reaches the box), mirroring the
  // reference interpreter's order: restore, charge, label update, evaluate.
  struct Chunk {
    std::vector<BcInst> code;  // targets hold BOX ids, patched in pass 2
  };
  std::vector<Chunk> chunks(static_cast<size_t>(program.num_boxes()));
  int max_register = program.num_vars() - 1;

  for (int b = 0; b < program.num_boxes(); ++b) {
    const Box& box = program.box(b);
    Chunk& chunk = chunks[static_cast<size_t>(b)];
    ExprCompiler exprs(program.num_vars(), &chunk.code);
    if (surveillance != nullptr && surveillance->scoped_pc) {
      BcInst restore;
      restore.op = BcOp::kLabRestore;
      chunk.code.push_back(restore);
    }
    switch (box.kind) {
      case Box::Kind::kStart: {
        BcInst jump;
        jump.op = BcOp::kJump;
        jump.target = box.next;
        chunk.code.push_back(jump);
        break;
      }
      case Box::Kind::kAssign: {
        if (surveillance != nullptr) {
          BcInst lab;
          lab.op = surveillance->high_water ? BcOp::kLabAssignHW : BcOp::kLabAssign;
          lab.dst = box.var;
          lab.vars_mask = box.expr.FreeVars().bits();
          chunk.code.push_back(lab);
        }
        // The root write happens last, so compiling straight into the
        // destination register still reads the old value in the operands.
        exprs.Compile(box.expr, box.var);
        BcInst jump;
        jump.op = BcOp::kJump;
        jump.target = box.next;
        chunk.code.push_back(jump);
        break;
      }
      case Box::Kind::kDecision: {
        if (surveillance != nullptr) {
          BcInst lab;
          lab.op = surveillance->checked_tests ? BcOp::kLabTestChecked : BcOp::kLabTest;
          lab.vars_mask = box.predicate.FreeVars().bits();
          lab.b = surveillance->scoped_pc ? surveillance->ipdom[static_cast<size_t>(b)] : -1;
          chunk.code.push_back(lab);
        }
        const int test = exprs.Compile(box.predicate, -1);
        BcInst branch;
        branch.op = BcOp::kBranchZ;
        branch.a = test;
        branch.target = box.false_next;
        chunk.code.push_back(branch);
        BcInst jump;
        jump.op = BcOp::kJump;
        jump.target = box.true_next;
        chunk.code.push_back(jump);
        break;
      }
      case Box::Kind::kHalt: {
        BcInst halt;
        halt.op = surveillance != nullptr ? BcOp::kLabHalt : BcOp::kHalt;
        chunk.code.push_back(halt);
        break;
      }
    }
    if (chunk.code.empty()) {
      throw BytecodeError("box " + std::to_string(b) + " compiled to no instructions");
    }
    chunk.code.front().charges_step = true;
    for (BcInst& inst : chunk.code) {
      inst.source_box = b;
    }
    if (exprs.max_register_used() > max_register) {
      max_register = exprs.max_register_used();
    }
  }
  out.num_registers_ = max_register + 1;

  // Pass 2: lay out chunks (start box first) and patch targets.
  std::vector<int> entry(static_cast<size_t>(program.num_boxes()), 0);
  int offset = 0;
  auto place = [&](int b) {
    entry[static_cast<size_t>(b)] = offset;
    offset += static_cast<int>(chunks[static_cast<size_t>(b)].code.size());
  };
  place(program.start_box());
  for (int b = 0; b < program.num_boxes(); ++b) {
    if (b != program.start_box()) {
      place(b);
    }
  }
  auto append = [&](int b) {
    for (BcInst inst : chunks[static_cast<size_t>(b)].code) {
      if (inst.op == BcOp::kJump || inst.op == BcOp::kBranchZ) {
        inst.target = entry[static_cast<size_t>(inst.target)];
      }
      out.code_.push_back(inst);
    }
  };
  append(program.start_box());
  for (int b = 0; b < program.num_boxes(); ++b) {
    if (b != program.start_box()) {
      append(b);
    }
  }
  return out;
}

ExecResult RunBytecode(const BytecodeProgram& bytecode, InputView input, BcScratch& scratch,
                       StepCount fuel) {
  if (static_cast<int>(input.size()) != bytecode.num_inputs()) {
    throw ArityError("bytecode program expects " + std::to_string(bytecode.num_inputs()) +
                     " inputs, got " + std::to_string(input.size()));
  }
  if (bytecode.instrumented()) {
    throw BytecodeError(
        "instrumented bytecode must run on the surveillance runner, not RunBytecode");
  }
  std::vector<Value>& regs = scratch.regs;
  regs.assign(static_cast<size_t>(bytecode.num_registers()), 0);
  for (int i = 0; i < bytecode.num_inputs(); ++i) {
    regs[static_cast<size_t>(i)] = input[i];
  }
  const BcInst* code = bytecode.code().data();

  ExecResult result;
  int pc = 0;
  while (true) {
    const BcInst& inst = code[pc];
    if (inst.charges_step) {
      if (result.steps >= fuel) {
        return result;  // fuel exhausted, halted stays false
      }
      ++result.steps;
    }
    switch (inst.op) {
      case BcOp::kConst:
        regs[inst.dst] = inst.imm;
        ++pc;
        break;
      case BcOp::kMov:
        regs[inst.dst] = regs[inst.a];
        ++pc;
        break;
      case BcOp::kUnary:
        regs[inst.dst] = EvalUnaryOp(inst.unary_op, regs[inst.a]);
        ++pc;
        break;
      case BcOp::kBinary:
        regs[inst.dst] = EvalBinaryOp(inst.binary_op, regs[inst.a], regs[inst.b]);
        ++pc;
        break;
      case BcOp::kSelect:
        regs[inst.dst] = regs[inst.a] != 0 ? regs[inst.b] : regs[inst.c];
        ++pc;
        break;
      case BcOp::kJump:
        pc = inst.target;
        break;
      case BcOp::kBranchZ:
        pc = regs[inst.a] == 0 ? inst.target : pc + 1;
        break;
      case BcOp::kHalt:
        result.output = regs[bytecode.output_reg()];
        result.halted = true;
        result.halt_box = inst.source_box;
        return result;
      case BcOp::kLabAssign:
      case BcOp::kLabAssignHW:
      case BcOp::kLabTest:
      case BcOp::kLabTestChecked:
      case BcOp::kLabHalt:
      case BcOp::kLabRestore:
        // Unreachable given the instrumented() gate above; fail closed
        // rather than skipping a label op if the gate is ever bypassed.
        throw BytecodeError("label op in plain bytecode at pc " + std::to_string(pc));
    }
  }
}

ExecResult RunBytecode(const BytecodeProgram& bytecode, InputView input, StepCount fuel) {
  BcScratch scratch;
  return RunBytecode(bytecode, input, scratch, fuel);
}

std::string BytecodeProgram::ToString() const {
  // Built by append throughout: GCC 12's -Wrestrict false-fires on
  // char* + std::string chains when inlined at -O3 (PR 105651).
  std::string out = "bytecode (";
  out += std::to_string(num_registers_);
  out += " regs";
  if (instrumented_) {
    out += ", instrumented";
  }
  out += ")\n";
  for (size_t i = 0; i < code_.size(); ++i) {
    const BcInst& inst = code_[i];
    out += "  ";
    out += std::to_string(i);
    out += ": ";
    switch (inst.op) {
      case BcOp::kConst:
        out += "r";
        out += std::to_string(inst.dst);
        out += " <- ";
        out += std::to_string(inst.imm);
        break;
      case BcOp::kMov:
        out += "r";
        out += std::to_string(inst.dst);
        out += " <- r";
        out += std::to_string(inst.a);
        break;
      case BcOp::kUnary:
        out += "r";
        out += std::to_string(inst.dst);
        out += " <- ";
        out += UnaryOpName(inst.unary_op);
        out += " r";
        out += std::to_string(inst.a);
        break;
      case BcOp::kBinary:
        out += "r";
        out += std::to_string(inst.dst);
        out += " <- r";
        out += std::to_string(inst.a);
        out += " ";
        out += BinaryOpName(inst.binary_op);
        out += " r";
        out += std::to_string(inst.b);
        break;
      case BcOp::kSelect:
        out += "r";
        out += std::to_string(inst.dst);
        out += " <- r";
        out += std::to_string(inst.a);
        out += " ? r";
        out += std::to_string(inst.b);
        out += " : r";
        out += std::to_string(inst.c);
        break;
      case BcOp::kJump:
        out += "jump ";
        out += std::to_string(inst.target);
        break;
      case BcOp::kBranchZ:
        out += "brz r";
        out += std::to_string(inst.a);
        out += ", ";
        out += std::to_string(inst.target);
        break;
      case BcOp::kHalt:
        out += "halt";
        break;
      case BcOp::kLabAssign:
        out += "lab r";
        out += std::to_string(inst.dst);
        out += " <- join(";
        out += VarSet::FromBits(inst.vars_mask).ToString();
        out += ") | C";
        break;
      case BcOp::kLabAssignHW:
        out += "lab r";
        out += std::to_string(inst.dst);
        out += " |= join(";
        out += VarSet::FromBits(inst.vars_mask).ToString();
        out += ") | C";
        break;
      case BcOp::kLabTest:
        out += "lab C |= join(";
        out += VarSet::FromBits(inst.vars_mask).ToString();
        out += ")";
        if (inst.b >= 0) {
          out += " scope ";
          out += std::to_string(inst.b);
        }
        break;
      case BcOp::kLabTestChecked:
        out += "lab check+C |= join(";
        out += VarSet::FromBits(inst.vars_mask).ToString();
        out += ")";
        break;
      case BcOp::kLabHalt:
        out += "lab halt-release";
        break;
      case BcOp::kLabRestore:
        out += "lab restore";
        break;
    }
    if (inst.charges_step) {
      out += "   ; box ";
      out += std::to_string(inst.source_box);
    }
    out += "\n";
  }
  return out;
}

}  // namespace secpol
