#include "src/flowchart/optimize.h"

#include "src/expr/simplify.h"

namespace secpol {

Program OptimizeProgram(const Program& program, OptimizeStats* stats) {
  OptimizeStats local;
  Program out = program;
  for (int b = 0; b < out.num_boxes(); ++b) {
    Box& box = out.mutable_box(b);
    switch (box.kind) {
      case Box::Kind::kAssign: {
        Expr simplified = Simplify(box.expr);
        if (!simplified.StructurallyEquals(box.expr)) {
          ++local.expressions_simplified;
          box.expr = std::move(simplified);
        }
        break;
      }
      case Box::Kind::kDecision: {
        Expr simplified = Simplify(box.predicate);
        if (!simplified.StructurallyEquals(box.predicate)) {
          ++local.expressions_simplified;
        }
        if (simplified.kind() == Expr::Kind::kConst) {
          // Rewire both edges to the taken branch; the box remains a
          // constant test (one step, empty label contribution).
          const int taken =
              simplified.const_value() != 0 ? box.true_next : box.false_next;
          if (box.true_next != taken || box.false_next != taken) {
            ++local.predicates_folded;
          }
          box.true_next = taken;
          box.false_next = taken;
        }
        box.predicate = std::move(simplified);
        break;
      }
      case Box::Kind::kStart:
      case Box::Kind::kHalt:
        break;
    }
  }
  if (stats != nullptr) {
    *stats = local;
  }
  return out;
}

}  // namespace secpol
