#include "src/util/json.h"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace secpol {

namespace {

// Stable prefixes the limit errors are tagged with; ClassifyJsonLimit keys
// off them so callers never string-match ad hoc.
constexpr const char* kTooLargePrefix = "json document too large";
constexpr const char* kTooDeepPrefix = "json nesting too deep";

// Recursive-descent JSON parser over a string_view, tracking line/column for
// error messages.
class Parser {
 public:
  Parser(std::string_view text, const Json::Limits& limits)
      : text_(text), limits_(limits) {}

  Result<Json> ParseDocument() {
    if (limits_.max_bytes > 0 && text_.size() > limits_.max_bytes) {
      return Fail(std::string(kTooLargePrefix) + ": " + std::to_string(text_.size()) +
                  " bytes exceeds the " + std::to_string(limits_.max_bytes) + "-byte limit");
    }
    Result<Json> value = ParseValue();
    if (!value.ok()) {
      return value;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Error MakeError(const std::string& message) const {
    return Error{message, line_, column_};
  }
  Result<Json> Fail(const std::string& message) const { return MakeError(message); }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  char Advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void SkipWhitespace() {
    while (!AtEnd()) {
      const char c = Peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        Advance();
      } else {
        break;
      }
    }
  }

  bool Consume(char expected) {
    if (!AtEnd() && Peek() == expected) {
      Advance();
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return false;
    }
    for (std::size_t i = 0; i < word.size(); ++i) {
      Advance();
    }
    return true;
  }

  Result<Json> ParseValue() {
    SkipWhitespace();
    if (AtEnd()) {
      return Fail("unexpected end of input");
    }
    const char c = Peek();
    switch (c) {
      case '{':
      case '[': {
        if (limits_.max_depth > 0 && depth_ >= limits_.max_depth) {
          return Fail(std::string(kTooDeepPrefix) + ": depth exceeds the " +
                      std::to_string(limits_.max_depth) + "-level limit");
        }
        ++depth_;
        Result<Json> nested = c == '{' ? ParseObject() : ParseArray();
        --depth_;
        return nested;
      }
      case '"': {
        Result<std::string> s = ParseString();
        if (!s.ok()) {
          return s.error();
        }
        return Json::MakeString(std::move(s).value());
      }
      case 't':
        if (ConsumeWord("true")) {
          return Json::MakeBool(true);
        }
        return Fail("bad literal (expected 'true')");
      case 'f':
        if (ConsumeWord("false")) {
          return Json::MakeBool(false);
        }
        return Fail("bad literal (expected 'false')");
      case 'n':
        if (ConsumeWord("null")) {
          return Json::Null();
        }
        return Fail("bad literal (expected 'null')");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) {
          return ParseNumber();
        }
        return Fail(std::string("unexpected character '") + c + "'");
    }
  }

  Result<Json> ParseObject() {
    Advance();  // '{'
    Json object = Json::MakeObject();
    SkipWhitespace();
    if (Consume('}')) {
      return object;
    }
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') {
        return Fail("expected object key string");
      }
      Result<std::string> key = ParseString();
      if (!key.ok()) {
        return key.error();
      }
      SkipWhitespace();
      if (!Consume(':')) {
        return Fail("expected ':' after object key");
      }
      Result<Json> value = ParseValue();
      if (!value.ok()) {
        return value;
      }
      object.Set(std::move(key).value(), std::move(value).value());
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return object;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  Result<Json> ParseArray() {
    Advance();  // '['
    Json array = Json::MakeArray();
    SkipWhitespace();
    if (Consume(']')) {
      return array;
    }
    while (true) {
      Result<Json> value = ParseValue();
      if (!value.ok()) {
        return value;
      }
      array.Append(std::move(value).value());
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return array;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    Advance();  // '"'
    std::string out;
    while (true) {
      if (AtEnd()) {
        return MakeError("unterminated string");
      }
      const char c = Advance();
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return MakeError("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (AtEnd()) {
        return MakeError("unterminated escape");
      }
      const char esc = Advance();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (AtEnd()) {
              return MakeError("truncated \\u escape");
            }
            const char h = Advance();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return MakeError("bad hex digit in \\u escape");
            }
          }
          // Encode the code point as UTF-8. Surrogate pairs are passed
          // through as two 3-byte sequences (reports never emit them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return MakeError(std::string("bad escape '\\") + esc + "'");
      }
    }
  }

  Result<Json> ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') {
      Advance();
    }
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
    bool integral = true;
    if (!AtEnd() && Peek() == '.') {
      integral = false;
      Advance();
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      integral = false;
      Advance();
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) {
        Advance();
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (integral) {
      std::int64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        return Json::MakeInt(value);
      }
      // Out-of-range integer literal: fall through to double.
    }
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      return Fail("bad number '" + std::string(token) + "'");
    }
    return Json::MakeDouble(value);
  }

  std::string_view text_;
  Json::Limits limits_;
  int depth_ = 0;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Json Json::MakeBool(bool v) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

Json Json::MakeInt(std::int64_t v) {
  Json j;
  j.kind_ = Kind::kInt;
  j.int_ = v;
  return j;
}

Json Json::MakeDouble(double v) {
  Json j;
  j.kind_ = Kind::kDouble;
  j.double_ = v;
  return j;
}

Json Json::MakeString(std::string v) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

Json Json::MakeArray() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::MakeObject() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

bool Json::AsBool() const {
  assert(kind_ == Kind::kBool);
  return bool_;
}

std::int64_t Json::AsInt() const {
  if (kind_ == Kind::kDouble) {
    assert(double_ == std::floor(double_));
    return static_cast<std::int64_t>(double_);
  }
  assert(kind_ == Kind::kInt);
  return int_;
}

double Json::AsDouble() const {
  if (kind_ == Kind::kInt) {
    return static_cast<double>(int_);
  }
  assert(kind_ == Kind::kDouble);
  return double_;
}

const std::string& Json::AsString() const {
  assert(kind_ == Kind::kString);
  return string_;
}

const std::vector<Json>& Json::Items() const {
  assert(kind_ == Kind::kArray);
  return items_;
}

const std::vector<std::pair<std::string, Json>>& Json::Members() const {
  assert(kind_ == Kind::kObject);
  return members_;
}

const Json* Json::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : members_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

void Json::Append(Json value) {
  assert(kind_ == Kind::kArray);
  items_.push_back(std::move(value));
}

void Json::Set(std::string key, Json value) {
  assert(kind_ == Kind::kObject);
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void Json::SerializeTo(std::string* out, int indent, bool pretty) const {
  const std::string pad = pretty ? std::string(2 * (indent + 1), ' ') : "";
  const std::string close_pad = pretty ? std::string(2 * indent, ' ') : "";
  const char* nl = pretty ? "\n" : "";
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kInt:
      *out += std::to_string(int_);
      return;
    case Kind::kDouble: {
      if (std::isnan(double_) || std::isinf(double_)) {
        *out += "null";  // JSON has no NaN/Inf; degrade explicitly.
        return;
      }
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.17g", double_);
      *out += buf;
      return;
    }
    case Kind::kString:
      *out += '"';
      *out += JsonEscape(string_);
      *out += '"';
      return;
    case Kind::kArray: {
      if (items_.empty()) {
        *out += "[]";
        return;
      }
      *out += '[';
      *out += nl;
      for (std::size_t i = 0; i < items_.size(); ++i) {
        *out += pad;
        items_[i].SerializeTo(out, indent + 1, pretty);
        if (i + 1 < items_.size()) {
          *out += ',';
          if (!pretty) *out += ' ';
        }
        *out += nl;
      }
      *out += close_pad;
      *out += ']';
      return;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      *out += '{';
      *out += nl;
      for (std::size_t i = 0; i < members_.size(); ++i) {
        *out += pad;
        *out += '"';
        *out += JsonEscape(members_[i].first);
        *out += "\": ";
        members_[i].second.SerializeTo(out, indent + 1, pretty);
        if (i + 1 < members_.size()) {
          *out += ',';
          if (!pretty) *out += ' ';
        }
        *out += nl;
      }
      *out += close_pad;
      *out += '}';
      return;
    }
  }
}

std::string Json::Serialize() const {
  std::string out;
  SerializeTo(&out, 0, false);
  return out;
}

std::string Json::Pretty() const {
  std::string out;
  SerializeTo(&out, 0, true);
  return out;
}

Result<Json> Json::Parse(std::string_view text) {
  // Unlimited: trusted local input (our own reports, manifests, BENCH
  // records). Network bytes go through the limited overload.
  Limits unlimited;
  unlimited.max_depth = 0;
  unlimited.max_bytes = 0;
  return Parse(text, unlimited);
}

Result<Json> Json::Parse(std::string_view text, const Limits& limits) {
  Parser parser(text, limits);
  return parser.ParseDocument();
}

JsonLimitViolation ClassifyJsonLimit(const Error& error) {
  if (error.message.rfind(kTooLargePrefix, 0) == 0) {
    return JsonLimitViolation::kTooLarge;
  }
  if (error.message.rfind(kTooDeepPrefix, 0) == 0) {
    return JsonLimitViolation::kTooDeep;
  }
  return JsonLimitViolation::kNone;
}

}  // namespace secpol
