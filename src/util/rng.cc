#include "src/util/rng.h"

#include <cassert>

namespace secpol {
namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t RotL(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = bound * (UINT64_MAX / bound);
  std::uint64_t x = Next();
  while (x >= limit) {
    x = Next();
  }
  return x % bound;
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {
    // Full 64-bit range.
    return static_cast<std::int64_t>(Next());
  }
  return lo + static_cast<std::int64_t>(NextBelow(span));
}

bool Rng::Chance(std::uint32_t numerator, std::uint32_t denominator) {
  assert(denominator > 0);
  return NextBelow(denominator) < numerator;
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace secpol
