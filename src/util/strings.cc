#include "src/util/strings.h"

#include <cstdio>

namespace secpol {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string FormatInput(InputView input) {
  std::string out = "(";
  for (size_t i = 0; i < input.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += std::to_string(input[i]);
  }
  out += ")";
  return out;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

}  // namespace secpol
