#include "src/util/fingerprint.h"

#include <cstring>

namespace secpol {

namespace {

inline std::uint64_t Rotl64(std::uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

inline std::uint64_t FMix64(std::uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

inline std::uint64_t LoadLE64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

Fingerprint Murmur3_128(const void* data, std::size_t size, std::uint64_t seed) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  const std::size_t nblocks = size / 16;

  std::uint64_t h1 = seed;
  std::uint64_t h2 = seed;
  const std::uint64_t c1 = 0x87c37b91114253d5ULL;
  const std::uint64_t c2 = 0x4cf5ad432745937fULL;

  for (std::size_t i = 0; i < nblocks; ++i) {
    std::uint64_t k1 = LoadLE64(bytes + i * 16);
    std::uint64_t k2 = LoadLE64(bytes + i * 16 + 8);

    k1 *= c1;
    k1 = Rotl64(k1, 31);
    k1 *= c2;
    h1 ^= k1;
    h1 = Rotl64(h1, 27);
    h1 += h2;
    h1 = h1 * 5 + 0x52dce729;

    k2 *= c2;
    k2 = Rotl64(k2, 33);
    k2 *= c1;
    h2 ^= k2;
    h2 = Rotl64(h2, 31);
    h2 += h1;
    h2 = h2 * 5 + 0x38495ab5;
  }

  const unsigned char* tail = bytes + nblocks * 16;
  std::uint64_t k1 = 0;
  std::uint64_t k2 = 0;
  switch (size & 15) {
    case 15: k2 ^= std::uint64_t(tail[14]) << 48; [[fallthrough]];
    case 14: k2 ^= std::uint64_t(tail[13]) << 40; [[fallthrough]];
    case 13: k2 ^= std::uint64_t(tail[12]) << 32; [[fallthrough]];
    case 12: k2 ^= std::uint64_t(tail[11]) << 24; [[fallthrough]];
    case 11: k2 ^= std::uint64_t(tail[10]) << 16; [[fallthrough]];
    case 10: k2 ^= std::uint64_t(tail[9]) << 8; [[fallthrough]];
    case 9:
      k2 ^= std::uint64_t(tail[8]);
      k2 *= c2;
      k2 = Rotl64(k2, 33);
      k2 *= c1;
      h2 ^= k2;
      [[fallthrough]];
    case 8: k1 ^= std::uint64_t(tail[7]) << 56; [[fallthrough]];
    case 7: k1 ^= std::uint64_t(tail[6]) << 48; [[fallthrough]];
    case 6: k1 ^= std::uint64_t(tail[5]) << 40; [[fallthrough]];
    case 5: k1 ^= std::uint64_t(tail[4]) << 32; [[fallthrough]];
    case 4: k1 ^= std::uint64_t(tail[3]) << 24; [[fallthrough]];
    case 3: k1 ^= std::uint64_t(tail[2]) << 16; [[fallthrough]];
    case 2: k1 ^= std::uint64_t(tail[1]) << 8; [[fallthrough]];
    case 1:
      k1 ^= std::uint64_t(tail[0]);
      k1 *= c1;
      k1 = Rotl64(k1, 31);
      k1 *= c2;
      h1 ^= k1;
      break;
    case 0:
      break;
  }

  h1 ^= static_cast<std::uint64_t>(size);
  h2 ^= static_cast<std::uint64_t>(size);
  h1 += h2;
  h2 += h1;
  h1 = FMix64(h1);
  h2 = FMix64(h2);
  h1 += h2;
  h2 += h1;

  return Fingerprint{h1, h2};
}

std::string Fingerprint::ToHex() const {
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t lane = i < 8 ? hi : lo;
    const int byte = i < 8 ? 7 - i : 15 - i;
    const unsigned v = static_cast<unsigned>((lane >> (byte * 8)) & 0xff);
    out[2 * i] = kHexDigits[v >> 4];
    out[2 * i + 1] = kHexDigits[v & 0xf];
  }
  return out;
}

std::optional<Fingerprint> Fingerprint::FromHex(std::string_view hex) {
  if (hex.size() != 32) {
    return std::nullopt;
  }
  Fingerprint fp;
  for (int i = 0; i < 32; ++i) {
    const int v = HexValue(hex[i]);
    if (v < 0) {
      return std::nullopt;
    }
    std::uint64_t& lane = i < 16 ? fp.hi : fp.lo;
    lane = (lane << 4) | static_cast<std::uint64_t>(v);
  }
  return fp;
}

void Fingerprinter::RawBytes(const void* data, std::size_t size) {
  buffer_.append(static_cast<const char*>(data), size);
}

void Fingerprinter::Tag(std::string_view tag) {
  buffer_.push_back('T');
  Str(tag);
}

void Fingerprinter::U64(std::uint64_t v) {
  buffer_.push_back('U');
  unsigned char raw[8];
  for (int i = 0; i < 8; ++i) {
    raw[i] = static_cast<unsigned char>(v >> (i * 8));
  }
  RawBytes(raw, sizeof raw);
}

void Fingerprinter::I64(std::int64_t v) {
  buffer_.push_back('I');
  unsigned char raw[8];
  const std::uint64_t u = static_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    raw[i] = static_cast<unsigned char>(u >> (i * 8));
  }
  RawBytes(raw, sizeof raw);
}

void Fingerprinter::I32(std::int32_t v) { I64(v); }

void Fingerprinter::Bool(bool v) {
  buffer_.push_back('B');
  buffer_.push_back(v ? '\1' : '\0');
}

void Fingerprinter::Str(std::string_view s) {
  buffer_.push_back('S');
  unsigned char raw[8];
  const std::uint64_t size = s.size();
  for (int i = 0; i < 8; ++i) {
    raw[i] = static_cast<unsigned char>(size >> (i * 8));
  }
  RawBytes(raw, sizeof raw);
  RawBytes(s.data(), s.size());
}

void Fingerprinter::I64List(const std::vector<std::int64_t>& values) {
  buffer_.push_back('L');
  U64(values.size());
  for (std::int64_t v : values) {
    I64(v);
  }
}

void Fingerprinter::I32List(const std::vector<std::int32_t>& values) {
  buffer_.push_back('l');
  U64(values.size());
  for (std::int32_t v : values) {
    I64(v);
  }
}

void Fingerprinter::Nested(const Fingerprint& digest) {
  buffer_.push_back('N');
  unsigned char raw[16];
  for (int i = 0; i < 8; ++i) {
    raw[i] = static_cast<unsigned char>(digest.hi >> (i * 8));
    raw[8 + i] = static_cast<unsigned char>(digest.lo >> (i * 8));
  }
  RawBytes(raw, sizeof raw);
}

Fingerprint Fingerprinter::Digest() const {
  return Murmur3_128(buffer_.data(), buffer_.size());
}

}  // namespace secpol
