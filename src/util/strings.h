// Small string helpers used throughout the library.

#ifndef SECPOL_SRC_UTIL_STRINGS_H_
#define SECPOL_SRC_UTIL_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/value.h"

namespace secpol {

// Joins the elements of `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Renders an input tuple as "(1, 2, 3)".
std::string FormatInput(InputView input);

// Printf-lite formatting for a double with `digits` fraction digits.
std::string FormatDouble(double value, int digits);

// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace secpol

#endif  // SECPOL_SRC_UTIL_STRINGS_H_
