#include "src/util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace secpol {

ThreadPool::ThreadPool(int num_threads) {
  const int count = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

int ThreadPool::HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    all_done_.notify_all();
  }
}

}  // namespace secpol
