#include "src/util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace secpol {

namespace {

// Decrements in_flight_ on every exit path — including a throwing task or a
// throwing cancel hook — so Wait() can never wedge on a lost decrement.
class InFlightGuard {
 public:
  InFlightGuard(std::mutex& mu, std::size_t& in_flight, std::condition_variable& all_done)
      : mu_(mu), in_flight_(in_flight), all_done_(all_done) {}

  ~InFlightGuard() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    all_done_.notify_all();
  }

 private:
  std::mutex& mu_;
  std::size_t& in_flight_;
  std::condition_variable& all_done_;
};

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int count = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    // Drain without rethrowing: a destructor must not throw, so an unclaimed
    // task exception is dropped here.
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    first_exception_ = nullptr;
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::exception_ptr pending;
  {
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    pending = std::exchange(first_exception_, nullptr);
  }
  if (pending != nullptr) {
    std::rethrow_exception(pending);
  }
}

void ThreadPool::SetCancelOnException(CancelToken token) {
  std::lock_guard<std::mutex> lock(mu_);
  cancel_on_exception_ = std::move(token);
}

int ThreadPool::HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    InFlightGuard guard(mu_, in_flight_, all_done_);
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (first_exception_ == nullptr) {
        first_exception_ = std::current_exception();
        if (cancel_on_exception_.has_value()) {
          cancel_on_exception_->RequestCancel();
        }
      }
    }
  }
}

}  // namespace secpol
