// Deterministic pseudo-random number generation for corpora and benchmarks.
//
// xoshiro256** seeded via splitmix64. We avoid <random> engines so that the
// generated corpora are reproducible across standard-library versions.

#ifndef SECPOL_SRC_UTIL_RNG_H_
#define SECPOL_SRC_UTIL_RNG_H_

#include <cstdint>

namespace secpol {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform over the full 64-bit range.
  std::uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  // True with probability `numerator / denominator`.
  bool Chance(std::uint32_t numerator, std::uint32_t denominator);

  // Uniform double in [0, 1).
  double NextDouble();

 private:
  std::uint64_t state_[4];
};

}  // namespace secpol

#endif  // SECPOL_SRC_UTIL_RNG_H_
