// Canonical content fingerprints for check jobs.
//
// The batch checking service (src/service) memoizes checker reports in a
// content-addressed cache, so every object that can influence a report —
// flowchart programs, policies, mechanisms recipes, input domains, fault
// specs — needs a stable content hash. A Fingerprinter accumulates a *tagged
// canonical encoding* of such an object (every field is written with a
// domain-separation tag and a fixed-width or length-prefixed form, so two
// different field sequences can never encode to the same byte string) and
// digests it to a 128-bit Fingerprint with MurmurHash3 x64/128.
//
// Stability contract: the encoding is part of the cache persistence format.
// Changing what any AppendFingerprint hook writes invalidates every
// persisted cache entry AND the golden hashes in tests/fingerprint_test.cc —
// those goldens exist precisely so an accidental canonicalization change
// fails loudly instead of silently serving stale cache hits.

#ifndef SECPOL_SRC_UTIL_FINGERPRINT_H_
#define SECPOL_SRC_UTIL_FINGERPRINT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace secpol {

// A 128-bit content hash. Value-comparable and hashable so it can key
// unordered containers; renders as 32 lowercase hex digits.
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Fingerprint& other) const {
    return hi == other.hi && lo == other.lo;
  }
  bool operator!=(const Fingerprint& other) const { return !(*this == other); }

  std::string ToHex() const;
  // Parses exactly 32 hex digits; anything else is nullopt.
  static std::optional<Fingerprint> FromHex(std::string_view hex);
};

struct FingerprintHash {
  std::size_t operator()(const Fingerprint& fp) const {
    // The fingerprint is already a high-quality hash; fold the lanes.
    return static_cast<std::size_t>(fp.hi ^ (fp.lo * 0x9e3779b97f4a7c15ULL));
  }
};

// Accumulates a tagged canonical encoding and digests it.
//
// Every Append* call is unambiguous: tags separate field kinds, integers are
// written as fixed-width little-endian, and strings/byte runs are length-
// prefixed. Composite objects implement
//     void AppendFingerprint(Fingerprinter* fp) const;
// writing a leading tag for their own type, then their fields in a fixed
// canonical order.
class Fingerprinter {
 public:
  Fingerprinter() = default;

  // Domain-separation tag, e.g. "expr", "box", "allow-policy".
  void Tag(std::string_view tag);

  void U64(std::uint64_t v);
  void I64(std::int64_t v);
  void I32(std::int32_t v);
  void Bool(bool v);
  void Str(std::string_view s);           // length-prefixed bytes
  void I64List(const std::vector<std::int64_t>& values);
  void I32List(const std::vector<std::int32_t>& values);
  // A nested digest (Merkle-style composition: the digest trees of
  // src/flowchart and src/policy combine per-node digests into a root with
  // this). Tagged distinctly from a pair of U64s so a tree encoding can never
  // collide with a flat one.
  void Nested(const Fingerprint& digest);

  // Number of bytes encoded so far (diagnostics / tests).
  std::size_t encoded_size() const { return buffer_.size(); }

  // Digest of everything appended so far; the Fingerprinter can keep
  // accumulating afterwards (the digest is not a stream checkpoint).
  Fingerprint Digest() const;

 private:
  void RawBytes(const void* data, std::size_t size);

  std::string buffer_;
};

// MurmurHash3 x64/128 (public-domain construction by Austin Appleby) over an
// arbitrary byte string. Exposed for tests; everything else should go
// through Fingerprinter so encodings stay tagged and unambiguous.
Fingerprint Murmur3_128(const void* data, std::size_t size, std::uint64_t seed = 0);

}  // namespace secpol

#endif  // SECPOL_SRC_UTIL_FINGERPRINT_H_
