#include "src/util/var_set.h"

#include <string>

namespace secpol {

std::string VarSet::ToString() const {
  std::string out = "{";
  bool first = true;
  for (int i = 0; i <= kMaxIndex; ++i) {
    if (Contains(i)) {
      if (!first) {
        out += ",";
      }
      out += std::to_string(i);
      first = false;
    }
  }
  out += "}";
  return out;
}

}  // namespace secpol
