// BitVec: a fixed-size dynamic bitset used by the CFG dataflow analyses
// (dominator sets over programs with arbitrarily many boxes).

#ifndef SECPOL_SRC_UTIL_BITVEC_H_
#define SECPOL_SRC_UTIL_BITVEC_H_

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

namespace secpol {

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(int size, bool value = false)
      : size_(size),
        words_(static_cast<size_t>((size + 63) / 64), value ? ~std::uint64_t{0} : 0) {
    Trim();
  }

  int size() const { return size_; }

  bool Test(int i) const {
    assert(i >= 0 && i < size_);
    return (words_[static_cast<size_t>(i) / 64] >> (i % 64)) & 1;
  }
  void Set(int i) {
    assert(i >= 0 && i < size_);
    words_[static_cast<size_t>(i) / 64] |= std::uint64_t{1} << (i % 64);
  }
  void Clear(int i) {
    assert(i >= 0 && i < size_);
    words_[static_cast<size_t>(i) / 64] &= ~(std::uint64_t{1} << (i % 64));
  }

  // this &= other. Returns true if this changed.
  bool IntersectWith(const BitVec& other) {
    assert(size_ == other.size_);
    bool changed = false;
    for (size_t w = 0; w < words_.size(); ++w) {
      const std::uint64_t next = words_[w] & other.words_[w];
      changed |= next != words_[w];
      words_[w] = next;
    }
    return changed;
  }

  // this |= other. Returns true if this changed.
  bool UnionWith(const BitVec& other) {
    assert(size_ == other.size_);
    bool changed = false;
    for (size_t w = 0; w < words_.size(); ++w) {
      const std::uint64_t next = words_[w] | other.words_[w];
      changed |= next != words_[w];
      words_[w] = next;
    }
    return changed;
  }

  int Count() const {
    int count = 0;
    for (std::uint64_t word : words_) {
      count += std::popcount(word);
    }
    return count;
  }

  bool operator==(const BitVec&) const = default;

 private:
  void Trim() {
    if (size_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (std::uint64_t{1} << (size_ % 64)) - 1;
    }
  }

  int size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace secpol

#endif  // SECPOL_SRC_UTIL_BITVEC_H_
