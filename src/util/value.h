// Core value and input types shared by every module.
//
// The paper models a program as a total function Q : D1 x ... x Dk -> E.
// We fix every Di and E to be the 64-bit integers, which is the domain the
// paper's flowchart language uses ("The domain of the variables ... is the
// integers").

#ifndef SECPOL_SRC_UTIL_VALUE_H_
#define SECPOL_SRC_UTIL_VALUE_H_

#include <cstdint>
#include <span>
#include <vector>

namespace secpol {

// A single machine value. All program variables, inputs, and outputs range
// over Value.
using Value = std::int64_t;

// One concrete input tuple (d1, ..., dk).
using Input = std::vector<Value>;

// Read-only view of an input tuple.
using InputView = std::span<const Value>;

// Step counts ("running time" in the sense of the Observability Postulate).
using StepCount = std::uint64_t;

}  // namespace secpol

#endif  // SECPOL_SRC_UTIL_VALUE_H_
