// A minimal JSON value type: parse, build, serialize.
//
// The batch checking service speaks JSON at its boundaries — job manifests
// in, batch reports out, BENCH_*.json perf records — and the container has
// no third-party JSON dependency, so this is a small self-contained
// implementation. Scope is deliberately narrow: UTF-8 text is passed through
// uninterpreted (only ", \ and control characters are escaped), numbers are
// stored as int64 when they parse exactly and double otherwise, and object
// keys keep *insertion* order on build but are serialized as-is (parsers
// preserve source order), which keeps report output deterministic.

#ifndef SECPOL_SRC_UTIL_JSON_H_
#define SECPOL_SRC_UTIL_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/result.h"

namespace secpol {

class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}

  static Json Null() { return Json(); }
  static Json MakeBool(bool v);
  static Json MakeInt(std::int64_t v);
  static Json MakeDouble(double v);
  static Json MakeString(std::string v);
  static Json MakeArray();
  static Json MakeObject();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kInt || kind_ == Kind::kDouble; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Accessors assert the kind; use the is_* predicates first.
  bool AsBool() const;
  std::int64_t AsInt() const;     // kInt, or kDouble with integral value
  double AsDouble() const;        // any number
  const std::string& AsString() const;
  const std::vector<Json>& Items() const;                          // kArray
  const std::vector<std::pair<std::string, Json>>& Members() const;  // kObject

  // Object lookup: pointer to the value, or nullptr when absent (or when
  // this is not an object).
  const Json* Find(std::string_view key) const;

  // Builders.
  void Append(Json value);                       // kArray
  void Set(std::string key, Json value);         // kObject (replaces existing)

  // Compact one-line serialization.
  std::string Serialize() const;
  // Pretty, two-space-indented serialization (trailing newline not included).
  std::string Pretty() const;

  // Parses one JSON document (must consume all non-whitespace input).
  // Errors carry 1-based line/column of the offending character.
  static Result<Json> Parse(std::string_view text);

  // Parse with resource limits, for documents from untrusted sources (the
  // serve daemon's socket frames). Violations fail with errors that
  // ClassifyJsonLimit recognizes; a zero limit means "unlimited".
  struct Limits;
  static Result<Json> Parse(std::string_view text, const Limits& limits);

 private:
  void SerializeTo(std::string* out, int indent, bool pretty) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

// Resource bounds for parsing untrusted input. The plain Parse(text)
// overload is unlimited (local manifests, BENCH records, our own reports);
// anything that reads network bytes must pass explicit limits.
struct Json::Limits {
  // Maximum nesting depth of arrays/objects. A top-level scalar has depth 0,
  // `[{"k": 1}]` has depth 2. 0 = unlimited.
  int max_depth = 64;
  // Maximum document size in bytes, checked before any parsing work.
  // 0 = unlimited.
  std::size_t max_bytes = 1 << 20;
};

// Which resource limit (if any) a Parse(text, limits) error represents.
// Limit violations need to be distinguishable from plain syntax errors so
// the wire protocol can answer them with distinct typed error codes.
enum class JsonLimitViolation {
  kNone,      // not a limit error (syntax, number range, ...)
  kTooLarge,  // document exceeded Limits::max_bytes
  kTooDeep,   // nesting exceeded Limits::max_depth
};

JsonLimitViolation ClassifyJsonLimit(const Error& error);

// Escapes `s` as the *contents* of a JSON string literal (no quotes).
std::string JsonEscape(std::string_view s);

}  // namespace secpol

#endif  // SECPOL_SRC_UTIL_JSON_H_
