// A tiny expected-like result type used by parsers and validators.
//
// We do not use exceptions for anticipated failures (malformed source text,
// invalid graphs); those are reported through Result<T>. Programming errors
// use assertions.

#ifndef SECPOL_SRC_UTIL_RESULT_H_
#define SECPOL_SRC_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace secpol {

// An error with a human-readable message and an optional source location.
struct Error {
  std::string message;
  int line = 0;
  int column = 0;

  std::string ToString() const {
    if (line == 0) {
      return message;
    }
    return std::to_string(line) + ":" + std::to_string(column) + ": " + message;
  }
};

template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return Error{...};` work.
  Result(T value) : value_(std::move(value)) {}
  Result(Error error) : error_(std::move(error)) {}

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<T> value_;
  std::optional<Error> error_;
};

}  // namespace secpol

#endif  // SECPOL_SRC_UTIL_RESULT_H_
