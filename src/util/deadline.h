// Deadlines and cooperative cancellation for long-running sweeps.
//
// The exhaustive checkers scan |D|^k grids that can take arbitrarily long
// (Theorem 4's cost wall). A Deadline bounds a sweep in wall time; a
// CancelToken lets another thread abort it. Both are *polled* by the sweep
// loops through a PollGate, which amortizes the clock read and atomic load
// over a stride of iterations so the hot loop pays roughly one predictable
// branch per grid point.

#ifndef SECPOL_SRC_UTIL_DEADLINE_H_
#define SECPOL_SRC_UTIL_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace secpol {

// A steady-clock deadline. Default-constructed deadlines are unbounded.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;

  static Deadline Never() { return Deadline(); }

  // Expires `ms` milliseconds from now. Non-positive values expire
  // immediately (useful for tests and for "poll only" semantics).
  static Deadline AfterMillis(std::int64_t ms) {
    return Deadline(Clock::now() + std::chrono::milliseconds(ms));
  }

  static Deadline At(Clock::time_point point) { return Deadline(point); }

  bool unbounded() const { return unbounded_; }

  // One clock read; false for unbounded deadlines.
  bool Expired() const { return !unbounded_ && Clock::now() >= point_; }

 private:
  explicit Deadline(Clock::time_point point) : point_(point), unbounded_(false) {}

  Clock::time_point point_{};
  bool unbounded_ = true;
};

// A shared cancellation flag. Copies share the flag: hand a copy to a sweep
// and call RequestCancel() from any thread to stop it at the next poll.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void RequestCancel() const { flag_->store(true, std::memory_order_relaxed); }
  bool Cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

// Why a sweep stopped before covering its whole range.
enum class StopReason {
  kNone,       // still running / ran to completion
  kDeadline,   // the deadline expired
  kCancelled,  // a cancel token was triggered
};

// Amortized deadline/cancel poll for a sweep loop. Call ShouldStop() once
// per grid point: most calls cost a decrement and a branch; every `stride`
// calls the gate actually reads the token(s) and the clock. Once stopped it
// stays stopped and reason() says why. The secondary token is for internal
// drain signals (e.g. "a sibling shard threw, wind down"); both tokens
// report kCancelled.
class PollGate {
 public:
  static constexpr std::uint32_t kDefaultStride = 64;

  explicit PollGate(const Deadline& deadline, CancelToken primary = CancelToken(),
                    CancelToken secondary = CancelToken(),
                    std::uint32_t stride = kDefaultStride)
      : deadline_(deadline),
        primary_(std::move(primary)),
        secondary_(std::move(secondary)),
        stride_(stride == 0 ? 1 : stride) {}

  bool ShouldStop() {
    // Hot path: one decrement and one predictable branch. The invariant that
    // until_poll_ is pinned <= 0 once stopped (see Poll) lets this return an
    // unconditional false mid-stride.
    if (--until_poll_ > 0) {
      return false;
    }
    if (Poll()) {
      return true;
    }
    until_poll_ = static_cast<std::int32_t>(stride_);
    return false;
  }

  // Unamortized check (used outside hot loops). Pins the stride countdown
  // once stopped so every subsequent ShouldStop() re-enters this slow path
  // and sees the sticky reason.
  bool Poll() {
    ++polls_;
    if (reason_ != StopReason::kNone) {
      until_poll_ = 0;
      return true;
    }
    if (primary_.Cancelled() || secondary_.Cancelled()) {
      reason_ = StopReason::kCancelled;
      until_poll_ = 0;
      return true;
    }
    if (deadline_.Expired()) {
      reason_ = StopReason::kDeadline;
      until_poll_ = 0;
      return true;
    }
    return false;
  }

  StopReason reason() const { return reason_; }

  // Unamortized polls actually performed (clock/token reads), for metrics.
  std::uint64_t polls() const { return polls_; }

 private:
  Deadline deadline_;
  CancelToken primary_;
  CancelToken secondary_;
  std::uint32_t stride_;
  std::int32_t until_poll_ = 1;  // poll on the first call
  StopReason reason_ = StopReason::kNone;
  std::uint64_t polls_ = 0;
};

}  // namespace secpol

#endif  // SECPOL_SRC_UTIL_DEADLINE_H_
