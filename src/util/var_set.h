// VarSet: a small set of variable (or input) indices, used as the
// surveillance-label domain of Section 3 of the paper ("The values of v-bar
// are always subsets of {1,...,k}").
//
// Represented as a 64-bit mask; programs are limited to 64 tracked variables,
// which is far beyond anything in the paper or our corpus.

#ifndef SECPOL_SRC_UTIL_VAR_SET_H_
#define SECPOL_SRC_UTIL_VAR_SET_H_

#include <bit>
#include <cstdint>
#include <initializer_list>
#include <string>

namespace secpol {

class VarSet {
 public:
  static constexpr int kMaxIndex = 63;

  constexpr VarSet() = default;
  constexpr VarSet(std::initializer_list<int> indices) {
    for (int i : indices) {
      Insert(i);
    }
  }

  // The empty set (the label of a constant).
  static constexpr VarSet Empty() { return VarSet(); }

  // {index}.
  static constexpr VarSet Singleton(int index) {
    VarSet s;
    s.Insert(index);
    return s;
  }

  // {0, 1, ..., n-1}.
  static constexpr VarSet FirstN(int n) {
    VarSet s;
    s.bits_ = n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
    return s;
  }

  static constexpr VarSet FromBits(std::uint64_t bits) {
    VarSet s;
    s.bits_ = bits;
    return s;
  }

  constexpr void Insert(int index) { bits_ |= Bit(index); }
  constexpr void Erase(int index) { bits_ &= ~Bit(index); }
  constexpr bool Contains(int index) const { return (bits_ & Bit(index)) != 0; }
  constexpr bool empty() const { return bits_ == 0; }
  constexpr int size() const { return std::popcount(bits_); }
  constexpr std::uint64_t bits() const { return bits_; }

  // Set union: the label join of the subset lattice.
  constexpr VarSet Union(VarSet other) const { return FromBits(bits_ | other.bits_); }
  constexpr VarSet Intersect(VarSet other) const { return FromBits(bits_ & other.bits_); }
  constexpr VarSet Minus(VarSet other) const { return FromBits(bits_ & ~other.bits_); }

  // True iff this set is a subset of `other`. The soundness test of the halt
  // box is `y-bar SubsetOf J`.
  constexpr bool SubsetOf(VarSet other) const { return (bits_ & ~other.bits_) == 0; }

  constexpr bool operator==(const VarSet&) const = default;

  // Calls fn(index) for every member, ascending. O(popcount), not O(64).
  template <typename Fn>
  void ForEachIndex(Fn fn) const {
    std::uint64_t bits = bits_;
    while (bits != 0) {
      const int index = std::countr_zero(bits);
      fn(index);
      bits &= bits - 1;
    }
  }

  // Renders as e.g. "{0,2,5}".
  std::string ToString() const;

 private:
  static constexpr std::uint64_t Bit(int index) { return std::uint64_t{1} << index; }

  std::uint64_t bits_ = 0;
};

}  // namespace secpol

#endif  // SECPOL_SRC_UTIL_VAR_SET_H_
