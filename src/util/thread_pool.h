// A small fixed-size thread pool for the parallel exhaustive checkers.
//
// The checkers partition their input grids into contiguous index shards and
// submit one task per shard. Determinism is the *caller's* responsibility —
// each checker merges per-shard partial results by global grid index — so the
// pool itself promises only that every submitted task runs exactly once.
//
// Exception barrier: a throwing task never reaches WorkerLoop's call stack
// unprotected (which would std::terminate the process). The first exception
// is captured and rethrown from the next Wait(); later exceptions are
// dropped. If a cancel token was registered via SetCancelOnException, it is
// triggered when the first exception is captured so cooperative tasks can
// drain early; either way every queued task still runs (or drains) before
// Wait() returns, so destruction is always safe.

#ifndef SECPOL_SRC_UTIL_THREAD_POOL_H_
#define SECPOL_SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "src/util/deadline.h"

namespace secpol {

class ThreadPool {
 public:
  // Spawns max(1, num_threads) workers.
  explicit ThreadPool(int num_threads);
  // Waits for every pending task, then joins the workers. An unclaimed task
  // exception is discarded (never thrown from the destructor).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues one task. Tasks must not call Submit or Wait on their own pool.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished, then rethrows the
  // first exception any of them raised (if one did). The exception is
  // reported exactly once; a subsequent Wait() returns normally.
  void Wait();

  // Registers a token to cancel when a task throws, so sibling tasks polling
  // it stop early instead of running to completion. Call before Submit.
  void SetCancelOnException(CancelToken token);

  // max(1, std::thread::hardware_concurrency()).
  static int HardwareThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // queued + currently executing
  bool stopping_ = false;
  std::exception_ptr first_exception_;            // guarded by mu_
  std::optional<CancelToken> cancel_on_exception_;  // guarded by mu_
  std::vector<std::thread> workers_;
};

}  // namespace secpol

#endif  // SECPOL_SRC_UTIL_THREAD_POOL_H_
