// A small fixed-size thread pool for the parallel exhaustive checkers.
//
// The checkers partition their input grids into contiguous index shards and
// submit one task per shard. Determinism is the *caller's* responsibility —
// each checker merges per-shard partial results by global grid index — so the
// pool itself promises only that every submitted task runs exactly once.

#ifndef SECPOL_SRC_UTIL_THREAD_POOL_H_
#define SECPOL_SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace secpol {

class ThreadPool {
 public:
  // Spawns max(1, num_threads) workers.
  explicit ThreadPool(int num_threads);
  // Waits for every pending task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues one task. Tasks must not call Submit or Wait on their own pool.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished.
  void Wait();

  // max(1, std::thread::hardware_concurrency()).
  static int HardwareThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // queued + currently executing
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace secpol

#endif  // SECPOL_SRC_UTIL_THREAD_POOL_H_
