// The compiled surveillance fast path (DESIGN.md §15, ROADMAP item 3).
//
// CompileSurveillance lowers a flowchart program TOGETHER with its Section 3
// instrumentation to flat bytecode: the label disciplines become taint-bitset
// register ops (kLabAssign/kLabAssignHW), the pc label and M′'s pre-test
// abort become kLabTest/kLabTestChecked, the release check becomes kLabHalt,
// and the naive scoped-pc restore becomes kLabRestore at the head of every
// box chunk. The runner below executes that code with observable behaviour
// bit-identical to SurveillanceMechanism::Run/RunTracked — same outcome kind,
// value, violation notice, step count, halt semantics, final labels, pc
// label, and ExecFootprint (reads + executed boxes) — which the differential
// suite in tests/compiled_test.cc enforces per discipline, timing mode, and
// fuel boundary.
//
// Identity argument, in brief: the compiler emits one chunk per box whose
// first instruction charges the step (so step counts match by construction),
// places the box's label op before its value ops (the reference updates
// labels before evaluating, and label ops never read the environment), and
// stamps every instruction with its source box (so footprints and halt boxes
// match). Label joins over a box's free variables use a static mask — the
// same FreeVars set the reference joins dynamically — and the scoped-pc
// restore runs at chunk heads exactly where the reference restores at loop
// tops. The only reordering (restore charging the step before popping rather
// than after the fuel check) touches no observable state.
//
// Performance comes from what the loop no longer does: no AST pointer
// chasing, no VarSet vector allocation per run, no std::function. A
// BcScratch holds the register file, label file, and scope stack; one scratch
// per shard (thread_local in the mechanism, explicit in the block evaluator)
// hoists all heap churn out of the grid loop, and the SoA block entry point
// evaluates a contiguous rank range with per-point setup reduced to two
// memsets and an input scatter.
//
// On top of the instrumented bytecode, CompileSurveillance builds a fused
// instruction stream (FastInst below): each flowchart box whose expression is
// at most one arithmetic node deep — the overwhelming majority after
// lowering — becomes a single superinstruction that charges the step, runs
// the box's label op, evaluates the expression from an inline descriptor
// (register/immediate operand forms, constants folded through the total
// arithmetic of arith.h), and transfers control. Boxes with deeper
// expressions fall back to a 1:1 translation of their bytecode chunk. The
// runner executes only the fused stream; the identity argument above is
// unchanged because fusion only removes interpreter dispatch between
// micro-ops whose effects were already adjacent and independent.

#ifndef SECPOL_SRC_SURVEILLANCE_COMPILED_H_
#define SECPOL_SRC_SURVEILLANCE_COMPILED_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/flowchart/bytecode.h"
#include "src/surveillance/surveillance.h"

namespace secpol {

// The fused instruction set executed by the surveillance runner. Internal to
// the fast path — built from the instrumented bytecode by CompileSurveillance
// and never serialized; the public bytecode vocabulary in bytecode.h is the
// stable surface.
enum class FastOp : std::uint8_t {
  // Fused per-box superinstructions. Each charges exactly one step.
  kAssign,       // charge; lab-assign(dst, vars_mask); regs[dst] <- eval; pc = target
  kDecision,     // charge; lab-test(vars_mask); pc = eval != 0 ? target : target2
  kHaltRelease,  // charge; release y iff (labels[y] | C) subset of allowed
  kStartJump,    // charge; pc = target
  // Generic fallback for boxes whose expression needs temporaries: a 1:1
  // translation of the bytecode chunk. Label/restore ops charge per flag.
  kConst, kMov, kUnary, kBinary, kSelect, kJump, kBranchZ,
  kLabAssign, kLabTest, kLabRestore,
};

// How a fused op computes its value (assign) or predicate (decision).
enum class FastEval : std::uint8_t {
  kImm,       // imm (also: constant-folded subtrees)
  kReg,       // regs[a]
  kUnaryReg,  // unary_op regs[a]
  kBinRR,     // regs[a] op regs[b]
  kBinRI,     // regs[a] op imm
  kBinIR,     // imm op regs[b]
  kSel,       // regs[a] != 0 ? regs[b] : regs[c]
};

inline constexpr std::uint8_t kFFlagRestore = 1;  // pop scoped-pc frames first
inline constexpr std::uint8_t kFFlagHW = 2;       // assign joins the old label
inline constexpr std::uint8_t kFFlagChecked = 4;  // M': abort before the test
inline constexpr std::uint8_t kFFlagCharges = 8;  // generic label op charges the step

// The runner's dispatch token: (FastOp, FastEval) composed into one byte by
// the builder so each instruction resolves with a single indirect jump. The
// fused assign/decision blocks are laid out so `kHAssignImm + eval` /
// `kHDecisionImm + eval` index the specialized handler.
enum FastHandler : std::uint8_t {
  kHAssignImm, kHAssignReg, kHAssignUnary, kHAssignRR, kHAssignRI, kHAssignIR, kHAssignSel,
  kHDecisionImm, kHDecisionReg, kHDecisionUnary, kHDecisionRR, kHDecisionRI, kHDecisionIR,
  kHDecisionSel,
  kHHaltRelease, kHStartJump,
  kHConst, kHMov, kHUnary, kHBinary, kHSelect, kHJump, kHBranchZ,
  kHLabAssign, kHLabTest, kHLabRestore,
  // Arith-specialized variants of the fused binary forms. The builder
  // upgrades the generic tokens above when the operator matches, so the hot
  // loop evaluates `regs[a] - imm` or `regs[a] != imm` directly instead of
  // routing every instruction through EvalBinaryOp's 18-way switch — loop
  // counters and guard comparisons are exactly these shapes.
  kHAssignAddRR, kHAssignSubRR, kHAssignAddRI, kHAssignSubRI,
  kHDecisionEqRI, kHDecisionNeRI, kHDecisionLtRI, kHDecisionLeRI,
  kHDecisionGtRI, kHDecisionGeRI,
  kHDecisionEqRR, kHDecisionNeRR, kHDecisionLtRR,
  // Release-pair variants: an assign whose successor is the halt box runs
  // both boxes in one activation (the halt body is entered by a direct
  // branch, not a dispatch). Every program ends with `y = ...; halt`, so
  // this trims one dispatch from every point.
  kHAssignRegHalt, kHAssignImmHalt, kHAssignAddRRHalt,
  // Loop-pair variants: a counted-loop update (`i = i ± c`) whose successor
  // is a comparison decision enters the decision body directly, making the
  // whole back-edge one dispatch per iteration.
  kHSubRIThenNeRI, kHSubRIThenGtRI, kHSubRIThenGeRI,
  kHAddRIThenNeRI, kHAddRIThenLtRI, kHAddRIThenLeRI,
  kHNumHandlers,
};

struct FastInst {
  std::uint64_t vars_mask = 0;  // FreeVars bits joined by the label op
  Value imm = 0;
  std::int32_t target = -1;   // jump / branch-true successor (byte offset)
  std::int32_t target2 = -1;  // decision branch-false successor (byte offset)
  std::int16_t dst = -1;
  std::int16_t a = -1;
  std::int16_t b = -1;
  std::int16_t c = -1;
  std::int16_t source_box = -1;
  std::int16_t scope_box = -1;  // decision: scoped-pc join box, or -1
  // The label join, decomposed: fused boxes join at most two variables (the
  // builder refuses to fuse wider masks), and unused slots point at the label
  // file's hardwired zero slot — so the hot loop computes
  // `labels[lab1] | labels[lab2]` with no loop and no branch.
  std::int16_t lab1 = 0;
  std::int16_t lab2 = 0;
  std::uint8_t op = 0;       // FastOp
  std::uint8_t eval = 0;     // FastEval (fused ops only)
  std::uint8_t arith = 0;    // UnaryOp / BinaryOp ordinal for eval
  std::uint8_t flags = 0;    // kFFlag*
  std::uint8_t handler = 0;  // FastHandler: the runner's dispatch token
};

// An instrumented bytecode program plus everything the runner needs to
// reproduce the reference mechanism's observable behaviour.
struct CompiledSurveillance {
  BytecodeProgram code;        // the instrumented bytecode (debug surface)
  std::vector<FastInst> fast;  // the fused stream the runner executes
  // Initial label file (singleton labels for the inputs, zeros elsewhere,
  // including the fused join's zero slot): per-point setup is one memcpy.
  std::vector<std::uint64_t> label_seed;
  VarSet allowed;
  TimingMode timing = TimingMode::kTimeUnobservable;
  LabelDiscipline discipline = LabelDiscipline::kSurveillance;
  StepCount fuel = kDefaultFuel;
  // Entry elision: when the program opens with a plain start-jump box, the
  // runner begins each point at `entry_pc` with `entry_steps` pre-charged
  // (and `entry_box` pre-marked in tracked mode) instead of dispatching the
  // jump — unless fuel < entry_steps, in which case it starts at 0 so
  // exhaustion reports the exact step.
  std::int32_t entry_pc = 0;
  StepCount entry_steps = 0;
  std::int16_t entry_box = -1;
  int num_vars = 0;    // label file size
  int num_boxes = 0;   // footprint bitmap size
  int num_inputs = 0;
  int output_var = 0;  // y's label slot (also the output register)
};

// Compiles `program` with the instrumentation for (timing, discipline).
// Throws BytecodeError on an invalid program and ArityError if `allowed`
// references inputs beyond the program's arity — the same fail-closed
// vocabulary as the reference mechanism's constructor.
CompiledSurveillance CompileSurveillance(
    const Program& program, VarSet allowed,
    TimingMode timing = TimingMode::kTimeUnobservable,
    LabelDiscipline discipline = LabelDiscipline::kSurveillance,
    StepCount fuel = kDefaultFuel);

// Executes one input. With a non-null `footprint`, also records the tracked
// reads and executed boxes exactly as the reference RunTracked does. The
// scratch is resized as needed and reusable across points and programs.
Outcome RunCompiled(const CompiledSurveillance& compiled, InputView input, BcScratch& scratch,
                    ExecFootprint* footprint = nullptr);

// Executes one input and returns the full instrumented state at exit —
// outcome, final labels, final pc label — for the trace-parity tests.
SurveillanceTrace RunCompiledTraced(const CompiledSurveillance& compiled, InputView input);

// Block evaluator over an SoA input layout: `columns[i][r]` is coordinate i
// of point r. Evaluates ranks [begin, end) into out[begin..end), reusing one
// scratch for the whole block.
void RunCompiledBlock(const CompiledSurveillance& compiled,
                      const std::vector<std::vector<Value>>& columns, std::size_t begin,
                      std::size_t end, BcScratch& scratch, std::vector<Outcome>& out);

// The reference mechanism with its Run/RunTracked routed through the
// compiled fast path. Reports render byte-identically by construction: the
// name, arity, and outcome vocabulary are inherited, and the runner is
// bit-identical to the base class's interpreter (enforced by the
// differential suite). Selected by jobs with exec_mode == "compiled".
class CompiledSurveillanceMechanism : public SurveillanceMechanism {
 public:
  CompiledSurveillanceMechanism(Program program, VarSet allowed_inputs,
                                TimingMode timing = TimingMode::kTimeUnobservable,
                                LabelDiscipline discipline = LabelDiscipline::kSurveillance,
                                StepCount fuel = kDefaultFuel);

  Outcome Run(InputView input) const override;
  TrackedOutcome RunTracked(InputView input) const override;

  const CompiledSurveillance& compiled() const { return compiled_; }

 private:
  CompiledSurveillance compiled_;
};

}  // namespace secpol

#endif  // SECPOL_SRC_SURVEILLANCE_COMPILED_H_
