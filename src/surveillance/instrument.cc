#include "src/surveillance/instrument.h"

#include <cassert>

namespace secpol {

namespace {

// Box expansion sizes per original box kind (see EmitBox).
int ExpansionSize(const Box& box) {
  switch (box.kind) {
    case Box::Kind::kStart:
      return 1;  // the start box itself; label inits are appended at the end
    case Box::Kind::kAssign:
      return 2;  // label update + assignment
    case Box::Kind::kDecision:
      return 2;  // pc-label update + decision
    case Box::Kind::kHalt:
      return 4;  // release check + halt | Lambda-assign + halt
  }
  return 0;
}

}  // namespace

Program InstrumentSurveillance(const Program& q, VarSet allowed_inputs) {
  const int k = q.num_inputs();
  const int m = q.num_locals();
  const int orig_vars = q.num_vars();  // k + m + 1
  assert(2 * orig_vars + 1 <= VarSet::kMaxIndex + 1 && "too many variables to instrument");

  // New variable layout:
  //   [0, k)                 inputs (unchanged ids)
  //   [k, k+m)               original locals (unchanged ids)
  //   [k+m, k+m+orig_vars)   shadow labels: shadow(v) = k + m + v
  //   k+m+orig_vars          C-bar, the program-counter label
  //   k+m+orig_vars+1        y (the new output variable id)
  const int shadow_base = k + m;
  const int pc_var = shadow_base + orig_vars;
  const int new_y = pc_var + 1;
  const int old_y = q.output_var();

  auto remap = [&](int v) { return v == old_y ? new_y : v; };
  auto shadow = [&](int v) { return shadow_base + v; };

  std::vector<std::string> input_names = q.var_names();
  input_names.resize(static_cast<size_t>(k));
  std::vector<std::string> local_names;
  for (int v = k; v < k + m; ++v) {
    local_names.push_back(q.VarName(v));
  }
  for (int v = 0; v < orig_vars; ++v) {
    local_names.push_back(q.VarName(v) + "_bar");
  }
  local_names.push_back("C_bar");

  Program out(q.name() + "_surv", std::move(input_names), std::move(local_names));

  // Pass 1: compute the entry id of each original box's expansion.
  std::vector<int> entry(static_cast<size_t>(q.num_boxes()), 0);
  int offset = 0;
  for (int b = 0; b < q.num_boxes(); ++b) {
    entry[b] = offset;
    offset += ExpansionSize(q.box(b));
  }
  // Input label initializers live after all expansions.
  const int init_chain_start = offset;

  // Label-join expression for the variables of `e`, always including C-bar
  // for assignments (transformation (2) of Section 3).
  auto label_join = [&](const Expr& e, bool include_pc) {
    Expr acc;
    bool have = false;
    // `e` is in the original id space; its variables map to their shadows.
    const VarSet vars = e.FreeVars();
    for (int v = 0; v < orig_vars; ++v) {
      if (!vars.Contains(v)) {
        continue;
      }
      const Expr sv = Expr::Var(shadow(v));
      acc = have ? Expr::Binary(BinaryOp::kBitOr, acc, sv) : sv;
      have = true;
    }
    if (include_pc) {
      const Expr pc = Expr::Var(pc_var);
      acc = have ? Expr::Binary(BinaryOp::kBitOr, acc, pc) : pc;
      have = true;
    }
    if (!have) {
      acc = Expr::Const(0);
    }
    return acc;
  };

  const Value denied_mask =
      static_cast<Value>(VarSet::FirstN(k).Minus(allowed_inputs).bits());

  // Pass 2: emit expansions. AddBox must be called in exactly the order the
  // entry ids were assigned.
  for (int b = 0; b < q.num_boxes(); ++b) {
    const Box& box = q.box(b);
    switch (box.kind) {
      case Box::Kind::kStart: {
        // Transformation (1): the start box leads into the chain of label
        // initializers (emitted after all expansions), which then continues
        // at the original successor's expansion.
        Box start;
        start.kind = Box::Kind::kStart;
        start.next = k > 0 ? init_chain_start : entry[box.next];
        out.AddBox(start);
        break;
      }
      case Box::Kind::kAssign: {
        // Transformation (2): v-bar <- w1-bar u ... u wp-bar u C-bar; v <- E.
        Box label_box;
        label_box.kind = Box::Kind::kAssign;
        label_box.var = shadow(box.var);
        label_box.expr = label_join(box.expr, /*include_pc=*/true);
        label_box.next = entry[b] + 1;
        out.AddBox(label_box);

        Box value_box;
        value_box.kind = Box::Kind::kAssign;
        value_box.var = remap(box.var);
        value_box.expr = box.expr.MapVars(remap);
        value_box.next = entry[box.next];
        out.AddBox(value_box);
        break;
      }
      case Box::Kind::kDecision: {
        // Transformation (3): C-bar <- C-bar u w1-bar u ... ; then branch.
        Box label_box;
        label_box.kind = Box::Kind::kAssign;
        label_box.var = pc_var;
        label_box.expr = label_join(box.predicate, /*include_pc=*/true);
        label_box.next = entry[b] + 1;
        out.AddBox(label_box);

        Box decision;
        decision.kind = Box::Kind::kDecision;
        decision.predicate = box.predicate.MapVars(remap);
        decision.true_next = entry[box.true_next];
        decision.false_next = entry[box.false_next];
        out.AddBox(decision);
        break;
      }
      case Box::Kind::kHalt: {
        // Transformation (4): release y iff (y-bar u C-bar) & ~J == 0, else
        // output Lambda.
        Box check;
        check.kind = Box::Kind::kDecision;
        check.predicate = Expr::Binary(
            BinaryOp::kEq,
            Expr::Binary(BinaryOp::kBitAnd,
                         Expr::Binary(BinaryOp::kBitOr, Expr::Var(shadow(old_y)),
                                      Expr::Var(pc_var)),
                         Expr::Const(denied_mask)),
            Expr::Const(0));
        check.true_next = entry[b] + 1;
        check.false_next = entry[b] + 2;
        out.AddBox(check);

        Box ok_halt;
        ok_halt.kind = Box::Kind::kHalt;
        out.AddBox(ok_halt);

        Box lambda_assign;
        lambda_assign.kind = Box::Kind::kAssign;
        lambda_assign.var = new_y;
        lambda_assign.expr = Expr::Const(kViolationSentinel);
        lambda_assign.next = entry[b] + 3;
        out.AddBox(lambda_assign);

        Box viol_halt;
        viol_halt.kind = Box::Kind::kHalt;
        out.AddBox(viol_halt);
        break;
      }
    }
  }

  // Input label initializer chain: x_i-bar <- {i}; shadows of locals and y
  // are already 0 (the empty set) by initialization.
  const int start_succ = entry[q.box(q.start_box()).next];
  for (int i = 0; i < k; ++i) {
    Box init;
    init.kind = Box::Kind::kAssign;
    init.var = shadow(i);
    init.expr = Expr::Const(static_cast<Value>(VarSet::Singleton(i).bits()));
    init.next = i + 1 < k ? init_chain_start + i + 1 : start_succ;
    out.AddBox(init);
  }

  Result<bool> valid = out.Validate();
  assert(valid.ok() && "instrumenter emitted an invalid program");
  (void)valid;
  return out;
}

InstrumentedMechanism::InstrumentedMechanism(const Program& q, VarSet allowed_inputs,
                                             StepCount fuel)
    : instrumented_(InstrumentSurveillance(q, allowed_inputs)), fuel_(fuel) {}

Outcome InstrumentedMechanism::Run(InputView input) const {
  const ExecResult result = RunProgram(instrumented_, input, fuel_);
  if (!result.halted) {
    return Outcome::Violation(result.steps, "fuel exhausted");
  }
  if (result.output == kViolationSentinel) {
    return Outcome::Violation(result.steps, "Lambda");
  }
  return Outcome::Val(result.output, result.steps);
}

}  // namespace secpol
