// The surveillance protection mechanism (Section 3) and its relatives.
//
// The mechanism associates with every variable v a surveillance variable
// v-bar holding the set of input indices that may have affected v, and a
// surveillance variable C-bar for the program counter. The instrumented
// semantics are:
//
//   start:     x_i-bar <- {i};  r_j-bar, y-bar <- {} ; C-bar <- {}
//   v <- E(w): v-bar <- w1-bar u ... u wp-bar u C-bar     (then assign v)
//   if B(w):   C-bar <- C-bar u w1-bar u ... u wp-bar     (then branch)
//   halt:      release y iff (y-bar u C-bar) subset of J, else notice
//
// Theorem 3: this mechanism M is sound for allow(J) when running time is
// unobservable. Theorem 3': the modified M' — which additionally halts with
// a violation notice *before* executing any test on disallowed data — is
// sound even when running time is observable.
//
// Three label disciplines are provided:
//   kSurveillance — the above; assignment *overwrites* the label
//                   ("surveillance allows forgetting").
//   kHighWater    — assignment joins with the old label; labels only grow
//                   (the ADEPT-50-style high-water mark, Section 4's Mh).
//   kNaiveScopedPc — C-bar is restored at each decision's immediate
//                   postdominator. This is the classic UNSOUND dynamic
//                   discipline (implicit flow through the branch not taken);
//                   it exists so the soundness checker can exhibit the leak
//                   (experiment E16). Never use it for protection.

#ifndef SECPOL_SRC_SURVEILLANCE_SURVEILLANCE_H_
#define SECPOL_SRC_SURVEILLANCE_SURVEILLANCE_H_

#include <string>
#include <vector>

#include "src/flowchart/interpreter.h"
#include "src/flowchart/program.h"
#include "src/mechanism/mechanism.h"
#include "src/util/var_set.h"

namespace secpol {

enum class TimingMode {
  // Theorem 3's M: label checks happen only at halt; running time is assumed
  // unobservable (claim soundness under Observability::kValueOnly).
  kTimeUnobservable,
  // Theorem 3''s M': execution aborts with a violation notice immediately
  // before any test whose operands carry disallowed labels, so the path —
  // and with it the running time — depends only on allowed data (claim
  // soundness under Observability::kValueAndTime).
  kTimeObservable,
};

enum class LabelDiscipline {
  kSurveillance,
  kHighWater,
  kNaiveScopedPc,
};

std::string TimingModeName(TimingMode mode);
std::string LabelDisciplineName(LabelDiscipline discipline);

// Full instrumented state at halt, for inspection and documentation.
struct SurveillanceTrace {
  Outcome outcome;
  std::vector<VarSet> labels;  // final v-bar per variable
  VarSet pc_label;             // final C-bar
};

class SurveillanceMechanism : public ProtectionMechanism {
 public:
  SurveillanceMechanism(Program program, VarSet allowed_inputs,
                        TimingMode timing = TimingMode::kTimeUnobservable,
                        LabelDiscipline discipline = LabelDiscipline::kSurveillance,
                        StepCount fuel = kDefaultFuel);

  int num_inputs() const override { return program_.num_inputs(); }
  Outcome Run(InputView input) const override;
  // Tracked precisely: the instrumented execution is deterministic in the
  // executed boxes and the input coordinates read along the taken path (the
  // labels themselves are a function of the path, not of the data values),
  // so the plain interpreter's dependency argument carries over verbatim.
  TrackedOutcome RunTracked(InputView input) const override;
  std::string name() const override;

  SurveillanceTrace RunTraced(InputView input) const;

  const Program& program() const { return program_; }
  VarSet allowed_inputs() const { return allowed_; }

 private:
  SurveillanceTrace RunTracedImpl(InputView input, ExecFootprint* footprint) const;

  Program program_;
  VarSet allowed_;
  TimingMode timing_;
  LabelDiscipline discipline_;
  StepCount fuel_;
  // Immediate postdominator per box; computed only for kNaiveScopedPc.
  std::vector<int> ipdom_;
};

// Convenience factories matching the paper's names.
SurveillanceMechanism MakeSurveillanceM(Program program, VarSet allowed,
                                        StepCount fuel = kDefaultFuel);
SurveillanceMechanism MakeSurveillanceMPrime(Program program, VarSet allowed,
                                             StepCount fuel = kDefaultFuel);
SurveillanceMechanism MakeHighWaterMechanism(Program program, VarSet allowed,
                                             StepCount fuel = kDefaultFuel);

}  // namespace secpol

#endif  // SECPOL_SRC_SURVEILLANCE_SURVEILLANCE_H_
