#include "src/surveillance/surveillance.h"

#include <string>

#include "src/staticflow/cfg.h"
#include "src/staticflow/dominance.h"

namespace secpol {

std::string TimingModeName(TimingMode mode) {
  switch (mode) {
    case TimingMode::kTimeUnobservable:
      return "M";
    case TimingMode::kTimeObservable:
      return "M'";
  }
  return "?";
}

std::string LabelDisciplineName(LabelDiscipline discipline) {
  switch (discipline) {
    case LabelDiscipline::kSurveillance:
      return "surveillance";
    case LabelDiscipline::kHighWater:
      return "high-water";
    case LabelDiscipline::kNaiveScopedPc:
      return "naive-scoped";
  }
  return "?";
}

SurveillanceMechanism::SurveillanceMechanism(Program program, VarSet allowed_inputs,
                                             TimingMode timing, LabelDiscipline discipline,
                                             StepCount fuel)
    : program_(std::move(program)),
      allowed_(allowed_inputs),
      timing_(timing),
      discipline_(discipline),
      fuel_(fuel) {
  if (!allowed_.SubsetOf(VarSet::FirstN(program_.num_inputs()))) {
    // The allow set arrives from manifests and the wire; reject indices
    // beyond the program's inputs instead of silently tracking phantoms.
    throw ArityError("allow set " + allowed_.ToString() + " references inputs beyond arity " +
                     std::to_string(program_.num_inputs()) + " of program '" +
                     program_.name() + "'");
  }
  if (discipline_ == LabelDiscipline::kNaiveScopedPc) {
    const Cfg cfg(program_);
    const PostDominators pdom(cfg);
    ipdom_.resize(static_cast<size_t>(program_.num_boxes()), -1);
    for (int b = 0; b < program_.num_boxes(); ++b) {
      ipdom_[b] = pdom.ImmediatePostDominator(b);
    }
  }
}

std::string SurveillanceMechanism::name() const {
  return LabelDisciplineName(discipline_) + "[" + TimingModeName(timing_) + "](" +
         program_.name() + ")";
}

Outcome SurveillanceMechanism::Run(InputView input) const { return RunTraced(input).outcome; }

SurveillanceTrace SurveillanceMechanism::RunTraced(InputView input) const {
  return RunTracedImpl(input, nullptr);
}

TrackedOutcome SurveillanceMechanism::RunTracked(InputView input) const {
  ExecFootprint footprint;
  SurveillanceTrace trace = RunTracedImpl(input, &footprint);
  return TrackedOutcome{std::move(trace.outcome), footprint.reads, true, footprint.BoxIds(),
                        true};
}

SurveillanceTrace SurveillanceMechanism::RunTracedImpl(InputView input,
                                                       ExecFootprint* footprint) const {
  if (static_cast<int>(input.size()) != program_.num_inputs()) {
    throw ArityError("mechanism '" + name() + "' expects " +
                     std::to_string(program_.num_inputs()) + " inputs, got " +
                     std::to_string(input.size()));
  }

  std::vector<Value> env(program_.num_vars(), 0);
  std::vector<VarSet> labels(program_.num_vars());
  for (int i = 0; i < program_.num_inputs(); ++i) {
    env[i] = input[i];
    labels[i] = VarSet::Singleton(i);
  }
  VarSet pc_label;
  VarSet live_inputs = VarSet::FirstN(program_.num_inputs());
  if (footprint != nullptr) {
    footprint->reads = VarSet();
    footprint->boxes.assign(static_cast<size_t>(program_.num_boxes()), false);
  }
  const auto note_reads = [&](const Expr& expr) {
    if (footprint != nullptr) {
      footprint->reads = footprint->reads.Union(expr.FreeVars().Intersect(live_inputs));
    }
  };

  // kNaiveScopedPc: saved pc labels to restore when control reaches the
  // decision's immediate postdominator (the join point).
  struct Scope {
    int join_box;
    VarSet saved_pc;
  };
  std::vector<Scope> scopes;

  // Joins the labels of the variables occurring in `expr`.
  auto expr_label = [&labels](const Expr& expr) {
    VarSet out;
    expr.FreeVars().ForEachIndex([&](int v) { out = out.Union(labels[v]); });
    return out;
  };

  SurveillanceTrace trace;
  StepCount steps = 0;
  int pc = program_.start_box();
  while (steps < fuel_) {
    // Scoped discipline: restore the pc label at join points.
    if (discipline_ == LabelDiscipline::kNaiveScopedPc) {
      while (!scopes.empty() && scopes.back().join_box == pc) {
        pc_label = scopes.back().saved_pc;
        scopes.pop_back();
      }
    }
    ++steps;
    if (footprint != nullptr) {
      footprint->boxes[pc] = true;
    }
    const Box& box = program_.box(pc);
    switch (box.kind) {
      case Box::Kind::kStart:
        pc = box.next;
        break;
      case Box::Kind::kAssign: {
        VarSet new_label = expr_label(box.expr).Union(pc_label);
        if (discipline_ == LabelDiscipline::kHighWater) {
          // High-water mark: labels never decrease — no forgetting.
          new_label = new_label.Union(labels[box.var]);
        }
        labels[box.var] = new_label;
        note_reads(box.expr);
        env[box.var] = box.expr.Eval(env);
        if (program_.IsInputVar(box.var)) {
          live_inputs.Erase(box.var);
        }
        pc = box.next;
        break;
      }
      case Box::Kind::kDecision: {
        const VarSet test_label = expr_label(box.predicate);
        note_reads(box.predicate);
        if (timing_ == TimingMode::kTimeObservable &&
            !test_label.Union(pc_label).SubsetOf(allowed_)) {
          // M': "if a disallowed variable is about to be tested, flowchart
          // execution is halted and a violation notice is given —
          // immediately."
          trace.outcome = Outcome::Violation(steps, "test on disallowed data");
          trace.labels = std::move(labels);
          trace.pc_label = pc_label;
          return trace;
        }
        if (discipline_ == LabelDiscipline::kNaiveScopedPc) {
          const int join = ipdom_[pc];
          if (scopes.empty() || scopes.back().join_box != join) {
            scopes.push_back({join, pc_label});
          }
        }
        pc_label = pc_label.Union(test_label);
        pc = box.predicate.Eval(env) != 0 ? box.true_next : box.false_next;
        break;
      }
      case Box::Kind::kHalt: {
        const int y = program_.output_var();
        const VarSet release = labels[y].Union(pc_label);
        if (release.SubsetOf(allowed_)) {
          trace.outcome = Outcome::Val(env[y], steps);
        } else {
          trace.outcome = Outcome::Violation(steps, "output depends on disallowed inputs");
        }
        trace.labels = std::move(labels);
        trace.pc_label = pc_label;
        return trace;
      }
    }
  }
  trace.outcome = Outcome::Violation(steps, "fuel exhausted");
  trace.labels = std::move(labels);
  trace.pc_label = pc_label;
  return trace;
}

SurveillanceMechanism MakeSurveillanceM(Program program, VarSet allowed, StepCount fuel) {
  return SurveillanceMechanism(std::move(program), allowed, TimingMode::kTimeUnobservable,
                               LabelDiscipline::kSurveillance, fuel);
}

SurveillanceMechanism MakeSurveillanceMPrime(Program program, VarSet allowed, StepCount fuel) {
  return SurveillanceMechanism(std::move(program), allowed, TimingMode::kTimeObservable,
                               LabelDiscipline::kSurveillance, fuel);
}

SurveillanceMechanism MakeHighWaterMechanism(Program program, VarSet allowed, StepCount fuel) {
  return SurveillanceMechanism(std::move(program), allowed, TimingMode::kTimeUnobservable,
                               LabelDiscipline::kHighWater, fuel);
}

}  // namespace secpol
