// The literal Section 3 program transformation.
//
// Section 3 does not define surveillance as an interpreter: it defines it as
// a *source-to-source transformation* on flowcharts — "M is obtained from Q
// by applying the following transformations". This module performs that
// transformation: it emits a new flowchart whose variables include a shadow
// label variable per original variable (labels encoded as bitmask integers)
// plus the program-counter label, with the paper's four box rewrites.
//
// The instrumented program is an ordinary flowchart runnable by the plain
// interpreter; a violation notice is encoded as a reserved sentinel output
// value (the paper's Lambda, a symbol not in E). InstrumentedMechanism wraps
// execution and decodes the sentinel back into a violation Outcome.
//
// Property test `instrumenter ≡ interpreter` (tests/surveillance_test.cc and
// the corpus property suite) runs both implementations on random programs
// and requires identical value/violation behaviour — the two must agree
// everywhere or one of them mis-implements the paper.

#ifndef SECPOL_SRC_SURVEILLANCE_INSTRUMENT_H_
#define SECPOL_SRC_SURVEILLANCE_INSTRUMENT_H_

#include <limits>

#include "src/flowchart/interpreter.h"
#include "src/flowchart/program.h"
#include "src/mechanism/mechanism.h"
#include "src/util/var_set.h"

namespace secpol {

// Lambda: the reserved violation output of instrumented programs. Original
// programs must not legitimately output this value (all our corpora and
// examples use small values).
inline constexpr Value kViolationSentinel = std::numeric_limits<Value>::min() + 0x5ec;

// Emits the instrumented flowchart M for program Q and policy allow(J).
// Requires 2 * Q.num_vars() + 1 <= 64 variables.
Program InstrumentSurveillance(const Program& q, VarSet allowed_inputs);

// Runs the instrumented program under the plain interpreter and decodes the
// sentinel. Step counts are those of the instrumented program (a protection
// mechanism "may have a running time that differs from that of the original
// program").
class InstrumentedMechanism : public ProtectionMechanism {
 public:
  InstrumentedMechanism(const Program& q, VarSet allowed_inputs,
                        StepCount fuel = kDefaultFuel);

  int num_inputs() const override { return instrumented_.num_inputs(); }
  Outcome Run(InputView input) const override;
  std::string name() const override { return "instrumented(" + instrumented_.name() + ")"; }

  const Program& instrumented_program() const { return instrumented_; }

 private:
  Program instrumented_;
  StepCount fuel_;
};

}  // namespace secpol

#endif  // SECPOL_SRC_SURVEILLANCE_INSTRUMENT_H_
