#include "src/surveillance/compiled.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstring>
#include <string>
#include <utility>

#include "src/expr/arith.h"
#include "src/staticflow/cfg.h"
#include "src/staticflow/dominance.h"

namespace secpol {

namespace {

std::uint64_t JoinOf(const std::uint64_t* labels, std::uint64_t mask) {
  std::uint64_t join = 0;
  while (mask != 0) {
    join |= labels[std::countr_zero(mask)];
    mask &= mask - 1;
  }
  return join;
}

// Pops scoped-pc frames whose join box is `box`, restoring the saved C-bar —
// byte-for-byte the kLabRestore semantics of the reference runner.
void PopScopes(std::vector<std::pair<int, std::uint64_t>>& scopes, std::uint64_t& pc_label,
               int box) {
  while (!scopes.empty() && scopes.back().first == box) {
    pc_label = scopes.back().second;
    scopes.pop_back();
  }
}

// Token-threaded dispatch: on GCC/Clang each handler ends with its own
// indirect jump through the label table, giving every dispatch site a stable
// branch-target history (the classic 2x over a single shared switch). Other
// compilers fall back to an equivalent switch.
#if defined(__GNUC__) || defined(__clang__)
#define SECPOL_VM_THREADED 1
#endif

// The SoA block descriptor consumed by the batch mode of RunCoreImpl.
struct BlockRun {
  const std::vector<std::vector<Value>>* columns;
  std::size_t begin;
  std::size_t end;  // callers guarantee begin < end
  std::vector<Outcome>* out;
};

// Executes fused code to completion, writing each outcome in place
// (`notice` reuses its capacity across points, so the grid loop allocates
// nothing in steady state). Templating on the footprint strips the tracking
// branches from the untracked hot loop. In block mode (kBlock) the whole
// rank range runs inside one activation — per-point setup is a register
// fill, a label-seed memcpy, and an input scatter, with no call-boundary
// register traffic between points.
//
// Reference order inside every box, preserved by each handler below: charge
// the step (fuel check first, so exhaustion reports the box's own step
// count), pop scoped-pc frames, run the label op from the OLD labels, note
// reads against the still-live inputs, then evaluate and transfer.
//
// kPlain strips the scoped-pc restore, the scope push, and the checked-test
// abort from every handler: those exist only under the naive-scoped-pc
// discipline and time-observable instrumentation respectively, which is a
// whole-program property the dispatcher selects on — no fused instruction
// carries the corresponding flags in a plain program.
template <bool kTrack, bool kBlock, bool kPlain>
void RunCoreImpl(const CompiledSurveillance& cs, BcScratch& scratch,
                 ExecFootprint* footprint, std::uint64_t* pc_label_out, Outcome* out_single,
                 const BlockRun* blk) {
  Value* const regs = scratch.regs.data();
  std::uint64_t* const labels = scratch.labels.data();
  auto& scopes = scratch.scopes;
  const FastInst* const code = cs.fast.data();
  const char* const code_bytes = reinterpret_cast<const char*>(code);
  const std::uint64_t allowed = cs.allowed.bits();
  const std::uint64_t inputs_mask = VarSet::FirstN(cs.num_inputs).bits();
  const StepCount fuel = cs.fuel;
  const std::size_t num_regs = scratch.regs.size();
  const std::uint64_t* const seed = cs.label_seed.data();
  const std::size_t seed_bytes = cs.label_seed.size() * sizeof(std::uint64_t);
  static_cast<void>(num_regs);  // block-mode only
  static_cast<void>(seed);
  static_cast<void>(seed_bytes);
  // Entry elision: pre-charge the opening start-jump unless fuel is too low
  // to cover it (then start at 0 so exhaustion reports the exact step).
  const bool elide_entry = fuel >= cs.entry_steps;
  const std::int32_t pc0 = elide_entry ? cs.entry_pc : 0;
  const StepCount steps0 = elide_entry ? cs.entry_steps : 0;
  const Value* colp[64];
  std::size_t num_inputs_blk = 0;
  if constexpr (kBlock) {
    const std::vector<std::vector<Value>>& cols = *blk->columns;
    num_inputs_blk = cols.size();
    for (std::size_t i = 0; i < num_inputs_blk; ++i) {
      colp[i] = cols[i].data();
    }
  }
  static_cast<void>(colp);
  static_cast<void>(num_inputs_blk);

  std::uint64_t pc_label;
  std::uint64_t live;
  std::uint64_t reads;
  static_cast<void>(live);  // only read by the kTrack instantiation
  static_cast<void>(reads);
  StepCount steps;
  std::int32_t pc;  // byte offset into the fused stream (targets are pre-scaled)
  const FastInst* inst;
  std::size_t rank = kBlock ? blk->begin : 0;
  Outcome* outp = out_single;

point_start:
  if constexpr (kBlock) {
    outp = blk->out->data() + rank;
    // Input registers are scattered over, so only the rest need zeroing.
    std::fill_n(regs + num_inputs_blk, num_regs - num_inputs_blk, Value{0});
    std::memcpy(labels, seed, seed_bytes);
    scopes.clear();
    for (std::size_t i = 0; i < num_inputs_blk; ++i) {
      regs[i] = colp[i][rank];
    }
  }
  pc_label = 0;
  live = inputs_mask;
  reads = 0;
  steps = steps0;
  if constexpr (kTrack) {
    if (steps0 != 0) {
      footprint->boxes[static_cast<size_t>(cs.entry_box)] = true;
    }
  }
  pc = pc0;
  inst = code;

// Fuel check + step charge + footprint + scoped-pc restore, shared by every
// charging handler.
#define SECPOL_CHARGE()                                                       \
  do {                                                                        \
    if (steps >= fuel) {                                                      \
      goto exhausted;                                                         \
    }                                                                         \
    ++steps;                                                                  \
    if constexpr (kTrack) {                                                   \
      footprint->boxes[static_cast<size_t>(inst->source_box)] = true;         \
    }                                                                         \
    if (!kPlain && (inst->flags & kFFlagRestore)) {                           \
      PopScopes(scopes, pc_label, inst->source_box);                          \
    }                                                                         \
  } while (0)

// The assign-box label op. live only ever holds input bits, so clearing a
// non-input dst is a no-op — no need to branch on IsInputVar here. The
// reads/live bookkeeping feeds only the footprint, so the untracked loop
// skips it entirely. Fused boxes take `join`, the precomputed two-slot
// label join (unused slots read the hardwired zero slot — no loop, no
// branch); generic chunks pass JoinOf over the mask.
#define SECPOL_ASSIGN_LABEL(join)                                             \
  do {                                                                        \
    std::uint64_t label = (join) | pc_label;                                  \
    if (inst->flags & kFFlagHW) {                                             \
      label |= labels[inst->dst];                                             \
    }                                                                         \
    if constexpr (kTrack) {                                                   \
      reads |= inst->vars_mask & live;                                        \
      live &= ~(std::uint64_t{1} << inst->dst);                               \
    }                                                                         \
    labels[inst->dst] = label;                                                \
  } while (0)
#define SECPOL_ASSIGN_LABEL_FAST() \
  SECPOL_ASSIGN_LABEL(labels[inst->lab1] | labels[inst->lab2])

// The decision-box label op: M' aborts immediately before any test on
// disallowed data (before the scope push and the C-bar update, exactly as
// the reference returns before them).
#define SECPOL_DECISION_LABEL(join)                                           \
  do {                                                                        \
    const std::uint64_t test_label = (join);                                  \
    if constexpr (kTrack) {                                                   \
      reads |= inst->vars_mask & live;                                        \
    }                                                                         \
    if (!kPlain && (inst->flags & kFFlagChecked) &&                           \
        ((test_label | pc_label) & ~allowed) != 0) {                          \
      goto checked_abort;                                                     \
    }                                                                         \
    if (!kPlain && inst->scope_box >= 0 &&                                    \
        (scopes.empty() || scopes.back().first != inst->scope_box)) {         \
      scopes.emplace_back(inst->scope_box, pc_label);                         \
    }                                                                         \
    pc_label |= test_label;                                                   \
  } while (0)
#define SECPOL_DECISION_LABEL_FAST() \
  SECPOL_DECISION_LABEL(labels[inst->lab1] | labels[inst->lab2])

#define SECPOL_BIN(a, b) EvalBinaryOp(static_cast<BinaryOp>(inst->arith), (a), (b))
#define SECPOL_TARGET(off) reinterpret_cast<const FastInst*>(code_bytes + (off))

// Decision tail: a real two-way branch with a dispatch site per arm, NOT a
// conditional move — a cmov would chain the branch target into the next
// dispatch's data dependencies, serializing the loop; a branch lets the
// target predictor speculate across iterations.
#define SECPOL_DECISION_TAIL(cond)                                            \
  do {                                                                        \
    if (cond) {                                                               \
      pc = inst->target;                                                      \
      SECPOL_DISPATCH();                                                      \
    } else {                                                                  \
      pc = inst->target2;                                                     \
      SECPOL_DISPATCH();                                                      \
    }                                                                         \
  } while (0)

#if SECPOL_VM_THREADED
  // One entry per FastHandler, in enum order.
  static const void* const kLabels[] = {
      &&h_assign_imm, &&h_assign_reg, &&h_assign_unary, &&h_assign_rr, &&h_assign_ri,
      &&h_assign_ir, &&h_assign_sel,
      &&h_decision_imm, &&h_decision_reg, &&h_decision_unary, &&h_decision_rr,
      &&h_decision_ri, &&h_decision_ir, &&h_decision_sel,
      &&h_halt_release, &&h_start_jump,
      &&h_const, &&h_mov, &&h_unary, &&h_binary, &&h_select, &&h_jump, &&h_branchz,
      &&h_lab_assign, &&h_lab_test, &&h_lab_restore,
      &&h_assign_add_rr, &&h_assign_sub_rr, &&h_assign_add_ri, &&h_assign_sub_ri,
      &&h_decision_eq_ri, &&h_decision_ne_ri, &&h_decision_lt_ri, &&h_decision_le_ri,
      &&h_decision_gt_ri, &&h_decision_ge_ri,
      &&h_decision_eq_rr, &&h_decision_ne_rr, &&h_decision_lt_rr,
      &&h_assign_reg_halt, &&h_assign_imm_halt, &&h_assign_add_rr_halt,
      &&h_sub_ri_then_ne_ri, &&h_sub_ri_then_gt_ri, &&h_sub_ri_then_ge_ri,
      &&h_add_ri_then_ne_ri, &&h_add_ri_then_lt_ri, &&h_add_ri_then_le_ri,
  };
  static_assert(sizeof(kLabels) / sizeof(kLabels[0]) == kHNumHandlers);
#define SECPOL_CASE(name) h_##name
#define SECPOL_DISPATCH()                                                     \
  do {                                                                        \
    inst = reinterpret_cast<const FastInst*>(code_bytes + pc);                \
    goto* kLabels[inst->handler];                                             \
  } while (0)
  SECPOL_DISPATCH();
#else
#define SECPOL_CASE(name) case k_handler_##name
#define SECPOL_DISPATCH() goto dispatch
  enum : std::uint8_t {
    k_handler_assign_imm = kHAssignImm, k_handler_assign_reg, k_handler_assign_unary,
    k_handler_assign_rr, k_handler_assign_ri, k_handler_assign_ir, k_handler_assign_sel,
    k_handler_decision_imm, k_handler_decision_reg, k_handler_decision_unary,
    k_handler_decision_rr, k_handler_decision_ri, k_handler_decision_ir,
    k_handler_decision_sel,
    k_handler_halt_release, k_handler_start_jump,
    k_handler_const, k_handler_mov, k_handler_unary, k_handler_binary, k_handler_select,
    k_handler_jump, k_handler_branchz,
    k_handler_lab_assign, k_handler_lab_test, k_handler_lab_restore,
    k_handler_assign_add_rr, k_handler_assign_sub_rr, k_handler_assign_add_ri,
    k_handler_assign_sub_ri,
    k_handler_decision_eq_ri, k_handler_decision_ne_ri, k_handler_decision_lt_ri,
    k_handler_decision_le_ri, k_handler_decision_gt_ri, k_handler_decision_ge_ri,
    k_handler_decision_eq_rr, k_handler_decision_ne_rr, k_handler_decision_lt_rr,
    k_handler_assign_reg_halt, k_handler_assign_imm_halt, k_handler_assign_add_rr_halt,
    k_handler_sub_ri_then_ne_ri, k_handler_sub_ri_then_gt_ri, k_handler_sub_ri_then_ge_ri,
    k_handler_add_ri_then_ne_ri, k_handler_add_ri_then_lt_ri, k_handler_add_ri_then_le_ri,
  };
dispatch:
  inst = reinterpret_cast<const FastInst*>(code_bytes + pc);
  switch (inst->handler) {
#endif

  // -- Fused assign boxes, one handler per operand shape ---------------------
  SECPOL_CASE(assign_imm) : {
    SECPOL_CHARGE();
    SECPOL_ASSIGN_LABEL_FAST();
    regs[inst->dst] = inst->imm;
    pc = inst->target;
    SECPOL_DISPATCH();
  }
  SECPOL_CASE(assign_reg) : {
    SECPOL_CHARGE();
    SECPOL_ASSIGN_LABEL_FAST();
    regs[inst->dst] = regs[inst->a];
    pc = inst->target;
    SECPOL_DISPATCH();
  }
  SECPOL_CASE(assign_unary) : {
    SECPOL_CHARGE();
    SECPOL_ASSIGN_LABEL_FAST();
    regs[inst->dst] = EvalUnaryOp(static_cast<UnaryOp>(inst->arith), regs[inst->a]);
    pc = inst->target;
    SECPOL_DISPATCH();
  }
  SECPOL_CASE(assign_rr) : {
    SECPOL_CHARGE();
    SECPOL_ASSIGN_LABEL_FAST();
    regs[inst->dst] = SECPOL_BIN(regs[inst->a], regs[inst->b]);
    pc = inst->target;
    SECPOL_DISPATCH();
  }
  SECPOL_CASE(assign_ri) : {
    SECPOL_CHARGE();
    SECPOL_ASSIGN_LABEL_FAST();
    regs[inst->dst] = SECPOL_BIN(regs[inst->a], inst->imm);
    pc = inst->target;
    SECPOL_DISPATCH();
  }
  SECPOL_CASE(assign_ir) : {
    SECPOL_CHARGE();
    SECPOL_ASSIGN_LABEL_FAST();
    regs[inst->dst] = SECPOL_BIN(inst->imm, regs[inst->b]);
    pc = inst->target;
    SECPOL_DISPATCH();
  }
  SECPOL_CASE(assign_sel) : {
    SECPOL_CHARGE();
    SECPOL_ASSIGN_LABEL_FAST();
    regs[inst->dst] = regs[inst->a] != 0 ? regs[inst->b] : regs[inst->c];
    pc = inst->target;
    SECPOL_DISPATCH();
  }

  // -- Fused decision boxes ---------------------------------------------------
  SECPOL_CASE(decision_imm) : {
    SECPOL_CHARGE();
    SECPOL_DECISION_LABEL_FAST();
    SECPOL_DECISION_TAIL(inst->imm != 0);
  }
  SECPOL_CASE(decision_reg) : {
    SECPOL_CHARGE();
    SECPOL_DECISION_LABEL_FAST();
    SECPOL_DECISION_TAIL(regs[inst->a] != 0);
  }
  SECPOL_CASE(decision_unary) : {
    SECPOL_CHARGE();
    SECPOL_DECISION_LABEL_FAST();
    SECPOL_DECISION_TAIL(EvalUnaryOp(static_cast<UnaryOp>(inst->arith), regs[inst->a]) != 0);
  }
  SECPOL_CASE(decision_rr) : {
    SECPOL_CHARGE();
    SECPOL_DECISION_LABEL_FAST();
    SECPOL_DECISION_TAIL(SECPOL_BIN(regs[inst->a], regs[inst->b]) != 0);
  }
  SECPOL_CASE(decision_ri) : {
    SECPOL_CHARGE();
    SECPOL_DECISION_LABEL_FAST();
    SECPOL_DECISION_TAIL(SECPOL_BIN(regs[inst->a], inst->imm) != 0);
  }
  SECPOL_CASE(decision_ir) : {
    SECPOL_CHARGE();
    SECPOL_DECISION_LABEL_FAST();
    SECPOL_DECISION_TAIL(SECPOL_BIN(inst->imm, regs[inst->b]) != 0);
  }
  SECPOL_CASE(decision_sel) : {
    SECPOL_CHARGE();
    SECPOL_DECISION_LABEL_FAST();
    SECPOL_DECISION_TAIL((regs[inst->a] != 0 ? regs[inst->b] : regs[inst->c]) != 0);
  }

  // -- Fused halt / start ------------------------------------------------------
  SECPOL_CASE(halt_release) : {
  halt_body:
    SECPOL_CHARGE();
    const std::uint64_t release = labels[cs.output_var] | pc_label;
    if ((release & ~allowed) == 0) {
      outp->kind = Outcome::Kind::kValue;
      outp->value = regs[cs.code.output_reg()];
      outp->steps = steps;
      outp->notice.clear();
    } else {
      outp->kind = Outcome::Kind::kViolation;
      outp->value = 0;
      outp->steps = steps;
      outp->notice.assign("output depends on disallowed inputs");
    }
    goto done;
  }
  SECPOL_CASE(start_jump) : {
    SECPOL_CHARGE();
    pc = inst->target;
    SECPOL_DISPATCH();
  }

  // -- Generic fallback chunks: one dispatch per bytecode micro-op -------------
  SECPOL_CASE(const) : {
    regs[inst->dst] = inst->imm;
    pc += static_cast<std::int32_t>(sizeof(FastInst));
    SECPOL_DISPATCH();
  }
  SECPOL_CASE(mov) : {
    regs[inst->dst] = regs[inst->a];
    pc += static_cast<std::int32_t>(sizeof(FastInst));
    SECPOL_DISPATCH();
  }
  SECPOL_CASE(unary) : {
    regs[inst->dst] = EvalUnaryOp(static_cast<UnaryOp>(inst->arith), regs[inst->a]);
    pc += static_cast<std::int32_t>(sizeof(FastInst));
    SECPOL_DISPATCH();
  }
  SECPOL_CASE(binary) : {
    regs[inst->dst] = SECPOL_BIN(regs[inst->a], regs[inst->b]);
    pc += static_cast<std::int32_t>(sizeof(FastInst));
    SECPOL_DISPATCH();
  }
  SECPOL_CASE(select) : {
    regs[inst->dst] = regs[inst->a] != 0 ? regs[inst->b] : regs[inst->c];
    pc += static_cast<std::int32_t>(sizeof(FastInst));
    SECPOL_DISPATCH();
  }
  SECPOL_CASE(jump) : {
    pc = inst->target;
    SECPOL_DISPATCH();
  }
  SECPOL_CASE(branchz) : {
    if (regs[inst->a] == 0) {
      pc = inst->target;
      SECPOL_DISPATCH();
    }
    pc += static_cast<std::int32_t>(sizeof(FastInst));
    SECPOL_DISPATCH();
  }
  SECPOL_CASE(lab_assign) : {
    if (inst->flags & kFFlagCharges) {
      SECPOL_CHARGE();
    }
    SECPOL_ASSIGN_LABEL(JoinOf(labels, inst->vars_mask));
    pc += static_cast<std::int32_t>(sizeof(FastInst));
    SECPOL_DISPATCH();
  }
  SECPOL_CASE(lab_test) : {
    if (inst->flags & kFFlagCharges) {
      SECPOL_CHARGE();
    }
    SECPOL_DECISION_LABEL(JoinOf(labels, inst->vars_mask));
    pc += static_cast<std::int32_t>(sizeof(FastInst));
    SECPOL_DISPATCH();
  }
  SECPOL_CASE(lab_restore) : {
    if (inst->flags & kFFlagCharges) {
      // SECPOL_CHARGE() performs the restore itself via kFFlagRestore.
      SECPOL_CHARGE();
    } else {
      PopScopes(scopes, pc_label, inst->source_box);
    }
    pc += static_cast<std::int32_t>(sizeof(FastInst));
    SECPOL_DISPATCH();
  }

// -- Arith-specialized fused boxes: the operator is baked into the dispatch
// token, so loop counters (`i = i - 1`) and guards (`i != 0`) evaluate
// inline with no EvalBinaryOp switch on the critical path.
#define SECPOL_ASSIGN_SPEC(name, expr)                                        \
  SECPOL_CASE(name) : {                                                       \
    SECPOL_CHARGE();                                                          \
    SECPOL_ASSIGN_LABEL_FAST();                                               \
    regs[inst->dst] = (expr);                                                 \
    pc = inst->target;                                                        \
    SECPOL_DISPATCH();                                                        \
  }
#define SECPOL_DECISION_SPEC(name, cond)                                      \
  SECPOL_CASE(name) : {                                                       \
    SECPOL_CHARGE();                                                          \
    SECPOL_DECISION_LABEL_FAST();                                             \
    SECPOL_DECISION_TAIL(cond);                                               \
  }
// As above, plus a local body label so loop-pair handlers can enter the
// decision with a direct branch instead of a dispatch.
#define SECPOL_DECISION_SPEC_L(name, body, cond)                              \
  SECPOL_CASE(name) : {                                                       \
  body:                                                                       \
    SECPOL_CHARGE();                                                          \
    SECPOL_DECISION_LABEL_FAST();                                             \
    SECPOL_DECISION_TAIL(cond);                                               \
  }

  SECPOL_ASSIGN_SPEC(assign_add_rr, WrapAdd(regs[inst->a], regs[inst->b]))
  SECPOL_ASSIGN_SPEC(assign_sub_rr, WrapSub(regs[inst->a], regs[inst->b]))
  SECPOL_ASSIGN_SPEC(assign_add_ri, WrapAdd(regs[inst->a], inst->imm))
  SECPOL_ASSIGN_SPEC(assign_sub_ri, WrapSub(regs[inst->a], inst->imm))
  SECPOL_DECISION_SPEC(decision_eq_ri, regs[inst->a] == inst->imm)
  SECPOL_DECISION_SPEC_L(decision_ne_ri, d_ne_ri_body, regs[inst->a] != inst->imm)
  SECPOL_DECISION_SPEC_L(decision_lt_ri, d_lt_ri_body, regs[inst->a] < inst->imm)
  SECPOL_DECISION_SPEC_L(decision_le_ri, d_le_ri_body, regs[inst->a] <= inst->imm)
  SECPOL_DECISION_SPEC_L(decision_gt_ri, d_gt_ri_body, regs[inst->a] > inst->imm)
  SECPOL_DECISION_SPEC_L(decision_ge_ri, d_ge_ri_body, regs[inst->a] >= inst->imm)
  SECPOL_DECISION_SPEC(decision_eq_rr, regs[inst->a] == regs[inst->b])
  SECPOL_DECISION_SPEC(decision_ne_rr, regs[inst->a] != regs[inst->b])
  SECPOL_DECISION_SPEC(decision_lt_rr, regs[inst->a] < regs[inst->b])

#undef SECPOL_ASSIGN_SPEC
#undef SECPOL_DECISION_SPEC
#undef SECPOL_DECISION_SPEC_L

// -- Release pairs: assign, then fall straight into the halt box ------------
#define SECPOL_ASSIGN_HALT(name, expr)                                        \
  SECPOL_CASE(name) : {                                                       \
    SECPOL_CHARGE();                                                          \
    SECPOL_ASSIGN_LABEL_FAST();                                               \
    regs[inst->dst] = (expr);                                                 \
    inst = SECPOL_TARGET(inst->target);                                       \
    goto halt_body;                                                           \
  }

  SECPOL_ASSIGN_HALT(assign_reg_halt, regs[inst->a])
  SECPOL_ASSIGN_HALT(assign_imm_halt, inst->imm)
  SECPOL_ASSIGN_HALT(assign_add_rr_halt, WrapAdd(regs[inst->a], regs[inst->b]))

#undef SECPOL_ASSIGN_HALT

// -- Loop pairs: counted-loop update, then straight into the guard ----------
#define SECPOL_LOOP_PAIR(name, expr, body)                                    \
  SECPOL_CASE(name) : {                                                       \
    SECPOL_CHARGE();                                                          \
    SECPOL_ASSIGN_LABEL_FAST();                                               \
    regs[inst->dst] = (expr);                                                 \
    inst = SECPOL_TARGET(inst->target);                                       \
    goto body;                                                                \
  }

  SECPOL_LOOP_PAIR(sub_ri_then_ne_ri, WrapSub(regs[inst->a], inst->imm), d_ne_ri_body)
  SECPOL_LOOP_PAIR(sub_ri_then_gt_ri, WrapSub(regs[inst->a], inst->imm), d_gt_ri_body)
  SECPOL_LOOP_PAIR(sub_ri_then_ge_ri, WrapSub(regs[inst->a], inst->imm), d_ge_ri_body)
  SECPOL_LOOP_PAIR(add_ri_then_ne_ri, WrapAdd(regs[inst->a], inst->imm), d_ne_ri_body)
  SECPOL_LOOP_PAIR(add_ri_then_lt_ri, WrapAdd(regs[inst->a], inst->imm), d_lt_ri_body)
  SECPOL_LOOP_PAIR(add_ri_then_le_ri, WrapAdd(regs[inst->a], inst->imm), d_le_ri_body)

#undef SECPOL_LOOP_PAIR

#if !SECPOL_VM_THREADED
  }
  throw BytecodeError("invalid fused handler token");
#endif

  // -- Cold exits ---------------------------------------------------------------
exhausted:
  outp->kind = Outcome::Kind::kViolation;
  outp->value = 0;
  outp->steps = steps;
  outp->notice.assign("fuel exhausted");
  goto done;
checked_abort:
  outp->kind = Outcome::Kind::kViolation;
  outp->value = 0;
  outp->steps = steps;
  outp->notice.assign("test on disallowed data");
  goto done;
done:
  if constexpr (kTrack) {
    footprint->reads = VarSet::FromBits(reads);
  }
  if (pc_label_out != nullptr) {
    *pc_label_out = pc_label;
  }
  // Plain `if` (constant-folded) rather than `if constexpr`, so the
  // point_start label is referenced in every instantiation.
  if (kBlock && ++rank < blk->end) {
    goto point_start;
  }

#undef SECPOL_CHARGE
#undef SECPOL_ASSIGN_LABEL
#undef SECPOL_DECISION_LABEL
#undef SECPOL_BIN
#undef SECPOL_CASE
#undef SECPOL_TARGET
#undef SECPOL_DISPATCH
#undef SECPOL_DECISION_TAIL
}

void RunCore(const CompiledSurveillance& cs, BcScratch& scratch, ExecFootprint* footprint,
             std::uint64_t* pc_label_out, Outcome& out) {
  if (cs.fast.empty()) {
    throw BytecodeError(
        "compiled surveillance has no fused code — not produced by CompileSurveillance");
  }
  // Plain programs (no scoped-pc frames, no checked tests) take the
  // stripped-down instantiation; the builder never sets the corresponding
  // flags for them.
  const bool plain = cs.discipline != LabelDiscipline::kNaiveScopedPc &&
                     cs.timing != TimingMode::kTimeObservable;
  if (footprint != nullptr) {
    if (plain) {
      RunCoreImpl<true, false, true>(cs, scratch, footprint, pc_label_out, &out, nullptr);
    } else {
      RunCoreImpl<true, false, false>(cs, scratch, footprint, pc_label_out, &out, nullptr);
    }
  } else {
    if (plain) {
      RunCoreImpl<false, false, true>(cs, scratch, nullptr, pc_label_out, &out, nullptr);
    } else {
      RunCoreImpl<false, false, false>(cs, scratch, nullptr, pc_label_out, &out, nullptr);
    }
  }
}

// Per-point scratch reset: registers zeroed and inputs scattered, the label
// file copied from the precomputed seed (which includes the fused join's
// always-zero slot), scope stack emptied. No allocation in steady state.
void LoadPoint(const CompiledSurveillance& cs, InputView input, BcScratch& scratch) {
  scratch.regs.resize(static_cast<size_t>(cs.code.num_registers()));
  scratch.labels.resize(cs.label_seed.size());
  std::fill(scratch.regs.begin(), scratch.regs.end(), Value{0});
  std::memcpy(scratch.labels.data(), cs.label_seed.data(),
              cs.label_seed.size() * sizeof(std::uint64_t));
  scratch.scopes.clear();
  for (int i = 0; i < cs.num_inputs; ++i) {
    scratch.regs[static_cast<size_t>(i)] = input[i];
  }
}

// ---- Fused-stream construction -------------------------------------------

// Matches a chunk's value micro-ops against the inline small-expression
// forms, filling eval/arith/a/b/c/imm. `result_reg` is where the chunk's
// terminator expects the value (the assign destination or the branch
// register). Constant subtrees fold through the total arithmetic of arith.h,
// which computes exactly what the reference would compute at run time.
bool MatchSmallExpr(const BcInst* ops, std::size_t n, int result_reg, FastInst& f) {
  const auto set_bin = [&](BinaryOp op) { f.arith = static_cast<std::uint8_t>(op); };
  if (n == 0) {
    // A variable-to-itself assign (or a bare-variable predicate) compiles to
    // no micro-ops; the value is already in result_reg.
    f.eval = static_cast<std::uint8_t>(FastEval::kReg);
    f.a = static_cast<std::int16_t>(result_reg);
    return true;
  }
  if (n == 1) {
    const BcInst& v = ops[0];
    if (v.dst != result_reg) {
      return false;
    }
    switch (v.op) {
      case BcOp::kConst:
        f.eval = static_cast<std::uint8_t>(FastEval::kImm);
        f.imm = v.imm;
        return true;
      case BcOp::kMov:
        f.eval = static_cast<std::uint8_t>(FastEval::kReg);
        f.a = static_cast<std::int16_t>(v.a);
        return true;
      case BcOp::kUnary:
        f.eval = static_cast<std::uint8_t>(FastEval::kUnaryReg);
        f.arith = static_cast<std::uint8_t>(v.unary_op);
        f.a = static_cast<std::int16_t>(v.a);
        return true;
      case BcOp::kBinary:
        f.eval = static_cast<std::uint8_t>(FastEval::kBinRR);
        set_bin(v.binary_op);
        f.a = static_cast<std::int16_t>(v.a);
        f.b = static_cast<std::int16_t>(v.b);
        return true;
      case BcOp::kSelect:
        f.eval = static_cast<std::uint8_t>(FastEval::kSel);
        f.a = static_cast<std::int16_t>(v.a);
        f.b = static_cast<std::int16_t>(v.b);
        f.c = static_cast<std::int16_t>(v.c);
        return true;
      default:
        return false;
    }
  }
  if (n == 2 && ops[0].op == BcOp::kConst) {
    const int t = ops[0].dst;
    const BcInst& v = ops[1];
    if (v.dst != result_reg) {
      return false;
    }
    if (v.op == BcOp::kBinary && v.a == t && v.b != t) {
      f.eval = static_cast<std::uint8_t>(FastEval::kBinIR);
      set_bin(v.binary_op);
      f.imm = ops[0].imm;
      f.b = static_cast<std::int16_t>(v.b);
      return true;
    }
    if (v.op == BcOp::kBinary && v.b == t && v.a != t) {
      f.eval = static_cast<std::uint8_t>(FastEval::kBinRI);
      set_bin(v.binary_op);
      f.a = static_cast<std::int16_t>(v.a);
      f.imm = ops[0].imm;
      return true;
    }
    if (v.op == BcOp::kUnary && v.a == t) {
      f.eval = static_cast<std::uint8_t>(FastEval::kImm);
      f.imm = EvalUnaryOp(v.unary_op, ops[0].imm);
      return true;
    }
    return false;
  }
  if (n == 3 && ops[0].op == BcOp::kConst && ops[1].op == BcOp::kConst &&
      ops[2].op == BcOp::kBinary && ops[2].dst == result_reg && ops[2].a == ops[0].dst &&
      ops[2].b == ops[1].dst && ops[0].dst != ops[1].dst) {
    f.eval = static_cast<std::uint8_t>(FastEval::kImm);
    f.imm = EvalBinaryOp(ops[2].binary_op, ops[0].imm, ops[1].imm);
    return true;
  }
  return false;
}

// Decomposes a fused box's join mask into the two label-slot operands of
// the branchless join (`labels[lab1] | labels[lab2]`). Unused slots read the
// hardwired zero slot at index `zero_slot`; masks wider than two variables
// return false and the chunk falls back to the generic translation.
bool SetLabSlots(FastInst& f, std::uint64_t mask, int zero_slot) {
  if (std::popcount(mask) > 2) {
    return false;
  }
  f.lab1 = f.lab2 = static_cast<std::int16_t>(zero_slot);
  if (mask != 0) {
    f.lab1 = static_cast<std::int16_t>(std::countr_zero(mask));
    mask &= mask - 1;
    if (mask != 0) {
      f.lab2 = static_cast<std::int16_t>(std::countr_zero(mask));
    }
  }
  return true;
}

// Composes the dispatch token from the builder-facing (op, eval) pair. The
// fused handler blocks are laid out in FastEval order, so the token is a base
// plus the eval ordinal.
std::uint8_t HandlerFor(FastOp op, std::uint8_t eval) {
  switch (op) {
    case FastOp::kAssign:
      return static_cast<std::uint8_t>(kHAssignImm + eval);
    case FastOp::kDecision:
      return static_cast<std::uint8_t>(kHDecisionImm + eval);
    case FastOp::kHaltRelease:
      return kHHaltRelease;
    case FastOp::kStartJump:
      return kHStartJump;
    case FastOp::kConst:
      return kHConst;
    case FastOp::kMov:
      return kHMov;
    case FastOp::kUnary:
      return kHUnary;
    case FastOp::kBinary:
      return kHBinary;
    case FastOp::kSelect:
      return kHSelect;
    case FastOp::kJump:
      return kHJump;
    case FastOp::kBranchZ:
      return kHBranchZ;
    case FastOp::kLabAssign:
      return kHLabAssign;
    case FastOp::kLabTest:
      return kHLabTest;
    case FastOp::kLabRestore:
      return kHLabRestore;
  }
  throw BytecodeError("unknown fused op");
}

// Upgrades a fused binary token to its arith-specialized handler when the
// operator has one, baking the operation into the dispatch byte. Purely a
// dispatch refinement: the specialized handlers compute exactly what the
// generic handler's EvalBinaryOp call would.
void SpecializeHandler(FastInst& f) {
  const auto op = static_cast<BinaryOp>(f.arith);
  switch (f.handler) {
    case kHAssignRR:
      if (op == BinaryOp::kAdd) f.handler = kHAssignAddRR;
      if (op == BinaryOp::kSub) f.handler = kHAssignSubRR;
      break;
    case kHAssignRI:
      if (op == BinaryOp::kAdd) f.handler = kHAssignAddRI;
      if (op == BinaryOp::kSub) f.handler = kHAssignSubRI;
      break;
    case kHDecisionRI:
      switch (op) {
        case BinaryOp::kEq: f.handler = kHDecisionEqRI; break;
        case BinaryOp::kNe: f.handler = kHDecisionNeRI; break;
        case BinaryOp::kLt: f.handler = kHDecisionLtRI; break;
        case BinaryOp::kLe: f.handler = kHDecisionLeRI; break;
        case BinaryOp::kGt: f.handler = kHDecisionGtRI; break;
        case BinaryOp::kGe: f.handler = kHDecisionGeRI; break;
        default: break;
      }
      break;
    case kHDecisionRR:
      switch (op) {
        case BinaryOp::kEq: f.handler = kHDecisionEqRR; break;
        case BinaryOp::kNe: f.handler = kHDecisionNeRR; break;
        case BinaryOp::kLt: f.handler = kHDecisionLtRR; break;
        default: break;
      }
      break;
    default:
      break;
  }
}

// Translates one micro-op for a generic (non-fusable) chunk, preserving the
// original charge placement and label semantics 1:1.
FastInst TranslateMicroOp(const BcInst& inst) {
  FastInst f;
  f.source_box = static_cast<std::int16_t>(inst.source_box);
  f.dst = static_cast<std::int16_t>(inst.dst);
  f.a = static_cast<std::int16_t>(inst.a);
  f.b = static_cast<std::int16_t>(inst.b);
  f.c = static_cast<std::int16_t>(inst.c);
  f.imm = inst.imm;
  f.vars_mask = inst.vars_mask;
  f.target = inst.target;  // original pc; patched to a fused pc by the caller
  if (inst.charges_step) {
    f.flags |= kFFlagCharges;
  }
  switch (inst.op) {
    case BcOp::kConst:
      f.op = static_cast<std::uint8_t>(FastOp::kConst);
      break;
    case BcOp::kMov:
      f.op = static_cast<std::uint8_t>(FastOp::kMov);
      break;
    case BcOp::kUnary:
      f.op = static_cast<std::uint8_t>(FastOp::kUnary);
      f.arith = static_cast<std::uint8_t>(inst.unary_op);
      break;
    case BcOp::kBinary:
      f.op = static_cast<std::uint8_t>(FastOp::kBinary);
      f.arith = static_cast<std::uint8_t>(inst.binary_op);
      break;
    case BcOp::kSelect:
      f.op = static_cast<std::uint8_t>(FastOp::kSelect);
      break;
    case BcOp::kJump:
      f.op = static_cast<std::uint8_t>(FastOp::kJump);
      break;
    case BcOp::kBranchZ:
      f.op = static_cast<std::uint8_t>(FastOp::kBranchZ);
      break;
    case BcOp::kLabAssign:
    case BcOp::kLabAssignHW:
      f.op = static_cast<std::uint8_t>(FastOp::kLabAssign);
      if (inst.op == BcOp::kLabAssignHW) {
        f.flags |= kFFlagHW;
      }
      break;
    case BcOp::kLabTest:
    case BcOp::kLabTestChecked:
      f.op = static_cast<std::uint8_t>(FastOp::kLabTest);
      f.scope_box = static_cast<std::int16_t>(inst.b);
      if (inst.op == BcOp::kLabTestChecked) {
        f.flags |= kFFlagChecked;
      }
      break;
    case BcOp::kLabRestore:
      f.op = static_cast<std::uint8_t>(FastOp::kLabRestore);
      if (inst.charges_step) {
        // charge() performs the restore itself in this case.
        f.flags |= kFFlagRestore;
      }
      break;
    case BcOp::kLabHalt:
    case BcOp::kHalt:
      // Halt chunks always fuse; a loose (or plain) halt here means the
      // stream was not produced by the instrumenting compiler.
      throw BytecodeError("unexpected halt micro-op in instrumented bytecode");
  }
  f.handler = HandlerFor(static_cast<FastOp>(f.op), f.eval);
  return f;
}

// Builds the fused stream from the instrumented bytecode. Chunks are
// delimited by charging instructions (exactly one per flowchart box); each
// chunk either collapses to one superinstruction or falls back to the 1:1
// translation. Targets are emitted as original pcs (always chunk heads) and
// patched through the head map at the end.
std::vector<FastInst> BuildFastCode(const BytecodeProgram& bytecode, int num_vars) {
  const std::vector<BcInst>& code = bytecode.code();
  if (code.empty() || !code.front().charges_step) {
    throw BytecodeError("instrumented bytecode does not start with a charging chunk head");
  }
  // Chunk boundaries: [starts[i], starts[i+1]).
  std::vector<std::size_t> starts;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i].charges_step) {
      starts.push_back(i);
    }
  }
  starts.push_back(code.size());

  std::vector<FastInst> fast;
  std::vector<std::int32_t> fast_pc_of(code.size() + 1, -1);
  for (std::size_t chunk = 0; chunk + 1 < starts.size(); ++chunk) {
    const std::size_t begin = starts[chunk];
    const std::size_t end = starts[chunk + 1];
    fast_pc_of[begin] = static_cast<std::int32_t>(fast.size());

    const BcInst* insts = code.data() + begin;
    std::size_t n = end - begin;
    bool restore = false;
    if (insts[0].op == BcOp::kLabRestore) {
      restore = true;
      ++insts;
      --n;
    }

    FastInst f;
    f.source_box = static_cast<std::int16_t>(code[begin].source_box);
    if (restore) {
      f.flags |= kFFlagRestore;
    }
    bool fused = false;
    if (n == 1 && insts[0].op == BcOp::kJump) {
      f.op = static_cast<std::uint8_t>(FastOp::kStartJump);
      f.target = insts[0].target;
      fused = true;
    } else if (n == 1 && insts[0].op == BcOp::kLabHalt) {
      f.op = static_cast<std::uint8_t>(FastOp::kHaltRelease);
      fused = true;
    } else if (n >= 2 &&
               (insts[0].op == BcOp::kLabAssign || insts[0].op == BcOp::kLabAssignHW) &&
               insts[n - 1].op == BcOp::kJump) {
      if (MatchSmallExpr(insts + 1, n - 2, insts[0].dst, f) &&
          SetLabSlots(f, insts[0].vars_mask, num_vars)) {
        f.op = static_cast<std::uint8_t>(FastOp::kAssign);
        if (insts[0].op == BcOp::kLabAssignHW) {
          f.flags |= kFFlagHW;
        }
        f.dst = static_cast<std::int16_t>(insts[0].dst);
        f.vars_mask = insts[0].vars_mask;
        f.target = insts[n - 1].target;
        fused = true;
      }
    } else if (n >= 3 &&
               (insts[0].op == BcOp::kLabTest || insts[0].op == BcOp::kLabTestChecked) &&
               insts[n - 2].op == BcOp::kBranchZ && insts[n - 1].op == BcOp::kJump) {
      if (MatchSmallExpr(insts + 1, n - 3, insts[n - 2].a, f) &&
          SetLabSlots(f, insts[0].vars_mask, num_vars)) {
        f.op = static_cast<std::uint8_t>(FastOp::kDecision);
        if (insts[0].op == BcOp::kLabTestChecked) {
          f.flags |= kFFlagChecked;
        }
        f.vars_mask = insts[0].vars_mask;
        f.scope_box = static_cast<std::int16_t>(insts[0].b);
        f.target = insts[n - 1].target;   // predicate true
        f.target2 = insts[n - 2].target;  // predicate false
        fused = true;
      }
    }
    if (fused) {
      f.handler = HandlerFor(static_cast<FastOp>(f.op), f.eval);
      SpecializeHandler(f);
      fast.push_back(f);
      continue;
    }
    // Generic fallback: translate the whole chunk (including any leading
    // restore, which keeps its charge placement) one micro-op at a time.
    for (std::size_t i = begin; i < end; ++i) {
      fast.push_back(TranslateMicroOp(code[i]));
    }
  }

  // Patch targets: every original target is a chunk head.
  for (FastInst& inst : fast) {
    const auto patch = [&](std::int32_t& target) {
      if (target < 0) {
        return;
      }
      if (static_cast<std::size_t>(target) >= fast_pc_of.size() ||
          fast_pc_of[static_cast<std::size_t>(target)] < 0) {
        throw BytecodeError("fused jump target " + std::to_string(target) +
                            " is not a chunk head");
      }
      // Targets are stored pre-scaled to byte offsets so the dispatch loop
      // indexes the stream with a plain add.
      target = fast_pc_of[static_cast<std::size_t>(target)] *
               static_cast<std::int32_t>(sizeof(FastInst));
    };
    switch (static_cast<FastOp>(inst.op)) {
      case FastOp::kAssign:
      case FastOp::kDecision:
      case FastOp::kStartJump:
      case FastOp::kJump:
      case FastOp::kBranchZ:
        patch(inst.target);
        patch(inst.target2);
        break;
      default:
        break;
    }
  }

  // Release pairs: an assign of pairable shape whose successor is the halt
  // box fuses with it (the halt instruction stays in place for its other
  // predecessors). Runs after patching so targets index the fused stream.
  const auto inst_at = [&](std::int32_t byte_off) -> const FastInst& {
    return fast[static_cast<std::size_t>(byte_off) / sizeof(FastInst)];
  };
  for (FastInst& inst : fast) {
    if (inst.target < 0 || inst_at(inst.target).handler != kHHaltRelease) {
      continue;
    }
    switch (inst.handler) {
      case kHAssignReg:
        inst.handler = kHAssignRegHalt;
        break;
      case kHAssignImm:
        inst.handler = kHAssignImmHalt;
        break;
      case kHAssignAddRR:
        inst.handler = kHAssignAddRRHalt;
        break;
      default:
        break;
    }
  }

  // Loop pairs: a counted-loop update whose successor is a comparison
  // decision enters the guard by a direct branch — one dispatch per
  // iteration for the canonical `i = i ± c; if (i <cmp> k)` back-edge.
  const auto pair_of = [](std::uint8_t update, std::uint8_t guard) -> std::uint8_t {
    if (update == kHAssignSubRI) {
      if (guard == kHDecisionNeRI) return kHSubRIThenNeRI;
      if (guard == kHDecisionGtRI) return kHSubRIThenGtRI;
      if (guard == kHDecisionGeRI) return kHSubRIThenGeRI;
    }
    if (update == kHAssignAddRI) {
      if (guard == kHDecisionNeRI) return kHAddRIThenNeRI;
      if (guard == kHDecisionLtRI) return kHAddRIThenLtRI;
      if (guard == kHDecisionLeRI) return kHAddRIThenLeRI;
    }
    return update;
  };
  for (FastInst& inst : fast) {
    if (inst.target >= 0) {
      inst.handler = pair_of(inst.handler, inst_at(inst.target).handler);
    }
  }
  return fast;
}

}  // namespace

CompiledSurveillance CompileSurveillance(const Program& program, VarSet allowed,
                                         TimingMode timing, LabelDiscipline discipline,
                                         StepCount fuel) {
  if (!allowed.SubsetOf(VarSet::FirstN(program.num_inputs()))) {
    throw ArityError("allow set " + allowed.ToString() + " references inputs beyond arity " +
                     std::to_string(program.num_inputs()) + " of program '" + program.name() +
                     "'");
  }
  if (const Result<bool> valid = program.Validate(); !valid.ok()) {
    throw BytecodeError("cannot compile invalid program '" + program.name() +
                        "': " + valid.error().ToString());
  }
  BcSurveillance instr;
  instr.high_water = discipline == LabelDiscipline::kHighWater;
  instr.checked_tests = timing == TimingMode::kTimeObservable;
  instr.scoped_pc = discipline == LabelDiscipline::kNaiveScopedPc;
  if (instr.scoped_pc) {
    const Cfg cfg(program);
    const PostDominators pdom(cfg);
    instr.ipdom.resize(static_cast<size_t>(program.num_boxes()), -1);
    for (int b = 0; b < program.num_boxes(); ++b) {
      instr.ipdom[static_cast<size_t>(b)] = pdom.ImmediatePostDominator(b);
    }
  }
  CompiledSurveillance out;
  out.code = CompileToBytecode(program, &instr);
  out.fast = BuildFastCode(out.code, program.num_vars());
  out.allowed = allowed;
  out.timing = timing;
  out.discipline = discipline;
  out.fuel = fuel;
  out.num_vars = program.num_vars();
  out.num_boxes = program.num_boxes();
  out.num_inputs = program.num_inputs();
  out.output_var = program.output_var();
  out.label_seed.assign(static_cast<size_t>(out.num_vars) + 1, 0);
  for (int i = 0; i < out.num_inputs; ++i) {
    out.label_seed[static_cast<size_t>(i)] = std::uint64_t{1} << i;
  }
  if (!out.fast.empty() && out.fast.front().handler == kHStartJump &&
      out.fast.front().flags == 0) {
    out.entry_pc = out.fast.front().target;
    out.entry_steps = 1;
    out.entry_box = out.fast.front().source_box;
  }
  return out;
}

Outcome RunCompiled(const CompiledSurveillance& compiled, InputView input, BcScratch& scratch,
                    ExecFootprint* footprint) {
  if (static_cast<int>(input.size()) != compiled.num_inputs) {
    throw ArityError("compiled mechanism expects " + std::to_string(compiled.num_inputs) +
                     " inputs, got " + std::to_string(input.size()));
  }
  if (footprint != nullptr) {
    footprint->reads = VarSet();
    footprint->boxes.assign(static_cast<size_t>(compiled.num_boxes), false);
  }
  LoadPoint(compiled, input, scratch);
  Outcome out;
  RunCore(compiled, scratch, footprint, nullptr, out);
  return out;
}

SurveillanceTrace RunCompiledTraced(const CompiledSurveillance& compiled, InputView input) {
  if (static_cast<int>(input.size()) != compiled.num_inputs) {
    throw ArityError("compiled mechanism expects " + std::to_string(compiled.num_inputs) +
                     " inputs, got " + std::to_string(input.size()));
  }
  BcScratch scratch;
  LoadPoint(compiled, input, scratch);
  std::uint64_t pc_label = 0;
  SurveillanceTrace trace;
  RunCore(compiled, scratch, nullptr, &pc_label, trace.outcome);
  trace.labels.reserve(static_cast<size_t>(compiled.num_vars));
  for (int v = 0; v < compiled.num_vars; ++v) {
    trace.labels.push_back(VarSet::FromBits(scratch.labels[static_cast<size_t>(v)]));
  }
  trace.pc_label = VarSet::FromBits(pc_label);
  return trace;
}

void RunCompiledBlock(const CompiledSurveillance& compiled,
                      const std::vector<std::vector<Value>>& columns, std::size_t begin,
                      std::size_t end, BcScratch& scratch, std::vector<Outcome>& out) {
  if (static_cast<int>(columns.size()) != compiled.num_inputs) {
    throw ArityError("compiled mechanism expects " + std::to_string(compiled.num_inputs) +
                     " input columns, got " + std::to_string(columns.size()));
  }
  if (begin >= end) {
    return;
  }
  if (compiled.fast.empty()) {
    throw BytecodeError(
        "compiled surveillance has no fused code — not produced by CompileSurveillance");
  }
  scratch.regs.resize(static_cast<size_t>(compiled.code.num_registers()));
  scratch.labels.resize(compiled.label_seed.size());
  // The whole range runs inside one RunCoreImpl activation; outcomes are
  // written in place (notice capacity reused), so the block loop performs no
  // per-point allocation and no per-point call-boundary register traffic.
  BlockRun blk{&columns, begin, end, &out};
  if (compiled.discipline != LabelDiscipline::kNaiveScopedPc &&
      compiled.timing != TimingMode::kTimeObservable) {
    RunCoreImpl<false, true, true>(compiled, scratch, nullptr, nullptr, nullptr, &blk);
  } else {
    RunCoreImpl<false, true, false>(compiled, scratch, nullptr, nullptr, nullptr, &blk);
  }
}

CompiledSurveillanceMechanism::CompiledSurveillanceMechanism(Program program,
                                                             VarSet allowed_inputs,
                                                             TimingMode timing,
                                                             LabelDiscipline discipline,
                                                             StepCount fuel)
    : SurveillanceMechanism(std::move(program), allowed_inputs, timing, discipline, fuel),
      compiled_(CompileSurveillance(this->program(), allowed_inputs, timing, discipline,
                                    fuel)) {}

Outcome CompiledSurveillanceMechanism::Run(InputView input) const {
  // One scratch per thread = one per sweep shard: the register file, label
  // file, and scope stack are recycled across every point the shard visits.
  static thread_local BcScratch scratch;
  return RunCompiled(compiled_, input, scratch);
}

TrackedOutcome CompiledSurveillanceMechanism::RunTracked(InputView input) const {
  static thread_local BcScratch scratch;
  ExecFootprint footprint;
  Outcome outcome = RunCompiled(compiled_, input, scratch, &footprint);
  return TrackedOutcome{std::move(outcome), footprint.reads, true, footprint.BoxIds(), true};
}

}  // namespace secpol
