#include "src/corpus/generator.h"

#include <cassert>

namespace secpol {

namespace {

class Generator {
 public:
  Generator(const CorpusConfig& config, std::uint64_t seed) : config_(config), rng_(seed) {}

  SourceProgram Run(const std::string& name) {
    SourceProgram program;
    program.name = name;
    // Built by append: GCC 12's -Wrestrict false-fires on the equivalent
    // char* + std::string chains when inlined at -O3 (PR 105651).
    auto numbered = [](const char* prefix, int i) {
      std::string id = prefix;
      id += std::to_string(i);
      return id;
    };
    for (int i = 0; i < config_.num_inputs; ++i) {
      program.input_names.push_back(numbered("x", i));
    }
    for (int i = 0; i < config_.num_value_locals; ++i) {
      program.local_names.push_back(numbered("r", i));
    }
    for (int i = 0; i < config_.num_counter_locals; ++i) {
      program.local_names.push_back(numbered("c", i));
    }
    num_inputs_ = config_.num_inputs;
    first_counter_ = config_.num_inputs + config_.num_value_locals;
    output_var_ = program.output_var();

    program.body = GenBlock(config_.max_depth);
    // Guarantee the output is written at least once so programs are not
    // trivially constant.
    program.body.push_back(Stmt::Assign(output_var_, GenExpr(config_.expr_depth)));
    return program;
  }

 private:
  // Readable variables: inputs, value locals, y.
  int RandomReadableVar() {
    const int choices = config_.num_inputs + config_.num_value_locals + 1;
    const int pick = static_cast<int>(rng_.NextBelow(static_cast<std::uint64_t>(choices)));
    if (pick < first_counter_) {
      return pick;
    }
    return output_var_;
  }

  // Writable variables: value locals and y (never inputs, never counters).
  int RandomWritableVar() {
    const int choices = config_.num_value_locals + 1;
    const int pick = static_cast<int>(rng_.NextBelow(static_cast<std::uint64_t>(choices)));
    if (pick < config_.num_value_locals) {
      return num_inputs_ + pick;
    }
    return output_var_;
  }

  Expr GenExpr(int depth) {
    if (depth <= 0 || rng_.Chance(35, 100)) {
      // Leaf.
      if (rng_.Chance(40, 100)) {
        return Expr::Const(rng_.NextInRange(-config_.const_range, config_.const_range));
      }
      return Expr::Var(RandomReadableVar());
    }
    static constexpr BinaryOp kOps[] = {
        BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul, BinaryOp::kMin, BinaryOp::kMax,
        BinaryOp::kEq,  BinaryOp::kNe,  BinaryOp::kLt,  BinaryOp::kAnd, BinaryOp::kOr,
    };
    const BinaryOp op = kOps[rng_.NextBelow(std::size(kOps))];
    return Expr::Binary(op, GenExpr(depth - 1), GenExpr(depth - 1));
  }

  Expr GenPredicate(int depth) {
    static constexpr BinaryOp kCmps[] = {BinaryOp::kEq, BinaryOp::kNe, BinaryOp::kLt,
                                         BinaryOp::kLe, BinaryOp::kGt, BinaryOp::kGe};
    const BinaryOp op = kCmps[rng_.NextBelow(std::size(kCmps))];
    return Expr::Binary(op, GenExpr(depth - 1), GenExpr(depth - 1));
  }

  std::vector<Stmt> GenBlock(int depth) {
    const int len = static_cast<int>(rng_.NextInRange(config_.min_block_len,
                                                      config_.max_block_len));
    std::vector<Stmt> block;
    for (int i = 0; i < len; ++i) {
      block.push_back(GenStmt(depth));
    }
    return block;
  }

  Stmt GenStmt(int depth) {
    const int roll = static_cast<int>(rng_.NextBelow(100));
    if (depth > 0 && roll < config_.percent_if) {
      Expr cond = GenPredicate(config_.expr_depth);
      std::vector<Stmt> then_body = GenBlock(depth - 1);
      std::vector<Stmt> else_body =
          rng_.Chance(60, 100) ? GenBlock(depth - 1) : std::vector<Stmt>{};
      return Stmt::If(std::move(cond), std::move(then_body), std::move(else_body));
    }
    if (depth > 0 && roll < config_.percent_if + config_.percent_while &&
        counters_in_use_ < config_.num_counter_locals) {
      // Bounded-counter loop over a dedicated counter.
      const int counter = first_counter_ + counters_in_use_;
      ++counters_in_use_;
      const Value bound = rng_.NextInRange(1, config_.max_loop_bound);
      std::vector<Stmt> body = GenBlock(depth - 1);
      body.push_back(Stmt::Assign(counter, Sub(V(counter), C(1))));
      --counters_in_use_;
      // The init + loop pair is returned as a marker If wrapping both; the
      // caller flattens it. Simpler: return the loop and let callers place
      // the init — instead we emit a compound via a block-level trick below.
      Stmt loop = Stmt::While(Ne(V(counter), C(0)), std::move(body));
      // Wrap init + loop in an always-true If so GenStmt can return a single
      // statement without a splice mechanism; lowering an If(1){...} is one
      // extra decision box and functionally transparent.
      std::vector<Stmt> pair;
      pair.push_back(Stmt::Assign(counter, C(bound)));
      pair.push_back(std::move(loop));
      return Stmt::If(Expr::Const(1), std::move(pair), {});
    }
    return Stmt::Assign(RandomWritableVar(), GenExpr(config_.expr_depth));
  }

  const CorpusConfig& config_;
  Rng rng_;
  int num_inputs_ = 0;
  int first_counter_ = 0;
  int output_var_ = 0;
  int counters_in_use_ = 0;
};

}  // namespace

SourceProgram GenerateProgram(const CorpusConfig& config, std::uint64_t seed,
                              const std::string& name) {
  Generator generator(config, seed);
  return generator.Run(name);
}

VarSet GenerateAllowSet(int num_inputs, std::uint64_t seed) {
  // A distinct stream from the program generator's: the same seed must not
  // correlate a program's shape with its policy.
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  VarSet allowed;
  for (int i = 0; i < num_inputs; ++i) {
    if (rng.Chance(1, 2)) {
      allowed.Insert(i);
    }
  }
  return allowed;
}

TransformPlan GenerateTransformPlan(std::uint64_t seed) {
  Rng rng(seed ^ 0xbf58476d1ce4e5b9ULL);
  TransformPlan plan;
  plan.if_to_select = rng.Chance(1, 2);
  plan.simplify_equal_arms = !plan.if_to_select || rng.Chance(3, 4);
  if (rng.Chance(1, 2)) {
    plan.unroll_factor = rng.NextInRange(1, 4);
  }
  plan.tail_duplicate = rng.Chance(1, 3);
  return plan;
}

std::vector<SourceProgram> MakeCorpus(const CorpusConfig& config, int count, std::uint64_t seed) {
  std::vector<SourceProgram> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(
        GenerateProgram(config, seed + static_cast<std::uint64_t>(i),
                        "gen_" + std::to_string(seed + static_cast<std::uint64_t>(i))));
  }
  return out;
}

}  // namespace secpol
