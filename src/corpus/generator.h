// Seeded random program generation.
//
// The paper's definitions require programs to be *total* functions; random
// programs here are total by construction: every loop is a bounded-counter
// loop
//     c = K; while (c != 0) { ...; c = c - 1; }
// over a dedicated counter local that nothing else assigns, so nesting depth
// bounds running time. The generator is fully deterministic in (config,
// seed), which makes every property-test failure reproducible from its seed.

#ifndef SECPOL_SRC_CORPUS_GENERATOR_H_
#define SECPOL_SRC_CORPUS_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/flowlang/ast.h"
#include "src/transforms/transforms.h"
#include "src/util/rng.h"
#include "src/util/var_set.h"

namespace secpol {

struct CorpusConfig {
  int num_inputs = 3;
  int num_value_locals = 2;
  int num_counter_locals = 2;  // one consumed per (possibly nested) loop
  int max_depth = 3;           // nesting depth of if/while
  int min_block_len = 1;
  int max_block_len = 4;
  int expr_depth = 2;
  // Constants are drawn from [-const_range, const_range].
  int const_range = 3;
  // Loop bounds are drawn from [1, max_loop_bound].
  int max_loop_bound = 3;
  // Out of 100: chance a generated statement is an if / a while (the rest
  // are assignments). while additionally requires a free counter.
  int percent_if = 30;
  int percent_while = 20;
};

// Generates one program. Deterministic in (config, seed).
SourceProgram GenerateProgram(const CorpusConfig& config, std::uint64_t seed,
                              const std::string& name);

// Generates `count` programs seeded seed, seed+1, ...
std::vector<SourceProgram> MakeCorpus(const CorpusConfig& config, int count,
                                      std::uint64_t seed);

// --- Seeded policy generation ---
//
// The fuzzer and the scenario engine need random allow(J) policies with the
// same reproducibility contract as the programs: deterministic in
// (num_inputs, seed), portable across platforms (the Rng is fixed-algorithm
// by design). Each input index is included with probability 1/2; the
// all-empty and all-full sets are real outcomes, not excluded — the paper's
// extreme policies (allow nothing / allow everything) are exactly the ones
// hand-curation under-samples.
VarSet GenerateAllowSet(int num_inputs, std::uint64_t seed);

// --- Seeded transform-plan generation ---
//
// Draws one TransformPlan (src/transforms): each member transform is
// enabled independently, unroll factors are drawn from [1, 4], and the
// equal-arm simplification is occasionally disabled so both select shapes
// (Example 7 with and without the collapse) appear. Deterministic in seed.
TransformPlan GenerateTransformPlan(std::uint64_t seed);

}  // namespace secpol

#endif  // SECPOL_SRC_CORPUS_GENERATOR_H_
