// Functional-equivalence-preserving program transforms (Sections 4 and 5).
//
// "Given a program Q, transform it to Q' where Q and Q' are functionally
// equivalent. Then apply the surveillance protection mechanism to Q' to
// yield a sound protection mechanism for Q."
//
// Three transforms are implemented:
//
//  * If-then-else transform (Example 7): a conditional whose arms are pure
//    assignment blocks becomes a block of branch-free Select assignments.
//    The test's taint moves from the program counter into the data — which
//    can help (no lingering pc taint, and Select(c, e, e) simplifies to e,
//    dropping the test entirely — Example 7) or hurt (both arms' data taints
//    merge — Example 8). Whether to apply it is exactly the judgment call
//    Theorem 4 proves cannot be automated optimally.
//
//  * Loop unrolling (the paper's "while transform" analogue for
//    single-entry/single-exit loops): while (c) B  ==>  n copies of
//    if (c) B. Equivalent whenever the loop never iterates more than n
//    times; combined with the if-then-else transform it yields branch-free
//    loop bodies. TryExtractTripCount recognizes the bounded-counter loops
//    the corpus generates so the unroll factor can be chosen safely.
//
//  * Tail duplication (Example 9): statements following a conditional (and
//    the program exit itself) are duplicated into both arms, giving each arm
//    its own halt box. A per-halt static mechanism (ResidualGuardMechanism)
//    can then release on the clean arm and violate only on the leaky one —
//    "the protection mechanism need only give a violation notice in case
//    x1 != 0".
//
// All transforms preserve functional equivalence by construction; callers
// are nevertheless encouraged to audit with FunctionallyEquivalentOnGrid,
// and every test in tests/transforms_test.cc does.

#ifndef SECPOL_SRC_TRANSFORMS_TRANSFORMS_H_
#define SECPOL_SRC_TRANSFORMS_TRANSFORMS_H_

#include <optional>

#include "src/flowlang/ast.h"

namespace secpol {

// --- If-then-else transform ---

// True if `stmt` is an If eligible for the select transform: both arms are
// flat assignment blocks, no variable is assigned twice in an arm, and no
// arm expression reads a variable assigned in either arm.
bool IfConvertible(const Stmt& stmt);

struct IfToSelectOptions {
  // Apply Select(c, e, e) => e when both arms produce structurally equal
  // values for a variable (this is what collapses Example 7 to `y = 1`).
  bool simplify_equal_arms = true;
};

// Rewrites every eligible If in the program (recursively) into Select
// assignments. Sets *changed if any rewrite happened.
SourceProgram ApplyIfToSelect(const SourceProgram& program, const IfToSelectOptions& options,
                              bool* changed = nullptr);

// --- Loop unrolling ---

// Recognizes the bounded-counter idiom
//     c = K;  while (c != 0) { ...; c = c - 1; }
// (with c not otherwise assigned and K >= 0) and returns K.
// `block` is the enclosing block, `while_index` the position of the While.
std::optional<long long> TryExtractTripCount(const std::vector<Stmt>& block, size_t while_index);

// Unrolls every While whose trip count is statically recognized (and at most
// `max_factor`) into trip-count copies of `if (cond) body`. Loops without a
// recognized bound are left untouched.
SourceProgram ApplyLoopUnroll(const SourceProgram& program, long long max_factor,
                              bool* changed = nullptr);

// --- Tail duplication ---

// Tail duplication is worst-case exponential in the number of sequential
// Ifs (each one copies its tail into both arms, recursively), so the rewrite
// carries an output budget in emitted statements. When the duplicated form
// would exceed the budget the program is returned unchanged and *changed
// stays false — on such programs the transform is a no-op, not a hang.
inline constexpr long long kDefaultTailDuplicationBudget = 10000;

// Duplicates the statements following each top-level If (plus the implicit
// program exit) into both arms, ending each arm with an explicit halt.
SourceProgram ApplyTailDuplication(const SourceProgram& program, bool* changed = nullptr,
                                   long long max_stmts = kDefaultTailDuplicationBudget);

// --- Transform plans ---
//
// A TransformPlan bundles the three transforms into one declarative recipe,
// so a transform chain can be generated from a seed (src/corpus/generator),
// named stably (scenario axes), and replayed from a witness file. Applying a
// plan preserves functional equivalence exactly when its member transforms
// do — which is the invariant the disagreement fuzzer hunts violations of.

struct TransformPlan {
  bool if_to_select = false;
  bool simplify_equal_arms = true;  // IfToSelectOptions knob (if_to_select only)
  long long unroll_factor = 0;      // 0 = no unrolling
  bool tail_duplicate = false;

  bool IsIdentity() const {
    return !if_to_select && unroll_factor <= 0 && !tail_duplicate;
  }

  // Stable short name for scenario axes and witness files, e.g. "id",
  // "sel", "sel-noeq+unroll3", "unroll2+tail".
  std::string Name() const;
};

// Applies the plan's transforms in a fixed order: loop unrolling first (it
// creates the nested ifs the select transform feeds on), then if-to-select,
// then tail duplication. Sets *changed if any member transform rewrote
// anything.
SourceProgram ApplyTransformPlan(const SourceProgram& program, const TransformPlan& plan,
                                 bool* changed = nullptr);

}  // namespace secpol

#endif  // SECPOL_SRC_TRANSFORMS_TRANSFORMS_H_
