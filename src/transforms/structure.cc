#include "src/transforms/structure.h"

#include <deque>
#include <set>

#include "src/staticflow/cfg.h"
#include "src/staticflow/dominance.h"

namespace secpol {

namespace {

class Structurer {
 public:
  explicit Structurer(const Program& program)
      : program_(program), cfg_(program), pdom_(cfg_) {}

  std::optional<SourceProgram> Run() {
    SourceProgram out;
    out.name = program_.name();
    for (int i = 0; i < program_.num_inputs(); ++i) {
      out.input_names.push_back(program_.VarName(i));
    }
    for (int i = program_.num_inputs(); i < program_.num_vars() - 1; ++i) {
      out.local_names.push_back(program_.VarName(i));
    }
    auto body = Block(program_.box(program_.start_box()).next, /*stop=*/-1);
    if (!body.has_value()) {
      return std::nullopt;
    }
    out.body = std::move(*body);
    return out;
  }

 private:
  // True if `target` is reachable from `from` without passing through
  // `barrier` or `region_stop`. The region boundary matters: without it, a
  // nested decision's arm can "return" to the decision by exiting the
  // current region and riding an *enclosing* loop's back edge, which would
  // be misdetected as a loop here.
  bool ReachableAvoiding(int from, int target, int barrier, int region_stop) const {
    if (from == barrier || from == region_stop) {
      return false;
    }
    std::set<int> seen;
    std::deque<int> queue = {from};
    seen.insert(from);
    while (!queue.empty()) {
      const int node = queue.front();
      queue.pop_front();
      if (node == target) {
        return true;
      }
      for (int succ : cfg_.Successors(node)) {
        if (succ == barrier || succ == region_stop || succ >= cfg_.num_nodes() ||
            seen.count(succ) > 0) {
          continue;
        }
        seen.insert(succ);
        queue.push_back(succ);
      }
    }
    return false;
  }

  // Parses the region starting at `entry` up to (exclusive) `stop`
  // (-1 = parse until the path ends in a halt).
  std::optional<std::vector<Stmt>> Block(int entry, int stop) {
    std::vector<Stmt> out;
    int at = entry;
    // Budgets guard against malformed or pathologically duplicated regions
    // (e.g. loops with internal halt branches re-expanding their tails):
    // a per-block walk limit plus a whole-program statement budget.
    for (int guard = 0; guard <= program_.num_boxes() * 4; ++guard) {
      if (++budget_ > program_.num_boxes() * 16) {
        return std::nullopt;
      }
      if (at == stop) {
        return out;
      }
      const Box& box = program_.box(at);
      switch (box.kind) {
        case Box::Kind::kStart:
          return std::nullopt;  // a second start box: malformed
        case Box::Kind::kAssign:
          out.push_back(Stmt::Assign(box.var, box.expr));
          at = box.next;
          break;
        case Box::Kind::kHalt:
          out.push_back(Stmt::Halt());
          return out;
        case Box::Kind::kDecision: {
          // While loop: a branch that can return to the decision without
          // crossing the other branch's target.
          const bool true_loops = ReachableAvoiding(box.true_next, at, box.false_next, stop);
          const bool false_loops = ReachableAvoiding(box.false_next, at, box.true_next, stop);
          if (true_loops && false_loops) {
            return std::nullopt;  // irreducible
          }
          if (true_loops || false_loops) {
            const int body_entry = true_loops ? box.true_next : box.false_next;
            const int exit = true_loops ? box.false_next : box.true_next;
            auto body = Block(body_entry, /*stop=*/at);
            if (!body.has_value()) {
              return std::nullopt;
            }
            const Expr cond = true_loops
                                  ? box.predicate
                                  : Expr::Unary(UnaryOp::kNot, box.predicate);
            out.push_back(Stmt::While(cond, std::move(*body)));
            at = exit;
            break;
          }
          // If/else region: arms meet at the decision's immediate
          // postdominator.
          const int join = pdom_.ImmediatePostDominator(at);
          if (join < 0) {
            return std::nullopt;
          }
          const int arm_stop = join >= cfg_.num_nodes() ? -1 : join;
          auto then_body = Block(box.true_next, arm_stop);
          auto else_body = Block(box.false_next, arm_stop);
          if (!then_body.has_value() || !else_body.has_value()) {
            return std::nullopt;
          }
          out.push_back(Stmt::If(box.predicate, std::move(*then_body), std::move(*else_body)));
          if (join >= cfg_.num_nodes()) {
            return out;  // both arms halted; the region is the whole tail
          }
          at = join;
          break;
        }
      }
    }
    return std::nullopt;  // guard exhausted
  }

  const Program& program_;
  Cfg cfg_;
  PostDominators pdom_;
  int budget_ = 0;
};

}  // namespace

std::optional<SourceProgram> StructureProgram(const Program& program) {
  if (!program.Validate().ok()) {
    return std::nullopt;
  }
  Structurer structurer(program);
  return structurer.Run();
}

}  // namespace secpol
