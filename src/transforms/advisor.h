// The transform advisor.
//
// "Whether to apply a transform or not is not necessarily a clearcut
// decision" — Example 7 shows a transform reaching the maximal mechanism,
// Example 8 shows the same transform making things strictly worse, and
// Theorem 4 shows no effective procedure can decide optimally. The advisor
// is therefore an explicitly *heuristic* search: it generates candidate
// rewritings, audits each for functional equivalence on a grid, measures the
// completeness of the induced surveillance mechanism on that grid, and keeps
// the best. It can fail to find the maximal mechanism; Theorem 4 says any
// such tool must.

#ifndef SECPOL_SRC_TRANSFORMS_ADVISOR_H_
#define SECPOL_SRC_TRANSFORMS_ADVISOR_H_

#include <string>
#include <vector>

#include "src/flowlang/ast.h"
#include "src/mechanism/check_options.h"
#include "src/mechanism/domain.h"
#include "src/util/var_set.h"

namespace secpol {

struct AdvisorCandidate {
  std::string description;   // which transform pipeline produced it
  SourceProgram program;
  bool equivalent = false;   // audited against the original on the grid
  double utility = 0.0;      // fraction of grid answered with a real value
};

struct AdvisorReport {
  std::vector<AdvisorCandidate> candidates;  // includes the original first
  size_t best_index = 0;                     // highest-utility equivalent candidate

  const AdvisorCandidate& best() const { return candidates[best_index]; }
  std::string ToString() const;
};

struct AdvisorOptions {
  long long unroll_max_factor = 8;
  bool try_tail_duplication = true;
  // Grid-evaluation knobs (thread count) for the utility measurements.
  CheckOptions check;
};

// Explores transform pipelines for `program` under allow(`allowed`),
// scoring each candidate by the utility of its surveillance mechanism
// (TimingMode::kTimeUnobservable) over `domain`.
AdvisorReport AdviseTransforms(const SourceProgram& program, VarSet allowed,
                               const InputDomain& domain, const AdvisorOptions& options = {});

}  // namespace secpol

#endif  // SECPOL_SRC_TRANSFORMS_ADVISOR_H_
