#include "src/transforms/transforms.h"

#include <cassert>
#include <functional>

namespace secpol {

namespace {

// Variables assigned anywhere in a flat assignment block.
VarSet AssignedVars(const std::vector<Stmt>& block) {
  VarSet out;
  for (const Stmt& stmt : block) {
    if (stmt.kind == Stmt::Kind::kAssign) {
      out.Insert(stmt.var);
    }
  }
  return out;
}

bool IsFlatAssignBlock(const std::vector<Stmt>& block) {
  VarSet assigned;
  for (const Stmt& stmt : block) {
    if (stmt.kind != Stmt::Kind::kAssign) {
      return false;
    }
    if (assigned.Contains(stmt.var)) {
      return false;  // double assignment; select emission would be wrong
    }
    // Reading a variable assigned by an *earlier* statement of the same arm
    // would change meaning under parallel select emission (which always
    // reads pre-branch values).
    if (!stmt.expr.FreeVars().Intersect(assigned).empty()) {
      return false;
    }
    assigned.Insert(stmt.var);
  }
  return true;
}

// Orders the assigned variables so every select reads only pre-branch
// values: if the merged right-hand side for w reads v (v also assigned),
// then w's select must execute before v is overwritten. Returns false on a
// cyclic read/write dependency (e.g. swap: a reads b, b reads a).
bool OrderSelects(const Stmt& stmt, std::vector<int>* order) {
  const VarSet assigned = AssignedVars(stmt.then_body).Union(AssignedVars(stmt.else_body));
  std::vector<int> vars;
  for (int v = 0; v <= VarSet::kMaxIndex; ++v) {
    if (assigned.Contains(v)) {
      vars.push_back(v);
    }
  }
  // reads[w] = assigned variables (other than w itself) appearing in either
  // arm's expression for w — or in the shared condition, which every
  // emitted Select re-evaluates and must see pre-branch values of.
  auto reads_of = [&](int w) {
    VarSet reads = stmt.cond.FreeVars();
    for (const auto* arm : {&stmt.then_body, &stmt.else_body}) {
      for (const Stmt& s : *arm) {
        if (s.var == w) {
          reads = reads.Union(s.expr.FreeVars());
        }
      }
    }
    reads = reads.Intersect(assigned);
    reads.Erase(w);  // self-reads see the old value regardless of position
    return reads;
  };

  // Kahn's algorithm: emit a variable once nothing still-to-emit reads it.
  VarSet emitted;
  order->clear();
  while (order->size() < vars.size()) {
    bool progressed = false;
    for (int w : vars) {
      if (emitted.Contains(w)) {
        continue;
      }
      // w may be emitted if no *unemitted* variable's rhs reads w... wait:
      // w's select overwrites w, so everyone who reads w must go first.
      bool blocked = false;
      for (int v : vars) {
        if (v != w && !emitted.Contains(v) && reads_of(v).Contains(w)) {
          blocked = true;
          break;
        }
      }
      if (!blocked) {
        order->push_back(w);
        emitted.Insert(w);
        progressed = true;
      }
    }
    if (!progressed) {
      return false;  // cycle
    }
  }
  return true;
}

}  // namespace

bool IfConvertible(const Stmt& stmt) {
  if (stmt.kind != Stmt::Kind::kIf) {
    return false;
  }
  if (!IsFlatAssignBlock(stmt.then_body) || !IsFlatAssignBlock(stmt.else_body)) {
    return false;
  }
  std::vector<int> order;
  return OrderSelects(stmt, &order);
}

namespace {

// Returns the expression assigned to `var` in a flat arm, if any.
std::optional<Expr> ArmValueOf(const std::vector<Stmt>& arm, int var) {
  for (const Stmt& stmt : arm) {
    if (stmt.var == var) {
      return stmt.expr;
    }
  }
  return std::nullopt;
}

std::vector<Stmt> IfToSelectBlock(const std::vector<Stmt>& block, const IfToSelectOptions& options,
                                  bool* changed);

Stmt IfToSelectStmt(const Stmt& stmt, const IfToSelectOptions& options, bool* changed) {
  switch (stmt.kind) {
    case Stmt::Kind::kAssign:
    case Stmt::Kind::kHalt:
      return stmt;
    case Stmt::Kind::kWhile: {
      Stmt out = stmt;
      out.body = IfToSelectBlock(stmt.body, options, changed);
      return out;
    }
    case Stmt::Kind::kIf:
      break;  // handled below
  }
  if (!IfConvertible(stmt)) {
    Stmt out = stmt;
    out.then_body = IfToSelectBlock(stmt.then_body, options, changed);
    out.else_body = IfToSelectBlock(stmt.else_body, options, changed);
    return out;
  }
  // Convertible: replace by a sequence of Select assignments, one per
  // assigned variable, in an order (from OrderSelects) that guarantees every
  // select reads only pre-branch values.
  *changed = true;
  std::vector<Stmt> selects;
  std::vector<int> order;
  const bool ordered = OrderSelects(stmt, &order);
  assert(ordered && "IfConvertible guaranteed an order exists");
  (void)ordered;
  for (int v : order) {
    const Expr then_value = ArmValueOf(stmt.then_body, v).value_or(Expr::Var(v));
    const Expr else_value = ArmValueOf(stmt.else_body, v).value_or(Expr::Var(v));
    Expr rhs;
    if (options.simplify_equal_arms && then_value.StructurallyEquals(else_value)) {
      // Select(c, e, e) == e: the test cannot influence the value, so drop
      // the dependency on it entirely (Example 7's collapse).
      rhs = then_value;
    } else {
      rhs = Expr::Select(stmt.cond, then_value, else_value);
    }
    selects.push_back(Stmt::Assign(v, std::move(rhs)));
  }
  // Wrap in a synthetic single-statement form: the caller splices blocks, so
  // return a marker If with empty cond is wrong — instead we return the
  // statements through a block-level rewrite (see IfToSelectBlock).
  Stmt wrapper = Stmt::If(Expr::Const(1), std::move(selects), {});
  wrapper.var = -2;  // internal marker: splice then_body into parent block
  return wrapper;
}

std::vector<Stmt> IfToSelectBlock(const std::vector<Stmt>& block, const IfToSelectOptions& options,
                                  bool* changed) {
  std::vector<Stmt> out;
  for (const Stmt& stmt : block) {
    Stmt rewritten = IfToSelectStmt(stmt, options, changed);
    if (rewritten.kind == Stmt::Kind::kIf && rewritten.var == -2) {
      for (Stmt& select : rewritten.then_body) {
        out.push_back(std::move(select));
      }
    } else {
      out.push_back(std::move(rewritten));
    }
  }
  return out;
}

}  // namespace

SourceProgram ApplyIfToSelect(const SourceProgram& program, const IfToSelectOptions& options,
                              bool* changed) {
  bool local_changed = false;
  SourceProgram out = program;
  out.body = IfToSelectBlock(program.body, options, &local_changed);
  if (changed != nullptr) {
    *changed = local_changed;
  }
  return out;
}

std::optional<long long> TryExtractTripCount(const std::vector<Stmt>& block, size_t while_index) {
  assert(while_index < block.size());
  const Stmt& loop = block[while_index];
  if (loop.kind != Stmt::Kind::kWhile) {
    return std::nullopt;
  }
  // Condition must be `c != 0` or `c > 0` for a variable c.
  const Expr& cond = loop.cond;
  if (cond.kind() != Expr::Kind::kBinary ||
      (cond.binary_op() != BinaryOp::kNe && cond.binary_op() != BinaryOp::kGt)) {
    return std::nullopt;
  }
  if (cond.operand(0).kind() != Expr::Kind::kVar ||
      cond.operand(1).kind() != Expr::Kind::kConst || cond.operand(1).const_value() != 0) {
    return std::nullopt;
  }
  const int counter = cond.operand(0).var_id();

  // The statement immediately before the loop must be `c = K`, K >= 0.
  if (while_index == 0) {
    return std::nullopt;
  }
  const Stmt& init = block[while_index - 1];
  if (init.kind != Stmt::Kind::kAssign || init.var != counter ||
      init.expr.kind() != Expr::Kind::kConst || init.expr.const_value() < 0) {
    return std::nullopt;
  }

  // The body must end with `c = c - 1` and contain no other assignment to c
  // (and no nested control flow touching c; we conservatively require the
  // decrement to be the only statement naming c on its left-hand side).
  if (loop.body.empty()) {
    return std::nullopt;
  }
  const Stmt& last = loop.body.back();
  const bool is_decrement =
      last.kind == Stmt::Kind::kAssign && last.var == counter &&
      last.expr.kind() == Expr::Kind::kBinary && last.expr.binary_op() == BinaryOp::kSub &&
      last.expr.operand(0).kind() == Expr::Kind::kVar &&
      last.expr.operand(0).var_id() == counter &&
      last.expr.operand(1).kind() == Expr::Kind::kConst &&
      last.expr.operand(1).const_value() == 1;
  if (!is_decrement) {
    return std::nullopt;
  }
  // No other assignment to the counter, anywhere in the body.
  std::function<bool(const std::vector<Stmt>&, bool)> touches =
      [&](const std::vector<Stmt>& body, bool skip_last) -> bool {
    for (size_t i = 0; i < body.size(); ++i) {
      if (skip_last && i + 1 == body.size()) {
        continue;
      }
      const Stmt& s = body[i];
      if (s.kind == Stmt::Kind::kAssign && s.var == counter) {
        return true;
      }
      if (touches(s.then_body, false) || touches(s.else_body, false) ||
          touches(s.body, false)) {
        return true;
      }
    }
    return false;
  };
  if (touches(loop.body, /*skip_last=*/true)) {
    return std::nullopt;
  }
  return init.expr.const_value();
}

namespace {

std::vector<Stmt> UnrollBlock(const std::vector<Stmt>& block, long long max_factor,
                              bool* changed) {
  std::vector<Stmt> out;
  for (size_t i = 0; i < block.size(); ++i) {
    Stmt stmt = block[i];
    // Recurse first.
    stmt.then_body = UnrollBlock(stmt.then_body, max_factor, changed);
    stmt.else_body = UnrollBlock(stmt.else_body, max_factor, changed);
    stmt.body = UnrollBlock(stmt.body, max_factor, changed);

    if (stmt.kind == Stmt::Kind::kWhile) {
      const std::optional<long long> trips = TryExtractTripCount(block, i);
      if (trips.has_value() && *trips <= max_factor) {
        *changed = true;
        for (long long copy = 0; copy < *trips; ++copy) {
          out.push_back(Stmt::If(stmt.cond, stmt.body, {}));
        }
        continue;
      }
    }
    out.push_back(std::move(stmt));
  }
  return out;
}

}  // namespace

SourceProgram ApplyLoopUnroll(const SourceProgram& program, long long max_factor, bool* changed) {
  bool local_changed = false;
  SourceProgram out = program;
  out.body = UnrollBlock(program.body, max_factor, &local_changed);
  if (changed != nullptr) {
    *changed = local_changed;
  }
  return out;
}

namespace {

// Rewrites `block` (a block that ends by falling through to program exit)
// so that every top-level If absorbs its continuation into both arms.
// `budget` counts output statements still allowed; once it runs dry,
// `overflow` latches and every caller unwinds without building more — the
// exponential case costs O(budget) work, not O(2^ifs).
std::vector<Stmt> TailDuplicate(const std::vector<Stmt>& block, bool* changed,
                                long long* budget, bool* overflow) {
  if (*overflow) {
    return block;
  }
  *budget -= static_cast<long long>(block.size());
  if (*budget < 0) {
    *overflow = true;
    return block;
  }
  for (size_t i = 0; i < block.size(); ++i) {
    const Stmt& stmt = block[i];
    if (stmt.kind != Stmt::Kind::kIf) {
      continue;
    }
    *changed = true;
    const std::vector<Stmt> tail(block.begin() + static_cast<long>(i) + 1, block.end());
    Stmt rewritten = stmt;
    auto extend = [&](std::vector<Stmt> arm) {
      for (const Stmt& t : tail) {
        arm.push_back(t);
      }
      // Each arm becomes a complete path ending at its own halt box, then is
      // itself tail-duplicated.
      if (arm.empty() || arm.back().kind != Stmt::Kind::kHalt) {
        arm.push_back(Stmt::Halt());
      }
      return TailDuplicate(arm, changed, budget, overflow);
    };
    rewritten.then_body = extend(rewritten.then_body);
    rewritten.else_body = extend(rewritten.else_body);
    if (*overflow) {
      return block;
    }
    std::vector<Stmt> out(block.begin(), block.begin() + static_cast<long>(i));
    out.push_back(std::move(rewritten));
    return out;
  }
  return block;
}

}  // namespace

SourceProgram ApplyTailDuplication(const SourceProgram& program, bool* changed,
                                   long long max_stmts) {
  bool local_changed = false;
  bool overflow = false;
  long long budget = max_stmts;
  SourceProgram out = program;
  out.body = TailDuplicate(program.body, &local_changed, &budget, &overflow);
  if (overflow) {
    // The duplicated form would exceed the budget: keep the input intact
    // rather than emit a truncated (semantics-changing) rewrite.
    out.body = program.body;
    local_changed = false;
  }
  if (changed != nullptr) {
    *changed = local_changed;
  }
  return out;
}

std::string TransformPlan::Name() const {
  if (IsIdentity()) {
    return "id";
  }
  std::string name;
  auto append = [&name](const std::string& part) {
    if (!name.empty()) {
      name += "+";
    }
    name += part;
  };
  if (unroll_factor > 0) {
    append("unroll" + std::to_string(unroll_factor));
  }
  if (if_to_select) {
    append(simplify_equal_arms ? "sel" : "sel-noeq");
  }
  if (tail_duplicate) {
    append("tail");
  }
  return name;
}

SourceProgram ApplyTransformPlan(const SourceProgram& program, const TransformPlan& plan,
                                 bool* changed) {
  SourceProgram out = program;
  bool any = false;
  bool step = false;
  if (plan.unroll_factor > 0) {
    out = ApplyLoopUnroll(out, plan.unroll_factor, &step);
    any = any || step;
  }
  if (plan.if_to_select) {
    IfToSelectOptions options;
    options.simplify_equal_arms = plan.simplify_equal_arms;
    out = ApplyIfToSelect(out, options, &step);
    any = any || step;
  }
  if (plan.tail_duplicate) {
    out = ApplyTailDuplication(out, &step);
    any = any || step;
  }
  if (changed != nullptr) {
    *changed = any;
  }
  return out;
}

}  // namespace secpol
