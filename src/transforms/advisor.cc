#include "src/transforms/advisor.h"

#include "src/flowchart/interpreter.h"
#include "src/flowlang/lower.h"
#include "src/mechanism/completeness.h"
#include "src/surveillance/surveillance.h"
#include "src/transforms/transforms.h"
#include "src/util/strings.h"

namespace secpol {

namespace {

// Equivalence audit: both programs must agree on every grid tuple. The grid
// values come from the advisor's domain (first coordinate's candidates are
// reused for all coordinates — domains used with the advisor are uniform).
bool AuditEquivalent(const Program& original, const Program& candidate,
                     const InputDomain& domain) {
  std::vector<Value> values = domain.values_for(0);
  return FunctionallyEquivalentOnGrid(original, candidate, values);
}

}  // namespace

std::string AdvisorReport::ToString() const {
  std::string out;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const AdvisorCandidate& c = candidates[i];
    out += (i == best_index ? "* " : "  ") + c.description +
           ": utility=" + FormatDouble(c.utility, 4) +
           (c.equivalent ? "" : " [NOT EQUIVALENT — rejected]") + "\n";
  }
  return out;
}

AdvisorReport AdviseTransforms(const SourceProgram& program, VarSet allowed,
                               const InputDomain& domain, const AdvisorOptions& options) {
  const Program original = Lower(program);

  struct Pipeline {
    std::string description;
    SourceProgram result;
  };
  std::vector<Pipeline> pipelines;
  pipelines.push_back({"original", program});

  bool changed = false;
  const SourceProgram ite = ApplyIfToSelect(program, {.simplify_equal_arms = true}, &changed);
  if (changed) {
    pipelines.push_back({"if-to-select", ite});
  }

  changed = false;
  const SourceProgram ite_raw =
      ApplyIfToSelect(program, {.simplify_equal_arms = false}, &changed);
  if (changed) {
    pipelines.push_back({"if-to-select (no simplify)", ite_raw});
  }

  changed = false;
  const SourceProgram unrolled = ApplyLoopUnroll(program, options.unroll_max_factor, &changed);
  if (changed) {
    pipelines.push_back({"unroll", unrolled});
    bool changed2 = false;
    const SourceProgram unrolled_ite =
        ApplyIfToSelect(unrolled, {.simplify_equal_arms = true}, &changed2);
    if (changed2) {
      pipelines.push_back({"unroll + if-to-select", unrolled_ite});
    }
  }

  if (options.try_tail_duplication) {
    changed = false;
    const SourceProgram dup = ApplyTailDuplication(program, &changed);
    if (changed) {
      pipelines.push_back({"tail-duplication", dup});
    }
  }

  AdvisorReport report;
  for (Pipeline& pipeline : pipelines) {
    AdvisorCandidate candidate;
    candidate.description = std::move(pipeline.description);
    candidate.program = std::move(pipeline.result);
    Program lowered = Lower(candidate.program);
    candidate.equivalent = AuditEquivalent(original, lowered, domain);
    if (candidate.equivalent) {
      const SurveillanceMechanism mechanism = MakeSurveillanceM(std::move(lowered), allowed);
      candidate.utility = MeasureUtility(mechanism, domain, options.check);
    }
    report.candidates.push_back(std::move(candidate));
  }

  report.best_index = 0;
  for (size_t i = 1; i < report.candidates.size(); ++i) {
    const AdvisorCandidate& c = report.candidates[i];
    const AdvisorCandidate& best = report.candidates[report.best_index];
    if (c.equivalent && (!best.equivalent || c.utility > best.utility)) {
      report.best_index = i;
    }
  }
  return report;
}

}  // namespace secpol
