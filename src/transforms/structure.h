// Structuring (decompiling) flowcharts back into flowlang.
//
// The Section 4/5 transforms operate on single-entry/single-exit structures,
// which in this library live in the structured AST. Programs built directly
// as graphs (ProgramBuilder, the instrumenter, external tooling) can be
// re-admitted to that pipeline by structuring: a pattern-directed walk that
// recognizes sequences, if/else regions (join = immediate postdominator),
// and the while loops our lowerer emits (a decision with a back edge).
//
// Structuring is partial by design: irreducible or exotic graphs yield
// nullopt rather than a wrong program, and callers are expected to audit the
// result with FunctionallyEquivalentOnGrid — the tests and the CLI
// `decompile` command both do.

#ifndef SECPOL_SRC_TRANSFORMS_STRUCTURE_H_
#define SECPOL_SRC_TRANSFORMS_STRUCTURE_H_

#include <optional>

#include "src/flowchart/program.h"
#include "src/flowlang/ast.h"

namespace secpol {

// Attempts to reconstruct a structured program. On success, Lower(result)
// is functionally equivalent to `program` (same outputs; step counts may
// differ because lowering re-derives the box layout).
std::optional<SourceProgram> StructureProgram(const Program& program);

}  // namespace secpol

#endif  // SECPOL_SRC_TRANSFORMS_STRUCTURE_H_
