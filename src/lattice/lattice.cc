#include "src/lattice/lattice.h"

#include <cassert>

namespace secpol {

SubsetLattice::SubsetLattice(int num_atoms) : num_atoms_(num_atoms) {
  assert(num_atoms >= 0 && num_atoms <= 62);
}

ClassId SubsetLattice::Top() const { return (ClassId{1} << num_atoms_) - 1; }

bool SubsetLattice::IsValid(ClassId a) const { return (a & ~Top()) == 0; }

std::vector<ClassId> SubsetLattice::AllClasses() const {
  std::vector<ClassId> out;
  // Enumeration only makes sense for small atom counts; callers check.
  assert(num_atoms_ <= 20);
  for (ClassId a = 0; a <= Top(); ++a) {
    out.push_back(a);
  }
  return out;
}

std::string SubsetLattice::ClassName(ClassId a) const {
  std::string out = "{";
  bool first = true;
  for (int i = 0; i < num_atoms_; ++i) {
    if ((a >> i) & 1) {
      if (!first) {
        out += ",";
      }
      out += std::to_string(i);
      first = false;
    }
  }
  return out + "}";
}

std::string SubsetLattice::name() const {
  return "subset(" + std::to_string(num_atoms_) + ")";
}

LinearLattice::LinearLattice(std::vector<std::string> level_names)
    : level_names_(std::move(level_names)) {
  assert(!level_names_.empty());
}

LinearLattice LinearLattice::Military() {
  return LinearLattice({"unclassified", "confidential", "secret", "top-secret"});
}

std::vector<ClassId> LinearLattice::AllClasses() const {
  std::vector<ClassId> out;
  for (ClassId a = 0; a < level_names_.size(); ++a) {
    out.push_back(a);
  }
  return out;
}

std::string LinearLattice::ClassName(ClassId a) const {
  return IsValid(a) ? level_names_[a] : "?";
}

std::string LinearLattice::name() const {
  return "linear(" + std::to_string(level_names_.size()) + ")";
}

ProductLattice::ProductLattice(std::shared_ptr<const SecurityLattice> first,
                               std::shared_ptr<const SecurityLattice> second)
    : first_(std::move(first)), second_(std::move(second)) {}

ClassId ProductLattice::Pack(ClassId first, ClassId second) {
  assert(first < (ClassId{1} << 32) && second < (ClassId{1} << 32));
  return (first << 32) | second;
}

ClassId ProductLattice::Bottom() const { return Pack(first_->Bottom(), second_->Bottom()); }

ClassId ProductLattice::Top() const { return Pack(first_->Top(), second_->Top()); }

ClassId ProductLattice::Join(ClassId a, ClassId b) const {
  return Pack(first_->Join(First(a), First(b)), second_->Join(Second(a), Second(b)));
}

ClassId ProductLattice::Meet(ClassId a, ClassId b) const {
  return Pack(first_->Meet(First(a), First(b)), second_->Meet(Second(a), Second(b)));
}

bool ProductLattice::Leq(ClassId a, ClassId b) const {
  return first_->Leq(First(a), First(b)) && second_->Leq(Second(a), Second(b));
}

bool ProductLattice::IsValid(ClassId a) const {
  return first_->IsValid(First(a)) && second_->IsValid(Second(a));
}

std::vector<ClassId> ProductLattice::AllClasses() const {
  std::vector<ClassId> out;
  for (ClassId a : first_->AllClasses()) {
    for (ClassId b : second_->AllClasses()) {
      out.push_back(Pack(a, b));
    }
  }
  return out;
}

std::string ProductLattice::ClassName(ClassId a) const {
  // Built by append: GCC 12's -Wrestrict false-fires on the equivalent
  // char* + std::string chain when inlined at -O3 (PR 105651).
  std::string out = "(";
  out += first_->ClassName(First(a));
  out += ", ";
  out += second_->ClassName(Second(a));
  out += ")";
  return out;
}

std::string ProductLattice::name() const {
  std::string out = "product(";
  out += first_->name();
  out += ", ";
  out += second_->name();
  out += ")";
  return out;
}

std::string CheckLatticeLaws(const SecurityLattice& lattice) {
  const std::vector<ClassId> classes = lattice.AllClasses();
  auto fail = [&](const std::string& law, ClassId a, ClassId b) {
    return law + " violated at (" + lattice.ClassName(a) + ", " + lattice.ClassName(b) + ")";
  };
  for (ClassId a : classes) {
    if (lattice.Join(a, a) != a) {
      return fail("join idempotence", a, a);
    }
    if (lattice.Meet(a, a) != a) {
      return fail("meet idempotence", a, a);
    }
    if (!lattice.Leq(lattice.Bottom(), a)) {
      return fail("bottom minimality", lattice.Bottom(), a);
    }
    if (!lattice.Leq(a, lattice.Top())) {
      return fail("top maximality", a, lattice.Top());
    }
    for (ClassId b : classes) {
      if (lattice.Join(a, b) != lattice.Join(b, a)) {
        return fail("join commutativity", a, b);
      }
      if (lattice.Meet(a, b) != lattice.Meet(b, a)) {
        return fail("meet commutativity", a, b);
      }
      if (lattice.Join(a, lattice.Meet(a, b)) != a) {
        return fail("absorption (join over meet)", a, b);
      }
      if (lattice.Meet(a, lattice.Join(a, b)) != a) {
        return fail("absorption (meet over join)", a, b);
      }
      // Leq consistency: a <= b iff join(a,b) == b iff meet(a,b) == a.
      const bool leq = lattice.Leq(a, b);
      if (leq != (lattice.Join(a, b) == b)) {
        return fail("leq/join consistency", a, b);
      }
      if (leq != (lattice.Meet(a, b) == a)) {
        return fail("leq/meet consistency", a, b);
      }
      for (ClassId c : classes) {
        if (lattice.Join(lattice.Join(a, b), c) != lattice.Join(a, lattice.Join(b, c))) {
          return fail("join associativity", a, b);
        }
      }
    }
  }
  return "";
}

}  // namespace secpol
