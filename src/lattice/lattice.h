// Security-class lattices.
//
// The paper's Section 3 labels are subsets of {1..k}; Denning's lattice
// model (cited as [2]) is the natural generalization: labels live in any
// finite lattice of security classes, flows join upward, and an output may
// be released to a clearance c exactly when its label is <= c. This module
// provides the lattice interface, three standard instances (subset, linear,
// product), and a law checker used by the property tests.

#ifndef SECPOL_SRC_LATTICE_LATTICE_H_
#define SECPOL_SRC_LATTICE_LATTICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace secpol {

// Opaque handle for a security class; interpretation is lattice-specific.
using ClassId = std::uint64_t;

class SecurityLattice {
 public:
  virtual ~SecurityLattice() = default;

  virtual ClassId Bottom() const = 0;
  virtual ClassId Top() const = 0;
  // Least upper bound (the class-combining operator of flows).
  virtual ClassId Join(ClassId a, ClassId b) const = 0;
  // Greatest lower bound.
  virtual ClassId Meet(ClassId a, ClassId b) const = 0;
  // The flow relation: information of class a may flow to class b.
  virtual bool Leq(ClassId a, ClassId b) const = 0;
  virtual bool IsValid(ClassId a) const = 0;

  // Enumerates every class (lattices here are finite).
  virtual std::vector<ClassId> AllClasses() const = 0;

  virtual std::string ClassName(ClassId a) const = 0;
  virtual std::string name() const = 0;
};

// Powerset of n atoms, ClassId is a bitmask. SubsetLattice(k) with atom i
// = "input i" is exactly the Section 3 label domain.
class SubsetLattice : public SecurityLattice {
 public:
  explicit SubsetLattice(int num_atoms);

  ClassId Bottom() const override { return 0; }
  ClassId Top() const override;
  ClassId Join(ClassId a, ClassId b) const override { return a | b; }
  ClassId Meet(ClassId a, ClassId b) const override { return a & b; }
  bool Leq(ClassId a, ClassId b) const override { return (a & ~b) == 0; }
  bool IsValid(ClassId a) const override;
  std::vector<ClassId> AllClasses() const override;
  std::string ClassName(ClassId a) const override;
  std::string name() const override;

 private:
  int num_atoms_;
};

// A totally ordered chain, e.g. unclassified < confidential < secret <
// top-secret. ClassId is the level index.
class LinearLattice : public SecurityLattice {
 public:
  explicit LinearLattice(std::vector<std::string> level_names);

  // The classic four-level military chain.
  static LinearLattice Military();

  ClassId Bottom() const override { return 0; }
  ClassId Top() const override { return level_names_.size() - 1; }
  ClassId Join(ClassId a, ClassId b) const override { return a > b ? a : b; }
  ClassId Meet(ClassId a, ClassId b) const override { return a < b ? a : b; }
  bool Leq(ClassId a, ClassId b) const override { return a <= b; }
  bool IsValid(ClassId a) const override { return a < level_names_.size(); }
  std::vector<ClassId> AllClasses() const override;
  std::string ClassName(ClassId a) const override;
  std::string name() const override;

 private:
  std::vector<std::string> level_names_;
};

// Component-wise product of two lattices (e.g. military level x compartment
// set). ClassId packs the components into the low/high 32 bits; component
// class ids must fit in 32 bits.
class ProductLattice : public SecurityLattice {
 public:
  ProductLattice(std::shared_ptr<const SecurityLattice> first,
                 std::shared_ptr<const SecurityLattice> second);

  static ClassId Pack(ClassId first, ClassId second);
  static ClassId First(ClassId packed) { return packed >> 32; }
  static ClassId Second(ClassId packed) { return packed & 0xffffffffu; }

  ClassId Bottom() const override;
  ClassId Top() const override;
  ClassId Join(ClassId a, ClassId b) const override;
  ClassId Meet(ClassId a, ClassId b) const override;
  bool Leq(ClassId a, ClassId b) const override;
  bool IsValid(ClassId a) const override;
  std::vector<ClassId> AllClasses() const override;
  std::string ClassName(ClassId a) const override;
  std::string name() const override;

 private:
  std::shared_ptr<const SecurityLattice> first_;
  std::shared_ptr<const SecurityLattice> second_;
};

// Checks the lattice laws by enumeration: commutativity, associativity,
// idempotence of join and meet, absorption, consistency of Leq with
// join/meet, and bottom/top behaviour. Returns an empty string on success or
// a description of the first violated law.
std::string CheckLatticeLaws(const SecurityLattice& lattice);

}  // namespace secpol

#endif  // SECPOL_SRC_LATTICE_LATTICE_H_
