// Lattice-labelled dynamic flow enforcement.
//
// The Section 3 surveillance mechanism generalized from subset labels to an
// arbitrary security lattice: each input is classified, labels join upward
// through assignments and the program counter, and the output is released to
// the caller's clearance exactly when label(y) join label(pc) <= clearance.
//
// With SubsetLattice(k), classification x_i -> {i}, and clearance = J, this
// mechanism coincides with SurveillanceMechanism — a property test asserts
// that equivalence on random corpora.

#ifndef SECPOL_SRC_LATTICE_FLOW_MECHANISM_H_
#define SECPOL_SRC_LATTICE_FLOW_MECHANISM_H_

#include <memory>
#include <vector>

#include "src/flowchart/interpreter.h"
#include "src/flowchart/program.h"
#include "src/lattice/lattice.h"
#include "src/mechanism/mechanism.h"

namespace secpol {

class LatticeFlowMechanism : public ProtectionMechanism {
 public:
  // input_classes[i] is the security class of input i; clearance is the
  // caller's class.
  LatticeFlowMechanism(Program program, std::shared_ptr<const SecurityLattice> lattice,
                       std::vector<ClassId> input_classes, ClassId clearance,
                       StepCount fuel = kDefaultFuel);

  int num_inputs() const override { return program_.num_inputs(); }
  Outcome Run(InputView input) const override;
  std::string name() const override;

  const SecurityLattice& lattice() const { return *lattice_; }

 private:
  Program program_;
  std::shared_ptr<const SecurityLattice> lattice_;
  std::vector<ClassId> input_classes_;
  ClassId clearance_;
  StepCount fuel_;
};

}  // namespace secpol

#endif  // SECPOL_SRC_LATTICE_FLOW_MECHANISM_H_
