#include "src/lattice/flow_mechanism.h"

#include <cassert>

namespace secpol {

LatticeFlowMechanism::LatticeFlowMechanism(Program program,
                                           std::shared_ptr<const SecurityLattice> lattice,
                                           std::vector<ClassId> input_classes, ClassId clearance,
                                           StepCount fuel)
    : program_(std::move(program)),
      lattice_(std::move(lattice)),
      input_classes_(std::move(input_classes)),
      clearance_(clearance),
      fuel_(fuel) {
  assert(static_cast<int>(input_classes_.size()) == program_.num_inputs());
  assert(lattice_->IsValid(clearance_));
  for (ClassId c : input_classes_) {
    (void)c;
    assert(lattice_->IsValid(c));
  }
}

std::string LatticeFlowMechanism::name() const {
  return "lattice-flow[" + lattice_->name() + "](" + program_.name() + ")";
}

Outcome LatticeFlowMechanism::Run(InputView input) const {
  assert(static_cast<int>(input.size()) == program_.num_inputs());

  std::vector<Value> env(program_.num_vars(), 0);
  std::vector<ClassId> labels(program_.num_vars(), lattice_->Bottom());
  for (int i = 0; i < program_.num_inputs(); ++i) {
    env[i] = input[i];
    labels[i] = input_classes_[i];
  }
  ClassId pc_label = lattice_->Bottom();

  auto expr_label = [&](const Expr& expr) {
    ClassId out = lattice_->Bottom();
    expr.FreeVars().ForEachIndex([&](int v) { out = lattice_->Join(out, labels[v]); });
    return out;
  };

  StepCount steps = 0;
  int pc = program_.start_box();
  while (steps < fuel_) {
    ++steps;
    const Box& box = program_.box(pc);
    switch (box.kind) {
      case Box::Kind::kStart:
        pc = box.next;
        break;
      case Box::Kind::kAssign:
        labels[box.var] = lattice_->Join(expr_label(box.expr), pc_label);
        env[box.var] = box.expr.Eval(env);
        pc = box.next;
        break;
      case Box::Kind::kDecision:
        pc_label = lattice_->Join(pc_label, expr_label(box.predicate));
        pc = box.predicate.Eval(env) != 0 ? box.true_next : box.false_next;
        break;
      case Box::Kind::kHalt: {
        const int y = program_.output_var();
        const ClassId release = lattice_->Join(labels[y], pc_label);
        if (lattice_->Leq(release, clearance_)) {
          return Outcome::Val(env[y], steps);
        }
        return Outcome::Violation(steps, "output class " + lattice_->ClassName(release) +
                                             " exceeds clearance " +
                                             lattice_->ClassName(clearance_));
      }
    }
  }
  return Outcome::Violation(steps, "fuel exhausted");
}

}  // namespace secpol
