#include "src/scenario/runner.h"

#include <memory>
#include <utility>

#include "src/channels/timing.h"
#include "src/mechanism/completeness.h"
#include "src/mechanism/outcome_table.h"
#include "src/mechanism/soundness.h"
#include "src/policy/policy.h"
#include "src/server/socket.h"
#include "src/service/manifest.h"

namespace secpol {

void ScenarioSummary::Absorb(const ScenarioResult& result) {
  ++scenarios;
  checks += result.checks;
  for (const std::string& violation : result.violations) {
    violations.push_back(result.name + ": " + violation);
  }
}

std::string ScenarioSummary::ToString() const {
  std::string out = std::to_string(scenarios) + " scenarios, " + std::to_string(checks) +
                    " checks, " + std::to_string(violations.size()) + " violations";
  for (const std::string& violation : violations) {
    out += "\n  " + violation;
  }
  return out;
}

namespace {

ServiceConfig RunnerServiceConfig() {
  ServiceConfig config;
  config.concurrency = 1;
  // Every clean scenario adds one entry; keep them all so warm-cache checks
  // never evict each other mid-sweep.
  config.cache_capacity = 8192;
  return config;
}

// The scenario spec with all degradation knobs removed: the fault-free,
// unbounded, serial, point-sweep, interpreted run whose bytes every
// completed run must reproduce. Forcing sweep_mode here makes every
// completed "class" scenario a class ≡ point byte-identity oracle for free;
// forcing exec_mode likewise makes every completed "compiled" scenario a
// compiled ≡ interpreted oracle.
CheckJobSpec ReferenceSpec(const CheckJobSpec& spec) {
  CheckJobSpec reference = spec;
  reference.fault_spec.clear();
  reference.retries = -1;
  reference.deadline_ms = 0;
  reference.num_threads = 1;
  reference.sweep_mode = "point";
  reference.exec_mode = "interpreted";
  return reference;
}

// Everything after the report's header line. The header names the mechanism,
// and fault injection decorates that name (retry(faulty(...))), so a
// faulted-but-absorbed run legitimately differs from the fault-free
// reference in the header alone; the body — verdict, counterexample,
// counts — is where byte-identity binds.
std::string ReportBody(const std::string& report) {
  const std::size_t newline = report.find('\n');
  return newline == std::string::npos ? report : report.substr(newline + 1);
}

// The deterministic slice of a result frame's job object, re-serialized in
// a fixed field order so serve-path and batch-path renderings compare as
// bytes. wall_ms (timing) and from_cache (cache state) are excluded by
// contract; everything else must match.
std::string DeterministicJobFields(const Json& job) {
  static constexpr const char* kFields[] = {"id",        "status", "exit_code", "cache_key",
                                            "evaluated", "total",  "error",     "report"};
  Json out = Json::MakeObject();
  for (const char* field : kFields) {
    const Json* value = job.Find(field);
    if (value != nullptr) {
      out.Set(field, *value);
    }
  }
  return out.Serialize();
}

}  // namespace

ScenarioRunner::ScenarioRunner() : service_(RunnerServiceConfig()) {}

void ScenarioRunner::Expect(bool condition, const std::string& what, ScenarioResult* out) {
  ++out->checks;
  if (!condition) {
    out->violations.push_back(what);
  }
}

ScenarioResult ScenarioRunner::Run(const Scenario& scenario) {
  ScenarioResult result;
  result.name = scenario.name;

  const CheckJobSpec spec = BuildJobSpec(scenario);
  const JobResult reference = ExecuteJob(ReferenceSpec(spec));
  Expect(reference.status == JobStatus::kCompleted,
         "reference run did not complete: " + JobStatusName(reference.status) +
             (reference.error.empty() ? "" : " (" + reference.error + ")"),
         &result);
  if (reference.status != JobStatus::kCompleted) {
    return result;
  }

  const JobResult run = ExecuteJob(spec);

  if (scenario.config.fault == ScenarioFault::kAbort) {
    // The persistent fault must surface as a structured abort — or, when a
    // deadline is also armed, the deadline may win the race. Either way the
    // run fails closed with partial coverage, never a crash.
    const bool failed_closed =
        run.status == JobStatus::kAborted ||
        (spec.deadline_ms > 0 && run.status == JobStatus::kDeadlineExceeded);
    Expect(failed_closed, "fatal fault did not fail closed: " + JobStatusName(run.status),
           &result);
    Expect(run.exit_code >= 2 && run.exit_code <= 4,
           "fail-closed exit code out of range: " + std::to_string(run.exit_code), &result);
    Expect(run.evaluated <= run.total, "evaluated exceeds grid size", &result);
    return result;
  }

  if (spec.deadline_ms > 0 && run.status == JobStatus::kDeadlineExceeded) {
    // The deadline fired mid-sweep: coverage must be partial-or-full and the
    // exit code the fail-closed one (2 with a genuine witness, else 3).
    Expect(run.exit_code == 2 || run.exit_code == 3,
           "deadline exit code out of range: " + std::to_string(run.exit_code), &result);
    Expect(run.evaluated <= run.total, "evaluated exceeds grid size", &result);
    return result;
  }

  // Completed (clean or transient-absorbed) runs reproduce the reference
  // bytes at any thread count — the central determinism contract.
  Expect(run.status == JobStatus::kCompleted,
         "run did not complete: " + JobStatusName(run.status) +
             (run.error.empty() ? "" : " (" + run.error + ")"),
         &result);
  if (run.status == JobStatus::kCompleted) {
    if (scenario.config.fault == ScenarioFault::kTransient) {
      Expect(ReportBody(run.report) == ReportBody(reference.report),
             "report body differs from serial fault-free reference", &result);
    } else {
      Expect(run.report == reference.report,
             "report differs from serial fault-free reference", &result);
    }
    Expect(run.exit_code == reference.exit_code, "exit code differs from reference", &result);
    Expect(run.evaluated == run.total, "completed run did not cover the grid", &result);
  }

  if (scenario.config.fault == ScenarioFault::kNone && spec.deadline_ms == 0) {
    RunCleanBattery(scenario, spec, reference.report, &result);
  }
  return result;
}

void ScenarioRunner::RunCleanBattery(const Scenario& scenario, const CheckJobSpec& spec,
                                     const std::string& reference_report,
                                     ScenarioResult* out) {
  // --- Audit = concatenation of its six standalone section jobs ---
  CheckJobSpec audit_spec = spec;
  audit_spec.checker = CheckerKind::kAudit;
  const JobResult audit = ExecuteJob(audit_spec);
  Expect(audit.status == JobStatus::kCompleted,
         "audit did not complete: " + JobStatusName(audit.status), out);
  if (audit.status == JobStatus::kCompleted) {
    std::string expected;
    bool sections_ok = true;
    for (const CheckJobSpec& section : AuditSectionSpecs(audit_spec)) {
      const JobResult standalone = ExecuteJob(section);
      if (standalone.status != JobStatus::kCompleted) {
        Expect(false, "standalone section did not complete: " + section.id, out);
        sections_ok = false;
        break;
      }
      expected += standalone.report;
    }
    if (sections_ok) {
      Expect(audit.report == expected,
             "audit report is not the concatenation of its standalone sections", out);
    }
  }

  // --- OutcomeTable-backed reductions = live sweeps, byte for byte ---
  const Result<PreparedJob> prepared = PrepareJob(spec);
  Expect(prepared.ok(), "spec failed to prepare for the table battery", out);
  if (prepared.ok()) {
    std::string error;
    const std::unique_ptr<ProtectionMechanism> mechanism =
        MakeMechanismKind(spec.mechanism, prepared.value().program, spec.allow, &error);
    const std::unique_ptr<ProtectionMechanism> mechanism2 =
        MakeMechanismKind(spec.mechanism2, prepared.value().program, spec.allow, &error);
    Expect(mechanism != nullptr && mechanism2 != nullptr,
           "mechanism construction failed: " + error, out);
    if (mechanism != nullptr && mechanism2 != nullptr) {
      const AllowPolicy policy(prepared.value().program.num_inputs(), spec.allow);
      const InputDomain& domain = prepared.value().domain;
      const Observability obs =
          spec.observe_time ? Observability::kValueAndTime : Observability::kValueOnly;
      const CheckOptions serial = CheckOptions::Serial();

      OutcomeTableSources sources;
      sources.mechanism = mechanism.get();
      sources.mechanism2 = mechanism2.get();
      sources.policy = &policy;
      const OutcomeTable table = BuildOutcomeTable(sources, domain, serial);
      Expect(table.complete(), "outcome table build did not complete", out);
      if (table.complete()) {
        Expect(CheckSoundness(table, obs, serial).ToString() ==
                   CheckSoundness(*mechanism, policy, domain, obs, serial).ToString(),
               "table-backed soundness differs from live", out);
        Expect(CompareCompleteness(table, serial).ToString() ==
                   CompareCompleteness(*mechanism, *mechanism2, domain, serial).ToString(),
               "table-backed completeness differs from live", out);
        Expect(MeasureLeak(table, obs, serial).ToString() ==
                   MeasureLeak(*mechanism, policy, domain, obs, serial).ToString(),
               "table-backed leak differs from live", out);
      }
    }
  }

  // --- Cold = warm: the shared service replays identical bytes ---
  // The first batch may itself be warm (thread count is excluded from the
  // cache key, so a sibling scenario can have populated the entry) — either
  // way its bytes must match the reference, and the second batch must be a
  // cache hit with the same bytes.
  const BatchReport cold = service_.RunBatch({spec});
  Expect(cold.jobs.size() == 1 && cold.jobs[0].status == JobStatus::kCompleted,
         "service run did not complete", out);
  if (cold.jobs.size() == 1 && cold.jobs[0].status == JobStatus::kCompleted) {
    Expect(cold.jobs[0].report == reference_report, "service report differs from reference",
           out);
    const BatchReport warm = service_.RunBatch({spec});
    Expect(warm.jobs.size() == 1 && warm.jobs[0].from_cache, "second service run missed cache",
           out);
    if (warm.jobs.size() == 1) {
      Expect(warm.jobs[0].report == reference_report,
             "cached replay differs from reference bytes", out);
    }
  }

  // --- Serve = batch: the daemon round trip carries the same bytes ---
  RunServeOracle(spec, out);
  (void)scenario;
}

bool ScenarioRunner::EnsureServer() {
  if (serve_attempted_) {
    return serve_error_.empty();
  }
  serve_attempted_ = true;
  ServerConfig config;
  config.unix_path = UniqueSocketPath("scenario_oracle");
  config.concurrency = 1;
  config.cache_capacity = 8192;  // mirror service_: no mid-sweep eviction
  server_ = std::make_unique<CheckServer>(config);
  const Result<bool> started = server_->Start();
  if (!started.ok()) {
    serve_error_ = started.error().message;
    server_.reset();
    return false;
  }
  Result<ServeClient> client = ServeClient::ConnectUnixPath(config.unix_path);
  if (!client.ok()) {
    serve_error_ = client.error().message;
    server_.reset();
    return false;
  }
  serve_client_ = std::make_unique<ServeClient>(std::move(client.value()));
  return true;
}

void ScenarioRunner::RunServeOracle(const CheckJobSpec& spec, ScenarioResult* out) {
  Expect(EnsureServer(), "serve daemon unavailable: " + serve_error_, out);
  if (serve_client_ == nullptr) {
    return;
  }

  // The batch-path rendering of the same job. service_ completed this spec
  // moments ago in the cache battery, so this is a cache hit, and the
  // rendering carries exactly the bytes the daemon's result frame must.
  const BatchReport batch = service_.RunBatch({spec});
  if (batch.jobs.size() != 1 || batch.jobs[0].status != JobStatus::kCompleted) {
    return;  // already reported by the cache battery
  }
  const std::string expected = DeterministicJobFields(JobResultToJson(batch.jobs[0]));

  const Result<Json> terminal = serve_client_->SubmitJob(CheckJobSpecToJson(spec));
  Expect(terminal.ok(),
         "serve submission failed: " + (terminal.ok() ? "" : terminal.error().message), out);
  if (!terminal.ok()) {
    return;
  }
  const Json* type = terminal.value().Find("type");
  const Json* job = terminal.value().Find("job");
  const bool is_result = type != nullptr && type->is_string() &&
                         type->AsString() == "result" && job != nullptr && job->is_object();
  Expect(is_result, "serve submission did not produce a result frame", out);
  if (!is_result) {
    return;
  }
  Expect(DeterministicJobFields(*job) == expected,
         "serve result frame differs from the batch rendering", out);

  // Warm replay over the same persistent connection: the daemon's
  // content-addressed cache must serve the identical bytes back.
  const Result<Json> replay = serve_client_->SubmitJob(CheckJobSpecToJson(spec));
  const Json* replay_job =
      replay.ok() ? replay.value().Find("job") : nullptr;
  Expect(replay_job != nullptr && replay_job->is_object() &&
             DeterministicJobFields(*replay_job) == expected,
         "serve cached replay differs from the batch rendering", out);
  if (replay_job != nullptr && replay_job->is_object()) {
    const Json* from_cache = replay_job->Find("from_cache");
    Expect(from_cache != nullptr && from_cache->is_bool() && from_cache->AsBool(),
           "serve replay missed the daemon cache", out);
  }
}

ScenarioSummary ScenarioRunner::RunAll(const std::vector<Scenario>& scenarios) {
  ScenarioSummary summary;
  for (const Scenario& scenario : scenarios) {
    summary.Absorb(Run(scenario));
  }
  return summary;
}

}  // namespace secpol
