#include "src/scenario/minimize.h"

#include <cassert>
#include <optional>
#include <utility>
#include <vector>

namespace secpol {

namespace {

int CountBlock(const std::vector<Stmt>& block);

int CountStmt(const Stmt& stmt) {
  return 1 + CountBlock(stmt.then_body) + CountBlock(stmt.else_body) + CountBlock(stmt.body);
}

int CountBlock(const std::vector<Stmt>& block) {
  int total = 0;
  for (const Stmt& stmt : block) {
    total += CountStmt(stmt);
  }
  return total;
}

int ExprNodesBlock(const std::vector<Stmt>& block);

int ExprNodesStmt(const Stmt& stmt) {
  int total = 0;
  if (stmt.kind == Stmt::Kind::kAssign) {
    total += stmt.expr.NodeCount();
  }
  if (stmt.kind == Stmt::Kind::kIf || stmt.kind == Stmt::Kind::kWhile) {
    total += stmt.cond.NodeCount();
  }
  return total + ExprNodesBlock(stmt.then_body) + ExprNodesBlock(stmt.else_body) +
         ExprNodesBlock(stmt.body);
}

int ExprNodesBlock(const std::vector<Stmt>& block) {
  int total = 0;
  for (const Stmt& stmt : block) {
    total += ExprNodesStmt(stmt);
  }
  return total;
}

// The structure-aware edits, addressed by the DFS pre-order index of the
// statement they touch.
enum class EditKind {
  kErase,        // delete the statement
  kSpliceThen,   // if/while: replace by then_body / body, spliced in place
  kSpliceElse,   // if: replace by else_body, spliced in place
  kExprZero,     // assign: expr := 0
  kCondZero,     // if/while: cond := 0
  kExprChild0,   // assign: expr := operand(0)
  kExprChild1,   // assign: expr := operand(1)
};

constexpr EditKind kAllEdits[] = {
    EditKind::kErase,     EditKind::kSpliceThen, EditKind::kSpliceElse, EditKind::kExprZero,
    EditKind::kCondZero,  EditKind::kExprChild0, EditKind::kExprChild1,
};

// Whether `edit` applies to `stmt` at all (and would strictly shrink it).
bool EditApplies(const Stmt& stmt, EditKind edit) {
  switch (edit) {
    case EditKind::kErase:
      return true;
    case EditKind::kSpliceThen:
      return stmt.kind == Stmt::Kind::kIf || stmt.kind == Stmt::Kind::kWhile;
    case EditKind::kSpliceElse:
      return stmt.kind == Stmt::Kind::kIf && !stmt.else_body.empty();
    case EditKind::kExprZero:
      return stmt.kind == Stmt::Kind::kAssign && stmt.expr.kind() != Expr::Kind::kConst;
    case EditKind::kCondZero:
      return (stmt.kind == Stmt::Kind::kIf || stmt.kind == Stmt::Kind::kWhile) &&
             stmt.cond.kind() != Expr::Kind::kConst;
    case EditKind::kExprChild0:
      return stmt.kind == Stmt::Kind::kAssign && stmt.expr.num_operands() >= 1;
    case EditKind::kExprChild1:
      return stmt.kind == Stmt::Kind::kAssign && stmt.expr.num_operands() >= 2;
  }
  return false;
}

// Applies `edit` to the statement with DFS pre-order index `target` inside
// `block`. `next` carries the running DFS index. Returns true once applied.
bool ApplyInBlock(std::vector<Stmt>* block, int target, EditKind edit, int* next) {
  for (std::size_t i = 0; i < block->size(); ++i) {
    Stmt& stmt = (*block)[i];
    if (*next == target) {
      ++*next;
      if (!EditApplies(stmt, edit)) {
        return false;
      }
      switch (edit) {
        case EditKind::kErase:
          block->erase(block->begin() + static_cast<std::ptrdiff_t>(i));
          return true;
        case EditKind::kSpliceThen: {
          std::vector<Stmt> arm =
              stmt.kind == Stmt::Kind::kWhile ? std::move(stmt.body) : std::move(stmt.then_body);
          block->erase(block->begin() + static_cast<std::ptrdiff_t>(i));
          block->insert(block->begin() + static_cast<std::ptrdiff_t>(i),
                        std::make_move_iterator(arm.begin()), std::make_move_iterator(arm.end()));
          return true;
        }
        case EditKind::kSpliceElse: {
          std::vector<Stmt> arm = std::move(stmt.else_body);
          block->erase(block->begin() + static_cast<std::ptrdiff_t>(i));
          block->insert(block->begin() + static_cast<std::ptrdiff_t>(i),
                        std::make_move_iterator(arm.begin()), std::make_move_iterator(arm.end()));
          return true;
        }
        case EditKind::kExprZero:
          stmt.expr = Expr::Const(0);
          return true;
        case EditKind::kCondZero:
          stmt.cond = Expr::Const(0);
          return true;
        case EditKind::kExprChild0:
          stmt.expr = stmt.expr.operand(0);
          return true;
        case EditKind::kExprChild1:
          stmt.expr = stmt.expr.operand(1);
          return true;
      }
      return false;
    }
    ++*next;
    if (ApplyInBlock(&stmt.then_body, target, edit, next) ||
        ApplyInBlock(&stmt.else_body, target, edit, next) ||
        ApplyInBlock(&stmt.body, target, edit, next)) {
      return true;
    }
    // A sub-block signals "target was beyond me" by returning false with
    // *next already advanced past its statements; keep scanning.
    if (*next > target) {
      return false;
    }
  }
  return false;
}

// The candidate `edit` applied at `target`, or nullopt when inapplicable.
std::optional<SourceProgram> MakeCandidate(const SourceProgram& program, int target,
                                           EditKind edit) {
  SourceProgram candidate = program;
  int next = 0;
  if (!ApplyInBlock(&candidate.body, target, edit, &next)) {
    return std::nullopt;
  }
  return candidate;
}

}  // namespace

int CountStmts(const SourceProgram& program) { return CountBlock(program.body); }

int ProgramSize(const SourceProgram& program) {
  return CountBlock(program.body) + ExprNodesBlock(program.body);
}

SourceProgram MinimizeWitness(const SourceProgram& program, const WitnessPredicate& predicate,
                              const MinimizeOptions& options, MinimizeStats* stats) {
  assert(predicate(program));
  MinimizeStats local;
  local.initial_size = ProgramSize(program);

  SourceProgram best = program;
  bool shrunk = true;
  while (shrunk && local.candidates_tried < options.max_candidates) {
    shrunk = false;
    const int positions = CountStmts(best);
    for (int target = 0; target < positions && !shrunk; ++target) {
      for (EditKind edit : kAllEdits) {
        if (local.candidates_tried >= options.max_candidates) {
          break;
        }
        std::optional<SourceProgram> candidate = MakeCandidate(best, target, edit);
        if (!candidate.has_value()) {
          continue;
        }
        // Every applicable edit strictly shrinks, so acceptance always makes
        // progress and the outer fixpoint terminates.
        assert(ProgramSize(*candidate) < ProgramSize(best));
        ++local.candidates_tried;
        if (predicate(*candidate)) {
          ++local.candidates_accepted;
          best = std::move(*candidate);
          shrunk = true;
          break;  // positions shifted; restart the scan on the new program
        }
      }
    }
  }

  local.final_size = ProgramSize(best);
  if (stats != nullptr) {
    *stats = local;
  }
  return best;
}

}  // namespace secpol
