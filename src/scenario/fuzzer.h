// The coverage-guided disagreement fuzzer.
//
// The scenario matrix (scenario.h) checks fixed configurations; the fuzzer
// searches. It draws random (program, policy, transform, grid) tuples from
// the seeded corpus generators, runs a battery of *oracle pairs* — two
// independent paths that the theory says must agree — and hunts for
// disagreements:
//
//   true disagreements (any one fails the zero-disagreement CI gate):
//     * a parallel checker report differing from the serial bytes;
//     * an audit report that is not the concatenation of its sections;
//     * a cached replay with different bytes;
//     * an OutcomeTable-backed reduction differing from the live sweep;
//     * a serve-daemon result frame differing from the in-process run
//       (the job goes over a real unix socket and back);
//     * a class-mode sweep (one tracked representative per policy class,
//       DESIGN.md §14) differing from the point sweep's completed bytes;
//     * a compiled-mode run (surveillance as instrumented bytecode,
//       DESIGN.md §15) differing from the interpreted run's completed bytes;
//     * a surveillance mechanism unsound under value-only observation
//       (a Theorem 3 violation);
//     * a statically certified program the dynamic checker refutes;
//     * an "equivalence-preserving" transform that changed the function.
//
//   expected findings (the phenomena the paper predicts; recorded and
//   promoted to corpus regressions, but not failures):
//     * a timing-leak witness: sound for values, leaky once running time is
//       observable (the Theorem 3 / Theorem 3' gap);
//     * a transform that changed surveillance completeness (Examples 7/8 —
//       the non-automatable judgment of Theorem 4);
//     * a static-dynamic gap: certification refused although the bare run
//       is extensionally sound (conservatism of the static analysis).
//
// Coverage feedback: each iteration runs its checkers with a private
// MetricsRegistry (PR 5) attached; the snapshot's counters section — and
// only it, the histograms fold in wall-clock throughput — is hashed into
// (metric path, value bit-width) features, and inputs that light up a new
// feature join the mutation pool. The fuzzer is deterministic in
// FuzzerConfig::seed given a fixed iteration count.
//
// Witnesses are self-contained: FuzzFinding::ToJson embeds the (minimized)
// program text, policy bits, grid and transform plan, so a witness file in
// tests/regressions/ replays with ReplayFinding years later with no
// reference to the fuzzer run that found it.

#ifndef SECPOL_SRC_SCENARIO_FUZZER_H_
#define SECPOL_SRC_SCENARIO_FUZZER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/corpus/generator.h"
#include "src/transforms/transforms.h"
#include "src/util/json.h"
#include "src/util/result.h"
#include "src/util/rng.h"
#include "src/util/value.h"

namespace secpol {

enum class FindingKind {
  // --- True disagreements ---
  kParallelMismatch,
  kAuditMismatch,
  kCacheMismatch,
  kTableMismatch,
  kServeMismatch,
  kClassVsPointMismatch,
  kCompiledVsInterpretedMismatch,
  kSurveillanceUnsound,
  kStaticCertifiedUnsound,
  kTransformChangedMeaning,
  // --- Expected findings ---
  kTimingLeakWitness,
  kTransformCompletenessFlip,
  kStaticDynamicGap,
};

std::string FindingKindName(FindingKind kind);
std::optional<FindingKind> ParseFindingKind(const std::string& name);

// True for the kinds that fail the zero-disagreement gate.
bool IsDisagreement(FindingKind kind);

// One witness: everything needed to replay the finding stand-alone.
struct FuzzFinding {
  FindingKind kind = FindingKind::kTimingLeakWitness;
  std::string detail;        // deterministic one-liner for humans
  std::string program_text;  // flowlang source (minimized when enabled)
  std::uint64_t allow_bits = 0;
  Value grid_lo = -1;
  Value grid_hi = 1;
  bool has_plan = false;     // whether a transform plan is part of the witness
  TransformPlan plan;
  std::uint64_t iteration = 0;

  Json ToJson() const;
};

Result<FuzzFinding> FindingFromJson(const Json& witness);

// Re-evaluates the finding's oracle pair from scratch. Returns true iff the
// phenomenon still reproduces. The regression suite asserts `true` for
// expected kinds (the witness is a permanent exhibit) and `false` for
// disagreement kinds (the bug it caught must stay fixed).
Result<bool> ReplayFinding(const FuzzFinding& finding);

struct FuzzerConfig {
  std::uint64_t seed = 1;
  // Iteration bound; 0 = unbounded (then budget_ms must bound the run).
  std::uint64_t iterations = 200;
  // Wall-clock bound in milliseconds; 0 = unbounded.
  std::int64_t budget_ms = 0;
  CorpusConfig corpus;
  // Thread count for the parallel-vs-serial oracle.
  int threads = 7;
  // Run the job-level oracles (audit / cache / table) every Nth iteration;
  // 0 disables them.
  int audit_every = 8;
  bool minimize = true;
  int minimize_budget = 2048;  // candidate evaluations per witness
  int max_findings = 16;       // stop early once this many are recorded
};

struct FuzzStats {
  std::uint64_t iterations = 0;
  std::uint64_t features = 0;      // distinct coverage features seen
  std::uint64_t novel_inputs = 0;  // inputs that uncovered a new feature
  std::uint64_t disagreements = 0;
  std::uint64_t expected_findings = 0;
};

struct FuzzReport {
  std::vector<FuzzFinding> findings;
  FuzzStats stats;

  // No true disagreements (expected findings are fine).
  bool clean() const;
  std::string ToString() const;
};

class DisagreementFuzzer {
 public:
  explicit DisagreementFuzzer(FuzzerConfig config);

  // Runs to the iteration/budget/finding bound. Deterministic in the seed
  // for fixed iteration counts (a wall-clock budget cut is the one
  // nondeterministic stop).
  FuzzReport Run();

 private:
  struct FuzzInput {
    std::uint64_t program_seed = 0;
    std::uint64_t policy_seed = 0;
    std::uint64_t transform_seed = 0;
    int grid_index = 0;
  };

  FuzzInput NextInput();
  void Iterate(const FuzzInput& input, std::uint64_t iteration, FuzzReport* report);
  void Record(FindingKind kind, std::string detail, const SourceProgram& source,
              const FuzzInput& input, bool with_plan, const TransformPlan& plan,
              std::uint64_t iteration, FuzzReport* report);
  // Folds a metrics snapshot into the feature set; true if anything was new.
  bool AbsorbCoverage(const Json& snapshot);

  FuzzerConfig config_;
  Rng rng_;
  std::vector<FuzzInput> pool_;
  std::unordered_set<std::uint64_t> features_;
  std::unordered_set<int> seen_expected_;  // FindingKind as int, first-witness-only
};

}  // namespace secpol

#endif  // SECPOL_SRC_SCENARIO_FUZZER_H_
