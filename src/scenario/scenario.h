// The combinatorial scenario engine: named axes crossed into thousands of
// generated differential scenarios.
//
// Hand-written differential tests cover hand-picked points of a huge
// configuration space: program shape x policy x mechanism kind x grid x
// fault mode x thread count x deadline. The scenario engine enumerates a
// *cross product* of named axis values instead (the WiredTiger test-format
// idea): every combination becomes one Scenario with a golden-stable,
// dot-joined name like
//
//   s3.phalf.table.g3.ftrans.t7.dfull
//
// and a ScenarioConfig the runner (runner.h) turns into the full battery of
// established invariants — parallel = serial byte-identity, audit =
// concatenation of standalone reports, table-backed = live, cold = warm
// cache, transient faults absorbed, fatal faults fail closed.
//
// Names are contractual: they are derived only from axis value names and the
// axis order, never from pointers, timestamps or platform properties, so a
// scenario name in a bug report or a CI log replays forever. The golden test
// (tests/scenario_test.cc) pins a fingerprint of the full name list.

#ifndef SECPOL_SRC_SCENARIO_SCENARIO_H_
#define SECPOL_SRC_SCENARIO_SCENARIO_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/corpus/generator.h"
#include "src/service/job.h"
#include "src/util/value.h"
#include "src/util/var_set.h"

namespace secpol {

// Which allow-policy shape a scenario applies. A shape rather than a
// concrete set so the axis scales with the corpus' input arity.
enum class PolicyShape {
  kAllowNone,   // allow()            — the user may learn nothing
  kAllowFirst,  // allow(0)           — one coordinate
  kAllowHalf,   // allow(0..k/2)      — first ceil(k/2) coordinates
  kAllowAll,    // allow(0..k-1)      — everything
};

std::string PolicyShapeName(PolicyShape shape);
VarSet MakePolicyShape(PolicyShape shape, int num_inputs);

// The fault-injection mode of a scenario, mapped onto the ParseFaultSpecs
// grammar by BuildJobSpec.
enum class ScenarioFault {
  kNone,       // no injection: the clean differential battery applies
  kTransient,  // transient throws + retry budget: report == fault-free bytes
  kAbort,      // persistent throw at a fixed rank: fail closed (kAborted)
};

std::string ScenarioFaultName(ScenarioFault fault);

// Everything one scenario varies. Defaults are the axes' identity choices;
// each AxisValue edits one knob.
struct ScenarioConfig {
  CorpusConfig corpus;
  std::uint64_t program_seed = 0;
  PolicyShape policy = PolicyShape::kAllowFirst;
  std::string mechanism = "surveillance";
  Value grid_lo = -1;
  Value grid_hi = 2;
  ScenarioFault fault = ScenarioFault::kNone;
  int threads = 1;
  std::int64_t deadline_ms = 0;      // 0 = unbounded
  std::string sweep_mode = "point";        // point|class (DESIGN.md §14)
  std::string exec_mode = "interpreted";   // interpreted|compiled (DESIGN.md §15)
};

// One generated scenario: a byte-stable name plus the config it denotes.
struct Scenario {
  std::string name;
  ScenarioConfig config;
};

// One value of one axis: a stable short name (no dots — they join the name)
// and the config edit it applies.
struct AxisValue {
  std::string name;
  std::function<void(ScenarioConfig*)> apply;
};

// A named axis. The label documents the dimension; only value names enter
// scenario names.
struct ScenarioAxis {
  std::string label;
  std::vector<AxisValue> values;
};

// The full cross product of `axes`, in lexicographic order with the first
// axis varying slowest. Scenario names are the axis value names joined with
// '.'; the order and the names are deterministic functions of the axes
// alone.
std::vector<Scenario> MakeScenarios(const std::vector<ScenarioAxis>& axes);

// The shipped matrix: 6 programs x 4 policy shapes x 4 mechanism kinds x
// 3 grids x 3 fault modes x 3 thread counts x 2 deadlines x 2 sweep modes
// x 2 exec modes = 20736 scenarios. The program axis draws seeds
// kDefaultProgramSeedBase + i.
std::vector<ScenarioAxis> DefaultAxes();

inline constexpr std::uint64_t kDefaultProgramSeedBase = 9000;

// The flowlang source of a scenario's generated program (deterministic in
// config.corpus and config.program_seed; round-trips through the parser).
std::string ScenarioProgramText(const ScenarioConfig& config);

// Maps a scenario onto the batch-job vocabulary: the job's id is the
// scenario name, the checker defaults to soundness (the runner swaps in the
// other checkers), and the fault mode expands to a concrete
// fault_spec/retries pair.
CheckJobSpec BuildJobSpec(const Scenario& scenario);

}  // namespace secpol

#endif  // SECPOL_SRC_SCENARIO_SCENARIO_H_
