#include "src/scenario/fuzzer.h"

#include <bit>
#include <iterator>
#include <memory>
#include <utility>

#include "src/channels/timing.h"
#include "src/flowchart/interpreter.h"
#include "src/flowlang/lower.h"
#include "src/flowlang/parser.h"
#include "src/mechanism/completeness.h"
#include "src/mechanism/outcome_table.h"
#include "src/mechanism/soundness.h"
#include "src/obs/metrics.h"
#include "src/policy/policy.h"
#include "src/scenario/minimize.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/server/socket.h"
#include "src/service/manifest.h"
#include "src/service/service.h"
#include "src/staticflow/static_mechanisms.h"
#include "src/surveillance/surveillance.h"

namespace secpol {

namespace {

struct KindName {
  FindingKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {FindingKind::kParallelMismatch, "parallel-mismatch"},
    {FindingKind::kAuditMismatch, "audit-mismatch"},
    {FindingKind::kCacheMismatch, "cache-mismatch"},
    {FindingKind::kTableMismatch, "table-mismatch"},
    {FindingKind::kServeMismatch, "serve-mismatch"},
    {FindingKind::kClassVsPointMismatch, "class-vs-point-mismatch"},
    {FindingKind::kCompiledVsInterpretedMismatch, "compiled-vs-interpreted-mismatch"},
    {FindingKind::kSurveillanceUnsound, "surveillance-unsound"},
    {FindingKind::kStaticCertifiedUnsound, "static-certified-unsound"},
    {FindingKind::kTransformChangedMeaning, "transform-changed-meaning"},
    {FindingKind::kTimingLeakWitness, "timing-leak-witness"},
    {FindingKind::kTransformCompletenessFlip, "transform-completeness-flip"},
    {FindingKind::kStaticDynamicGap, "static-dynamic-gap"},
};

// The grids the fuzzer samples: every coordinate ranges over [lo, hi].
struct GridRange {
  Value lo;
  Value hi;
};
constexpr GridRange kGrids[] = {{0, 1}, {-1, 1}, {-1, 2}, {-2, 2}};
constexpr int kNumGrids = static_cast<int>(std::size(kGrids));

std::vector<Value> GridValues(Value lo, Value hi) {
  std::vector<Value> values;
  for (Value v = lo; v <= hi; ++v) {
    values.push_back(v);
  }
  return values;
}

bool TotalOnDomain(const Program& program, const InputDomain& domain) {
  bool total = true;
  domain.ForEach([&](InputView input) {
    if (!RunProgram(program, input).halted) {
      total = false;
    }
  });
  return total;
}

// The batch-job spec the job-level oracles (audit / cache / table) compare
// against; serial so the jobs themselves are reference runs.
CheckJobSpec OracleSpec(const SourceProgram& source, VarSet allow, Value lo, Value hi) {
  CheckJobSpec spec;
  spec.id = "fuzz";
  spec.checker = CheckerKind::kSoundness;
  spec.program_text = source.ToString();
  spec.allow = allow;
  spec.allow2 = VarSet::FirstN(source.num_inputs());
  spec.mechanism = "surveillance";
  spec.mechanism2 = "bare";
  spec.grid_lo = lo;
  spec.grid_hi = hi;
  spec.num_threads = 1;
  return spec;
}

bool AuditMismatch(const CheckJobSpec& base) {
  CheckJobSpec audit_spec = base;
  audit_spec.checker = CheckerKind::kAudit;
  const JobResult audit = ExecuteJob(audit_spec);
  if (audit.status != JobStatus::kCompleted) {
    return false;  // not an audit disagreement (abort paths have own tests)
  }
  std::string expected;
  for (const CheckJobSpec& section : AuditSectionSpecs(audit_spec)) {
    const JobResult standalone = ExecuteJob(section);
    if (standalone.status != JobStatus::kCompleted) {
      return false;
    }
    expected += standalone.report;
  }
  return audit.report != expected;
}

bool CacheMismatch(const CheckJobSpec& base) {
  ServiceConfig config;
  config.concurrency = 1;
  CheckService service(config);
  const BatchReport cold = service.RunBatch({base});
  const BatchReport warm = service.RunBatch({base});
  if (cold.jobs.size() != 1 || warm.jobs.size() != 1 ||
      cold.jobs[0].status != JobStatus::kCompleted) {
    return false;
  }
  return !warm.jobs[0].from_cache || warm.jobs[0].report != cold.jobs[0].report;
}

bool TableMismatch(const Program& program, VarSet allow, const InputDomain& domain) {
  const AllowPolicy policy(program.num_inputs(), allow);
  const SurveillanceMechanism mechanism(program, allow);
  const CheckOptions serial = CheckOptions::Serial();
  OutcomeTableSources sources;
  sources.mechanism = &mechanism;
  sources.policy = &policy;
  const OutcomeTable table = BuildOutcomeTable(sources, domain, serial);
  if (!table.complete()) {
    return false;
  }
  const Observability obs = Observability::kValueOnly;
  return CheckSoundness(table, obs, serial).ToString() !=
             CheckSoundness(mechanism, policy, domain, obs, serial).ToString() ||
         MeasureLeak(table, obs, serial).ToString() !=
             MeasureLeak(mechanism, policy, domain, obs, serial).ToString();
}

// True when the class-mode sweep of the job disagrees with the point-mode
// sweep on any deterministic field. Completed class reports are promised
// byte-identical to the point sweep (DESIGN.md §14), and on a fault-free,
// unbounded spec class mode completes whenever point mode does — so a
// non-completion on the class side is itself a disagreement. Checked for
// both the single-checker job and the full audit concatenation.
bool ClassVsPointMismatch(const CheckJobSpec& base) {
  for (const CheckerKind checker : {CheckerKind::kSoundness, CheckerKind::kAudit}) {
    CheckJobSpec point_spec = base;
    point_spec.checker = checker;
    point_spec.sweep_mode = "point";
    const JobResult point = ExecuteJob(point_spec);
    if (point.status != JobStatus::kCompleted) {
      continue;  // abort paths have their own oracles
    }
    CheckJobSpec class_spec = point_spec;
    class_spec.sweep_mode = "class";
    const JobResult classed = ExecuteJob(class_spec);
    if (classed.status != JobStatus::kCompleted || classed.report != point.report ||
        classed.exit_code != point.exit_code) {
      return true;
    }
  }
  return false;
}

// True when the compiled-mode run of the job disagrees with the interpreted
// run on any deterministic field. Compiled reports are promised
// byte-identical to the interpreted path (DESIGN.md §15), and on a
// fault-free, unbounded spec compiled mode completes whenever interpreted
// mode does — so a non-completion on the compiled side is itself a
// disagreement. Checked for both the single-checker job and the full audit
// concatenation.
bool CompiledVsInterpretedMismatch(const CheckJobSpec& base) {
  for (const CheckerKind checker : {CheckerKind::kSoundness, CheckerKind::kAudit}) {
    CheckJobSpec interp_spec = base;
    interp_spec.checker = checker;
    interp_spec.exec_mode = "interpreted";
    const JobResult interpreted = ExecuteJob(interp_spec);
    if (interpreted.status != JobStatus::kCompleted) {
      continue;  // abort paths have their own oracles
    }
    CheckJobSpec compiled_spec = interp_spec;
    compiled_spec.exec_mode = "compiled";
    const JobResult compiled = ExecuteJob(compiled_spec);
    if (compiled.status != JobStatus::kCompleted || compiled.report != interpreted.report ||
        compiled.exit_code != interpreted.exit_code) {
      return true;
    }
  }
  return false;
}

// The serve-oracle endpoint: one in-process daemon on a unix socket plus a
// persistent client connection, started lazily on the first serve-oracle
// evaluation and shared for the rest of the process. Sharing is sound
// because results are content-addressed — the comparison below is
// independent of the daemon's cache state — and it keeps the oracle from
// paying a listener bind per iteration. The daemon owns a private
// MetricsRegistry, which is never folded into coverage features (the
// iteration's own registry is), so the fuzz log stays deterministic.
struct ServeEndpoint {
  std::unique_ptr<CheckServer> server;
  std::unique_ptr<ServeClient> client;
  bool ok = false;
};

ServeEndpoint& ServeOracleEndpoint() {
  static ServeEndpoint& endpoint = *[] {
    auto* ep = new ServeEndpoint;  // leaked: outlives any static teardown order
    ServerConfig config;
    config.unix_path = UniqueSocketPath("fuzz_oracle");
    config.concurrency = 1;
    config.cache_capacity = 4096;
    ep->server = std::make_unique<CheckServer>(config);
    if (ep->server->Start().ok()) {
      Result<ServeClient> client = ServeClient::ConnectUnixPath(config.unix_path);
      if (client.ok()) {
        ep->client = std::make_unique<ServeClient>(std::move(client.value()));
        ep->ok = true;
      }
    }
    if (!ep->ok) {
      ep->server.reset();
    }
    return ep;
  }();
  return endpoint;
}

// True when the daemon's result frame for the job disagrees with the
// in-process run on any deterministic field (report bytes, exit code,
// status). An environment with no working sockets leaves the oracle inert
// rather than reporting phantom disagreements.
bool ServeMismatch(const CheckJobSpec& base) {
  ServeEndpoint& endpoint = ServeOracleEndpoint();
  if (!endpoint.ok) {
    return false;
  }
  const JobResult reference = ExecuteJob(base);
  if (reference.status != JobStatus::kCompleted) {
    return false;  // abort paths have their own oracles
  }
  const Result<Json> terminal = endpoint.client->SubmitJob(CheckJobSpecToJson(base));
  if (!terminal.ok()) {
    return true;  // a transport failure on a valid job is a disagreement
  }
  const Json* type = terminal.value().Find("type");
  const Json* job = terminal.value().Find("job");
  if (type == nullptr || !type->is_string() || type->AsString() != "result" ||
      job == nullptr || !job->is_object()) {
    return true;
  }
  const Json* report = job->Find("report");
  const Json* exit_code = job->Find("exit_code");
  const Json* status = job->Find("status");
  return report == nullptr || !report->is_string() ||
         report->AsString() != reference.report || exit_code == nullptr ||
         !exit_code->is_int() || exit_code->AsInt() != reference.exit_code ||
         status == nullptr || !status->is_string() ||
         status->AsString() != JobStatusName(reference.status);
}

// The kind-specific oracle pair, evaluated from scratch. Shared by the
// minimizer predicate and ReplayFinding so a shrunk witness proves exactly
// what the original did.
bool WitnessReproduces(const FuzzFinding& finding, const SourceProgram& source, int threads) {
  const int n = source.num_inputs();
  if (n <= 0) {
    return false;
  }
  const Program program = Lower(source);
  const InputDomain domain = InputDomain::Range(n, finding.grid_lo, finding.grid_hi);
  if (!TotalOnDomain(program, domain)) {
    return false;  // witnesses live in the total fragment
  }
  const VarSet allow = VarSet::FromBits(finding.allow_bits);
  const AllowPolicy policy(n, allow);
  const CheckOptions serial = CheckOptions::Serial();
  const Observability value_only = Observability::kValueOnly;

  switch (finding.kind) {
    case FindingKind::kSurveillanceUnsound: {
      const SurveillanceMechanism surv(program, allow);
      return !CheckSoundness(surv, policy, domain, value_only, serial).sound;
    }
    case FindingKind::kParallelMismatch: {
      const SurveillanceMechanism surv(program, allow);
      const std::string serial_report =
          CheckSoundness(surv, policy, domain, value_only, serial).ToString();
      const std::string parallel_report =
          CheckSoundness(surv, policy, domain, value_only, CheckOptions::Threads(threads))
              .ToString();
      return serial_report != parallel_report;
    }
    case FindingKind::kAuditMismatch:
      return AuditMismatch(OracleSpec(source, allow, finding.grid_lo, finding.grid_hi));
    case FindingKind::kCacheMismatch:
      return CacheMismatch(OracleSpec(source, allow, finding.grid_lo, finding.grid_hi));
    case FindingKind::kTableMismatch:
      return TableMismatch(program, allow, domain);
    case FindingKind::kServeMismatch:
      return ServeMismatch(OracleSpec(source, allow, finding.grid_lo, finding.grid_hi));
    case FindingKind::kClassVsPointMismatch:
      return ClassVsPointMismatch(OracleSpec(source, allow, finding.grid_lo, finding.grid_hi));
    case FindingKind::kCompiledVsInterpretedMismatch:
      return CompiledVsInterpretedMismatch(
          OracleSpec(source, allow, finding.grid_lo, finding.grid_hi));
    case FindingKind::kStaticCertifiedUnsound: {
      const StaticCertifiedMechanism cert(program, allow);
      return cert.certified() &&
             !CheckSoundness(cert, policy, domain, value_only, serial).sound;
    }
    case FindingKind::kStaticDynamicGap: {
      const StaticCertifiedMechanism cert(program, allow);
      if (cert.certified()) {
        return false;
      }
      const ProgramAsMechanism bare(program);
      return CheckSoundness(bare, policy, domain, value_only, serial).sound;
    }
    case FindingKind::kTransformChangedMeaning: {
      if (!finding.has_plan) {
        return false;
      }
      bool changed = false;
      const SourceProgram transformed = ApplyTransformPlan(source, finding.plan, &changed);
      if (!changed) {
        return false;
      }
      return !FunctionallyEquivalentOnGrid(program, Lower(transformed),
                                           GridValues(finding.grid_lo, finding.grid_hi));
    }
    case FindingKind::kTransformCompletenessFlip: {
      if (!finding.has_plan) {
        return false;
      }
      bool changed = false;
      const SourceProgram transformed = ApplyTransformPlan(source, finding.plan, &changed);
      if (!changed) {
        return false;
      }
      const SurveillanceMechanism surv_orig(program, allow);
      const SurveillanceMechanism surv_trans(Lower(transformed), allow);
      return CompareCompleteness(surv_orig, surv_trans, domain, serial).Relation() !=
             CompletenessRelation::kEquivalent;
    }
    case FindingKind::kTimingLeakWitness: {
      const SurveillanceMechanism surv(program, allow);
      if (!CheckSoundness(surv, policy, domain, value_only, serial).sound) {
        return false;
      }
      return MeasureLeak(surv, policy, domain, Observability::kValueAndTime, serial)
                 .leaky_classes > 0;
    }
  }
  return false;
}

// FNV-1a over a string plus a small salt; the stable in-binary hash behind
// coverage features (std::hash is implementation-defined, this is not).
std::uint64_t HashFeature(const std::string& path, std::uint64_t salt) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : path) {
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
  }
  return h ^ (salt * 0x9e3779b97f4a7c15ULL);
}

// Folds every integer leaf of a metrics snapshot into (path, bit-width)
// features. Bit-width bucketing makes the feature space finite: a counter
// counts as novel when it crosses a power of two, not on every tick.
void CollectFeatures(const Json& node, const std::string& path,
                     std::vector<std::uint64_t>* out) {
  if (node.is_int()) {
    const std::int64_t value = node.AsInt();
    const std::uint64_t magnitude = value >= 0 ? static_cast<std::uint64_t>(value) : 0;
    out->push_back(HashFeature(path, static_cast<std::uint64_t>(std::bit_width(magnitude))));
    return;
  }
  if (node.is_object()) {
    for (const auto& [key, value] : node.Members()) {
      CollectFeatures(value, path + "." + key, out);
    }
    return;
  }
  if (node.is_array()) {
    // Histogram bucket arrays: position is meaning, fold the index in.
    int index = 0;
    for (const Json& item : node.Items()) {
      CollectFeatures(item, path + "[" + std::to_string(index++) + "]", out);
    }
  }
}

}  // namespace

std::string FindingKindName(FindingKind kind) {
  for (const KindName& entry : kKindNames) {
    if (entry.kind == kind) {
      return entry.name;
    }
  }
  return "?";
}

std::optional<FindingKind> ParseFindingKind(const std::string& name) {
  for (const KindName& entry : kKindNames) {
    if (name == entry.name) {
      return entry.kind;
    }
  }
  return std::nullopt;
}

bool IsDisagreement(FindingKind kind) {
  switch (kind) {
    case FindingKind::kParallelMismatch:
    case FindingKind::kAuditMismatch:
    case FindingKind::kCacheMismatch:
    case FindingKind::kTableMismatch:
    case FindingKind::kServeMismatch:
    case FindingKind::kClassVsPointMismatch:
    case FindingKind::kCompiledVsInterpretedMismatch:
    case FindingKind::kSurveillanceUnsound:
    case FindingKind::kStaticCertifiedUnsound:
    case FindingKind::kTransformChangedMeaning:
      return true;
    case FindingKind::kTimingLeakWitness:
    case FindingKind::kTransformCompletenessFlip:
    case FindingKind::kStaticDynamicGap:
      return false;
  }
  return false;
}

Json FuzzFinding::ToJson() const {
  Json out = Json::MakeObject();
  out.Set("kind", Json::MakeString(FindingKindName(kind)));
  out.Set("detail", Json::MakeString(detail));
  out.Set("program", Json::MakeString(program_text));
  out.Set("allow_bits", Json::MakeInt(static_cast<std::int64_t>(allow_bits)));
  out.Set("grid_lo", Json::MakeInt(grid_lo));
  out.Set("grid_hi", Json::MakeInt(grid_hi));
  out.Set("iteration", Json::MakeInt(static_cast<std::int64_t>(iteration)));
  if (has_plan) {
    Json plan_json = Json::MakeObject();
    plan_json.Set("if_to_select", Json::MakeBool(plan.if_to_select));
    plan_json.Set("simplify_equal_arms", Json::MakeBool(plan.simplify_equal_arms));
    plan_json.Set("unroll_factor", Json::MakeInt(plan.unroll_factor));
    plan_json.Set("tail_duplicate", Json::MakeBool(plan.tail_duplicate));
    out.Set("transform_plan", plan_json);
  }
  return out;
}

Result<FuzzFinding> FindingFromJson(const Json& witness) {
  if (!witness.is_object()) {
    return Error{"witness must be a JSON object"};
  }
  FuzzFinding finding;
  const Json* kind = witness.Find("kind");
  if (kind == nullptr || !kind->is_string()) {
    return Error{"witness is missing its \"kind\""};
  }
  const std::optional<FindingKind> parsed = ParseFindingKind(kind->AsString());
  if (!parsed.has_value()) {
    return Error{"unknown finding kind: " + kind->AsString()};
  }
  finding.kind = *parsed;
  const Json* program = witness.Find("program");
  if (program == nullptr || !program->is_string()) {
    return Error{"witness is missing its \"program\""};
  }
  finding.program_text = program->AsString();
  const Json* detail = witness.Find("detail");
  if (detail != nullptr && detail->is_string()) {
    finding.detail = detail->AsString();
  }
  const Json* allow_bits = witness.Find("allow_bits");
  if (allow_bits == nullptr || !allow_bits->is_int()) {
    return Error{"witness is missing its \"allow_bits\""};
  }
  finding.allow_bits = static_cast<std::uint64_t>(allow_bits->AsInt());
  const Json* lo = witness.Find("grid_lo");
  const Json* hi = witness.Find("grid_hi");
  if (lo == nullptr || hi == nullptr || !lo->is_int() || !hi->is_int()) {
    return Error{"witness is missing its grid bounds"};
  }
  finding.grid_lo = lo->AsInt();
  finding.grid_hi = hi->AsInt();
  if (finding.grid_lo > finding.grid_hi) {
    return Error{"witness grid is empty"};
  }
  const Json* iteration = witness.Find("iteration");
  if (iteration != nullptr && iteration->is_int()) {
    finding.iteration = static_cast<std::uint64_t>(iteration->AsInt());
  }
  const Json* plan = witness.Find("transform_plan");
  if (plan != nullptr && !plan->is_null()) {
    if (!plan->is_object()) {
      return Error{"transform_plan must be an object"};
    }
    finding.has_plan = true;
    const Json* field = plan->Find("if_to_select");
    finding.plan.if_to_select = field != nullptr && field->is_bool() && field->AsBool();
    field = plan->Find("simplify_equal_arms");
    finding.plan.simplify_equal_arms =
        field == nullptr || !field->is_bool() || field->AsBool();
    field = plan->Find("unroll_factor");
    finding.plan.unroll_factor = field != nullptr && field->is_int() ? field->AsInt() : 0;
    field = plan->Find("tail_duplicate");
    finding.plan.tail_duplicate = field != nullptr && field->is_bool() && field->AsBool();
  }
  return finding;
}

Result<bool> ReplayFinding(const FuzzFinding& finding) {
  Result<SourceProgram> source = ParseProgram(finding.program_text);
  if (!source.ok()) {
    return Error{"witness program does not parse: " + source.error().ToString()};
  }
  return WitnessReproduces(finding, source.value(), /*threads=*/7);
}

bool FuzzReport::clean() const {
  for (const FuzzFinding& finding : findings) {
    if (IsDisagreement(finding.kind)) {
      return false;
    }
  }
  return true;
}

std::string FuzzReport::ToString() const {
  std::string out = "fuzz: " + std::to_string(stats.iterations) + " iterations, " +
                    std::to_string(stats.features) + " features, " +
                    std::to_string(stats.disagreements) + " disagreements, " +
                    std::to_string(stats.expected_findings) + " expected findings";
  for (const FuzzFinding& finding : findings) {
    out += "\n  [" + std::string(IsDisagreement(finding.kind) ? "DISAGREE" : "expected") +
           "] " + FindingKindName(finding.kind) + ": " + finding.detail;
  }
  return out;
}

DisagreementFuzzer::DisagreementFuzzer(FuzzerConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

DisagreementFuzzer::FuzzInput DisagreementFuzzer::NextInput() {
  if (pool_.empty() || rng_.Chance(1, 4)) {
    // Fresh random input: keeps the search from collapsing onto one basin.
    FuzzInput input;
    input.program_seed = rng_.Next();
    input.policy_seed = rng_.Next();
    input.transform_seed = rng_.Next();
    input.grid_index = static_cast<int>(rng_.NextBelow(kNumGrids));
    return input;
  }
  // Mutate a pool member: rerandomize one coordinate of the tuple.
  FuzzInput input = pool_[rng_.NextBelow(pool_.size())];
  switch (rng_.NextBelow(4)) {
    case 0:
      input.program_seed = rng_.Next();
      break;
    case 1:
      input.policy_seed = rng_.Next();
      break;
    case 2:
      input.transform_seed = rng_.Next();
      break;
    default:
      input.grid_index = static_cast<int>(rng_.NextBelow(kNumGrids));
      break;
  }
  return input;
}

bool DisagreementFuzzer::AbsorbCoverage(const Json& snapshot) {
  // Only the counters section feeds coverage: counters are deterministic
  // functions of the work performed, while the histograms fold in wall-clock
  // throughput (points_per_sec and friends) — hashing those would make the
  // feature set, and with it the whole fuzz log, nondeterministic.
  const Json* counters = snapshot.Find("counters");
  if (counters == nullptr) {
    return false;
  }
  std::vector<std::uint64_t> features;
  CollectFeatures(*counters, "", &features);
  bool novel = false;
  for (const std::uint64_t feature : features) {
    if (features_.insert(feature).second) {
      novel = true;
    }
  }
  return novel;
}

void DisagreementFuzzer::Record(FindingKind kind, std::string detail,
                                const SourceProgram& source, const FuzzInput& input,
                                bool with_plan, const TransformPlan& plan,
                                std::uint64_t iteration, FuzzReport* report) {
  if (!IsDisagreement(kind)) {
    // Expected phenomena recur constantly; one witness per kind is the
    // useful exhibit, the rest is noise.
    if (!seen_expected_.insert(static_cast<int>(kind)).second) {
      return;
    }
  }

  FuzzFinding finding;
  finding.kind = kind;
  finding.detail = std::move(detail);
  finding.program_text = source.ToString();
  finding.allow_bits = GenerateAllowSet(source.num_inputs(), input.policy_seed).bits();
  finding.grid_lo = kGrids[input.grid_index].lo;
  finding.grid_hi = kGrids[input.grid_index].hi;
  finding.has_plan = with_plan;
  finding.plan = plan;
  finding.iteration = iteration;

  if (config_.minimize) {
    const int threads = config_.threads;
    const WitnessPredicate predicate = [&finding, threads](const SourceProgram& candidate) {
      return WitnessReproduces(finding, candidate, threads);
    };
    // Only shrink when the finding replays deterministically from scratch;
    // a non-reproducing disagreement is recorded as-is (its detail string
    // and full program are then the entire evidence).
    if (predicate(source)) {
      MinimizeOptions options;
      options.max_candidates = config_.minimize_budget;
      MinimizeStats stats;
      const SourceProgram minimized = MinimizeWitness(source, predicate, options, &stats);
      finding.program_text = minimized.ToString();
      finding.detail += " (minimized " + std::to_string(stats.initial_size) + " -> " +
                        std::to_string(stats.final_size) + " nodes)";
    } else {
      finding.detail += " (not deterministically reproducible; kept unminimized)";
    }
  }

  if (IsDisagreement(kind)) {
    ++report->stats.disagreements;
  } else {
    ++report->stats.expected_findings;
  }
  report->findings.push_back(std::move(finding));
}

void DisagreementFuzzer::Iterate(const FuzzInput& input, std::uint64_t iteration,
                                 FuzzReport* report) {
  const SourceProgram source = GenerateProgram(
      config_.corpus, input.program_seed, "fz_" + std::to_string(input.program_seed));
  const Program program = Lower(source);
  const int n = source.num_inputs();
  const VarSet allow = GenerateAllowSet(n, input.policy_seed);
  const GridRange grid = kGrids[input.grid_index];
  const InputDomain domain = InputDomain::Range(n, grid.lo, grid.hi);
  const AllowPolicy policy(n, allow);
  const TransformPlan plan = GenerateTransformPlan(input.transform_seed);
  const TransformPlan no_plan;

  MetricsRegistry metrics;
  CheckOptions serial = CheckOptions::Serial();
  serial.obs.metrics = &metrics;
  const Observability value_only = Observability::kValueOnly;

  // --- Theorem 3: the surveillance mechanism is sound for allow(J) ---
  const SurveillanceMechanism surv(program, allow);
  const SoundnessReport sound = CheckSoundness(surv, policy, domain, value_only, serial);
  if (!sound.sound) {
    Record(FindingKind::kSurveillanceUnsound,
           sound.counterexample.has_value() ? sound.counterexample->ToString()
                                           : "unsound without counterexample",
           source, input, false, no_plan, iteration, report);
  }

  // --- Serial = parallel byte identity ---
  CheckOptions parallel = CheckOptions::Threads(config_.threads);
  parallel.obs.metrics = &metrics;
  const SoundnessReport sound_parallel =
      CheckSoundness(surv, policy, domain, value_only, parallel);
  if (sound_parallel.ToString() != sound.ToString()) {
    Record(FindingKind::kParallelMismatch,
           "soundness report differs at " + std::to_string(config_.threads) + " threads",
           source, input, false, no_plan, iteration, report);
  }

  // --- Static certification vs the dynamic ground truth ---
  const StaticCertifiedMechanism cert(program, allow);
  if (cert.certified()) {
    if (!CheckSoundness(cert, policy, domain, value_only, serial).sound) {
      Record(FindingKind::kStaticCertifiedUnsound,
             "certifier accepted a dynamically unsound program", source, input, false,
             no_plan, iteration, report);
    }
  } else {
    const ProgramAsMechanism bare(program);
    if (CheckSoundness(bare, policy, domain, value_only, serial).sound) {
      Record(FindingKind::kStaticDynamicGap,
             "certification refused though the bare program is sound", source, input, false,
             no_plan, iteration, report);
    }
  }

  // --- Transforms preserve meaning; their completeness effect is free ---
  bool changed = false;
  const SourceProgram transformed = ApplyTransformPlan(source, plan, &changed);
  if (changed) {
    const Program transformed_program = Lower(transformed);
    if (!FunctionallyEquivalentOnGrid(program, transformed_program,
                                      GridValues(grid.lo, grid.hi))) {
      Record(FindingKind::kTransformChangedMeaning,
             "plan " + plan.Name() + " changed the computed function", source, input, true,
             plan, iteration, report);
    } else {
      const SurveillanceMechanism surv_transformed(transformed_program, allow);
      const CompletenessStats completeness =
          CompareCompleteness(surv, surv_transformed, domain, serial);
      if (completeness.Relation() != CompletenessRelation::kEquivalent) {
        Record(FindingKind::kTransformCompletenessFlip,
               "plan " + plan.Name() + ": " +
                   CompletenessRelationName(completeness.Relation()),
               source, input, true, plan, iteration, report);
      }
    }
  }

  // --- The Theorem 3 / Theorem 3' gap: value-sound but timing-leaky ---
  if (sound.sound) {
    const LeakReport leak =
        MeasureLeak(surv, policy, domain, Observability::kValueAndTime, serial);
    if (leak.leaky_classes > 0) {
      Record(FindingKind::kTimingLeakWitness,
             std::to_string(leak.leaky_classes) + " leaky classes, max " +
                 std::to_string(leak.max_distinct_outcomes) + " outcomes per class",
             source, input, false, no_plan, iteration, report);
    }
  }

  // --- Job-level oracles: audit concat, cache replay, table-backed ---
  if (config_.audit_every > 0 && iteration % static_cast<std::uint64_t>(config_.audit_every) == 0) {
    const CheckJobSpec spec = OracleSpec(source, allow, grid.lo, grid.hi);
    if (AuditMismatch(spec)) {
      Record(FindingKind::kAuditMismatch,
             "audit report is not the concatenation of its sections", source, input, false,
             no_plan, iteration, report);
    }
    if (CacheMismatch(spec)) {
      Record(FindingKind::kCacheMismatch, "cached replay bytes differ", source, input, false,
             no_plan, iteration, report);
    }
    if (TableMismatch(program, allow, domain)) {
      Record(FindingKind::kTableMismatch,
             "table-backed reduction differs from the live sweep", source, input, false,
             no_plan, iteration, report);
    }
    if (ServeMismatch(spec)) {
      Record(FindingKind::kServeMismatch,
             "daemon result frame differs from the in-process run", source, input, false,
             no_plan, iteration, report);
    }
    if (ClassVsPointMismatch(spec)) {
      Record(FindingKind::kClassVsPointMismatch,
             "class-mode sweep differs from the point sweep", source, input, false, no_plan,
             iteration, report);
    }
    if (CompiledVsInterpretedMismatch(spec)) {
      Record(FindingKind::kCompiledVsInterpretedMismatch,
             "compiled run differs from the interpreted run", source, input, false, no_plan,
             iteration, report);
    }
  }

  // --- Coverage feedback ---
  if (AbsorbCoverage(metrics.Snapshot())) {
    ++report->stats.novel_inputs;
    constexpr std::size_t kPoolCap = 64;
    if (pool_.size() < kPoolCap) {
      pool_.push_back(input);
    } else {
      pool_[rng_.NextBelow(kPoolCap)] = input;
    }
  }
}

FuzzReport DisagreementFuzzer::Run() {
  FuzzReport report;
  const Deadline deadline = config_.budget_ms > 0 ? Deadline::AfterMillis(config_.budget_ms)
                                                  : Deadline::Never();
  std::uint64_t iteration = 0;
  while ((config_.iterations == 0 || iteration < config_.iterations) && !deadline.Expired() &&
         report.findings.size() < static_cast<std::size_t>(config_.max_findings)) {
    Iterate(NextInput(), iteration, &report);
    ++iteration;
  }
  report.stats.iterations = iteration;
  report.stats.features = features_.size();
  return report;
}

}  // namespace secpol
