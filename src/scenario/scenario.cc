#include "src/scenario/scenario.h"

#include <cassert>

namespace secpol {

std::string PolicyShapeName(PolicyShape shape) {
  switch (shape) {
    case PolicyShape::kAllowNone:
      return "pnone";
    case PolicyShape::kAllowFirst:
      return "pfirst";
    case PolicyShape::kAllowHalf:
      return "phalf";
    case PolicyShape::kAllowAll:
      return "pall";
  }
  return "?";
}

VarSet MakePolicyShape(PolicyShape shape, int num_inputs) {
  switch (shape) {
    case PolicyShape::kAllowNone:
      return VarSet::Empty();
    case PolicyShape::kAllowFirst:
      return num_inputs > 0 ? VarSet::Singleton(0) : VarSet::Empty();
    case PolicyShape::kAllowHalf:
      return VarSet::FirstN((num_inputs + 1) / 2);
    case PolicyShape::kAllowAll:
      return VarSet::FirstN(num_inputs);
  }
  return VarSet::Empty();
}

std::string ScenarioFaultName(ScenarioFault fault) {
  switch (fault) {
    case ScenarioFault::kNone:
      return "fok";
    case ScenarioFault::kTransient:
      return "ftrans";
    case ScenarioFault::kAbort:
      return "fabort";
  }
  return "?";
}

std::vector<Scenario> MakeScenarios(const std::vector<ScenarioAxis>& axes) {
  std::vector<Scenario> out;
  if (axes.empty()) {
    return out;
  }
  std::uint64_t count = 1;
  for (const ScenarioAxis& axis : axes) {
    assert(!axis.values.empty());
    count *= axis.values.size();
  }
  out.reserve(count);
  // Odometer over axis value indices, first axis most significant, so the
  // output order is lexicographic in the axes.
  std::vector<std::size_t> pick(axes.size(), 0);
  for (std::uint64_t n = 0; n < count; ++n) {
    Scenario scenario;
    for (std::size_t i = 0; i < axes.size(); ++i) {
      const AxisValue& value = axes[i].values[pick[i]];
      if (i != 0) {
        scenario.name += '.';
      }
      scenario.name += value.name;
      value.apply(&scenario.config);
    }
    out.push_back(std::move(scenario));
    for (std::size_t i = axes.size(); i-- > 0;) {
      if (++pick[i] < axes[i].values.size()) {
        break;
      }
      pick[i] = 0;
    }
  }
  return out;
}

std::vector<ScenarioAxis> DefaultAxes() {
  std::vector<ScenarioAxis> axes;

  ScenarioAxis programs;
  programs.label = "program";
  for (int i = 0; i < 6; ++i) {
    const std::uint64_t seed = kDefaultProgramSeedBase + static_cast<std::uint64_t>(i);
    programs.values.push_back(
        {"s" + std::to_string(i), [seed](ScenarioConfig* c) { c->program_seed = seed; }});
  }
  axes.push_back(std::move(programs));

  ScenarioAxis policies;
  policies.label = "policy";
  for (PolicyShape shape : {PolicyShape::kAllowNone, PolicyShape::kAllowFirst,
                            PolicyShape::kAllowHalf, PolicyShape::kAllowAll}) {
    policies.values.push_back(
        {PolicyShapeName(shape), [shape](ScenarioConfig* c) { c->policy = shape; }});
  }
  axes.push_back(std::move(policies));

  ScenarioAxis mechanisms;
  mechanisms.label = "mechanism";
  for (const char* kind : {"surveillance", "highwater", "table", "static"}) {
    // Short axis names, full MakeMechanismKind vocabulary in the config.
    const std::string name = std::string(kind) == "surveillance" ? "surv"
                             : std::string(kind) == "highwater"  ? "hw"
                                                                 : kind;
    mechanisms.values.push_back(
        {name, [kind](ScenarioConfig* c) { c->mechanism = kind; }});
  }
  axes.push_back(std::move(mechanisms));

  ScenarioAxis grids;
  grids.label = "grid";
  // g2 stays inside {0,1}; g4 is the canonical table domain {-1..2}; g3 sits
  // between. (A grid outside {-1..2} would drive the "table" mechanism kind
  // out of domain — that fail-closed path has its own directed tests.)
  grids.values.push_back({"g2", [](ScenarioConfig* c) { c->grid_lo = 0; c->grid_hi = 1; }});
  grids.values.push_back({"g3", [](ScenarioConfig* c) { c->grid_lo = -1; c->grid_hi = 1; }});
  grids.values.push_back({"g4", [](ScenarioConfig* c) { c->grid_lo = -1; c->grid_hi = 2; }});
  axes.push_back(std::move(grids));

  ScenarioAxis faults;
  faults.label = "fault";
  for (ScenarioFault fault :
       {ScenarioFault::kNone, ScenarioFault::kTransient, ScenarioFault::kAbort}) {
    faults.values.push_back(
        {ScenarioFaultName(fault), [fault](ScenarioConfig* c) { c->fault = fault; }});
  }
  axes.push_back(std::move(faults));

  ScenarioAxis threads;
  threads.label = "threads";
  for (int n : {1, 2, 7}) {
    threads.values.push_back(
        {"t" + std::to_string(n), [n](ScenarioConfig* c) { c->threads = n; }});
  }
  axes.push_back(std::move(threads));

  ScenarioAxis deadlines;
  deadlines.label = "deadline";
  deadlines.values.push_back({"dfull", [](ScenarioConfig* c) { c->deadline_ms = 0; }});
  deadlines.values.push_back({"d1ms", [](ScenarioConfig* c) { c->deadline_ms = 1; }});
  axes.push_back(std::move(deadlines));

  // The sweep axis crosses every configuration with both sweep strategies.
  // The runner's reference run always forces "point", so every completed
  // "swc" scenario is a class ≡ point byte-identity check by construction.
  ScenarioAxis sweeps;
  sweeps.label = "sweep";
  sweeps.values.push_back({"swp", [](ScenarioConfig* c) { c->sweep_mode = "point"; }});
  sweeps.values.push_back({"swc", [](ScenarioConfig* c) { c->sweep_mode = "class"; }});
  axes.push_back(std::move(sweeps));

  // The exec axis crosses every configuration with both evaluation backends.
  // The runner's reference run always forces "interpreted", so every
  // completed "exc" scenario is a compiled ≡ interpreted byte-identity check
  // by construction (DESIGN.md §15).
  ScenarioAxis execs;
  execs.label = "exec";
  execs.values.push_back({"exi", [](ScenarioConfig* c) { c->exec_mode = "interpreted"; }});
  execs.values.push_back({"exc", [](ScenarioConfig* c) { c->exec_mode = "compiled"; }});
  axes.push_back(std::move(execs));

  return axes;
}

std::string ScenarioProgramText(const ScenarioConfig& config) {
  return GenerateProgram(config.corpus, config.program_seed,
                         "scn_" + std::to_string(config.program_seed))
      .ToString();
}

CheckJobSpec BuildJobSpec(const Scenario& scenario) {
  const ScenarioConfig& config = scenario.config;
  CheckJobSpec spec;
  spec.id = scenario.name;
  spec.checker = CheckerKind::kSoundness;
  spec.program_text = ScenarioProgramText(config);
  spec.allow = MakePolicyShape(config.policy, config.corpus.num_inputs);
  // The second policy/mechanism only matter for the comparison checkers the
  // runner swaps in (completeness, policy-compare, audit); fixing them keeps
  // every checker of one scenario on the same ingredients.
  spec.allow2 = VarSet::FirstN(config.corpus.num_inputs);
  spec.mechanism = config.mechanism;
  spec.mechanism2 = "bare";
  spec.grid_lo = config.grid_lo;
  spec.grid_hi = config.grid_hi;
  spec.num_threads = config.threads;
  spec.deadline_ms = config.deadline_ms;
  spec.sweep_mode = config.sweep_mode;
  spec.exec_mode = config.exec_mode;
  switch (config.fault) {
    case ScenarioFault::kNone:
      break;
    case ScenarioFault::kTransient:
      // Transient throws at ~1/3 of grid ranks; one fire per rank ('!'
      // defaults fires_per_rank to 1), absorbed by a 2-retry budget, so the
      // completed report must equal the fault-free bytes.
      spec.fault_spec = "throw~1/3:11!";
      spec.retries = 2;
      break;
    case ScenarioFault::kAbort:
      // A persistent throw at rank 1 (every grid here has >= 2 points): the
      // sweep must fail closed with JobStatus::kAborted, never crash.
      spec.fault_spec = "throw@1";
      break;
  }
  return spec;
}

}  // namespace secpol
