// Executes one generated scenario against the engine's established
// differential invariants.
//
// The runner is the judge half of the scenario engine: scenario.h enumerates
// configurations, this class decides — per configuration — which contracts
// apply and asserts them:
//
//   always          the fault-free serial single-thread reference run
//                   completes;
//   fault = fok     the scenario run's report is byte-identical to the
//     (clean)       reference at the scenario's thread count; the audit
//                   report equals the concatenation of its six standalone
//                   section jobs; the OutcomeTable-backed soundness /
//                   completeness / leak reductions are byte-identical to the
//                   live sweeps; a shared CheckService replays the job from
//                   cache with identical bytes (cold = warm); and a shared
//                   in-process serve daemon returns a result frame whose
//                   deterministic fields are byte-identical to the batch
//                   path, with the replay a cache hit (serve = batch);
//   fault = ftrans  transient throws plus the retry budget are absorbed: a
//                   completed run's report equals the fault-free reference;
//   fault = fabort  the persistent fault fails closed: JobStatus::kAborted
//                   (exit 4), never a crash or a hang;
//   deadline = d1ms a run either completes — and then all byte-identity
//                   contracts above still bind — or reports
//                   kDeadlineExceeded with partial coverage (fail closed).
//
// Violations are collected as strings rather than asserted, so one test can
// sweep thousands of scenarios and report every failure with its scenario
// name (the name alone replays the case).

#ifndef SECPOL_SRC_SCENARIO_RUNNER_H_
#define SECPOL_SRC_SCENARIO_RUNNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/scenario/scenario.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/service/service.h"

namespace secpol {

struct ScenarioResult {
  std::string name;
  std::uint64_t checks = 0;  // invariant assertions evaluated
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
};

// Aggregate over a scenario sweep.
struct ScenarioSummary {
  std::uint64_t scenarios = 0;
  std::uint64_t checks = 0;
  std::vector<std::string> violations;  // "<scenario>: <violation>" lines

  void Absorb(const ScenarioResult& result);
  bool ok() const { return violations.empty(); }
  std::string ToString() const;
};

class ScenarioRunner {
 public:
  ScenarioRunner();

  // Runs one scenario's battery. Never throws for scenario-level failures —
  // they land in the result's violations.
  ScenarioResult Run(const Scenario& scenario);

  // Runs every scenario, aggregating.
  ScenarioSummary RunAll(const std::vector<Scenario>& scenarios);

 private:
  void Expect(bool condition, const std::string& what, ScenarioResult* out);

  // The clean-scenario extras: audit concatenation, table-backed vs live,
  // cold vs warm cache, and the daemon round trip.
  void RunCleanBattery(const Scenario& scenario, const CheckJobSpec& spec,
                       const std::string& reference_report, ScenarioResult* out);

  // The serve ≡ batch oracle: submits the spec to the shared in-process
  // daemon over a real unix socket and asserts the result frame's
  // deterministic fields are byte-identical to the batch path, then that an
  // immediate replay is a cache hit with the same bytes.
  void RunServeOracle(const CheckJobSpec& spec, ScenarioResult* out);

  // Starts the in-process daemon on first use (first clean scenario).
  // Returns false — with serve_error_ set — when the environment has no
  // working sockets; the failure is asserted once per sweep, not retried.
  bool EnsureServer();

  // Shared across scenarios on purpose: the cache replay check then also
  // covers cross-scenario key collisions (thread count and deadline are
  // excluded from the cache key by design, so sibling scenarios may
  // legitimately warm each other — the bytes must still match).
  CheckService service_;

  // The daemon half of the serve ≡ batch oracle, equally shared: one
  // listener, one persistent client connection, one hot cache for the
  // whole sweep. serve_client_ is declared after server_ so it is
  // destroyed first — the client's fd closes before the server shuts down.
  std::unique_ptr<CheckServer> server_;
  std::unique_ptr<ServeClient> serve_client_;
  std::string serve_error_;
  bool serve_attempted_ = false;
};

}  // namespace secpol

#endif  // SECPOL_SRC_SCENARIO_RUNNER_H_
