// Executes one generated scenario against the engine's established
// differential invariants.
//
// The runner is the judge half of the scenario engine: scenario.h enumerates
// configurations, this class decides — per configuration — which contracts
// apply and asserts them:
//
//   always          the fault-free serial single-thread reference run
//                   completes;
//   fault = fok     the scenario run's report is byte-identical to the
//     (clean)       reference at the scenario's thread count; the audit
//                   report equals the concatenation of its six standalone
//                   section jobs; the OutcomeTable-backed soundness /
//                   completeness / leak reductions are byte-identical to the
//                   live sweeps; and a shared CheckService replays the job
//                   from cache with identical bytes (cold = warm);
//   fault = ftrans  transient throws plus the retry budget are absorbed: a
//                   completed run's report equals the fault-free reference;
//   fault = fabort  the persistent fault fails closed: JobStatus::kAborted
//                   (exit 4), never a crash or a hang;
//   deadline = d1ms a run either completes — and then all byte-identity
//                   contracts above still bind — or reports
//                   kDeadlineExceeded with partial coverage (fail closed).
//
// Violations are collected as strings rather than asserted, so one test can
// sweep thousands of scenarios and report every failure with its scenario
// name (the name alone replays the case).

#ifndef SECPOL_SRC_SCENARIO_RUNNER_H_
#define SECPOL_SRC_SCENARIO_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/scenario/scenario.h"
#include "src/service/service.h"

namespace secpol {

struct ScenarioResult {
  std::string name;
  std::uint64_t checks = 0;  // invariant assertions evaluated
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
};

// Aggregate over a scenario sweep.
struct ScenarioSummary {
  std::uint64_t scenarios = 0;
  std::uint64_t checks = 0;
  std::vector<std::string> violations;  // "<scenario>: <violation>" lines

  void Absorb(const ScenarioResult& result);
  bool ok() const { return violations.empty(); }
  std::string ToString() const;
};

class ScenarioRunner {
 public:
  ScenarioRunner();

  // Runs one scenario's battery. Never throws for scenario-level failures —
  // they land in the result's violations.
  ScenarioResult Run(const Scenario& scenario);

  // Runs every scenario, aggregating.
  ScenarioSummary RunAll(const std::vector<Scenario>& scenarios);

 private:
  void Expect(bool condition, const std::string& what, ScenarioResult* out);

  // The clean-scenario extras: audit concatenation, table-backed vs live,
  // cold vs warm cache.
  void RunCleanBattery(const Scenario& scenario, const CheckJobSpec& spec,
                       const std::string& reference_report, ScenarioResult* out);

  // Shared across scenarios on purpose: the cache replay check then also
  // covers cross-scenario key collisions (thread count and deadline are
  // excluded from the cache key by design, so sibling scenarios may
  // legitimately warm each other — the bytes must still match).
  CheckService service_;
};

}  // namespace secpol

#endif  // SECPOL_SRC_SCENARIO_RUNNER_H_
