// Delta-minimization of fuzzer witnesses.
//
// A raw disagreement witness from the fuzzer is a whole generated program —
// dozens of statements, most irrelevant to the disagreement. MinimizeWitness
// greedily shrinks the program while a caller-supplied predicate ("the
// disagreement still reproduces") keeps holding, using structure-aware
// edits on the flowlang AST rather than textual ddmin:
//
//   * delete a statement;
//   * replace an if (or a while) by one of its arms, spliced in place;
//   * replace an assignment's expression by one of its operands or by 0;
//   * replace an if/while condition by 0.
//
// Every edit strictly shrinks the (statement, expression-node) size, so the
// greedy fixpoint terminates; the candidate budget bounds worst-case cost.
// The predicate is the sole judge of semantic validity — fuzzer predicates
// bundle totality and reproduction checks — and the minimizer guarantees the
// structural validity (declared variables, well-formed AST) of every
// candidate by construction.

#ifndef SECPOL_SRC_SCENARIO_MINIMIZE_H_
#define SECPOL_SRC_SCENARIO_MINIMIZE_H_

#include <functional>

#include "src/flowlang/ast.h"

namespace secpol {

// True iff the candidate still exhibits the property being minimized.
using WitnessPredicate = std::function<bool(const SourceProgram&)>;

struct MinimizeOptions {
  // Total predicate evaluations allowed; the minimizer stops (keeping its
  // best program so far) when the budget runs out.
  int max_candidates = 4096;
};

struct MinimizeStats {
  int candidates_tried = 0;
  int candidates_accepted = 0;
  int initial_size = 0;  // CountStmts + expression nodes, before
  int final_size = 0;    // and after
};

// Statements in the program, recursively.
int CountStmts(const SourceProgram& program);

// Statements plus expression nodes: the size measure every edit strictly
// decreases.
int ProgramSize(const SourceProgram& program);

// Requires predicate(program) — minimizing a non-witness is a caller bug —
// and returns a (possibly identical) program on which the predicate still
// holds and no single remaining edit can shrink further within budget.
SourceProgram MinimizeWitness(const SourceProgram& program, const WitnessPredicate& predicate,
                              const MinimizeOptions& options = MinimizeOptions(),
                              MinimizeStats* stats = nullptr);

}  // namespace secpol

#endif  // SECPOL_SRC_SCENARIO_MINIMIZE_H_
