#include "src/server/protocol.h"

#include <utility>

#include "src/server/socket.h"

namespace secpol {

namespace {

struct CodeName {
  ServeErrorCode code;
  const char* name;
};

constexpr CodeName kCodeNames[] = {
    {ServeErrorCode::kMalformedFrame, "malformed-frame"},
    {ServeErrorCode::kOversizedFrame, "oversized-frame"},
    {ServeErrorCode::kBadJson, "bad-json"},
    {ServeErrorCode::kTooDeep, "too-deep"},
    {ServeErrorCode::kBadRequest, "bad-request"},
    {ServeErrorCode::kOverQuota, "over-quota"},
    {ServeErrorCode::kShuttingDown, "shutting-down"},
};

}  // namespace

std::string ServeErrorCodeName(ServeErrorCode code) {
  for (const CodeName& entry : kCodeNames) {
    if (entry.code == code) {
      return entry.name;
    }
  }
  return "?";
}

std::optional<ServeErrorCode> ParseServeErrorCode(const std::string& name) {
  for (const CodeName& entry : kCodeNames) {
    if (name == entry.name) {
      return entry.code;
    }
  }
  return std::nullopt;
}

bool ServeErrorClosesConnection(ServeErrorCode code) {
  switch (code) {
    case ServeErrorCode::kMalformedFrame:
    case ServeErrorCode::kOversizedFrame:
    case ServeErrorCode::kBadJson:
    case ServeErrorCode::kTooDeep:
      return true;
    case ServeErrorCode::kBadRequest:
    case ServeErrorCode::kOverQuota:
    case ServeErrorCode::kShuttingDown:
      return false;
  }
  return true;
}

int ServeErrorExitCode(ServeErrorCode code) {
  switch (code) {
    // Admission-class rejections share batch's "rejected" code: the job was
    // understood and refused, exactly like an over-bound batch submission.
    case ServeErrorCode::kOverQuota:
    case ServeErrorCode::kShuttingDown:
      return 5;
    case ServeErrorCode::kMalformedFrame:
    case ServeErrorCode::kOversizedFrame:
    case ServeErrorCode::kBadJson:
    case ServeErrorCode::kTooDeep:
    case ServeErrorCode::kBadRequest:
      return kServeProtocolExitCode;
  }
  return kServeProtocolExitCode;
}

std::string EncodeFrameText(const std::string& payload_text) {
  const std::size_t size = payload_text.size();
  std::string frame;
  frame.reserve(kFrameHeaderBytes + size);
  frame.push_back(static_cast<char>((size >> 24) & 0xFF));
  frame.push_back(static_cast<char>((size >> 16) & 0xFF));
  frame.push_back(static_cast<char>((size >> 8) & 0xFF));
  frame.push_back(static_cast<char>(size & 0xFF));
  frame += payload_text;
  return frame;
}

std::string EncodeFrame(const Json& payload) { return EncodeFrameText(payload.Serialize()); }

FrameReadStatus ReadFrameText(int fd, std::size_t max_payload_bytes, std::string* payload,
                              std::string* error) {
  unsigned char header[kFrameHeaderBytes];
  switch (RecvExact(fd, header, sizeof(header), error)) {
    case IoStatus::kOk:
      break;
    case IoStatus::kEof:
      return FrameReadStatus::kEof;
    case IoStatus::kError:
      // A partial header is a framing violation, not a transport glitch.
      return error != nullptr && error->rfind("peer closed mid-frame", 0) == 0
                 ? FrameReadStatus::kMalformed
                 : FrameReadStatus::kTransport;
  }
  const std::size_t size = (static_cast<std::size_t>(header[0]) << 24) |
                           (static_cast<std::size_t>(header[1]) << 16) |
                           (static_cast<std::size_t>(header[2]) << 8) |
                           static_cast<std::size_t>(header[3]);
  if (size == 0) {
    if (error != nullptr) {
      *error = "zero-length frame";
    }
    return FrameReadStatus::kMalformed;
  }
  if (size > max_payload_bytes || size > kFrameAbsoluteMaxBytes) {
    if (error != nullptr) {
      *error = "declared frame length " + std::to_string(size) + " exceeds the " +
               std::to_string(max_payload_bytes) + "-byte cap";
    }
    return FrameReadStatus::kOversized;
  }
  payload->resize(size);
  switch (RecvExact(fd, payload->data(), size, error)) {
    case IoStatus::kOk:
      return FrameReadStatus::kFrame;
    case IoStatus::kEof:
    case IoStatus::kError:
      if (error != nullptr && error->empty()) {
        *error = "payload truncated";
      }
      return FrameReadStatus::kMalformed;
  }
  return FrameReadStatus::kTransport;
}

bool WriteFrame(int fd, const Json& payload, std::string* error) {
  const std::string frame = EncodeFrame(payload);
  return SendAll(fd, frame.data(), frame.size(), error);
}

Result<ServeRequest> ParseServeRequest(const Json& payload) {
  if (!payload.is_object()) {
    return Error{"request must be a JSON object"};
  }
  const Json* type = payload.Find("type");
  if (type == nullptr || !type->is_string()) {
    return Error{"request.type: expected a string"};
  }
  ServeRequest request;
  const std::string& kind = type->AsString();
  if (kind == "submit") {
    request.kind = ServeRequestKind::kSubmit;
    for (const auto& [key, value] : payload.Members()) {
      if (key != "type" && key != "job") {
        return Error{"submit: unknown member '" + key + "'"};
      }
    }
    const Json* job = payload.Find("job");
    if (job == nullptr || !job->is_object()) {
      return Error{"submit.job: expected a job object"};
    }
    request.job = *job;
    return request;
  }
  if (kind == "stats") {
    request.kind = ServeRequestKind::kStats;
    for (const auto& [key, value] : payload.Members()) {
      if (key != "type") {
        return Error{"stats: unknown member '" + key + "'"};
      }
    }
    return request;
  }
  if (kind == "reload") {
    request.kind = ServeRequestKind::kReload;
    for (const auto& [key, value] : payload.Members()) {
      if (key != "type" && key != "defaults" && key != "quotas") {
        return Error{"reload: unknown member '" + key + "'"};
      }
    }
    if (const Json* defaults = payload.Find("defaults"); defaults != nullptr) {
      if (!defaults->is_object()) {
        return Error{"reload.defaults: expected an object"};
      }
      request.defaults = *defaults;
    }
    if (const Json* quotas = payload.Find("quotas"); quotas != nullptr) {
      if (!quotas->is_object()) {
        return Error{"reload.quotas: expected an object"};
      }
      request.quotas = *quotas;
    }
    if (request.defaults.is_null() && request.quotas.is_null()) {
      return Error{"reload: needs \"defaults\" and/or \"quotas\""};
    }
    return request;
  }
  if (kind == "ping") {
    request.kind = ServeRequestKind::kPing;
    for (const auto& [key, value] : payload.Members()) {
      if (key != "type") {
        return Error{"ping: unknown member '" + key + "'"};
      }
    }
    return request;
  }
  return Error{"unknown request type '" + kind + "'"};
}

Json MakeErrorFrame(ServeErrorCode code, const std::string& message, const std::string& id) {
  Json frame = Json::MakeObject();
  frame.Set("type", Json::MakeString("error"));
  frame.Set("code", Json::MakeString(ServeErrorCodeName(code)));
  frame.Set("message", Json::MakeString(message));
  if (!id.empty()) {
    frame.Set("id", Json::MakeString(id));
  }
  return frame;
}

Json MakeAcceptedFrame(const std::string& id, std::uint64_t seq, std::uint64_t epoch) {
  Json frame = Json::MakeObject();
  frame.Set("type", Json::MakeString("accepted"));
  frame.Set("id", Json::MakeString(id));
  frame.Set("seq", Json::MakeInt(static_cast<std::int64_t>(seq)));
  frame.Set("epoch", Json::MakeInt(static_cast<std::int64_t>(epoch)));
  return frame;
}

Json MakeResultFrame(const std::string& id, std::uint64_t seq, std::uint64_t epoch, Json job) {
  Json frame = Json::MakeObject();
  frame.Set("type", Json::MakeString("result"));
  frame.Set("id", Json::MakeString(id));
  frame.Set("seq", Json::MakeInt(static_cast<std::int64_t>(seq)));
  frame.Set("epoch", Json::MakeInt(static_cast<std::int64_t>(epoch)));
  frame.Set("job", std::move(job));
  return frame;
}

Json MakePongFrame(std::uint64_t epoch) {
  Json frame = Json::MakeObject();
  frame.Set("type", Json::MakeString("pong"));
  frame.Set("epoch", Json::MakeInt(static_cast<std::int64_t>(epoch)));
  return frame;
}

Json MakeReloadOkFrame(std::uint64_t epoch) {
  Json frame = Json::MakeObject();
  frame.Set("type", Json::MakeString("reload-ok"));
  frame.Set("epoch", Json::MakeInt(static_cast<std::int64_t>(epoch)));
  return frame;
}

Json MakeStatsFrame(Json server, Json metrics) {
  Json frame = Json::MakeObject();
  frame.Set("type", Json::MakeString("stats"));
  frame.Set("server", std::move(server));
  frame.Set("metrics", std::move(metrics));
  return frame;
}

}  // namespace secpol
