#include "src/server/server.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/service/manifest.h"
#include "src/util/thread_pool.h"

namespace secpol {

// One client connection: its descriptor, its reader thread, and the state
// the admission layer charges against it. The write mutex serializes result
// frames (from workers) with control responses (from the reader thread).
struct CheckServer::Session {
  Fd fd;
  std::uint64_t id = 0;
  std::thread thread;

  std::mutex write_mu;
  bool write_broken = false;

  // Queued + running submissions charged to this connection.
  std::atomic<int> inflight{0};
  // Per-client submission index; the fairness comparator's second key.
  std::uint64_t client_seq = 0;  // touched only by the reader thread
  std::atomic<bool> open{true};

  bool SendFrame(const Json& frame) {
    std::lock_guard<std::mutex> lock(write_mu);
    if (write_broken) {
      return false;
    }
    std::string error;
    if (!WriteFrame(fd.get(), frame, &error)) {
      // A dead (or non-reading — the send timeout fires) peer is not worth
      // more than remembering: its queued results are dropped (the cache
      // already kept the work), and shutting the descriptor down kicks the
      // reader thread out of recv so the session closes promptly instead of
      // accumulating doomed writes.
      write_broken = true;
      fd.ShutdownBoth();
      return false;
    }
    return true;
  }
};

struct CheckServer::QueuedJob {
  CheckJobSpec spec;
  // The policy snapshot the job was admitted under. Reload swaps the
  // server's pointer, never this one — that is the whole no-re-policy
  // guarantee.
  std::shared_ptr<const ServerPolicy> policy;
  std::weak_ptr<Session> session;
  std::uint64_t seq = 0;
  std::uint64_t client_seq = 0;
  int priority = 0;
};

namespace {

// Heap precedence: priority desc, then per-client seq asc (clients at equal
// priority interleave round-robin-ish), then global arrival asc. Total
// order (seq is unique), so dispatch is deterministic given arrival order.
bool LowerPrecedence(const std::unique_ptr<CheckServer::QueuedJob>& a,
                     const std::unique_ptr<CheckServer::QueuedJob>& b) {
  if (a->priority != b->priority) {
    return a->priority < b->priority;
  }
  if (a->client_seq != b->client_seq) {
    return a->client_seq > b->client_seq;
  }
  return a->seq > b->seq;
}

std::string JobIdOf(const Json& job) {
  const Json* id = job.Find("id");
  return id != nullptr && id->is_string() ? id->AsString() : "";
}

}  // namespace

CheckServer::CheckServer(ServerConfig config)
    : config_(std::move(config)), cache_(config_.cache_capacity, config_.cache_shards) {
  obs_ = config_.obs;
  if (obs_.metrics == nullptr) {
    own_metrics_ = std::make_unique<MetricsRegistry>();
    obs_.metrics = own_metrics_.get();
  }
  cache_.AttachObs(obs_);
  job_wall_us_ = obs_.metrics->GetHistogram("server.job_wall_us");

  auto policy = std::make_shared<ServerPolicy>();
  policy->epoch = 1;
  policy->defaults = config_.defaults;
  policy->quotas = config_.quotas;
  policy->quotas.max_frame_bytes =
      std::min(policy->quotas.max_frame_bytes, kFrameAbsoluteMaxBytes);
  policy_ = std::move(policy);
}

CheckServer::~CheckServer() { Shutdown(); }

Result<bool> CheckServer::Start() {
  if (started_.exchange(true)) {
    return Error{"server already started"};
  }
  if (config_.unix_path.empty() && config_.tcp_port < 0) {
    return Error{"serve: no listener configured (need a unix path and/or a tcp port)"};
  }
  if (!config_.unix_path.empty()) {
    Result<Fd> listener = ListenUnix(config_.unix_path);
    if (!listener.ok()) {
      return listener.error();
    }
    unix_listener_ = std::move(listener).value();
  }
  if (config_.tcp_port >= 0) {
    Result<Fd> listener = ListenTcp(config_.tcp_port, &bound_tcp_port_);
    if (!listener.ok()) {
      return listener.error();
    }
    tcp_listener_ = std::move(listener).value();
  }

  const int workers = config_.concurrency == 0 ? ThreadPool::HardwareThreads()
                                               : std::max(config_.concurrency, 1);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  if (unix_listener_.valid()) {
    accept_threads_.emplace_back([this] { AcceptLoop(unix_listener_); });
  }
  if (tcp_listener_.valid()) {
    accept_threads_.emplace_back([this] { AcceptLoop(tcp_listener_); });
  }
  return true;
}

void CheckServer::RequestDrain() { draining_.store(true, std::memory_order_relaxed); }

void CheckServer::Shutdown() {
  if (stopped_.exchange(true)) {
    return;
  }
  RequestDrain();

  // Wake the accept threads; no new connections from here on.
  unix_listener_.ShutdownBoth();
  tcp_listener_.ShutdownBoth();
  for (std::thread& thread : accept_threads_) {
    thread.join();
  }
  accept_threads_.clear();

  // Drain barrier: every reserved/queued/running job completes and its
  // result frame is sent (or its client found dead) before workers stop.
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    drained_cv_.wait(lock, [this] { return active_jobs_ == 0; });
    queue_closed_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& thread : workers_) {
    thread.join();
  }
  workers_.clear();

  // Wake any reader blocked in recv, then join the session threads.
  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions.swap(sessions_);
  }
  for (const std::shared_ptr<Session>& session : sessions) {
    session->fd.ShutdownBoth();
  }
  for (const std::shared_ptr<Session>& session : sessions) {
    if (session->thread.joinable()) {
      session->thread.join();
    }
  }

  unix_listener_.Reset();
  tcp_listener_.Reset();
  if (!config_.unix_path.empty()) {
    ::unlink(config_.unix_path.c_str());
  }
}

std::shared_ptr<const ServerPolicy> CheckServer::policy() const {
  std::lock_guard<std::mutex> lock(policy_mu_);
  return policy_;
}

Result<std::uint64_t> CheckServer::Reload(const Json& defaults_patch, const Json& quotas_patch) {
  std::lock_guard<std::mutex> lock(policy_mu_);
  ServerPolicy next = *policy_;
  if (defaults_patch.is_object()) {
    Result<bool> applied = ApplyManifestJobFields(defaults_patch, "reload.defaults",
                                                  &next.defaults,
                                                  JobFieldSource::kUntrustedSubmission);
    if (!applied.ok()) {
      return applied.error();
    }
  }
  if (quotas_patch.is_object()) {
    for (const auto& [key, value] : quotas_patch.Members()) {
      if (key != "max_inflight_per_client" && key != "max_frame_bytes" &&
          key != "max_json_depth") {
        return Error{"reload.quotas: unknown key '" + key + "'"};
      }
      if (!value.is_int()) {
        return Error{"reload.quotas." + key + ": expected an integer"};
      }
    }
    if (const Json* inflight = quotas_patch.Find("max_inflight_per_client");
        inflight != nullptr) {
      if (inflight->AsInt() < 1) {
        return Error{"reload.quotas.max_inflight_per_client: must be >= 1"};
      }
      next.quotas.max_inflight_per_client = static_cast<int>(inflight->AsInt());
    }
    if (const Json* bytes = quotas_patch.Find("max_frame_bytes"); bytes != nullptr) {
      if (bytes->AsInt() < 1 ||
          static_cast<std::size_t>(bytes->AsInt()) > kFrameAbsoluteMaxBytes) {
        return Error{"reload.quotas.max_frame_bytes: must be in [1, " +
                     std::to_string(kFrameAbsoluteMaxBytes) + "]"};
      }
      next.quotas.max_frame_bytes = static_cast<std::size_t>(bytes->AsInt());
    }
    if (const Json* depth = quotas_patch.Find("max_json_depth"); depth != nullptr) {
      if (depth->AsInt() < 0) {
        return Error{"reload.quotas.max_json_depth: must be >= 0 (0 = unlimited)"};
      }
      next.quotas.max_json_depth = static_cast<int>(depth->AsInt());
    }
  }
  next.epoch = policy_->epoch + 1;
  policy_ = std::make_shared<const ServerPolicy>(std::move(next));
  counters_.reloads.fetch_add(1, std::memory_order_relaxed);
  return policy_->epoch;
}

Json CheckServer::StatsJson() const {
  const auto load = [](const std::atomic<std::uint64_t>& counter) {
    return Json::MakeInt(static_cast<std::int64_t>(counter.load(std::memory_order_relaxed)));
  };
  Json server = Json::MakeObject();
  {
    std::lock_guard<std::mutex> lock(policy_mu_);
    server.Set("epoch", Json::MakeInt(static_cast<std::int64_t>(policy_->epoch)));
  }
  server.Set("draining", Json::MakeBool(draining()));

  Json connections = Json::MakeObject();
  connections.Set("accepted", load(counters_.connections_accepted));
  connections.Set("active", load(counters_.connections_active));
  server.Set("connections", std::move(connections));

  Json jobs = Json::MakeObject();
  jobs.Set("submitted", load(counters_.submitted));
  jobs.Set("admitted", load(counters_.admitted));
  jobs.Set("completed", load(counters_.completed));
  jobs.Set("invalid", load(counters_.invalid));
  jobs.Set("deadline_exceeded", load(counters_.deadline_exceeded));
  jobs.Set("aborted", load(counters_.aborted));
  jobs.Set("cache_hits", load(counters_.cache_hits));
  jobs.Set("executed", load(counters_.executed));
  jobs.Set("rejected_quota", load(counters_.rejected_quota));
  jobs.Set("rejected_draining", load(counters_.rejected_draining));
  jobs.Set("protocol_errors", load(counters_.protocol_errors));
  server.Set("jobs", std::move(jobs));

  const CacheStats cache_stats = cache_.Stats();
  Json cache = Json::MakeObject();
  cache.Set("hits", Json::MakeInt(static_cast<std::int64_t>(cache_stats.hits)));
  cache.Set("misses", Json::MakeInt(static_cast<std::int64_t>(cache_stats.misses)));
  cache.Set("insertions", Json::MakeInt(static_cast<std::int64_t>(cache_stats.insertions)));
  cache.Set("evictions", Json::MakeInt(static_cast<std::int64_t>(cache_stats.evictions)));
  cache.Set("entries", Json::MakeInt(static_cast<std::int64_t>(cache_stats.entries)));
  server.Set("cache", std::move(cache));

  // The class-sweep representative memo (DESIGN.md §14): how much of the
  // daemon's "class"-mode work was answered from remembered representative
  // runs. All zeros until a client submits a job with "sweep_mode": "class".
  Json class_memo = Json::MakeObject();
  class_memo.Set("entries", Json::MakeInt(static_cast<std::int64_t>(class_memo_.size())));
  class_memo.Set("hits", Json::MakeInt(static_cast<std::int64_t>(class_memo_.hits())));
  class_memo.Set("misses", Json::MakeInt(static_cast<std::int64_t>(class_memo_.misses())));
  class_memo.Set("evictions",
                 Json::MakeInt(static_cast<std::int64_t>(class_memo_.evictions())));
  server.Set("class_memo", std::move(class_memo));

  server.Set("reloads", load(counters_.reloads));
  return server;
}

Json CheckServer::MetricsJson() const { return obs_.metrics->Snapshot(); }

void CheckServer::AcceptLoop(const Fd& listener) {
  while (true) {
    Fd connection;
    std::string error;
    const IoStatus status = Accept(listener, &connection, &error);
    if (status == IoStatus::kEof) {
      return;  // listener shut down
    }
    if (status == IoStatus::kError) {
      if (stopped_.load(std::memory_order_relaxed)) {
        return;
      }
      continue;  // one failed accept must not kill the daemon
    }
    if (config_.send_timeout_ms > 0) {
      SetSendTimeoutMs(connection, config_.send_timeout_ms);
    }
    auto session = std::make_shared<Session>();
    session->fd = std::move(connection);
    session->id = next_session_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    counters_.connections_active.fetch_add(1, std::memory_order_relaxed);
    // The thread is stored before the session is published: once another
    // accept thread can see this session in sessions_, its thread member is
    // immutable, so ReapClosedSessionsLocked never races the assignment
    // (and can never reap a not-yet-joinable thread).
    session->thread = std::thread([this, session] { ServeSession(session); });
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      ReapClosedSessionsLocked();
      sessions_.push_back(session);
    }
  }
}

void CheckServer::ReapClosedSessionsLocked() {
  auto end = sessions_.end();
  for (auto it = sessions_.begin(); it != end;) {
    if (!(*it)->open.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) {
        (*it)->thread.join();
      }
      --end;
      std::iter_swap(it, end);
    } else {
      ++it;
    }
  }
  sessions_.erase(end, sessions_.end());
}

void CheckServer::ServeSession(const std::shared_ptr<Session>& session) {
  while (true) {
    const std::shared_ptr<const ServerPolicy> policy = this->policy();
    std::string payload;
    std::string error;
    const FrameReadStatus status =
        ReadFrameText(session->fd.get(), policy->quotas.max_frame_bytes, &payload, &error);
    if (status == FrameReadStatus::kEof || status == FrameReadStatus::kTransport) {
      break;
    }
    if (status == FrameReadStatus::kMalformed) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      session->SendFrame(MakeErrorFrame(ServeErrorCode::kMalformedFrame, error));
      break;
    }
    if (status == FrameReadStatus::kOversized) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      session->SendFrame(MakeErrorFrame(ServeErrorCode::kOversizedFrame, error));
      break;
    }

    Json::Limits limits;
    limits.max_depth = policy->quotas.max_json_depth;
    limits.max_bytes = 0;  // framing already bounded the byte count
    Result<Json> document = Json::Parse(payload, limits);
    if (!document.ok()) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      const ServeErrorCode code = ClassifyJsonLimit(document.error()) == JsonLimitViolation::kTooDeep
                                      ? ServeErrorCode::kTooDeep
                                      : ServeErrorCode::kBadJson;
      session->SendFrame(MakeErrorFrame(code, document.error().ToString()));
      break;
    }

    Result<ServeRequest> request = ParseServeRequest(document.value());
    if (!request.ok()) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      session->SendFrame(
          MakeErrorFrame(ServeErrorCode::kBadRequest, request.error().message));
      continue;  // the stream is intact; only this request was bad
    }

    switch (request.value().kind) {
      case ServeRequestKind::kPing:
        session->SendFrame(MakePongFrame(policy->epoch));
        break;
      case ServeRequestKind::kStats:
        session->SendFrame(MakeStatsFrame(StatsJson(), MetricsJson()));
        break;
      case ServeRequestKind::kReload: {
        Result<std::uint64_t> epoch =
            Reload(request.value().defaults, request.value().quotas);
        if (!epoch.ok()) {
          counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
          session->SendFrame(
              MakeErrorFrame(ServeErrorCode::kBadRequest, epoch.error().message));
        } else {
          session->SendFrame(MakeReloadOkFrame(epoch.value()));
        }
        break;
      }
      case ServeRequestKind::kSubmit:
        HandleSubmit(session, policy, request.value().job);
        break;
    }
  }

  session->fd.ShutdownBoth();
  counters_.connections_active.fetch_sub(1, std::memory_order_relaxed);
  session->open.store(false, std::memory_order_release);
}

void CheckServer::HandleSubmit(const std::shared_ptr<Session>& session,
                               const std::shared_ptr<const ServerPolicy>& policy,
                               const Json& job) {
  counters_.submitted.fetch_add(1, std::memory_order_relaxed);
  const std::string frame_id = JobIdOf(job);

  // "program_file" would have the daemon open a client-chosen path with its
  // own privileges — a filesystem read (and existence probe) primitive for
  // anyone on the socket. Refused at the protocol layer, before admission;
  // ApplyManifestJobFields rejects it again below as defense in depth.
  if (job.Find("program_file") != nullptr) {
    counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    session->SendFrame(MakeErrorFrame(
        ServeErrorCode::kBadRequest,
        "submit.job.program_file: server-side file loading is not available for "
        "socket submissions; inline the source via 'program'",
        frame_id));
    return;
  }

  // Quota first: a greedy client is told "over quota" even while the daemon
  // drains, because that is the error it can act on.
  if (session->inflight.load(std::memory_order_relaxed) >=
      policy->quotas.max_inflight_per_client) {
    counters_.rejected_quota.fetch_add(1, std::memory_order_relaxed);
    session->SendFrame(MakeErrorFrame(
        ServeErrorCode::kOverQuota,
        "client has " + std::to_string(session->inflight.load(std::memory_order_relaxed)) +
            " submissions in flight (quota " +
            std::to_string(policy->quotas.max_inflight_per_client) + ")",
        frame_id));
    return;
  }

  // Reserve an admission slot atomically with the drain check: once the
  // drain barrier observed active_jobs_ == 0, no submission can slip in.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (draining()) {
      counters_.rejected_draining.fetch_add(1, std::memory_order_relaxed);
      session->SendFrame(MakeErrorFrame(ServeErrorCode::kShuttingDown,
                                        "daemon is draining; no new submissions", frame_id));
      return;
    }
    ++active_jobs_;
  }
  session->inflight.fetch_add(1, std::memory_order_relaxed);

  const std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t client_seq = ++session->client_seq;

  CheckJobSpec spec = policy->defaults;
  Result<bool> applied =
      ApplyManifestJobFields(job, "submit.job", &spec, JobFieldSource::kUntrustedSubmission);
  if (spec.id.empty()) {
    spec.id = "job-" + std::to_string(seq);
  }
  session->SendFrame(MakeAcceptedFrame(spec.id, seq, policy->epoch));

  if (!applied.ok()) {
    // Manifest-grade strictness, batch-grade shape: a job whose fields do
    // not validate is answered with the same kInvalid result object a batch
    // report would carry, not a protocol error.
    counters_.invalid.fetch_add(1, std::memory_order_relaxed);
    JobResult invalid;
    invalid.id = spec.id;
    invalid.status = JobStatus::kInvalid;
    invalid.exit_code = 1;
    invalid.error = applied.error().message;
    session->SendFrame(MakeResultFrame(spec.id, seq, policy->epoch, JobResultToJson(invalid)));
    session->inflight.fetch_sub(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (--active_jobs_ == 0) {
      drained_cv_.notify_all();
    }
    return;
  }

  counters_.admitted.fetch_add(1, std::memory_order_relaxed);
  auto queued = std::make_unique<QueuedJob>();
  queued->spec = std::move(spec);
  queued->policy = policy;
  queued->session = session;
  queued->seq = seq;
  queued->client_seq = client_seq;
  queued->priority = queued->spec.priority;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(std::move(queued));
    std::push_heap(queue_.begin(), queue_.end(), LowerPrecedence);
  }
  queue_cv_.notify_one();
}

void CheckServer::WorkerLoop() {
  while (true) {
    std::unique_ptr<QueuedJob> job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return queue_closed_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // closed and drained
      }
      std::pop_heap(queue_.begin(), queue_.end(), LowerPrecedence);
      job = std::move(queue_.back());
      queue_.pop_back();
    }

    const auto start = std::chrono::steady_clock::now();
    const JobResult result = RunServerJob(job->spec);
    job_wall_us_->Record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));

    if (const std::shared_ptr<Session> session = job->session.lock()) {
      session->SendFrame(
          MakeResultFrame(result.id, job->seq, job->policy->epoch, JobResultToJson(result)));
      session->inflight.fetch_sub(1, std::memory_order_relaxed);
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (--active_jobs_ == 0) {
        drained_cv_.notify_all();
      }
    }
  }
}

JobResult CheckServer::RunServerJob(const CheckJobSpec& spec) {
  Result<PreparedJob> prepared = PrepareJob(spec);
  if (!prepared.ok()) {
    counters_.invalid.fetch_add(1, std::memory_order_relaxed);
    JobResult invalid;
    invalid.id = spec.id;
    invalid.status = JobStatus::kInvalid;
    invalid.exit_code = 1;
    invalid.error = prepared.error().message;
    return invalid;
  }
  const PreparedJob& job = prepared.value();
  JobResult slot;
  if (std::optional<CachedResult> hit = cache_.Lookup(job.key); hit.has_value()) {
    counters_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    slot.id = spec.id;
    slot.status = JobStatus::kCompleted;
    slot.from_cache = true;
    slot.report = std::move(hit->report);
    slot.exit_code = hit->exit_code;
    slot.evaluated = hit->evaluated;
    slot.total = hit->total;
    slot.cache_key = job.key.ToHex();
  } else {
    slot = RunPreparedJob(spec, job, obs_, &class_memo_);
    counters_.executed.fetch_add(1, std::memory_order_relaxed);
    if (slot.status == JobStatus::kCompleted) {
      CachedResult value;
      value.report = slot.report;
      value.exit_code = slot.exit_code;
      value.evaluated = slot.evaluated;
      value.total = slot.total;
      cache_.Insert(job.key, std::move(value));
    }
  }
  switch (slot.status) {
    case JobStatus::kCompleted:
      counters_.completed.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobStatus::kDeadlineExceeded:
      counters_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobStatus::kAborted:
      counters_.aborted.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobStatus::kRejected:
    case JobStatus::kInvalid:
      break;
  }
  return slot;
}

}  // namespace secpol
