#include "src/server/client.h"

namespace secpol {

Result<ServeClient> ServeClient::ConnectUnixPath(const std::string& path) {
  Result<Fd> fd = ConnectUnix(path);
  if (!fd.ok()) {
    return fd.error();
  }
  return ServeClient(std::move(fd).value());
}

Result<ServeClient> ServeClient::ConnectTcpPort(int port) {
  Result<Fd> fd = ConnectTcp(port);
  if (!fd.ok()) {
    return fd.error();
  }
  return ServeClient(std::move(fd).value());
}

Result<bool> ServeClient::Send(const Json& frame) {
  std::string error;
  if (!WriteFrame(fd_.get(), frame, &error)) {
    return Error{"send: " + error};
  }
  return true;
}

Result<Json> ServeClient::Read() {
  std::string payload;
  std::string error;
  switch (ReadFrameText(fd_.get(), kFrameAbsoluteMaxBytes, &payload, &error)) {
    case FrameReadStatus::kFrame:
      break;
    case FrameReadStatus::kEof:
      return Error{"connection closed by server"};
    case FrameReadStatus::kMalformed:
    case FrameReadStatus::kOversized:
    case FrameReadStatus::kTransport:
      return Error{"read: " + (error.empty() ? std::string("frame error") : error)};
  }
  Result<Json> frame = Json::Parse(payload);
  if (!frame.ok()) {
    return Error{"server sent unparseable frame: " + frame.error().ToString()};
  }
  return frame;
}

Result<Json> ServeClient::Call(const Json& request) {
  Result<bool> sent = Send(request);
  if (!sent.ok()) {
    return sent.error();
  }
  return Read();
}

Result<Json> ServeClient::SubmitJob(const Json& job) {
  Json request = Json::MakeObject();
  request.Set("type", Json::MakeString("submit"));
  request.Set("job", job);
  Result<bool> sent = Send(request);
  if (!sent.ok()) {
    return sent.error();
  }
  while (true) {
    Result<Json> frame = Read();
    if (!frame.ok()) {
      return frame.error();
    }
    const Json* type = frame.value().Find("type");
    if (type == nullptr || !type->is_string()) {
      return Error{"server sent a frame without a type"};
    }
    if (type->AsString() == "accepted") {
      continue;  // progress, not the terminal frame
    }
    if (type->AsString() == "result" || type->AsString() == "error") {
      return frame;
    }
    return Error{"unexpected frame type '" + type->AsString() + "' for a submission"};
  }
}

Result<Json> ServeClient::Stats() {
  Json request = Json::MakeObject();
  request.Set("type", Json::MakeString("stats"));
  return Call(request);
}

Result<Json> ServeClient::Ping() {
  Json request = Json::MakeObject();
  request.Set("type", Json::MakeString("ping"));
  return Call(request);
}

Result<Json> ServeClient::Reload(const Json& defaults_patch, const Json& quotas_patch) {
  Json request = Json::MakeObject();
  request.Set("type", Json::MakeString("reload"));
  if (defaults_patch.is_object()) {
    request.Set("defaults", defaults_patch);
  }
  if (quotas_patch.is_object()) {
    request.Set("quotas", quotas_patch);
  }
  return Call(request);
}

int ServeClient::ExitCodeFor(const Json& terminal_frame) {
  const Json* type = terminal_frame.Find("type");
  if (type == nullptr || !type->is_string()) {
    return kServeProtocolExitCode;
  }
  if (type->AsString() == "result") {
    const Json* job = terminal_frame.Find("job");
    const Json* exit_code = job != nullptr ? job->Find("exit_code") : nullptr;
    return exit_code != nullptr && exit_code->is_int() ? static_cast<int>(exit_code->AsInt())
                                                       : kServeProtocolExitCode;
  }
  if (type->AsString() == "error") {
    const Json* code = terminal_frame.Find("code");
    if (code != nullptr && code->is_string()) {
      if (const std::optional<ServeErrorCode> parsed = ParseServeErrorCode(code->AsString());
          parsed.has_value()) {
        return ServeErrorExitCode(*parsed);
      }
    }
  }
  return kServeProtocolExitCode;
}

}  // namespace secpol
