// ServeClient: the client half of the serve protocol, shared by
// `secpol submit`, the scenario runner's daemon oracle, the fuzzer, and the
// tests. One blocking connection; requests go out as frames, responses come
// back as parsed JSON.

#ifndef SECPOL_SRC_SERVER_CLIENT_H_
#define SECPOL_SRC_SERVER_CLIENT_H_

#include <string>
#include <utility>

#include "src/server/protocol.h"
#include "src/server/socket.h"
#include "src/util/json.h"
#include "src/util/result.h"

namespace secpol {

class ServeClient {
 public:
  ServeClient() = default;
  explicit ServeClient(Fd fd) : fd_(std::move(fd)) {}

  static Result<ServeClient> ConnectUnixPath(const std::string& path);
  static Result<ServeClient> ConnectTcpPort(int port);

  bool valid() const { return fd_.valid(); }
  Fd& fd() { return fd_; }

  // One frame out / one frame in. Errors are transport-level ("connection
  // closed" when the server hung up); protocol error *frames* come back as
  // ordinary values — the caller inspects "type".
  Result<bool> Send(const Json& frame);
  Result<Json> Read();
  Result<Json> Call(const Json& request);

  // Submits one manifest-vocabulary job object and returns its terminal
  // frame: the "result" frame on success (skipping the "accepted" frame),
  // or the "error" frame the submission was refused with.
  Result<Json> SubmitJob(const Json& job);

  // Convenience wrappers over Call().
  Result<Json> Stats();
  Result<Json> Ping();
  Result<Json> Reload(const Json& defaults_patch, const Json& quotas_patch);

  // Maps a terminal frame to the `secpol submit` exit code: a result
  // frame's job exit_code, an error frame's ServeErrorExitCode, and the
  // protocol exit code for anything unrecognized.
  static int ExitCodeFor(const Json& terminal_frame);

 private:
  Fd fd_;
};

}  // namespace secpol

#endif  // SECPOL_SRC_SERVER_CLIENT_H_
