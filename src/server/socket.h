// Thin POSIX socket layer for the serve daemon: RAII descriptors, unix /
// loopback-TCP listeners and connectors, exact-count blocking IO, and a
// wakeable poll so blocking reader threads can be drained without signals.
//
// Scope is deliberately small and Linux-flavored (the container target):
// everything the protocol and server layers need, nothing more. All calls
// are blocking; shutdown is cooperative via WakePipe + ::shutdown() on the
// descriptor, never via thread cancellation.

#ifndef SECPOL_SRC_SERVER_SOCKET_H_
#define SECPOL_SRC_SERVER_SOCKET_H_

#include <cstddef>
#include <string>

#include "src/util/result.h"

namespace secpol {

// RAII file descriptor. Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Reset();

  // Half-close both directions: wakes any thread blocked in read()/accept()
  // on this descriptor without racing the eventual close().
  void ShutdownBoth() const;

 private:
  int fd_ = -1;
};

// Binds + listens on a unix-domain socket at `path` (unlinking a stale
// file first). Fails if `path` exceeds the sun_path limit (~107 bytes).
Result<Fd> ListenUnix(const std::string& path);

// Binds + listens on loopback TCP. `port` 0 picks an ephemeral port; the
// bound port is written to *bound_port either way. Ports outside
// [0, 65535] are an error, never a silent 16-bit truncation.
Result<Fd> ListenTcp(int port, int* bound_port);

Result<Fd> ConnectUnix(const std::string& path);
// Connects to loopback TCP. `port` must be in [1, 65535].
Result<Fd> ConnectTcp(int port);

// Bounds how long a blocking send may wait for socket-buffer space
// (SO_SNDTIMEO). With it set, a peer that stops reading makes SendAll fail
// within the timeout instead of pinning the writer thread forever.
bool SetSendTimeoutMs(const Fd& fd, int timeout_ms);

// Accepts one connection; blocks. kEof means the listener was shut down.
enum class IoStatus { kOk, kEof, kError };
IoStatus Accept(const Fd& listener, Fd* connection, std::string* error);

// Writes exactly `size` bytes (handles partial writes, suppresses SIGPIPE).
bool SendAll(int fd, const void* data, std::size_t size, std::string* error);

// Reads exactly `size` bytes. kEof only when the peer closed cleanly before
// the *first* byte; a mid-buffer close is kError (a truncated frame).
IoStatus RecvExact(int fd, void* data, std::size_t size, std::string* error);

// A short, collision-free socket path in the system temp directory:
// "<tmp>/secpol_<stem>_<pid>_<counter>.sock". sun_path caps at ~107 bytes,
// so long test-temp directories are unsafe for sockets; this helper is what
// tests and the scenario runner use instead.
std::string UniqueSocketPath(const std::string& stem);

}  // namespace secpol

#endif  // SECPOL_SRC_SERVER_SOCKET_H_
