#include "src/server/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace secpol {

namespace {

std::string Errno(const std::string& what) { return what + ": " + std::strerror(errno); }

// htons() would happily truncate 70000 to 4464; reject out-of-range ports
// instead of binding/connecting somewhere the caller never named.
Result<bool> CheckPortRange(int port, int min_port) {
  if (port < min_port || port > 65535) {
    return Error{"tcp port must be in [" + std::to_string(min_port) + ", 65535], got " +
                 std::to_string(port)};
  }
  return true;
}

}  // namespace

void Fd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Fd::ShutdownBoth() const {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

Result<Fd> ListenUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Error{"unix socket path must be 1.." + std::to_string(sizeof(addr.sun_path) - 1) +
                 " bytes, got " + std::to_string(path.size())};
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return Error{Errno("socket(AF_UNIX)")};
  }
  ::unlink(path.c_str());  // a stale socket file from a dead daemon
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Error{Errno("bind('" + path + "')")};
  }
  if (::listen(fd.get(), 64) != 0) {
    return Error{Errno("listen('" + path + "')")};
  }
  return fd;
}

Result<Fd> ListenTcp(int port, int* bound_port) {
  if (Result<bool> range = CheckPortRange(port, 0); !range.ok()) {
    return range.error();
  }
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return Error{Errno("socket(AF_INET)")};
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Error{Errno("bind(127.0.0.1:" + std::to_string(port) + ")")};
  }
  if (::listen(fd.get(), 64) != 0) {
    return Error{Errno("listen(tcp)")};
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return Error{Errno("getsockname")};
  }
  if (bound_port != nullptr) {
    *bound_port = static_cast<int>(ntohs(bound.sin_port));
  }
  return fd;
}

Result<Fd> ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Error{"unix socket path too long: " + path};
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return Error{Errno("socket(AF_UNIX)")};
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Error{Errno("connect('" + path + "')")};
  }
  return fd;
}

Result<Fd> ConnectTcp(int port) {
  if (Result<bool> range = CheckPortRange(port, 1); !range.ok()) {
    return range.error();
  }
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return Error{Errno("socket(AF_INET)")};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Error{Errno("connect(127.0.0.1:" + std::to_string(port) + ")")};
  }
  return fd;
}

IoStatus Accept(const Fd& listener, Fd* connection, std::string* error) {
  while (true) {
    const int fd = ::accept(listener.get(), nullptr, nullptr);
    if (fd >= 0) {
      *connection = Fd(fd);
      return IoStatus::kOk;
    }
    if (errno == EINTR) {
      continue;
    }
    // EINVAL / EBADF: the listener was shut down or closed — a clean stop.
    if (errno == EINVAL || errno == EBADF) {
      return IoStatus::kEof;
    }
    if (error != nullptr) {
      *error = Errno("accept");
    }
    return IoStatus::kError;
  }
}

bool SetSendTimeoutMs(const Fd& fd, int timeout_ms) {
  if (!fd.valid() || timeout_ms <= 0) {
    return false;
  }
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(timeout_ms % 1000) * 1000;
  return ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) == 0;
}

bool SendAll(int fd, const void* data, std::size_t size, std::string* error) {
  const char* cursor = static_cast<const char*>(data);
  std::size_t remaining = size;
  while (remaining > 0) {
    const ssize_t sent = ::send(fd, cursor, remaining, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (error != nullptr) {
        // EAGAIN here means SO_SNDTIMEO expired with the buffer still full:
        // the peer stopped reading, not a transient condition worth retrying.
        *error = errno == EAGAIN || errno == EWOULDBLOCK
                     ? "send: timed out waiting for the peer to read (" +
                           std::to_string(remaining) + "/" + std::to_string(size) +
                           " bytes unsent)"
                     : Errno("send");
      }
      return false;
    }
    cursor += sent;
    remaining -= static_cast<std::size_t>(sent);
  }
  return true;
}

IoStatus RecvExact(int fd, void* data, std::size_t size, std::string* error) {
  char* cursor = static_cast<char*>(data);
  std::size_t received = 0;
  while (received < size) {
    const ssize_t got = ::recv(fd, cursor + received, size - received, 0);
    if (got > 0) {
      received += static_cast<std::size_t>(got);
      continue;
    }
    if (got == 0) {
      if (received == 0) {
        return IoStatus::kEof;  // clean close at a frame boundary
      }
      if (error != nullptr) {
        *error = "peer closed mid-frame (" + std::to_string(received) + "/" +
                 std::to_string(size) + " bytes)";
      }
      return IoStatus::kError;
    }
    if (errno == EINTR) {
      continue;
    }
    if (error != nullptr) {
      *error = Errno("recv");
    }
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

std::string UniqueSocketPath(const std::string& stem) {
  static std::atomic<std::uint64_t> counter{0};
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = tmp != nullptr && *tmp != '\0' ? tmp : "/tmp";
  if (!dir.empty() && dir.back() == '/') {
    dir.pop_back();
  }
  std::string path = dir + "/secpol_" + stem + "_" + std::to_string(::getpid()) + "_" +
                     std::to_string(counter.fetch_add(1)) + ".sock";
  // sun_path caps at ~107 bytes; an exotic TMPDIR falls back to /tmp.
  if (path.size() >= 100) {
    path = "/tmp/secpol_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1)) + ".sock";
  }
  return path;
}

}  // namespace secpol
