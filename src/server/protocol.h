// The serve daemon's wire protocol: length-prefixed JSON frames.
//
// Every frame is a 4-byte big-endian payload length followed by exactly that
// many bytes of UTF-8 JSON (one object per frame). Requests and responses
// share the framing; the "type" member names the frame kind:
//
//   client -> server                  server -> client
//   {"type":"submit","job":{...}}     {"type":"accepted","id":...,"seq":N,"epoch":E}
//   {"type":"stats"}                  {"type":"result","id":...,"seq":N,"epoch":E,"job":{...}}
//   {"type":"reload","defaults":{..}, {"type":"stats","server":{...},"metrics":{...}}
//            "quotas":{...}}          {"type":"reload-ok","epoch":E}
//   {"type":"ping"}                   {"type":"pong","epoch":E}
//                                     {"type":"error","code":"...","message":"..."[,"id":...]}
//
// Submission payloads are untrusted input crossing a trust boundary (the
// paper's adversary supplies the computation); parsing is therefore strict
// and resource-bounded: a declared length over the frame cap, a JSON
// document over the nesting-depth cap, a syntax error, or an unknown /
// ill-typed request all fail closed with a typed error frame carrying a
// distinct ServeErrorCode — and framing-level failures additionally close
// the connection, because a stream whose framing lied cannot be resynced.
// Sibling connections are never affected.
//
// The "job" object of submit frames speaks the exact batch-manifest job
// vocabulary (src/service/manifest.h), so a manifest job, a CLI submit and
// a fuzzer-generated job all validate through one code path — with one
// deliberate exception: "program_file" names a server-side path and is
// refused (bad-request) for anything arriving over the socket, because a
// submission must never be able to read or probe the daemon's filesystem.
// Clients that want file-based programs load them client-side and inline
// the text via "program".

#ifndef SECPOL_SRC_SERVER_PROTOCOL_H_
#define SECPOL_SRC_SERVER_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "src/util/json.h"
#include "src/util/result.h"

namespace secpol {

inline constexpr std::size_t kFrameHeaderBytes = 4;

// Hard ceiling on the configurable per-frame payload cap (the config default
// is much smaller). Keeps a hostile 4-GiB length prefix from ever turning
// into an allocation.
inline constexpr std::size_t kFrameAbsoluteMaxBytes = 64u << 20;

// Typed protocol failures. Names (ServeErrorCodeName) are wire-contractual:
// they appear in error frames' "code" member and in client exit paths.
enum class ServeErrorCode {
  kMalformedFrame,  // framing broken: zero length, or a truncated payload
  kOversizedFrame,  // declared payload length exceeds the frame cap
  kBadJson,         // payload is not syntactically valid JSON
  kTooDeep,         // payload exceeds the JSON nesting-depth cap
  kBadRequest,      // valid JSON but not a valid request object
  kOverQuota,       // the client's admission quota is exhausted
  kShuttingDown,    // the daemon is draining; no new admissions
};

std::string ServeErrorCodeName(ServeErrorCode code);
std::optional<ServeErrorCode> ParseServeErrorCode(const std::string& name);

// Whether the connection is closed after answering with this error. Framing
// and parse-level failures are fatal to the stream; request-level ones
// (quota, drain, bad request object) leave it usable.
bool ServeErrorClosesConnection(ServeErrorCode code);

// The `secpol submit` exit-code vocabulary extends batch's per-job codes
// (0 ok .. 5 rejected) with one value for transport/protocol failures.
inline constexpr int kServeProtocolExitCode = 6;
int ServeErrorExitCode(ServeErrorCode code);

// --- Framing ---

// Serializes `payload` as one frame (header + compact JSON).
std::string EncodeFrame(const Json& payload);
std::string EncodeFrameText(const std::string& payload_text);

enum class FrameReadStatus {
  kFrame,      // *payload holds one complete payload
  kEof,        // peer closed cleanly at a frame boundary
  kMalformed,  // zero-length frame or payload truncated mid-frame
  kOversized,  // declared length exceeds max_payload_bytes
  kTransport,  // socket error
};

// Blocking read of one frame's payload bytes from `fd`.
FrameReadStatus ReadFrameText(int fd, std::size_t max_payload_bytes, std::string* payload,
                              std::string* error);

// Blocking write of one frame. False on transport failure.
bool WriteFrame(int fd, const Json& payload, std::string* error);

// --- Requests ---

enum class ServeRequestKind { kSubmit, kStats, kReload, kPing };

struct ServeRequest {
  ServeRequestKind kind = ServeRequestKind::kPing;
  Json job;       // kSubmit: the manifest-vocabulary job object
  Json defaults;  // kReload: job-field defaults patch (may be null)
  Json quotas;    // kReload: quota patch (may be null)
};

// Strictly validates a parsed frame payload as a request: top-level object,
// known "type", no unknown members, correctly typed fields. Failures are
// kBadRequest-grade errors with messages naming the offending member.
Result<ServeRequest> ParseServeRequest(const Json& payload);

// --- Response builders (the server side of the vocabulary) ---

Json MakeErrorFrame(ServeErrorCode code, const std::string& message, const std::string& id = "");
Json MakeAcceptedFrame(const std::string& id, std::uint64_t seq, std::uint64_t epoch);
Json MakeResultFrame(const std::string& id, std::uint64_t seq, std::uint64_t epoch, Json job);
Json MakePongFrame(std::uint64_t epoch);
Json MakeReloadOkFrame(std::uint64_t epoch);
Json MakeStatsFrame(Json server, Json metrics);

}  // namespace secpol

#endif  // SECPOL_SRC_SERVER_PROTOCOL_H_
