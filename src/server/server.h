// CheckServer: the persistent multi-tenant checking daemon behind
// `secpol serve`.
//
// Where CheckService runs one batch and exits, CheckServer keeps one
// content-addressed ResultCache and one MetricsRegistry hot across client
// connections: a job submitted over connection A warms the cache for the
// identical job over connection B, which is the paper's "checked once,
// reused by millions" economics made literal. The layering:
//
//   socket.h    — listeners (unix + loopback TCP), blocking IO
//   protocol.h  — frames, typed error codes, request validation
//   server.h    — sessions, admission quotas, fair queue, policy epochs
//
// Three contracts the tests lock:
//
//   Byte identity.  A job's result frame carries exactly the JSON object
//   that `secpol batch` would put in its report's "jobs" array for the same
//   spec (JobResultToJson — one renderer, two transports). Deterministic
//   fields (report, exit_code, status, evaluated, total, cache_key) are
//   byte-identical; wall_ms and from_cache depend on timing/cache state by
//   design.
//
//   Fail-closed isolation.  Every malformed frame, over-limit document or
//   over-quota submission is answered with a typed error frame; sibling
//   connections proceed untouched. A session can never wedge the daemon:
//   submissions cannot name server-side files ("program_file" is a
//   local-manifest-only key, rejected at the trust boundary), and a peer
//   that stops reading trips the per-connection send timeout and is
//   disconnected instead of blocking a worker or the drain barrier.
//
//   Epoch pinning.  The active policy (job-field defaults + quotas) is an
//   immutable snapshot swapped atomically by reload. A job is pinned to the
//   snapshot it was admitted under, so a reload never re-policies in-flight
//   work; the epoch number in accepted/result frames makes the pinning
//   observable. Graceful drain works the same way: admitted jobs complete,
//   new submissions get a typed shutting-down rejection.

#ifndef SECPOL_SRC_SERVER_SERVER_H_
#define SECPOL_SRC_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/mechanism/classes.h"
#include "src/obs/obs.h"
#include "src/server/protocol.h"
#include "src/server/socket.h"
#include "src/service/job.h"
#include "src/service/result_cache.h"
#include "src/util/json.h"
#include "src/util/result.h"

namespace secpol {

// Per-client admission and resource quotas. Part of the reloadable policy.
struct ServerQuotas {
  // Submissions a single connection may have queued or running at once;
  // the next one is answered with an over-quota error frame.
  int max_inflight_per_client = 8;
  // Per-frame payload cap (bytes). Clamped to kFrameAbsoluteMaxBytes.
  std::size_t max_frame_bytes = 1 << 20;
  // JSON nesting-depth cap for submitted documents.
  int max_json_depth = 64;
};

// The immutable, atomically-swapped unit of reload. Sessions read the
// current snapshot per request; submissions pin the snapshot they were
// admitted under for their whole lifetime.
struct ServerPolicy {
  std::uint64_t epoch = 1;
  CheckJobSpec defaults;  // base spec each submit's fields apply over
  ServerQuotas quotas;
};

struct ServerConfig {
  // Listeners: a unix-domain socket path, a loopback TCP port (0 picks an
  // ephemeral port), or both. At least one must be configured.
  std::string unix_path;
  int tcp_port = -1;  // -1 = no TCP listener

  int concurrency = 1;  // job worker threads (0 = hardware threads)
  std::size_t cache_capacity = 1024;
  int cache_shards = 8;

  // SO_SNDTIMEO applied to every accepted connection (0 disables). Bounds
  // how long a result/error frame write may wait on a peer that stopped
  // reading; past it the session is marked broken and disconnected, so a
  // stalled client can neither pin a worker thread nor stall the SIGTERM
  // drain barrier.
  int send_timeout_ms = 10000;

  CheckJobSpec defaults;
  ServerQuotas quotas;

  // Forwarded to every job's checker and the cache. When obs.metrics is
  // null the server owns a private registry (stats frames always have one).
  ObsContext obs;
};

class CheckServer {
 public:
  // Implementation types, public so file-local helpers (the queue
  // comparator) can name them; not part of the API surface.
  struct Session;
  struct QueuedJob;

  explicit CheckServer(ServerConfig config);
  ~CheckServer();  // implies Shutdown()

  CheckServer(const CheckServer&) = delete;
  CheckServer& operator=(const CheckServer&) = delete;

  // Binds the configured listeners and spawns accept + worker threads.
  Result<bool> Start();

  // Stops admitting new submissions (typed shutting-down rejections);
  // everything already admitted keeps running. Idempotent.
  void RequestDrain();
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  // Graceful stop: drain, wait for every admitted job to complete and its
  // result frame to be sent, then close listeners, sessions and workers.
  // Idempotent; the destructor calls it.
  void Shutdown();

  // The bound TCP port (meaningful after Start() with tcp_port >= 0).
  int tcp_port() const { return bound_tcp_port_; }
  const std::string& unix_path() const { return config_.unix_path; }

  // Current policy snapshot (what the next submission would be admitted
  // under).
  std::shared_ptr<const ServerPolicy> policy() const;

  // Atomically installs a new policy: current snapshot + defaults patch
  // (manifest job vocabulary) + quotas patch, epoch incremented. In-flight
  // jobs are untouched. Returns the new epoch.
  Result<std::uint64_t> Reload(const Json& defaults_patch, const Json& quotas_patch);

  // The "server" object of stats frames: epoch, connection and job
  // counters, cache stats, drain state.
  Json StatsJson() const;
  // MetricsRegistry::Snapshot() of the attached (or owned) registry.
  Json MetricsJson() const;

  ResultCache& cache() { return cache_; }
  MetricsRegistry& metrics() { return *obs_.metrics; }
  // The daemon-lifetime class-sweep representative memo: "class"-mode jobs
  // from every connection share it, which is what makes a re-submitted job
  // with a small program edit incremental across the wire.
  ClassMemo& class_memo() { return class_memo_; }

 private:
  void AcceptLoop(const Fd& listener);
  void ServeSession(const std::shared_ptr<Session>& session);
  void HandleSubmit(const std::shared_ptr<Session>& session,
                    const std::shared_ptr<const ServerPolicy>& policy, const Json& job);
  void WorkerLoop();
  JobResult RunServerJob(const CheckJobSpec& spec);
  void ReapClosedSessionsLocked();

  ServerConfig config_;
  std::unique_ptr<MetricsRegistry> own_metrics_;
  ObsContext obs_;
  ResultCache cache_;
  ClassMemo class_memo_;

  mutable std::mutex policy_mu_;
  std::shared_ptr<const ServerPolicy> policy_;

  Fd unix_listener_;
  Fd tcp_listener_;
  int bound_tcp_port_ = -1;
  std::vector<std::thread> accept_threads_;
  std::vector<std::thread> workers_;

  std::mutex sessions_mu_;
  std::vector<std::shared_ptr<Session>> sessions_;
  std::atomic<std::uint64_t> next_session_id_{0};

  // Fair job queue: ordered by (priority desc, per-client seq asc, global
  // arrival asc), so equal-priority clients interleave instead of the first
  // submitter monopolizing the workers.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::condition_variable drained_cv_;
  std::vector<std::unique_ptr<QueuedJob>> queue_;
  bool queue_closed_ = false;
  int active_jobs_ = 0;  // reserved + queued + running (drain barrier)
  std::atomic<std::uint64_t> next_seq_{0};

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};

  // Daemon-lifetime counters surfaced by StatsJson().
  struct Counters {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> connections_active{0};
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> admitted{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> invalid{0};
    std::atomic<std::uint64_t> deadline_exceeded{0};
    std::atomic<std::uint64_t> aborted{0};
    std::atomic<std::uint64_t> cache_hits{0};
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> rejected_quota{0};
    std::atomic<std::uint64_t> rejected_draining{0};
    std::atomic<std::uint64_t> protocol_errors{0};  // framing/json/bad-request
    std::atomic<std::uint64_t> reloads{0};
  };
  Counters counters_;
  Histogram* job_wall_us_ = nullptr;  // resolved once at construction
};

}  // namespace secpol

#endif  // SECPOL_SRC_SERVER_SERVER_H_
