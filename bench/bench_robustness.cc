// E14 — the price of fault tolerance: cancellation-poll overhead and
// deadline-bounded sweeps.
//
// PR "robustness runtime" threads a PollGate through every checker's hot
// loop: one countdown branch per grid point, with the clock read and token
// loads amortized over a 64-point stride. This bench quantifies that price
// two ways: (1) a raw grid sweep with and without a gate — the microscopic
// cost of the poll itself, which must stay within ~2% — and (2) the same
// CheckSoundness configurations BENCH_parallel.json records, so the
// trajectory across PRs stays comparable. It also measures how promptly a
// deadline-bounded sweep stops: wall time past the deadline is bounded by
// one poll stride, not by the remaining grid.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <string>

#include "bench/bench_util.h"
#include "src/corpus/generator.h"
#include "src/flowlang/lower.h"
#include "src/mechanism/check_options.h"
#include "src/mechanism/domain.h"
#include "src/mechanism/soundness.h"
#include "src/policy/policy.h"
#include "src/surveillance/surveillance.h"
#include "src/util/deadline.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace secpol {
namespace {

Program MakeProgram(int num_inputs) {
  CorpusConfig config;
  config.num_inputs = num_inputs;
  return Lower(GenerateProgram(config, 4242, "target"));
}

// A raw rank sweep over `domain`, accumulating a checksum so the loop cannot
// be optimized away. With `gated` the loop pays exactly what the checkers
// pay per point: one PollGate::ShouldStop().
std::uint64_t RawSweep(const InputDomain& domain, bool gated) {
  std::uint64_t sum = 0;
  PollGate gate((Deadline()));
  domain.ForEachRange(0, domain.size(), [&](std::uint64_t rank, InputView input) {
    if (gated && gate.ShouldStop()) {
      return false;
    }
    sum += rank ^ static_cast<std::uint64_t>(input[0]);
    return true;
  });
  return sum;
}

double SweepMillis(const InputDomain& domain, bool gated, int reps) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) {
    benchmark::DoNotOptimize(RawSweep(domain, gated));
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

// Interleaved min-of-trials: scheduling noise at this granularity dwarfs the
// effect being measured, and the minimum is the standard robust estimator.
double SweepMillisMin(const InputDomain& domain, bool gated, int reps, int trials) {
  double best = SweepMillis(domain, gated, reps);
  for (int t = 1; t < trials; ++t) {
    const double ms = SweepMillis(domain, gated, reps);
    if (ms < best) best = ms;
  }
  return best;
}

double CheckMillis(const ProtectionMechanism& mech, const SecurityPolicy& policy,
                   const InputDomain& domain, int threads) {
  const auto start = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(
      CheckSoundness(mech, policy, domain, Observability::kValueOnly,
                     CheckOptions::Threads(threads))
          .inputs_checked);
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

void PrintReproduction() {
  PrintHeader("E14: robustness runtime — poll overhead and bounded sweeps");
  std::printf("  host hardware threads: %d\n\n", ThreadPool::HardwareThreads());

  // (1) Microscopic poll cost on a raw sweep (no mechanism evaluation, the
  // worst case for relative overhead; real checkers amortize further).
  {
    const InputDomain domain = InputDomain::Range(4, 0, 9);  // 10^4 points
    const int reps = 100;
    const int trials = 7;
    SweepMillis(domain, false, 10);  // warm up
    SweepMillis(domain, true, 10);
    const double bare = SweepMillisMin(domain, false, reps, trials);
    const double gated = SweepMillisMin(domain, true, reps, trials);
    const double overhead = bare > 0 ? (gated - bare) / bare * 100.0 : 0.0;
    PrintRow({"sweep", "bare ms", "gated ms", "overhead %"}, {10, 12, 12, 12});
    PrintRow({"10^4 x" + std::to_string(reps), FormatDouble(bare, 3), FormatDouble(gated, 3),
              FormatDouble(overhead, 2)},
             {10, 12, 12, 12});
  }

  // (2) The BENCH_parallel.json soundness series, for cross-PR comparison:
  // the same grids, now with the gate in the hot loop.
  std::printf("\n");
  PrintRow({"inputs k", "|D| per coord", "grid |D|^k", "t=1 ms", "t=2 ms", "t=4 ms"},
           {9, 14, 12, 10, 10, 10});
  for (const int k : {3, 4}) {
    const Program q = MakeProgram(k);
    const SurveillanceMechanism ms = MakeSurveillanceM(Program(q), VarSet{0});
    const AllowPolicy policy(k, VarSet{0});
    const InputDomain domain = InputDomain::Range(k, 0, 4);
    PrintRow({std::to_string(k), "5", std::to_string(domain.size()),
              FormatDouble(CheckMillis(ms, policy, domain, 1), 3),
              FormatDouble(CheckMillis(ms, policy, domain, 2), 3),
              FormatDouble(CheckMillis(ms, policy, domain, 4), 3)},
             {9, 14, 12, 10, 10, 10});
  }

  // (3) Deadline promptness: a sweep that would run far past the deadline
  // must stop within one poll stride of it.
  {
    const int k = 5;
    const Program q = MakeProgram(k);
    const SurveillanceMechanism ms = MakeSurveillanceM(Program(q), VarSet{0});
    const AllowPolicy policy(k, VarSet{0});
    const InputDomain domain = InputDomain::Range(k, 0, 9);  // 10^5 points
    std::printf("\n");
    PrintRow({"deadline ms", "wall ms", "evaluated", "grid", "status"}, {12, 10, 12, 12, 20});
    for (const int deadline_ms : {5, 20}) {
      CheckOptions options = CheckOptions::Serial();
      options.deadline = Deadline::AfterMillis(deadline_ms);
      const auto start = std::chrono::steady_clock::now();
      const SoundnessReport report =
          CheckSoundness(ms, policy, domain, Observability::kValueOnly, options);
      const double wall = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      PrintRow({std::to_string(deadline_ms), FormatDouble(wall, 2),
                std::to_string(report.progress.evaluated),
                std::to_string(report.progress.total),
                CheckStatusName(report.progress.status)},
               {12, 10, 12, 12, 20});
    }
  }

  std::printf(
      "\n  The gate is a countdown branch per grid point; every 64th point reads\n"
      "  the steady clock and two relaxed atomics. That buys bounded, cancellable,\n"
      "  exception-safe sweeps for ~one branch of overhead — and a deadline is\n"
      "  honoured within one stride regardless of how much grid remains.\n");
}

void BM_RawSweep(benchmark::State& state) {
  const InputDomain domain = InputDomain::Range(4, 0, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RawSweep(domain, false));
  }
  state.counters["points"] = static_cast<double>(domain.size());
}
BENCHMARK(BM_RawSweep);

void BM_GatedSweep(benchmark::State& state) {
  const InputDomain domain = InputDomain::Range(4, 0, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RawSweep(domain, true));
  }
  state.counters["points"] = static_cast<double>(domain.size());
}
BENCHMARK(BM_GatedSweep);

void BM_SoundnessWithGate(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const Program q = MakeProgram(k);
  const SurveillanceMechanism ms = MakeSurveillanceM(Program(q), VarSet{0});
  const AllowPolicy policy(k, VarSet{0});
  const InputDomain domain = InputDomain::Range(k, 0, 4);
  const CheckOptions options = CheckOptions::Threads(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CheckSoundness(ms, policy, domain, Observability::kValueOnly, options).inputs_checked);
  }
  state.counters["grid"] = static_cast<double>(domain.size());
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_SoundnessWithGate)->Args({3, 1})->Args({3, 4})->Args({4, 1})->Args({4, 4});

void BM_DeadlineBoundedSoundness(benchmark::State& state) {
  // Wall time of a deadline-capped sweep over an oversized grid: should sit
  // just above the deadline (5ms), independent of grid size.
  const Program q = MakeProgram(5);
  const SurveillanceMechanism ms = MakeSurveillanceM(Program(q), VarSet{0});
  const AllowPolicy policy(5, VarSet{0});
  const InputDomain domain = InputDomain::Range(5, 0, 9);
  for (auto _ : state) {
    CheckOptions options = CheckOptions::Serial();
    options.deadline = Deadline::AfterMillis(5);
    benchmark::DoNotOptimize(
        CheckSoundness(ms, policy, domain, Observability::kValueOnly, options)
            .progress.evaluated);
  }
}
BENCHMARK(BM_DeadlineBoundedSoundness);

}  // namespace
}  // namespace secpol

SECPOL_BENCH_MAIN(secpol::PrintReproduction)
