// Enforcement-overhead ablation.
//
// Not a single paper table, but the design-choice ablation DESIGN.md calls
// out: what each enforcement style costs per run relative to the bare
// interpreter — surveillance (interpreted labels), the literal Section 3
// instrumented program, the lattice-generalized monitor, and the high-water
// variant. The instrumented program also shows the static size cost of the
// Section 3 transformation.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_util.h"
#include "src/corpus/generator.h"
#include "src/flowchart/bytecode.h"
#include "src/flowchart/interpreter.h"
#include "src/flowlang/lower.h"
#include "src/lattice/flow_mechanism.h"
#include "src/surveillance/instrument.h"
#include "src/surveillance/surveillance.h"

namespace secpol {
namespace {

Program BenchProgram() {
  CorpusConfig config;
  config.num_inputs = 3;
  config.max_block_len = 5;
  config.max_depth = 3;
  return Lower(GenerateProgram(config, 90210, "bench"));
}

void PrintReproduction() {
  PrintHeader("Ablation: program size cost of the literal Section 3 instrumentation");
  const Program q = BenchProgram();
  const Program instrumented = InstrumentSurveillance(q, VarSet{0});
  PrintRow({"program", "boxes", "variables"}, {14, 8, 10});
  PrintRow({"original", std::to_string(q.num_boxes()), std::to_string(q.num_vars())},
           {14, 8, 10});
  PrintRow({"instrumented", std::to_string(instrumented.num_boxes()),
            std::to_string(instrumented.num_vars())},
           {14, 8, 10});
  std::printf(
      "\n  The Section 3 transformation roughly doubles boxes (label updates) and\n"
      "  variables (one shadow per variable plus C-bar). Per-run costs follow in\n"
      "  the benchmark section: bare interpreter vs each enforcement style.\n");
}

void BM_BareInterpreter(benchmark::State& state) {
  const Program q = BenchProgram();
  const Input input = {1, 2, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunProgram(q, input).output);
  }
}
BENCHMARK(BM_BareInterpreter);

void BM_BytecodeInterpreter(benchmark::State& state) {
  const BytecodeProgram bc = CompileToBytecode(BenchProgram());
  const Input input = {1, 2, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunBytecode(bc, input).output);
  }
}
BENCHMARK(BM_BytecodeInterpreter);

void BM_InstrumentedBytecode(benchmark::State& state) {
  // The whole enforcement pipeline compiled: Section 3 instrumentation, then
  // bytecode. Label joins become integer ORs in a flat instruction stream.
  const Program instrumented = InstrumentSurveillance(BenchProgram(), VarSet{0});
  const BytecodeProgram bc = CompileToBytecode(instrumented);
  const Input input = {1, 2, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunBytecode(bc, input).output);
  }
}
BENCHMARK(BM_InstrumentedBytecode);

void BM_Surveillance(benchmark::State& state) {
  const SurveillanceMechanism m = MakeSurveillanceM(BenchProgram(), VarSet{0});
  const Input input = {1, 2, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Run(input).kind);
  }
}
BENCHMARK(BM_Surveillance);

void BM_HighWater(benchmark::State& state) {
  const SurveillanceMechanism m = MakeHighWaterMechanism(BenchProgram(), VarSet{0});
  const Input input = {1, 2, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Run(input).kind);
  }
}
BENCHMARK(BM_HighWater);

void BM_InstrumentedProgram(benchmark::State& state) {
  const InstrumentedMechanism m(BenchProgram(), VarSet{0});
  const Input input = {1, 2, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Run(input).kind);
  }
}
BENCHMARK(BM_InstrumentedProgram);

void BM_LatticeFlow(benchmark::State& state) {
  const auto lattice = std::make_shared<SubsetLattice>(3);
  std::vector<ClassId> classes = {1, 2, 4};
  const LatticeFlowMechanism m(BenchProgram(), lattice, classes, /*clearance=*/1);
  const Input input = {1, 2, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Run(input).kind);
  }
}
BENCHMARK(BM_LatticeFlow);

void BM_InstrumentationItself(benchmark::State& state) {
  const Program q = BenchProgram();
  for (auto _ : state) {
    benchmark::DoNotOptimize(InstrumentSurveillance(q, VarSet{0}).num_boxes());
  }
}
BENCHMARK(BM_InstrumentationItself);

}  // namespace
}  // namespace secpol

SECPOL_BENCH_MAIN(secpol::PrintReproduction)
