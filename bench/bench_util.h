// Shared helpers for the benchmark/reproduction binaries.
//
// Every bench binary prints its experiment's reproduction table(s) first —
// the rows EXPERIMENTS.md records — and then runs its google-benchmark
// timings. `RunBenchMain` wires that up.

#ifndef SECPOL_BENCH_BENCH_UTIL_H_
#define SECPOL_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

namespace secpol {

// Prints a crude fixed-width table.
inline void PrintRow(const std::vector<std::string>& cells, const std::vector<int>& widths) {
  std::string line = "  ";
  for (size_t i = 0; i < cells.size(); ++i) {
    std::string cell = cells[i];
    const int width = i < widths.size() ? widths[i] : 18;
    if (static_cast<int>(cell.size()) < width) {
      cell.resize(static_cast<size_t>(width), ' ');
    }
    line += cell + " ";
  }
  std::printf("%s\n", line.c_str());
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace secpol

// Each bench binary defines PrintReproduction() and registers benchmarks
// with the usual BENCHMARK(...) macros, then uses this main.
#define SECPOL_BENCH_MAIN(print_fn)                    \
  int main(int argc, char** argv) {                    \
    print_fn();                                        \
    benchmark::Initialize(&argc, argv);                \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) { \
      return 1;                                        \
    }                                                  \
    benchmark::RunSpecifiedBenchmarks();               \
    benchmark::Shutdown();                             \
    return 0;                                          \
  }

#endif  // SECPOL_BENCH_BENCH_UTIL_H_
