// E3 — Example 2's file system under a reference monitor.
//
// Reproduces: the directory-gated content-dependent policy; soundness of the
// fail-stop and zero-fill monitors for both compliant and greedy programs;
// and Example 4's leak-through-the-notice monitor, which the checker
// convicts. Utility shows the completeness price of each denial mode.
//
// Benchmark: syscall-mediation overhead of the monitor.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/mechanism/completeness.h"
#include "src/mechanism/soundness.h"
#include "src/monitor/filesys.h"
#include "src/policy/policy.h"
#include "src/util/strings.h"

namespace secpol {
namespace {

InputDomain Domain() {
  // dirs in {0,1} x 2, contents in {0,1,2} x 2.
  return InputDomain::PerInput({{0, 1}, {0, 1}, {0, 1, 2}, {0, 1, 2}});
}

void PrintReproduction() {
  PrintHeader("E3: Example 2 file system — monitor x program soundness/utility matrix");
  const DirectoryGatedPolicy policy(2, 1);
  const InputDomain domain = Domain();

  PrintRow({"monitor", "program", "sound", "utility"}, {16, 12, 8, 9});
  for (const DenialMode mode :
       {DenialMode::kFailStop, DenialMode::kZeroFill, DenialMode::kLeakyLenient}) {
    for (const bool greedy : {false, true}) {
      const auto mech = MakeMonitoredMechanism(
          "sum", 2, 1, mode, greedy ? MakeGreedySummer() : MakeCompliantSummer());
      const auto report =
          CheckSoundness(*mech, policy, domain, Observability::kValueOnly);
      PrintRow({DenialModeName(mode), greedy ? "greedy" : "compliant",
                report.sound ? "yes" : "NO",
                FormatDouble(MeasureUtility(*mech, domain), 3)},
               {16, 12, 8, 9});
    }
  }
  std::printf(
      "\n  Paper: the Example 2 notice (\"Illegal access attempted, run aborted\") is\n"
      "  sound because it depends only on the (always-visible) directories; Example 4\n"
      "  warns of mechanisms that leak through their notices — the leaky-lenient row\n"
      "  is exactly such a mechanism and the checker convicts it on the greedy\n"
      "  program.\n");

  PrintHeader("Zero-fill vs fail-stop completeness (greedy program)");
  const auto failstop =
      MakeMonitoredMechanism("sum", 2, 1, DenialMode::kFailStop, MakeGreedySummer());
  const auto zerofill =
      MakeMonitoredMechanism("sum", 2, 1, DenialMode::kZeroFill, MakeGreedySummer());
  const CompletenessStats stats = CompareCompleteness(*zerofill, *failstop, domain);
  PrintRow({"relation", CompletenessRelationName(stats.Relation())}, {10, 22});
  std::printf("  Both sound for the same policy; zero-fill answers strictly more runs.\n");
}

void BM_MonitoredRun(benchmark::State& state) {
  const auto mech = MakeMonitoredMechanism("sum", 2, 1, DenialMode::kZeroFill,
                                           MakeGreedySummer());
  const Input input = {1, 0, 5, 7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(mech->Run(input).kind);
  }
}
BENCHMARK(BM_MonitoredRun);

void BM_SessionSyscall(benchmark::State& state) {
  const FileSystem fs({1, 0}, {5, 7}, 1);
  MonitorSession session(fs, DenialMode::kZeroFill);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.ReadFile(0));
  }
}
BENCHMARK(BM_SessionSyscall);

}  // namespace
}  // namespace secpol

SECPOL_BENCH_MAIN(secpol::PrintReproduction)
