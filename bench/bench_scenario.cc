// E21 — generated differential coverage: what the scenario matrix and the
// disagreement fuzzer cost, and what they buy.
//
// The matrix crosses 7 named axes into 5184 scenarios; every clean scenario
// runs the full differential battery (parallel = serial bytes, audit =
// concatenated sections, table-backed = live, cold = warm cache) and every
// degraded one checks its structured-failure contract. The fuzzer searches
// the same oracle space from a seeded corpus with counter-derived coverage
// feedback, then delta-minimizes what it finds into self-contained witness
// files.
//
// This bench quantifies the economics: scenario generation is effectively
// free (name construction only), a clean-battery scenario costs a few
// hundred microseconds — so the whole 5184-scenario matrix stays inside a
// single-digit-second CI budget — and the fuzzer sustains hundreds of
// oracle-pair iterations per second, with witness minimization reducing raw
// findings by an order of magnitude for a few hundred predicate calls.

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/flowlang/parser.h"
#include "src/scenario/fuzzer.h"
#include "src/scenario/minimize.h"
#include "src/scenario/runner.h"
#include "src/scenario/scenario.h"

namespace secpol {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

// A statement-heavy program with one load-bearing loop: the minimizer has to
// strip everything else while keeping the loop alive.
SourceProgram MinimizeFixture() {
  return ParseProgram(
             "program p(a, b) { locals v, c; v = a + b; y = v * 2; v = v - a; "
             "y = y + v; c = 2; while (c != 0) { y = y + 1; c = c - 1; } "
             "y = y - b; y = y * 1; }")
      .value();
}

const WitnessPredicate kHasLoop = [](const SourceProgram& candidate) {
  return candidate.ToString().find("while") != std::string::npos;
};

void PrintReproduction() {
  PrintHeader("E21: scenario matrix — 7 axes crossed into one differential battery");
  const std::vector<Scenario> scenarios = MakeScenarios(DefaultAxes());
  {
    auto start = std::chrono::steady_clock::now();
    ScenarioRunner runner;
    const ScenarioSummary summary = runner.RunAll(scenarios);
    const double ms = MillisSince(start);
    PrintRow({"scenarios", "checks", "violations", "wall ms", "scenarios/s"},
             {12, 10, 12, 10, 12});
    PrintRow({std::to_string(summary.scenarios), std::to_string(summary.checks),
              std::to_string(summary.violations.size()), std::to_string(ms),
              std::to_string(summary.scenarios / (ms / 1000.0))},
             {12, 10, 12, 10, 12});
    std::printf("  first %s / last %s — names are golden-pinned\n",
                scenarios.front().name.c_str(), scenarios.back().name.c_str());
  }

  PrintHeader("E21: disagreement fuzzer — 200 seeded iterations of the oracle battery");
  {
    FuzzerConfig config;
    config.seed = 20260809;
    config.iterations = 200;
    config.threads = 7;
    auto start = std::chrono::steady_clock::now();
    DisagreementFuzzer fuzzer(config);
    const FuzzReport report = fuzzer.Run();
    const double ms = MillisSince(start);
    PrintRow({"iterations", "iters/s", "features", "novel", "disagree", "expected"},
             {12, 10, 10, 8, 10, 10});
    PrintRow({std::to_string(report.stats.iterations),
              std::to_string(report.stats.iterations / (ms / 1000.0)),
              std::to_string(report.stats.features), std::to_string(report.stats.novel_inputs),
              std::to_string(report.stats.disagreements),
              std::to_string(report.stats.expected_findings)},
             {12, 10, 10, 8, 10, 10});
    for (const FuzzFinding& finding : report.findings) {
      std::printf("  [%s] %s\n", FindingKindName(finding.kind).c_str(),
                  finding.detail.c_str());
    }
  }

  PrintHeader("E21: witness minimization — structure-aware greedy shrink");
  {
    const SourceProgram fixture = MinimizeFixture();
    MinimizeStats stats;
    (void)MinimizeWitness(fixture, kHasLoop, MinimizeOptions(), &stats);
    PrintRow({"initial size", "final size", "shrink", "candidates", "accepted"},
             {14, 12, 8, 12, 10});
    PrintRow({std::to_string(stats.initial_size), std::to_string(stats.final_size),
              std::to_string(static_cast<double>(stats.initial_size) / stats.final_size),
              std::to_string(stats.candidates_tried),
              std::to_string(stats.candidates_accepted)},
             {14, 12, 8, 12, 10});
  }
}

void BM_MatrixGeneration(benchmark::State& state) {
  // Names and configs only — no job runs. This is the price of *having* the
  // 5184-scenario matrix at all.
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeScenarios(DefaultAxes()).size());
  }
  state.counters["scenarios"] = 5184;
}
BENCHMARK(BM_MatrixGeneration);

void BM_ScenarioCleanBattery(benchmark::State& state) {
  // One clean serial scenario, full battery: reference run, parallel replay,
  // audit-vs-sections, table-vs-live, cold-vs-warm cache.
  const std::vector<Scenario> scenarios = MakeScenarios(DefaultAxes());
  ScenarioRunner runner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.Run(scenarios.front()).checks);
  }
}
BENCHMARK(BM_ScenarioCleanBattery);

void BM_FuzzerIterations(benchmark::State& state) {
  // A fresh fixed-seed fuzzer per measurement, `range(0)` oracle iterations
  // each (minimization off so the cost is the iteration itself, not witness
  // post-processing).
  const std::uint64_t iterations = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    FuzzerConfig config;
    config.seed = seed++;
    config.iterations = iterations;
    config.minimize = false;
    DisagreementFuzzer fuzzer(config);
    benchmark::DoNotOptimize(fuzzer.Run().stats.iterations);
  }
  state.counters["iters/s"] = benchmark::Counter(
      static_cast<double>(iterations * state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FuzzerIterations)->Arg(16);

void BM_MinimizeWitness(benchmark::State& state) {
  const SourceProgram fixture = MinimizeFixture();
  for (auto _ : state) {
    MinimizeStats stats;
    (void)MinimizeWitness(fixture, kHasLoop, MinimizeOptions(), &stats);
    benchmark::DoNotOptimize(stats.final_size);
  }
}
BENCHMARK(BM_MinimizeWitness);

}  // namespace
}  // namespace secpol

SECPOL_BENCH_MAIN(secpol::PrintReproduction)
