// E15 — the one-way tape and tab(i).
//
// Reproduces Section 2's claim: under allow(z2) with observable time, no
// reader that walks across z1 can be sound (it encodes |z1| in its running
// time); a linear-cost tab(i) has the same flaw; a constant-time tab(i)
// restores soundness.
//
// Benchmark: seek cost per strategy as the skipped block grows.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/mechanism/soundness.h"
#include "src/policy/policy.h"
#include "src/tape/tape.h"

namespace secpol {
namespace {

void PrintReproduction() {
  PrintHeader("E15: read z2 under allow(z2) — seek strategy x observability matrix");
  const AllowPolicy policy(4, BlockCoordinates(1));
  const InputDomain domain = InputDomain::PerInput({
      {0, 1, 4},  // |z1| (disallowed)
      {5, 6},     // z1 symbol (disallowed)
      {1, 2},     // |z2|
      {8, 9},     // z2 symbol
  });

  PrintRow({"strategy", "sound (value)", "sound (value+time)"}, {14, 14, 19});
  for (const SeekStrategy s :
       {SeekStrategy::kWalk, SeekStrategy::kTabLinear, SeekStrategy::kTabConstant}) {
    const auto reader = MakeBlockReader(2, 1, s);
    const bool sv =
        CheckSoundness(*reader, policy, domain, Observability::kValueOnly).sound;
    const bool st =
        CheckSoundness(*reader, policy, domain, Observability::kValueAndTime).sound;
    PrintRow({SeekStrategyName(s), sv ? "yes" : "NO", st ? "yes" : "NO"}, {14, 14, 19});
  }
  std::printf(
      "\n  Paper: walking across z1 \"will encode the length of z1 into the\n"
      "  computation\"; tab(i) only helps if it \"runs in constant time\".\n");

  PrintHeader("Seek step counts vs |z1| (the observable itself)");
  PrintRow({"|z1|", "walk", "tab-linear", "tab-constant"}, {6, 8, 11, 13});
  for (const Value len : {0, 4, 16, 64}) {
    std::vector<StepCount> costs;
    for (const SeekStrategy s :
         {SeekStrategy::kWalk, SeekStrategy::kTabLinear, SeekStrategy::kTabConstant}) {
      TapeMachine tape({{len, 7}, {1, 9}});
      tape.Tab(1, s);
      costs.push_back(tape.steps());
    }
    PrintRow({std::to_string(len), std::to_string(costs[0]), std::to_string(costs[1]),
              std::to_string(costs[2])},
             {6, 8, 11, 13});
  }
}

void BM_Seek(benchmark::State& state) {
  const auto strategy = static_cast<SeekStrategy>(state.range(0));
  const Value len = state.range(1);
  for (auto _ : state) {
    TapeMachine tape({{len, 7}, {1, 9}});
    tape.Tab(1, strategy);
    benchmark::DoNotOptimize(tape.Read());
  }
  state.counters["z1_len"] = static_cast<double>(len);
}
BENCHMARK(BM_Seek)
    ->Args({static_cast<long>(SeekStrategy::kWalk), 64})
    ->Args({static_cast<long>(SeekStrategy::kWalk), 4096})
    ->Args({static_cast<long>(SeekStrategy::kTabConstant), 64})
    ->Args({static_cast<long>(SeekStrategy::kTabConstant), 4096});

}  // namespace
}  // namespace secpol

SECPOL_BENCH_MAIN(secpol::PrintReproduction)
