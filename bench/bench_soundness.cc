// E1 / E5 / E16 — the soundness table.
//
// Reproduces: Example 3's trivial mechanisms (plug always sound, the bare
// program usually not), Theorem 3 (surveillance sound when time is hidden),
// Theorem 3' (M' sound under observable time), the high-water mark, and the
// deliberately unsound naive-scoped discipline. Rows report the checker's
// verdict over a random corpus; the paper's claims predict the SOUND/LEAKY
// column exactly.
//
// Benchmarks: soundness-checker throughput and per-run mechanism cost.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_util.h"
#include "src/corpus/generator.h"
#include "src/flowlang/lower.h"
#include "src/mechanism/soundness.h"
#include "src/policy/policy.h"
#include "src/surveillance/surveillance.h"

namespace secpol {
namespace {

constexpr int kPrograms = 40;
constexpr int kInputs = 3;

std::vector<Program> Corpus() {
  CorpusConfig config;
  config.num_inputs = kInputs;
  std::vector<Program> out;
  for (const SourceProgram& s : MakeCorpus(config, kPrograms, 11000)) {
    out.push_back(Lower(s));
  }
  return out;
}

struct Row {
  std::string mechanism;
  Observability obs;
  int sound = 0;
  int unsound = 0;
};

void PrintReproduction() {
  PrintHeader("E1/E5/E16: soundness verdicts over a 40-program corpus, allow(0) of 3 inputs");
  const std::vector<Program> corpus = Corpus();
  const VarSet allowed{0};
  const AllowPolicy policy(kInputs, allowed);
  const InputDomain domain = InputDomain::Uniform(kInputs, {-1, 0, 2});

  auto census = [&](const std::string& name, Observability obs, auto make) {
    Row row{name, obs};
    for (const Program& q : corpus) {
      const auto mechanism = make(q);
      const auto report = CheckSoundness(*mechanism, policy, domain, obs);
      report.sound ? ++row.sound : ++row.unsound;
    }
    PrintRow({row.mechanism, ObservabilityName(row.obs), std::to_string(row.sound),
              std::to_string(row.unsound)},
             {34, 12, 8, 8});
  };

  PrintRow({"mechanism", "observes", "sound", "leaky"}, {34, 12, 8, 8});
  census("plug (Example 3)", Observability::kValueAndTime, [&](const Program& q) {
    return std::make_unique<PlugMechanism>(q.num_inputs());
  });
  census("bare program (Example 3)", Observability::kValueOnly, [&](const Program& q) {
    return std::make_unique<ProgramAsMechanism>(Program(q));
  });
  census("surveillance M (Thm 3)", Observability::kValueOnly, [&](const Program& q) {
    return std::make_unique<SurveillanceMechanism>(Program(q), allowed);
  });
  census("surveillance M (time observable)", Observability::kValueAndTime,
         [&](const Program& q) {
           return std::make_unique<SurveillanceMechanism>(Program(q), allowed);
         });
  census("surveillance M' (Thm 3')", Observability::kValueAndTime, [&](const Program& q) {
    return std::make_unique<SurveillanceMechanism>(Program(q), allowed,
                                                   TimingMode::kTimeObservable);
  });
  census("high-water mark", Observability::kValueOnly, [&](const Program& q) {
    return std::make_unique<SurveillanceMechanism>(Program(q), allowed,
                                                   TimingMode::kTimeUnobservable,
                                                   LabelDiscipline::kHighWater);
  });
  census("naive scoped-pc (E16)", Observability::kValueOnly, [&](const Program& q) {
    return std::make_unique<SurveillanceMechanism>(Program(q), allowed,
                                                   TimingMode::kTimeUnobservable,
                                                   LabelDiscipline::kNaiveScopedPc);
  });
  std::printf(
      "\n  Expected per the paper: plug/M/M'/high-water fully sound; the bare program\n"
      "  and the naive scoped-pc discipline leak on some programs.\n");
}

void BM_CheckSoundness(benchmark::State& state) {
  CorpusConfig config;
  config.num_inputs = kInputs;
  const Program q = Lower(GenerateProgram(config, 42, "bench"));
  const SurveillanceMechanism m = MakeSurveillanceM(Program(q), VarSet{0});
  const AllowPolicy policy(kInputs, VarSet{0});
  const InputDomain domain =
      InputDomain::Uniform(kInputs, {-2, -1, 0, 1, static_cast<Value>(state.range(0))});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CheckSoundness(m, policy, domain, Observability::kValueOnly).sound);
  }
  state.counters["grid"] = static_cast<double>(domain.size());
}
BENCHMARK(BM_CheckSoundness)->Arg(2)->Arg(3);

void BM_SurveillanceRun(benchmark::State& state) {
  CorpusConfig config;
  config.num_inputs = kInputs;
  const Program q = Lower(GenerateProgram(config, 42, "bench"));
  const SurveillanceMechanism m = MakeSurveillanceM(Program(q), VarSet{0});
  const Input input = {1, 2, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Run(input).kind);
  }
}
BENCHMARK(BM_SurveillanceRun);

}  // namespace
}  // namespace secpol

SECPOL_BENCH_MAIN(secpol::PrintReproduction)
