// E12 — the computable shadow of Theorem 4.
//
// Theorem 2 says a maximal sound mechanism exists; Theorem 4 says no
// effective procedure produces it from (Q, I), and Ruzzo observed it need
// not be recursive. On a finite grid the maximal mechanism *is* computable —
// by tabulating Q on the whole grid — and this bench measures how that cost
// explodes with input arity and per-coordinate domain size. The exponential
// wall is the finite trace of the undecidability: any procedure that decides
// release by extensional inspection pays |D|^k.
//
// Benchmark: synthesis time vs arity and domain size.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/corpus/generator.h"
#include "src/flowlang/lower.h"
#include "src/mechanism/completeness.h"
#include "src/mechanism/maximal.h"
#include "src/policy/policy.h"
#include "src/surveillance/surveillance.h"
#include "src/util/strings.h"

namespace secpol {
namespace {

Program MakeProgram(int num_inputs) {
  CorpusConfig config;
  config.num_inputs = num_inputs;
  return Lower(GenerateProgram(config, 4242, "target"));
}

void PrintReproduction() {
  PrintHeader("E12: maximal-mechanism synthesis cost vs grid (Theorem 4's wall)");
  PrintRow({"inputs k", "|D| per coord", "grid |D|^k", "classes", "released", "surv utility",
            "max utility"},
           {9, 14, 12, 9, 9, 13, 12});
  for (const int k : {1, 2, 3, 4}) {
    const Program q = MakeProgram(k);
    const ProgramAsMechanism bare{Program(q)};
    const VarSet allowed{0};
    const AllowPolicy policy(k, allowed);
    for (const int d : {3, 5}) {
      const InputDomain domain = InputDomain::Range(k, 0, d - 1);
      const auto synth =
          SynthesizeMaximalMechanism(bare, policy, domain, Observability::kValueOnly);
      const SurveillanceMechanism ms = MakeSurveillanceM(Program(q), allowed);
      PrintRow({std::to_string(k), std::to_string(d), std::to_string(domain.size()),
                std::to_string(synth.policy_classes), std::to_string(synth.released_classes),
                FormatDouble(MeasureUtility(ms, domain), 3),
                FormatDouble(MeasureUtility(*synth.mechanism, domain), 3)},
               {9, 14, 12, 9, 9, 13, 12});
    }
  }
  std::printf(
      "\n  Surveillance's cost per run is linear in the program; the maximal\n"
      "  mechanism's construction cost is the full |D|^k tabulation. As the domain\n"
      "  grows toward the integers the procedure diverges — Theorem 4 made precise.\n");
}

void BM_MaximalSynthesis(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  const Program q = MakeProgram(k);
  const ProgramAsMechanism bare{Program(q)};
  const AllowPolicy policy(k, VarSet{0});
  const InputDomain domain = InputDomain::Range(k, 0, d - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SynthesizeMaximalMechanism(bare, policy, domain, Observability::kValueOnly)
            .released_classes);
  }
  state.counters["grid"] = static_cast<double>(domain.size());
}
BENCHMARK(BM_MaximalSynthesis)
    ->Args({1, 5})
    ->Args({2, 5})
    ->Args({3, 5})
    ->Args({4, 5})
    ->Args({3, 3})
    ->Args({3, 9});

void BM_SurveillancePerRunForScale(benchmark::State& state) {
  const Program q = MakeProgram(3);
  const SurveillanceMechanism ms = MakeSurveillanceM(Program(q), VarSet{0});
  const Input input = {1, 2, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ms.Run(input).kind);
  }
}
BENCHMARK(BM_SurveillancePerRunForScale);

}  // namespace
}  // namespace secpol

SECPOL_BENCH_MAIN(secpol::PrintReproduction)
