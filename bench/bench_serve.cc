// E22 — the serve daemon: round-trip request throughput and latency over a
// real unix socket, and the cross-connection warm-cache economics.
//
// `secpol serve` keeps one content-addressed result cache hot across client
// connections, so the steady-state cost of a repeated check is one framed
// round trip plus a fingerprint — not a sweep. This bench measures the
// daemon's transport tax directly against the in-process batch service:
// (1) cold vs warm submission throughput over one connection, (2) the
// latency distribution (p50/p99) of warm submits and bare pings, and
// (3) the cross-connection warm hit rate — every job submitted on a fresh
// connection after a cold pass must come back from_cache with identical
// deterministic bytes.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/server/socket.h"
#include "src/service/manifest.h"
#include "src/service/service.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace secpol {
namespace {

// Same workload shape as bench_service (E18): distinct loop-bearing
// programs so cold sweeps are honest work and every job has its own cache
// key. Serve-vs-batch numbers are then directly comparable.
std::string ProgramText(int variant) {
  return "program p(a, b, c) { locals i; i = " + std::to_string(20 + variant) +
         "; while (i != 0) { i = i - 1; } y = a + b * c; }";
}

CheckJobSpec JobFor(int variant) {
  CheckJobSpec spec;
  spec.id = "job-" + std::to_string(variant);
  spec.program_text = ProgramText(variant);
  spec.allow = VarSet{0};
  spec.grid_lo = 0;
  spec.grid_hi = 4;  // 5^3 = 125 surveilled evaluations per cold job
  return spec;
}

struct ServeFixture {
  std::unique_ptr<CheckServer> server;

  ServeFixture() {
    ServerConfig config;
    config.unix_path = UniqueSocketPath("bench_serve");
    config.concurrency = 1;
    config.cache_capacity = 1024;
    server = std::make_unique<CheckServer>(config);
    if (!server->Start().ok()) {
      std::fprintf(stderr, "bench_serve: daemon failed to start\n");
      server.reset();
    }
  }

  ServeClient Connect() const {
    Result<ServeClient> client = ServeClient::ConnectUnixPath(server->unix_path());
    return client.ok() ? std::move(client).value() : ServeClient();
  }
};

double SubmitBatchMillis(ServeClient& client, const std::vector<CheckJobSpec>& jobs,
                         int* from_cache_count) {
  const auto start = std::chrono::steady_clock::now();
  for (const CheckJobSpec& spec : jobs) {
    const Result<Json> terminal = client.SubmitJob(CheckJobSpecToJson(spec));
    if (terminal.ok()) {
      if (const Json* job = terminal.value().Find("job"); job != nullptr) {
        const Json* from_cache = job->Find("from_cache");
        if (from_cache_count != nullptr && from_cache != nullptr && from_cache->is_bool() &&
            from_cache->AsBool()) {
          ++*from_cache_count;
        }
      }
      benchmark::DoNotOptimize(terminal.value().kind());
    }
  }
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

double Percentile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  const std::size_t index = static_cast<std::size_t>(p * (samples.size() - 1));
  return samples[index];
}

void PrintReproduction() {
  PrintHeader("E22: serve daemon — socket round-trip throughput, latency, warm economics");
  std::printf("  host hardware threads: %d\n\n", ThreadPool::HardwareThreads());

  ServeFixture fixture;
  if (fixture.server == nullptr) {
    return;
  }
  const int kJobs = 64;
  std::vector<CheckJobSpec> jobs;
  for (int i = 0; i < kJobs; ++i) {
    jobs.push_back(JobFor(i));
  }

  // (1) Cold vs warm over one connection, then warm again on a *fresh*
  // connection — the cache, not the connection, is what holds the state.
  {
    ServeClient client = fixture.Connect();
    const double cold_ms = SubmitBatchMillis(client, jobs, nullptr);
    int warm_hits = 0;
    double warm_ms = SubmitBatchMillis(client, jobs, &warm_hits);
    for (int trial = 0; trial < 5; ++trial) {
      int ignored = 0;
      warm_ms = std::min(warm_ms, SubmitBatchMillis(client, jobs, &ignored));
    }
    ServeClient fresh = fixture.Connect();
    int fresh_hits = 0;
    const double fresh_ms = SubmitBatchMillis(fresh, jobs, &fresh_hits);

    PrintRow({"batch", "jobs", "wall ms", "jobs/s", "from_cache"}, {16, 6, 12, 12, 10});
    PrintRow({"cold", std::to_string(kJobs), FormatDouble(cold_ms, 2),
              FormatDouble(kJobs / (cold_ms / 1000.0), 0), "0"},
             {16, 6, 12, 12, 10});
    PrintRow({"warm same conn", std::to_string(kJobs), FormatDouble(warm_ms, 3),
              FormatDouble(kJobs / (warm_ms / 1000.0), 0), std::to_string(warm_hits)},
             {16, 6, 12, 12, 10});
    PrintRow({"warm fresh conn", std::to_string(kJobs), FormatDouble(fresh_ms, 3),
              FormatDouble(kJobs / (fresh_ms / 1000.0), 0), std::to_string(fresh_hits)},
             {16, 6, 12, 12, 10});
    std::printf("  warm/cold speedup: %sx; cross-connection hit rate: %d/%d\n\n",
                FormatDouble(warm_ms > 0 ? cold_ms / warm_ms : 0.0, 1).c_str(), fresh_hits,
                kJobs);
  }

  // (2) Request latency distributions: warm submits (fingerprint + cache
  // hit + two frames each way) and bare pings (the transport floor).
  {
    ServeClient client = fixture.Connect();
    const Json warm_job = CheckJobSpecToJson(JobFor(0));
    std::vector<double> submit_us;
    for (int i = 0; i < 400; ++i) {
      const auto start = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(client.SubmitJob(warm_job).ok());
      submit_us.push_back(std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - start)
                              .count());
    }
    std::vector<double> ping_us;
    for (int i = 0; i < 400; ++i) {
      const auto start = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(client.Ping().ok());
      ping_us.push_back(std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - start)
                            .count());
    }
    PrintRow({"request", "p50 us", "p99 us"}, {16, 10, 10});
    PrintRow({"submit (warm)", FormatDouble(Percentile(submit_us, 0.5), 1),
              FormatDouble(Percentile(submit_us, 0.99), 1)},
             {16, 10, 10});
    PrintRow({"ping", FormatDouble(Percentile(ping_us, 0.5), 1),
              FormatDouble(Percentile(ping_us, 0.99), 1)},
             {16, 10, 10});

    // The in-process comparison point: the same warm job through a local
    // CheckService, no socket — the daemon's transport tax is the delta.
    ServiceConfig config;
    config.concurrency = 1;
    CheckService service(config);
    (void)service.RunBatch({JobFor(0)});
    std::vector<double> local_us;
    for (int i = 0; i < 400; ++i) {
      const auto start = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(service.RunBatch({JobFor(0)}).stats.cache_hits);
      local_us.push_back(std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - start)
                             .count());
    }
    PrintRow({"in-process warm", FormatDouble(Percentile(local_us, 0.5), 1),
              FormatDouble(Percentile(local_us, 0.99), 1)},
             {16, 10, 10});
    std::printf("\n");
  }
}

void BM_WarmSubmitRoundTrip(benchmark::State& state) {
  ServeFixture fixture;
  if (fixture.server == nullptr) {
    state.SkipWithError("daemon failed to start");
    return;
  }
  ServeClient client = fixture.Connect();
  const Json job = CheckJobSpecToJson(JobFor(0));
  (void)client.SubmitJob(job);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.SubmitJob(job).ok());
  }
}
BENCHMARK(BM_WarmSubmitRoundTrip);

void BM_PingRoundTrip(benchmark::State& state) {
  ServeFixture fixture;
  if (fixture.server == nullptr) {
    state.SkipWithError("daemon failed to start");
    return;
  }
  ServeClient client = fixture.Connect();
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Ping().ok());
  }
}
BENCHMARK(BM_PingRoundTrip);

}  // namespace
}  // namespace secpol

SECPOL_BENCH_MAIN(secpol::PrintReproduction)
